"""Journal replay: bootstrapping new consumers from history.

A key payoff of journal-based capture the tutorial implies: because the
journal *is* the event history, a continuous query or model deployed
today can be warmed up on yesterday's changes before going live —
without any application-level event archive.
"""

import pytest

from repro.capture import JournalCapture
from repro.core import EwmaModel
from repro.core.deviation import DeviationDetector, UpdatePolicy
from repro.cq import ContinuousQuery, Count, Stream, Sum


class TestReplayBootstrap:
    def test_new_query_over_historical_changes(self, db):
        db.execute("CREATE TABLE trades (id INT PRIMARY KEY, qty INT)")
        # History happens before anyone subscribes.
        for i in range(30):
            db.execute(f"INSERT INTO trades VALUES ({i}, {10 * (i + 1)})")

        # A brand-new continuous query replays the full journal.
        replay = JournalCapture(db, ["trades"], from_start=True)
        out = []
        query = (
            ContinuousQuery("late_joiner")
            .window_count(10)
            .aggregate("batch", {"total": ("qty", Sum), "n": (None, Count)})
            .sink(out.append)
        )
        replay.subscribe(query.push)
        replay.poll()
        assert [e["n"] for e in out] == [10, 10, 10]
        assert out[0]["total"] == sum(10 * (i + 1) for i in range(10))

    def test_model_warmup_from_history_then_live(self, db, clock):
        """Train on replayed history, then detect live — the first live
        anomaly is caught even though the detector just started."""
        db.execute("CREATE TABLE readings (id INT PRIMARY KEY, v REAL)")
        for i in range(50):
            db.execute(f"INSERT INTO readings VALUES ({i}, {10.0 + (i % 3)})")

        replay = JournalCapture(db, ["readings"], from_start=True)
        live_input = Stream("readings")
        detector = DeviationDetector(
            live_input,
            name="v",
            field="v",
            model_factory=lambda: EwmaModel(alpha=0.1, warmup=20),
            threshold=5.0,
            update_policy=UpdatePolicy.WHEN_NORMAL,
        )
        alerts = []
        detector.subscribe(alerts.append)

        # Phase 1: warm up on history.
        replay.subscribe(live_input.push)
        replay.poll()
        assert alerts == []  # history was normal
        assert detector.model_for(None).ready

        # Phase 2: go live — the same journal reader continues from its
        # position, so nothing is missed or double-counted.
        db.execute("INSERT INTO readings VALUES (100, 10.5)")
        db.execute("INSERT INTO readings VALUES (101, 99.0)")
        replay.poll()
        assert len(alerts) == 1
        assert alerts[0]["observed"] == 99.0

    def test_replay_excludes_rolled_back_history(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (999)")
        conn.execute("ROLLBACK")
        db.execute("INSERT INTO t VALUES (2)")

        replay = JournalCapture(db, ["t"], from_start=True)
        events = replay.poll()
        assert [e["new"]["a"] for e in events] == [1, 2]

    def test_two_independent_readers_see_identical_history(self, db):
        db.execute("CREATE TABLE t (a INT)")
        for i in range(10):
            db.execute(f"INSERT INTO t VALUES ({i})")
        first = JournalCapture(db, ["t"], from_start=True, name="r1")
        second = JournalCapture(db, ["t"], from_start=True, name="r2")
        a = [(e.event_type, e["new"]) for e in first.poll()]
        b = [(e.event_type, e["new"]) for e in second.poll()]
        assert a == b
        assert len(a) == 10
