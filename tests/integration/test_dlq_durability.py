"""Dead-letter durability across crash/recovery (ISSUE 3 satellite).

Dead letters are the system's record of *failure* — losing one means a
message disappeared twice.  These tests push messages into the DLQ via
both paths (DeliveryManager poison messages, Propagator delivery
exhaustion), crash, recover from the journal, and check the dead
letters — including their forensic headers — survived intact.
"""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.db import Database
from repro.pubsub import DeliveryManager
from repro.queues import PropagationLink, Propagator, QueueBroker


class DownService:
    def deliver(self, message) -> None:
        raise ConnectionError("service is down")


@pytest.fixture
def clock():
    return SimulatedClock(start=1000.0)


def reopen(path: str) -> QueueBroker:
    """'New process': recover the database and re-attach the broker."""
    db = Database(path=path, clock=SimulatedClock(start=5000.0))
    broker = QueueBroker(db)
    for queue in ("work", "outbox", "dead"):
        if f"q_{queue}" in {t for t in db.catalog.table_names()}:
            broker.create_queue_or_attach(queue)
    return broker


class TestDeliveryManagerDlqDurability:
    def test_poison_dead_letter_survives_crash(self, tmp_path, clock):
        path = str(tmp_path / "dlq.wal")
        db = Database(path=path, clock=clock)
        broker = QueueBroker(db)
        broker.create_queue("work")
        manager = DeliveryManager(
            broker, "work", max_attempts=2, dead_letter_queue="dead"
        )
        origin_id = broker.publish(
            "work", {"poison": True}, principal="internal"
        )

        def consumer(message):
            raise ValueError("cannot process")

        for _ in range(3):
            manager.process(consumer)
        assert manager.stats["dead_lettered"] == 1
        db.simulate_crash()  # drops volatile state, replays the journal

        reborn = reopen(path)
        dead = reborn.consume("dead")
        assert dead is not None, "dead letter lost in recovery"
        assert dead.payload == {"poison": True}
        assert dead.headers["dead_letter_reason"] == "max delivery attempts"
        assert dead.headers["origin_queue"] == "work"
        assert dead.headers["origin_message_id"] == origin_id
        # The origin queue is empty: the poison message moved, it did
        # not duplicate.
        assert reborn.queue("work").depth() == 0


class TestPropagatorDlqDurability:
    def test_exhausted_propagation_survives_crash(self, tmp_path, clock):
        path = str(tmp_path / "prop.wal")
        db = Database(path=path, clock=clock)
        broker = QueueBroker(db)
        broker.create_queue("outbox")
        propagator = Propagator(
            broker,
            "outbox",
            max_attempts=2,
            base_backoff=0.1,
            max_backoff=1.0,
            dead_letter_queue="dead",
        ).add_link(PropagationLink("svc", service=DownService()))
        origin_id = broker.publish("outbox", {"doomed": True})
        for _ in range(4):
            propagator.run_once()
            clock.advance(2.0)
        assert propagator.stats["dead_lettered"] == 1
        db.simulate_crash()

        reborn = reopen(path)
        dead = reborn.consume("dead")
        assert dead is not None, "dead letter lost in recovery"
        assert dead.payload == {"doomed": True}
        assert "svc" in dead.headers["dead_letter_reason"]
        assert dead.headers["origin_queue"] == "outbox"
        assert dead.headers["origin_message_id"] == origin_id
        assert reborn.queue("outbox").depth() == 0
