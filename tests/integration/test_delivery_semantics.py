"""Delivery-guarantee semantics across failures and restarts."""

import pytest

from repro.db import Database
from repro.pubsub import PubSubBroker
from repro.queues import (
    Message,
    PropagationLink,
    Propagator,
    QueueBroker,
)


class CrashingService:
    """Accepts deliveries but lets tests 'crash' the propagator between
    send and ack."""

    def __init__(self) -> None:
        self.received: list[Message] = []

    def deliver(self, message: Message) -> None:
        self.received.append(message)


class TestAtLeastOnce:
    def test_restart_after_send_before_ack_redelivers(self, db, clock):
        """Propagation is at-least-once: a crash after the destination
        accepted but before the source ack yields a duplicate, which the
        destination can deduplicate via origin_message_id."""
        source = QueueBroker(db)
        source.create_queue("outbox")
        service = CrashingService()
        message_id = source.publish("outbox", {"n": 1})

        # First propagator: delivers to the service...
        propagator = Propagator(source, "outbox").add_link(
            PropagationLink("svc", service=service)
        )
        message = source.consume("outbox", principal="propagator")
        for link in propagator.links:
            link.send(message)
        # ...and "crashes" here: no ack, in-memory dedup state lost.
        source.queue("outbox").recover_locked()

        # A fresh propagator (post-restart) forwards again.
        restarted = Propagator(source, "outbox").add_link(
            PropagationLink("svc", service=service)
        )
        assert restarted.run_once() == 1

        # Duplicate delivered — at-least-once, not exactly-once...
        assert len(service.received) == 2
        # ...but both copies carry the same origin id for dedup.
        origin_ids = {
            m.headers["origin_message_id"] for m in service.received
        }
        assert origin_ids == {message_id}

    def test_destination_dedup_by_origin_id(self, db, clock):
        """End-to-end exactly-once effect: destination suppresses
        duplicates keyed by (origin queue, origin message id)."""
        source = QueueBroker(db)
        source.create_queue("outbox")
        destination = QueueBroker(Database(clock=clock), name="dest")
        destination.create_queue("inbox")
        seen: set = set()
        applied: list = []

        def consume_with_dedup():
            while True:
                message = destination.consume("inbox")
                if message is None:
                    return
                key = (
                    message.headers.get("propagated_from"),
                    message.headers.get("origin_message_id"),
                )
                if key not in seen:
                    seen.add(key)
                    applied.append(message.payload)
                destination.ack("inbox", message.message_id)

        source.publish("outbox", {"n": 1})
        propagator = Propagator(source, "outbox").add_link(
            PropagationLink("d", broker=destination, queue_name="inbox")
        )
        # Simulate the duplicate: deliver twice by resetting dedup state.
        message = source.consume("outbox", principal="propagator")
        propagator.links[0].send(message)
        propagator.links[0].send(message)
        source.ack("outbox", message.message_id, principal="propagator")

        consume_with_dedup()
        assert applied == [{"n": 1}]


class TestDurableSubscriptionSemantics:
    def test_subscriber_offline_misses_nothing(self, db):
        broker = PubSubBroker(db)
        broker.create_topic("t")
        broker.subscribe("app", "t", durable=True)
        from repro.events import Event

        for i in range(5):
            broker.publish("t", Event("e", float(i), {"n": i}))
        # Subscriber attaches late: full backlog replays in order.
        received = []
        broker.attach_listener("app", received.append)
        assert [e["n"] for e in received] == [0, 1, 2, 3, 4]

    def test_nondurable_subscriber_misses_while_detached(self, db):
        broker = PubSubBroker(db)
        broker.create_topic("t")
        from repro.events import Event

        early = Event("e", 0.0, {"n": 0})
        broker.publish("t", early)  # nobody listening
        received = []
        broker.subscribe("app", "t", callback=received.append)
        broker.publish("t", Event("e", 1.0, {"n": 1}))
        assert [e["n"] for e in received] == [1]
