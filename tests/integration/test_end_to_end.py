"""End-to-end scenarios across every subsystem."""

import threading

import pytest

from repro.capture import JournalCapture, TriggerCapture
from repro.clock import SimulatedClock
from repro.core import (
    EventDrivenApplication,
    EpisodeTracker,
    EwmaModel,
    RecipientProfile,
    Responder,
    SeasonalProfileModel,
    UpdatePolicy,
)
from repro.cq import ContinuousQuery, Count, PatternElement, Seq, Sum
from repro.db import Database
from repro.events import Event
from repro.pubsub import PubSubBroker
from repro.queues import QueueBroker
from repro.rules import EnqueueAction, Rule, RuleEngine
from repro.workloads import (
    HazmatGenerator,
    MarketDataGenerator,
    UtilityUsageGenerator,
)
from repro.workloads.hazmat import HazmatGenerator as _HG


class TestCaptureToQueueToConsumer:
    def test_change_flows_to_durable_subscriber(self, db, clock):
        """trigger capture → rule → queue → pub/sub → subscriber."""
        db.execute("CREATE TABLE orders (id INT PRIMARY KEY, qty INT)")
        queues = QueueBroker(db)
        queues.create_queue("critical")
        engine = RuleEngine()
        engine.add(
            "big_order", "qty > 1000",
            action=EnqueueAction(queues, "critical"),
            event_types=("orders.insert",),
        )
        capture = TriggerCapture(db, ["orders"])
        capture.subscribe(engine.evaluate)

        db.execute("INSERT INTO orders VALUES (1, 10)")
        db.execute("INSERT INTO orders VALUES (2, 5000)")
        assert queues.queue("critical").depth() == 1
        message = queues.consume("critical")
        assert message.payload["context"]["qty"] == 5000

    def test_journal_capture_sees_identical_changes_as_triggers(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)")
        trigger_events = []
        journal = JournalCapture(db, ["t"])
        TriggerCapture(db, ["t"]).subscribe(trigger_events.append)
        db.execute("INSERT INTO t VALUES (1, 'x')")
        db.execute("UPDATE t SET b = 'y' WHERE a = 1")
        db.execute("DELETE FROM t WHERE a = 1")
        journal_events = journal.poll()
        assert [(e.event_type, e["old"], e["new"]) for e in trigger_events] == [
            (e.event_type, e["old"], e["new"]) for e in journal_events
        ]


class TestFinanceScenario:
    def test_cep_finds_spike_collapse_episodes(self):
        generator = MarketDataGenerator(episode_count=3, seed=21,
                                        spike_magnitude=0.10)
        stream = generator.generate(400.0)
        matches = []
        cq = (
            ContinuousQuery("surveil")
            .pattern(
                Seq(
                    PatternElement(
                        "spike", "tick",
                        "prev_avg IS NOT NULL AND price > prev_avg * 1.05",
                    ),
                    PatternElement(
                        "collapse", "tick",
                        "symbol = spike_symbol AND price < spike_price * 0.9",
                    ),
                    within=15.0,
                ),
                output_type="spike_collapse",
            )
            .sink(matches.append)
        )
        # Maintain a trailing per-symbol average as enrichment.
        averages: dict = {}

        tracker = EpisodeTracker(stream.episodes, window=20.0)
        for event in stream:
            symbol = event["symbol"]
            history = averages.setdefault(symbol, [])
            enriched = event.with_payload(
                prev_avg=(sum(history) / len(history)) if len(history) >= 10 else None
            )
            history.append(event["price"])
            if len(history) > 50:
                history.pop(0)
            cq.push(enriched)
        for match in matches:
            tracker.record_alert(match.timestamp)
        result = tracker.result()
        assert result.detected >= 2  # most episodes found
        assert result.precision > 0.5

    def test_vwap_aggregation_over_ticks(self):
        stream = MarketDataGenerator(episode_count=0, seed=3).generate(120.0)
        out = []
        cq = (
            ContinuousQuery("volume")
            .window_tumbling(60.0, key_field="symbol")
            .aggregate("vol.1m", {"traded": ("qty", Sum), "ticks": (None, Count)})
            .sink(out.append)
        )
        for event in stream:
            cq.push(event)
        cq.flush()
        total_from_windows = sum(e["traded"] for e in out)
        assert total_from_windows == sum(e["qty"] for e in stream)


class TestUtilityScenario:
    def test_seasonal_model_beats_ewma_on_seasonal_data(self):
        """The reason seasonal profiles exist: a *subtle* (1.8×) anomaly
        is buried inside the daily swing for a flat adaptive baseline
        (whose variance absorbs the cycle), but sticks out against the
        time-of-day profile."""
        generator = UtilityUsageGenerator(
            meters=5, anomaly_count=2, seed=13, daily_swing=0.9,
            anomaly_factor=1.8,
        )
        stream = generator.generate(10 * 86400.0)

        def run(model_factory, threshold):
            clock = SimulatedClock()
            db = Database(clock=clock)
            app = EventDrivenApplication(db)
            tracker = EpisodeTracker(
                stream.episodes, window=generator.anomaly_duration
            )
            detector = app.monitor(
                "usage", field="usage", model_factory=model_factory,
                threshold=threshold, key_field="meter_id",
                update_policy=UpdatePolicy.WHEN_NORMAL,
            )
            detector.subscribe(lambda e: tracker.record_alert(e.timestamp))
            for event in stream:
                clock.advance_to(max(clock.now(), event.timestamp))
                app.process(event)
            return tracker.result()

        seasonal = run(
            lambda: SeasonalProfileModel(period=86400.0, bins=48, warmup_per_bin=3),
            threshold=8.0,
        )
        flat = run(lambda: EwmaModel(alpha=0.01, warmup=20), threshold=8.0)
        assert seasonal.recall == 1.0
        assert seasonal.precision > 0.7
        assert flat.recall == 0.0  # the subtle anomaly is invisible to it

    def test_recall_with_seasonal_model(self):
        generator = UtilityUsageGenerator(meters=5, anomaly_count=3, seed=29)
        stream = generator.generate(8 * 86400.0)
        clock = SimulatedClock()
        app = EventDrivenApplication(Database(clock=clock))
        tracker = EpisodeTracker(stream.episodes, window=generator.anomaly_duration)
        detector = app.monitor(
            "usage", field="usage",
            model_factory=lambda: SeasonalProfileModel(
                period=86400.0, bins=24, warmup_per_bin=3
            ),
            threshold=6.0, key_field="meter_id",
            update_policy=UpdatePolicy.WHEN_NORMAL,
        )
        detector.subscribe(lambda e: tracker.record_alert(e.timestamp))
        for event in stream:
            clock.advance_to(max(clock.now(), event.timestamp))
            app.process(event)
        assert tracker.result().recall == 1.0


class TestHazmatScenario:
    def test_zone_violations_caught_by_lookup_join(self, clock):
        db = Database(clock=clock)
        db.execute("CREATE TABLE authorized (material TEXT, zone TEXT)")
        generator = HazmatGenerator(containers=12, violation_count=4, seed=41)
        for row in generator.reference_rows():
            db.insert_row("authorized", row)

        violations = []
        # Stream-table join: mark events whose (material, zone) pair has
        # no authorization row.
        def check(event):
            rows = db.query(
                f"SELECT count(*) AS n FROM authorized "
                f"WHERE material = '{event['material']}' "
                f"AND zone = '{event['zone']}'"
            )
            if rows[0]["n"] == 0:
                violations.append(event)

        stream = generator.generate(800.0)
        for event in stream:
            check(event)
        # Every detected violation is genuinely labelled critical.
        assert violations
        assert all(stream.is_critical(e) for e in violations)

    def test_responder_dispatch_for_violations(self, clock):
        db = Database(clock=clock)
        app = EventDrivenApplication(db)
        app.responders.register(Responder(
            "hazmat_team", authorizations={"hazmat"},
            capabilities={"chem_suit"}, location=(0, 0),
        ))
        app.add_rule(Rule.from_text(
            "temp_excursion", "temperature > 65",
            action=lambda rule, ctx: app.alerts.raise_alert(
                "temp", Event("rfid.read", clock.now(), dict(ctx)),
                entity=ctx["container"], severity="critical",
                category="hazmat", required_capabilities=("chem_suit",),
            ),
        ))
        app.process(Event("rfid.read", 1.0, {
            "container": "c1", "temperature": 80.0,
        }))
        assert app.alerts.stats["raised"] == 1
        open_alerts = app.alerts.open_alerts()
        assert open_alerts[0].responders == ["hazmat_team"]


class TestConcurrencyAndDurability:
    def test_concurrent_producers_consumers_conserve_messages(self, clock):
        db = Database(clock=clock, lock_timeout=10.0)
        queue_broker = QueueBroker(db)
        queue_broker.create_queue("jobs")
        produced_per_thread = 25
        consumed: list = []
        consumed_lock = threading.Lock()

        def producer(worker):
            for i in range(produced_per_thread):
                queue_broker.publish("jobs", {"worker": worker, "i": i})

        stop = threading.Event()

        def consumer():
            while not stop.is_set() or queue_broker.queue("jobs").depth():
                message = queue_broker.consume("jobs")
                if message is None:
                    continue
                queue_broker.ack("jobs", message.message_id)
                with consumed_lock:
                    consumed.append((message.payload["worker"], message.payload["i"]))

        producers = [threading.Thread(target=producer, args=(w,)) for w in range(3)]
        consumers = [threading.Thread(target=consumer) for _ in range(2)]
        for thread in producers + consumers:
            thread.start()
        for thread in producers:
            thread.join()
        stop.set()
        for thread in consumers:
            thread.join()
        assert sorted(consumed) == sorted(
            (w, i) for w in range(3) for i in range(produced_per_thread)
        )

    def test_pipeline_state_survives_crash(self, clock):
        """Queues, rules, audit — all database state — survive a crash;
        in-flight consumer locks are recoverable."""
        db = Database(clock=clock)
        queue_broker = QueueBroker(db, audit=True)
        queue_broker.create_queue("alerts")
        for i in range(5):
            queue_broker.publish("alerts", {"n": i})
        locked = queue_broker.consume("alerts")  # consumer dies holding this

        db.simulate_crash()

        recovered = QueueBroker(db, audit=True)
        restored_queue = recovered.create_queue_or_attach("alerts")
        assert restored_queue.depth() == 4
        assert restored_queue.recover_locked() == 1
        drained = []
        while True:
            message = recovered.consume("alerts")
            if message is None:
                break
            recovered.ack("alerts", message.message_id)
            drained.append(message.payload["n"])
        assert sorted(drained) == [0, 1, 2, 3, 4]
