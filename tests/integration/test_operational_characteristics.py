"""The tutorial's recurring 'operational characteristics' bullets,
asserted as behaviours across subsystems (§2.2.b.ii / c.iv / d.iii)."""

import pytest

from repro.db import Database
from repro.events import Event
from repro.queues import Message, Permission, QueueBroker, SecurityManager
from repro.rules import Rule, RuleEngine


class TestSecurityAuditingTracking:
    def test_provenance_chain_end_to_end(self, db, clock):
        """Tracking: a derived alert can be traced back through event
        causes to the original change event."""
        from repro.capture import TriggerCapture
        from repro.core.deviation import DeviationDetector
        from repro.core.model import RangeModel
        from repro.cq import Stream

        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v REAL)")
        capture = TriggerCapture(db, ["t"])
        stream = Stream("s")
        capture.subscribe(stream.push)
        detector = DeviationDetector(
            stream, name="v", field="v",
            model_factory=lambda: RangeModel(0, 10), threshold=0.1,
        )
        deviations = []
        detector.subscribe(deviations.append)

        captured = []
        capture.subscribe(captured.append)
        db.execute("INSERT INTO t VALUES (1, 99.0)")

        deviation = deviations[0]
        origin = captured[0]
        assert deviation.causes == (origin.event_id,)
        assert origin["txid"] > 0  # traceable to the transaction

    def test_audit_survives_crash_with_queues(self, db):
        security = SecurityManager()
        broker = QueueBroker(db, security=security, audit=True)
        broker.create_queue("q")
        broker.publish("q", "x", principal="alice")
        message = broker.consume("q", principal="bob")
        broker.ack("q", message.message_id, principal="bob")

        db.simulate_crash()

        rows = db.query(
            "SELECT principal, operation FROM _queue_audit ORDER BY ts"
        )
        assert [(r["principal"], r["operation"]) for r in rows] == [
            ("alice", "enqueue"), ("bob", "dequeue"), ("bob", "ack"),
        ]


class TestPerformanceScalability:
    def test_internal_rule_evaluation_shares_parsing(self, orders_db):
        """§2.2.c.iii: evaluating internal data is 'significantly
        optimized' — the condition parses once, and the predicate index
        prunes per row."""
        engine = RuleEngine()
        for i in range(200):
            engine.add(f"r{i}", f"symbol = 'S{i}'")
        engine.add("real", "symbol = 'IBM'")
        engine.evaluate_table(orders_db, "orders")
        # 6 rows, 201 rules: naive would be 1206 evaluations. The index
        # confines work to type/anchor-matching rules.
        assert engine.stats["conditions_evaluated"] <= 12

    def test_queue_depth_scales_without_quadratic_drain(self, db):
        """Dequeue must not degrade pathologically with depth."""
        import time

        queue_broker = QueueBroker(db)
        queue_broker.create_queue("q")
        for i in range(1500):
            queue_broker.publish("q", {"n": i})
        started = time.perf_counter()
        drained = 0
        while queue_broker.consume("q") is not None:
            drained += 1
            message_id = drained  # ack by consuming order is not needed
            # (messages stay LOCKED; we only measure dequeue selection)
            if drained >= 300:
                break
        elapsed = time.perf_counter() - started
        assert drained == 300
        assert elapsed < 5.0  # loose bound; guards against O(n^2) blowups


class TestRecoverabilityAvailability:
    def test_full_pipeline_state_recovers(self, clock):
        """Rules (as data), queue contents, audit, and plain tables all
        come back after a crash — the platform's state is the database's
        state."""
        from repro.rules import RuleStore

        db = Database(clock=clock)
        db.execute("CREATE TABLE readings (id INT PRIMARY KEY, v REAL)")
        db.execute("INSERT INTO readings VALUES (1, 10.0)")
        store = RuleStore(db)
        store.save(Rule.from_text("hot", "v > 100"))
        broker = QueueBroker(db, audit=True)
        broker.create_queue("alerts", keep_history=True)
        broker.publish("alerts", {"m": 1})

        db.simulate_crash()

        assert db.query("SELECT v FROM readings") == [{"v": 10.0}]
        engine = RuleEngine()
        assert engine.load(RuleStore(db)) == 1
        recovered_broker = QueueBroker(db, audit=True)
        queue = recovered_broker.create_queue_or_attach(
            "alerts", keep_history=True
        )
        assert queue.depth() == 1
        matches = engine.evaluate(
            Event("e", 0.0, {"v": 500.0}), run_actions=False
        )
        assert [m.rule.rule_id for m in matches] == ["hot"]
