"""Multi-hop routing with failures; at-least-once delivery manager."""

import pytest

from repro.db import Database
from repro.errors import DeliveryError, RoutingError
from repro.events import Event
from repro.pubsub import DeliveryManager, PubSubBroker, Router, StagingTopology
from repro.queues import QueueBroker


@pytest.fixture
def topology(clock):
    topology = StagingTopology()
    for name in ("field", "region", "plant", "hq"):
        topology.add_area(name, PubSubBroker(Database(clock=clock), name=name))
    topology.add_link("field", "region", latency=1.0)
    topology.add_link("region", "hq", latency=1.0)
    topology.add_link("field", "plant", latency=5.0)
    topology.add_link("plant", "hq", latency=5.0)
    return topology


class TestTopology:
    def test_duplicate_area_rejected(self, topology, clock):
        with pytest.raises(RoutingError):
            topology.add_area("hq", PubSubBroker(Database(clock=clock)))

    def test_link_requires_areas(self, topology):
        with pytest.raises(RoutingError):
            topology.add_link("hq", "mars")

    def test_shortest_path_by_latency(self, topology):
        path, cost = topology.shortest_path("field", "hq")
        assert path == ["field", "region", "hq"]
        assert cost == 2.0

    def test_failed_link_excluded(self, topology):
        topology.fail_link("region", "hq")
        path, cost = topology.shortest_path("field", "hq")
        assert path == ["field", "plant", "hq"]
        assert cost == 10.0

    def test_restore_link(self, topology):
        topology.fail_link("region", "hq")
        topology.restore_link("region", "hq")
        assert topology.shortest_path("field", "hq")[1] == 2.0

    def test_partition_raises(self, topology):
        topology.fail_link("region", "hq")
        topology.fail_link("plant", "hq")
        with pytest.raises(RoutingError):
            topology.shortest_path("field", "hq")

    def test_fail_unknown_link(self, topology):
        with pytest.raises(RoutingError):
            topology.fail_link("hq", "field")  # reverse edge never existed


class TestRouter:
    def test_delivers_to_destination_topic(self, topology):
        router = Router(topology)
        hq = topology.broker("hq")
        hq.create_topic("hazmat")
        inbox = []
        hq.subscribe("ops", "hazmat", callback=inbox.append)
        info = router.route(
            Event("leak", 1.0, {"site": "A"}),
            source="field", dest="hq", topic="hazmat",
        )
        assert info["path"] == ["field", "region", "hq"]
        assert len(inbox) == 1
        assert inbox[0]["route_path"] == ["field", "region", "hq"]

    def test_transit_observable_at_intermediate_hops(self, topology):
        router = Router(topology)
        region = topology.broker("region")
        region.create_topic("hazmat.transit")
        seen = []
        region.subscribe("tap", "hazmat.transit", callback=seen.append)
        router.route(Event("leak", 1.0, {}), source="field", dest="hq", topic="hazmat")
        assert len(seen) == 1

    def test_reroutes_around_failure(self, topology):
        router = Router(topology)
        topology.fail_link("region", "hq")
        info = router.route(
            Event("leak", 1.0, {}), source="field", dest="hq", topic="hazmat"
        )
        assert info["path"] == ["field", "plant", "hq"]

    def test_unroutable_counted_and_raised(self, topology):
        router = Router(topology)
        topology.fail_link("region", "hq")
        topology.fail_link("plant", "hq")
        with pytest.raises(RoutingError):
            router.route(Event("leak", 1.0, {}), source="field", dest="hq", topic="t")
        assert router.stats["failed"] == 1


@pytest.fixture
def work_queue(db):
    broker = QueueBroker(db)
    broker.create_queue("work")
    return broker


class TestDeliveryManager:
    def test_explicit_ack_protocol(self, work_queue):
        manager = DeliveryManager(work_queue, "work")
        work_queue.publish("work", {"job": 1})
        message = manager.deliver()
        manager.ack(message.message_id)
        assert work_queue.queue("work").depth() == 0
        assert manager.deliver() is None

    def test_double_ack_rejected(self, work_queue):
        manager = DeliveryManager(work_queue, "work")
        work_queue.publish("work", "x")
        message = manager.deliver()
        manager.ack(message.message_id)
        with pytest.raises(DeliveryError):
            manager.ack(message.message_id)

    def test_timeout_redelivers(self, work_queue, clock):
        manager = DeliveryManager(work_queue, "work", ack_timeout=10.0)
        work_queue.publish("work", "x")
        manager.deliver()  # never acked
        clock.advance(11.0)
        assert manager.check_timeouts() == 1
        assert manager.deliver() is not None
        assert manager.stats["redelivered"] == 1

    def test_nack_requeues_with_delay(self, work_queue, clock):
        manager = DeliveryManager(work_queue, "work")
        work_queue.publish("work", "x")
        message = manager.deliver()
        manager.nack(message.message_id, delay=5.0)
        assert manager.deliver() is None
        clock.advance(6.0)
        assert manager.deliver() is not None

    def test_poison_message_dead_lettered(self, work_queue):
        manager = DeliveryManager(
            work_queue, "work", max_attempts=3, dead_letter_queue="dead"
        )
        work_queue.publish("work", {"poison": True})
        work_queue.publish("work", {"fine": True})
        consumed = []

        def consumer(message):
            if message.payload.get("poison"):
                raise ValueError("cannot process")
            consumed.append(message.payload)

        total = 0
        for _ in range(5):
            total += manager.process(consumer)
        assert consumed == [{"fine": True}]
        assert manager.stats["dead_lettered"] == 1
        dead = work_queue.consume("dead")
        assert dead.payload == {"poison": True}
        assert work_queue.queue("work").depth() == 0

    def test_no_message_lost_under_failures(self, work_queue):
        """Every message ends consumed-or-dead-lettered, never dropped."""
        manager = DeliveryManager(
            work_queue, "work", max_attempts=2, dead_letter_queue="dead"
        )
        for i in range(20):
            work_queue.publish("work", {"n": i})
        flaky_state = {"count": 0}
        consumed = []

        def flaky(message):
            flaky_state["count"] += 1
            if flaky_state["count"] % 3 == 0:
                raise RuntimeError("intermittent")
            consumed.append(message.payload["n"])

        for _ in range(10):
            manager.process(flaky)
        dead = []
        while True:
            message = work_queue.consume("dead")
            if message is None:
                break
            dead.append(message.payload["n"])
        assert sorted(consumed + dead) == list(range(20))

    def test_dead_letter_carries_origin_message_id(self, work_queue):
        manager = DeliveryManager(
            work_queue, "work", max_attempts=1, dead_letter_queue="dead"
        )
        origin_id = work_queue.publish("work", {"poison": True})

        def consumer(message):
            raise ValueError("cannot process")

        manager.process(consumer)
        dead = work_queue.consume("dead")
        assert dead.headers["origin_message_id"] == origin_id
        assert dead.headers["origin_queue"] == "work"

    def test_unreadable_row_dead_letters_a_tombstone(self, work_queue):
        """Regression: a message whose row vanished out from under the
        delivery manager must leave a tombstone in the DLQ, not vanish
        silently."""
        manager = DeliveryManager(
            work_queue, "work", max_attempts=2, dead_letter_queue="dead"
        )
        message_id = work_queue.publish("work", {"n": 1})
        delivered = manager.deliver()
        assert delivered.message_id == message_id
        # Sabotage: delete the backing row while the delivery is
        # outstanding (models table damage / manual intervention).
        queue = work_queue.queue("work")
        work_queue.db.delete_row(queue.table_name, message_id)

        manager.nack(message_id)
        tombstone = work_queue.consume("dead")
        assert tombstone is not None, "loss was not recorded"
        assert tombstone.payload is None
        assert tombstone.headers["tombstone"] is True
        assert tombstone.headers["origin_message_id"] == message_id
        assert tombstone.headers["origin_queue"] == "work"
        assert tombstone.headers["dead_letter_reason"] == "message row unreadable"
        assert manager.stats["dead_lettered"] == 1
        # The delivery manager is healthy afterwards: nothing pending.
        assert manager.deliver() is None
