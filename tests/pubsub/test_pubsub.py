"""Pub/sub broker: subscriptions, durability, activation, retained."""

import pytest

from repro.errors import PubSubError, TopicNotFoundError
from repro.events import Event
from repro.pubsub import PubSubBroker
from repro.pubsub.topic import topic_matches


def alert(severity=1, **extra):
    return Event("alert", 1.0, {"severity": severity, **extra})


@pytest.fixture
def broker(db):
    broker = PubSubBroker(db)
    broker.create_topic("alerts")
    return broker


class TestTopics:
    def test_duplicate_rejected(self, broker):
        with pytest.raises(PubSubError):
            broker.create_topic("alerts")

    def test_unknown_rejected(self, broker):
        with pytest.raises(TopicNotFoundError):
            broker.publish("ghost", alert())

    @pytest.mark.parametrize("pattern,topic,expected", [
        ("alerts", "alerts", True),
        ("*", "anything", True),
        ("metrics.*", "metrics.cpu", True),
        ("metrics.*", "alerts", False),
        ("alerts", "alerts.sub", False),
    ])
    def test_pattern_matching(self, pattern, topic, expected):
        assert topic_matches(pattern, topic) is expected


class TestNondurable:
    def test_callback_delivery(self, broker):
        inbox = []
        broker.subscribe("s", "alerts", callback=inbox.append)
        assert broker.publish("alerts", alert()) == 1
        assert len(inbox) == 1

    def test_needs_callback(self, broker):
        with pytest.raises(PubSubError):
            broker.subscribe("s", "alerts")

    def test_content_filter(self, broker):
        inbox = []
        broker.subscribe("s", "alerts", callback=inbox.append,
                         content_filter="severity >= 3")
        broker.publish("alerts", alert(severity=1))
        broker.publish("alerts", alert(severity=5))
        assert len(inbox) == 1
        assert broker.subscription("s").filtered_out == 1

    def test_wildcard_topic_subscription(self, broker, db):
        broker.create_topic("metrics.cpu")
        inbox = []
        broker.subscribe("s", "*", callback=inbox.append)
        broker.publish("alerts", alert())
        broker.publish("metrics.cpu", Event("m", 1.0, {}))
        assert len(inbox) == 2

    def test_unsubscribe(self, broker):
        inbox = []
        broker.subscribe("s", "alerts", callback=inbox.append)
        broker.unsubscribe("s")
        broker.publish("alerts", alert())
        assert inbox == []
        with pytest.raises(PubSubError):
            broker.unsubscribe("s")


class TestDurable:
    def test_spooled_until_fetched(self, broker):
        broker.subscribe("archive", "alerts", durable=True)
        broker.publish("alerts", alert(severity=7))
        assert broker.backlog("archive") == 1
        event = broker.fetch("archive")
        assert event["severity"] == 7
        assert broker.backlog("archive") == 0
        assert broker.fetch("archive") is None

    def test_survives_crash(self, broker, db):
        broker.subscribe("archive", "alerts", durable=True)
        broker.publish("alerts", alert(severity=9))
        db.simulate_crash()
        # Re-wire the broker over the recovered database.
        recovered = PubSubBroker(db)
        recovered.create_topic("alerts")
        subscription = recovered.subscribe("archive", "alerts", durable=True)
        assert recovered.backlog("archive") == 1
        assert recovered.fetch("archive")["severity"] == 9

    def test_listener_activation_drains_backlog(self, broker):
        broker.subscribe("app", "alerts", durable=True)
        broker.publish("alerts", alert(severity=1))
        broker.publish("alerts", alert(severity=2))
        received = []
        replayed = broker.attach_listener("app", received.append)
        assert replayed == 2
        broker.publish("alerts", alert(severity=3))
        assert [e["severity"] for e in received] == [1, 2, 3]

    def test_detach_stops_inline_delivery(self, broker):
        broker.subscribe("app", "alerts", durable=True)
        received = []
        broker.attach_listener("app", received.append)
        broker.detach_listener("app")
        broker.publish("alerts", alert())
        assert received == []
        assert broker.backlog("app") == 1

    def test_failing_listener_keeps_message(self, broker):
        broker.subscribe("app", "alerts", durable=True)

        def explode(event):
            raise RuntimeError("handler crash")

        broker.publish("alerts", alert())
        with pytest.raises(RuntimeError):
            broker.attach_listener("app", explode)
        broker.detach_listener("app")
        assert broker.backlog("app") == 1  # requeued, not lost

    def test_fetch_on_nondurable_rejected(self, broker):
        broker.subscribe("s", "alerts", callback=lambda e: None)
        with pytest.raises(PubSubError):
            broker.fetch("s")


class TestRetained:
    def test_late_subscriber_gets_retained(self, db):
        broker = PubSubBroker(db)
        broker.create_topic("state", retain=True)
        broker.publish("state", Event("s", 1.0, {"v": 1}))
        broker.publish("state", Event("s", 2.0, {"v": 2}))
        inbox = []
        broker.subscribe("late", "state", callback=inbox.append)
        assert [e["v"] for e in inbox] == [2]  # only the latest

    def test_retained_respects_filter(self, db):
        broker = PubSubBroker(db)
        broker.create_topic("state", retain=True)
        broker.publish("state", Event("s", 1.0, {"v": 1}))
        inbox = []
        broker.subscribe("late", "state", callback=inbox.append,
                         content_filter="v > 100")
        assert inbox == []

    def test_unretained_topic_gives_nothing(self, broker):
        broker.publish("alerts", alert())
        inbox = []
        broker.subscribe("late", "alerts", callback=inbox.append)
        assert inbox == []
