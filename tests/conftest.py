"""Shared fixtures: simulated clock, databases, populated tables."""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.db import Database
from repro.db.schema import Column
from repro.db.types import INT, REAL, TEXT


@pytest.fixture
def clock() -> SimulatedClock:
    return SimulatedClock(start=1000.0)


@pytest.fixture
def db(clock: SimulatedClock) -> Database:
    return Database(clock=clock)


@pytest.fixture
def orders_db(db: Database) -> Database:
    """A database with a populated ``orders`` table and indexes."""
    db.execute(
        "CREATE TABLE orders ("
        " id INT PRIMARY KEY,"
        " symbol TEXT NOT NULL,"
        " qty INT,"
        " price REAL,"
        " account TEXT,"
        " CHECK (qty > 0))"
    )
    db.execute("CREATE INDEX ix_orders_symbol ON orders(symbol) USING HASH")
    db.execute("CREATE INDEX ix_orders_price ON orders(price)")
    rows = [
        (1, "IBM", 100, 98.5, "a1"),
        (2, "ORCL", 50, 20.25, "a2"),
        (3, "IBM", 30, 99.0, "a1"),
        (4, "MSFT", 200, 55.0, "a3"),
        (5, "ORCL", 75, 21.0, "a2"),
        (6, "HPQ", 10, 30.0, "a4"),
    ]
    for row in rows:
        db.execute(
            "INSERT INTO orders (id, symbol, qty, price, account) "
            f"VALUES ({row[0]}, '{row[1]}', {row[2]}, {row[3]}, '{row[4]}')"
        )
    return db


@pytest.fixture
def meters_db(db: Database) -> Database:
    db.create_table(
        "meters",
        [
            Column("meter_id", TEXT, primary_key=True),
            Column("usage", REAL),
            Column("zone", TEXT),
        ],
    )
    for i in range(5):
        db.insert_row(
            "meters",
            {"meter_id": f"m{i}", "usage": 10.0 + i, "zone": "west" if i < 3 else "east"},
        )
    return db
