"""The observability layer's overhead budget.

The instrument design (bind once, one attribute load + integer add per
event; see :mod:`repro.obs.metrics`) claims near-zero hot-path cost.
This smoke test holds it to that: the EXP-3 internal enqueue path with
full instrumentation (metrics registry + trace hops) must stay within
5% of the same workload on a registry-disabled database with tracing
off.

Wall-clock perf assertions are noisy in shared CI, so trials are
interleaved, each configuration keeps its best (minimum) time, and the
comparison retries a few times before failing — the budget must be
exceeded consistently, not once.
"""

import time

import pytest

from repro.clock import SimulatedClock
from repro.db import Database
from repro.obs.trace import TraceLog, set_default_trace_log
from repro.queues import Message, QueueTable

MESSAGES = 3000
TRIALS = 3
ATTEMPTS = 4
BUDGET = 1.05


def _enqueue_run(*, metrics_enabled: bool) -> float:
    db = Database(clock=SimulatedClock(start=1000.0), sync_policy="none",
                  metrics_enabled=metrics_enabled)
    queue = QueueTable(db, "bench")
    payloads = [{"seq": i} for i in range(MESSAGES)]
    started = time.perf_counter()
    for payload in payloads:
        queue.enqueue(Message(payload=payload))
    elapsed = time.perf_counter() - started
    assert queue.depth() == MESSAGES
    return elapsed


@pytest.mark.obs
class TestInstrumentationOverhead:
    def test_enqueue_throughput_within_budget(self):
        baseline_log = TraceLog(enabled=False)
        for attempt in range(ATTEMPTS):
            instrumented = []
            disabled = []
            for _ in range(TRIALS):
                # Interleave so ambient machine noise hits both sides.
                previous = set_default_trace_log(TraceLog())
                try:
                    instrumented.append(_enqueue_run(metrics_enabled=True))
                finally:
                    set_default_trace_log(previous)
                previous = set_default_trace_log(baseline_log)
                try:
                    disabled.append(_enqueue_run(metrics_enabled=False))
                finally:
                    set_default_trace_log(previous)
            ratio = min(instrumented) / min(disabled)
            if ratio <= BUDGET:
                return
        pytest.fail(
            f"instrumented enqueue {ratio:.3f}x the disabled baseline "
            f"(budget {BUDGET}x) across {ATTEMPTS} attempts"
        )

    def test_disabled_registry_records_nothing_on_this_path(self):
        db = Database(clock=SimulatedClock(start=1000.0), sync_policy="none",
                      metrics_enabled=False)
        queue = QueueTable(db, "bench")
        queue.enqueue(Message(payload={"x": 1}))
        snapshot = db.obs.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
