"""Perf guards for the columnar fast path.

1. **GC sensitivity**: the ColumnStore must keep the tracked Python
   object count flat as row count grows — its state is O(columns)
   numpy arrays, never per-row Python objects.  (BENCH_PR4's perf
   cliffs were gen-2 GC walks over per-row object graphs; this guard
   keeps the new layer from reintroducing one.)
2. **Fast path provably engages**: an eligible aggregate query must
   run with zero per-row closure calls — asserted by making the row
   path (plan_access) explode and watching the query still succeed.
3. **Fallback provably engages**: ineligible queries must take the
   row path, observable in VECTOR_STATS.
"""

from __future__ import annotations

import gc

import pytest

from repro.db.database import Database
from repro.db.sql import executor


pytestmark = pytest.mark.columnar


def _build(rows):
    db = Database()
    db.execute("CREATE TABLE metrics (id INT, grp TEXT, val REAL)")
    for i in range(rows):
        db.execute(
            "INSERT INTO metrics (id, grp, val) VALUES (?, ?, ?)",
            [i, f"g{i % 7}", float(i % 100)],
        )
    return db


def _projection_build_delta(rows):
    """GC-tracked objects added by building the columnar projection
    over a table of ``rows`` rows (heap and journal objects excluded:
    they exist before the measurement starts)."""
    db = _build(rows)
    table = db.catalog.table("metrics")
    store = table.column_store()
    store.batch()  # warm: first-call imports and lazy setup
    store.note_mutation()  # invalidate so the measured call rebuilds
    gc.collect()
    before = len(gc.get_objects())
    store.batch()
    gc.collect()
    after = len(gc.get_objects())
    return db, after - before


def test_column_store_tracked_objects_flat_vs_rowcount():
    db_small, small = _projection_build_delta(1_000)
    db_large, large = _projection_build_delta(8_000)
    # The projection is O(columns) arrays + series objects; growing the
    # table 8x must not grow the store's object population with it.
    assert large < small + 100, (
        f"projection over 8000 rows allocated {large} tracked objects vs "
        f"{small} over 1000 — the columnar layer is allocating per-row "
        "Python objects"
    )
    assert small < 500
    del db_small, db_large


def test_column_store_adds_constant_objects_per_table():
    db = _build(2_000)
    db.query("SELECT count(*) FROM metrics")  # build the projection
    gc.collect()
    baseline = len(gc.get_objects())
    # Rebuilding the projection from scratch must not leak objects.
    table = db.catalog.table("metrics")
    table.column_store().note_mutation()
    db.query("SELECT count(*) FROM metrics")
    gc.collect()
    after = len(gc.get_objects())
    assert abs(after - baseline) < 200


def test_fast_path_runs_with_zero_per_row_closure_calls(monkeypatch):
    db = _build(500)
    db.query("SELECT count(*) FROM metrics")  # warm the projection

    def explode(*_args, **_kwargs):
        raise AssertionError("row path engaged for a vector-eligible query")

    monkeypatch.setattr("repro.db.sql.executor.plan_access", explode)
    rows = db.query(
        "SELECT grp, count(*), sum(val) FROM metrics WHERE val > 10 GROUP BY grp"
    )
    assert len(rows) == 7


def test_ineligible_query_provably_falls_back(monkeypatch):
    db = _build(200)
    before = dict(executor.VECTOR_STATS)
    # DISTINCT aggregate: compile-time ineligible.
    db.query("SELECT count(DISTINCT grp) FROM metrics")
    assert (
        executor.VECTOR_STATS["fallback_compile"]
        == before["fallback_compile"] + 1
    )
    # Non-aggregate SELECT: never offered to the fast path.
    fast_before = executor.VECTOR_STATS["fast_path"]
    db.query("SELECT id FROM metrics WHERE val > 99")
    assert executor.VECTOR_STATS["fast_path"] == fast_before


def test_set_vectorized_disables_fast_path():
    db = _build(100)
    previous = executor.set_vectorized(False)
    try:
        before = executor.VECTOR_STATS["fast_path"]
        db.query("SELECT count(*) FROM metrics")
        assert executor.VECTOR_STATS["fast_path"] == before
    finally:
        executor.set_vectorized(previous)


def test_query_result_mutation_cannot_corrupt_storage():
    """Public-path safety for the no-copy scan: rows returned by
    db.query are caller-owned; writing to them must not reach the
    heap (or the columnar projection built over it)."""
    db = _build(50)
    for row in db.query("SELECT id, grp, val FROM metrics"):
        row["grp"] = "corrupted"
        row["val"] = -1.0
    assert db.query(
        "SELECT count(*) FROM metrics WHERE grp = 'corrupted'"
    ) == [{"count": 0}]
    previous = executor.set_vectorized(False)
    try:
        assert db.query(
            "SELECT count(*) FROM metrics WHERE grp = 'corrupted'"
        ) == [{"count": 0}]
    finally:
        executor.set_vectorized(previous)
