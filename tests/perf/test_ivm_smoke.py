"""Perf smoke: the delta path must actually be a delta path.

These tests do not benchmark; they assert *structural* properties via
the metrics counters — the delta path applies exactly one delta per
event and never falls back to refolding — plus one coarse timing check
(generous margin) that repeated snapshots of a delta view beat the
recompute baseline, which refolds the whole retained set per read.
"""

from __future__ import annotations

import time

import pytest

from repro.cq import (
    Avg,
    Count,
    MaterializedView,
    Max,
    Min,
    Stream,
    Sum,
    TumblingWindow,
    WindowAggregate,
)
from repro.events import Event
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.ivm

SPEC = {
    "n": (None, Count),
    "total": ("v", Sum),
    "mean": ("v", Avg),
    "lo": ("v", Min),
    "hi": ("v", Max),
}


def _events(n):
    return [
        Event("m", timestamp=float(i) * 0.01, payload={"v": float(i % 97)})
        for i in range(n)
    ]


def test_window_aggregate_delta_path_never_refolds():
    n = 2000
    metrics = MetricsRegistry()
    source = Stream("src")
    window = TumblingWindow(source, 1.0)
    agg = WindowAggregate(window, "summary", SPEC, metrics=metrics)
    outputs = []
    agg.subscribe(outputs.append)
    for event in _events(n):
        source.push(event)
    window.flush()
    assert outputs, "no panes emitted"
    deltas = metrics.counter("cq.agg.deltas_applied", stream=agg.name)
    refolds = metrics.counter("cq.agg.refolds", stream=agg.name)
    # One delta per event, zero refold fallbacks: per-event O(window)
    # recomputation would show up here as refolds > 0 or deltas != n.
    assert deltas.value == n
    assert refolds.value == 0


def test_window_aggregate_late_attach_refolds_honestly():
    """An operator attached after a pane started filling must refold
    that pane (and count it) rather than emit from partial state."""
    metrics = MetricsRegistry()
    source = Stream("src")
    window = TumblingWindow(source, 10.0)
    source.push(Event("m", timestamp=0.0, payload={"v": 1.0}))
    agg = WindowAggregate(window, "summary", SPEC, metrics=metrics)
    outputs = []
    agg.subscribe(outputs.append)
    source.push(Event("m", timestamp=1.0, payload={"v": 2.0}))
    window.flush()
    assert len(outputs) == 1
    assert outputs[0].payload["n"] == 2  # both events, not just observed one
    assert metrics.counter("cq.agg.refolds", stream=agg.name).value == 1


def test_materialized_view_delta_counters():
    n, batch = 1024, 64
    metrics = MetricsRegistry()
    source = Stream("src")
    view = MaterializedView("smoke", SPEC, metrics=metrics).bind_stream(
        source, batch_size=batch
    )
    for event in _events(n):
        source.push(event)
    view.flush()
    snap = view.snapshot()
    assert snap.deltas_applied == n
    assert snap.batches_folded == n // batch
    assert snap.refolds == 0
    assert metrics.counter("view.deltas_applied", view="smoke").value == n
    assert metrics.counter("view.refolds", view="smoke").value == 0


def test_delta_snapshot_beats_recompute_refold():
    """Reading a delta view is O(groups); the recompute baseline refolds
    all retained rows per read.  At 2k retained rows and 50 reads the
    delta path must win outright — no tolerance needed, the asymptotic
    gap dwarfs timer noise."""
    n, reads = 2000, 50
    events = _events(n)
    timings = {}
    for recompute in (False, True):
        source = Stream("src")
        view = MaterializedView(
            "t", SPEC, recompute=recompute
        ).bind_stream(source, batch_size=256)
        for event in events:
            source.push(event)
        view.flush()
        started = time.perf_counter()
        for _ in range(reads):
            snap = view.snapshot()
        timings[recompute] = time.perf_counter() - started
        assert snap.groups[None]["n"] == n
    assert timings[False] < timings[True], (
        f"delta snapshots ({timings[False]:.4f}s) not faster than "
        f"recompute ({timings[True]:.4f}s)"
    )
