"""Perf smoke tests: the statement cache and the expression compiler
must actually remove repeated work, not just exist.

These patch the parse entry points with counting wrappers (the names
bound at import time are ``repro.db.sql.cache.parse_statement`` and
``repro.db.sql.parser.tokenize`` — patching ``lexer.tokenize`` would
miss the parser's direct reference) and assert parses happen once, not
per execution / per row / per event.
"""

import pytest

import repro.db.sql.cache as cache_module
from repro.clock import SimulatedClock
from repro.db import Database
from repro.db.schema import Column
from repro.db.types import INT, TEXT
from repro.queues import Message, QueueTable
from repro.rules import RuleEngine


@pytest.fixture
def db():
    return Database(clock=SimulatedClock(start=1000.0))


@pytest.fixture
def counted_parse(monkeypatch):
    """Count calls to the statement-cache's parse entry point."""
    calls = {"n": 0}
    real = cache_module.parse_statement

    def wrapper(text):
        calls["n"] += 1
        return real(text)

    monkeypatch.setattr(cache_module, "parse_statement", wrapper)
    return calls


def _make_table(db):
    db.create_table(
        "t", [Column("id", INT, primary_key=True), Column("name", TEXT)]
    )


class TestStatementCacheHitRate:
    def test_repeated_parameterized_statement_hits_over_90_percent(self, db):
        _make_table(db)
        insert = db.prepare("INSERT INTO t (id, name) VALUES (?, ?)")
        for i in range(100):
            insert.execute([i, f"n{i}"])
        select = db.prepare("SELECT name FROM t WHERE id = ?")
        for i in range(100):
            assert select.query([i]) == [{"name": f"n{i}"}]
        assert db.statement_cache.hit_rate > 0.9

    def test_prepared_enqueue_hit_rate(self, db):
        queue = QueueTable(db, "smoke")
        for i in range(50):
            queue.enqueue_via_prepared(Message(payload={"i": i}))
        assert db.statement_cache.hit_rate > 0.9
        assert queue.depth() == 50


class TestNoRepeatedParsing:
    def test_prepared_statement_parses_once(self, db, counted_parse):
        _make_table(db)
        insert = db.prepare("INSERT INTO t (id, name) VALUES (?, ?)")
        baseline = counted_parse["n"]  # prepare() parses eagerly
        for i in range(50):
            insert.execute([i, "x"])
        assert counted_parse["n"] == baseline

    def test_repeated_text_parses_once(self, db, counted_parse):
        _make_table(db)
        db.execute("INSERT INTO t (id, name) VALUES (1, 'a')")
        baseline = counted_parse["n"]
        for _ in range(20):
            db.query("SELECT * FROM t WHERE id = 1")
        assert counted_parse["n"] == baseline + 1

    def test_compiled_rule_evaluation_never_tokenizes(self, monkeypatch):
        """After registration, per-event evaluation is pure closure
        calls: no lexing, no parsing, no per-event AST lowering."""
        import repro.db.sql.parser as parser_module
        from repro.events import Event

        engine = RuleEngine(compiled=True)
        engine.add("r1", "qty > 5 AND region = 'emea'")
        engine.add("r2", "price BETWEEN 1 AND 2")

        def forbidden(text):
            raise AssertionError(
                "tokenize called during compiled rule evaluation"
            )

        monkeypatch.setattr(parser_module, "tokenize", forbidden)
        for i in range(100):
            engine.evaluate(
                Event("tick", float(i), {"qty": i, "region": "emea"}),
                run_actions=False,
            )
        assert engine.stats["events_evaluated"] == 100

    def test_compiled_where_evaluation_is_not_per_row(self, db, counted_parse):
        """One SELECT over many rows parses once; the WHERE predicate is
        compiled once and applied per row as a closure."""
        _make_table(db)
        insert = db.prepare("INSERT INTO t (id, name) VALUES (?, ?)")
        for i in range(200):
            insert.execute([i, f"n{i % 7}"])
        baseline = counted_parse["n"]
        rows = db.query("SELECT id FROM t WHERE name = 'n3'")
        assert len(rows) > 20
        assert counted_parse["n"] == baseline + 1
