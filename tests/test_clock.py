"""Clock behaviour, especially the deterministic simulated clock."""

import pytest

from repro.clock import SimulatedClock, WallClock


class TestSimulatedClock:
    def test_starts_where_told(self):
        assert SimulatedClock(start=42.0).now() == 42.0

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(5.0)
        assert clock.now() == 5.0

    def test_sleep_is_advance(self):
        clock = SimulatedClock()
        clock.sleep(3.0)
        assert clock.now() == 3.0

    def test_no_backwards(self):
        clock = SimulatedClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_timers_fire_in_order(self):
        clock = SimulatedClock()
        fired = []
        clock.schedule(5.0, lambda: fired.append("b"))
        clock.schedule(2.0, lambda: fired.append("a"))
        clock.schedule(9.0, lambda: fired.append("c"))
        clock.advance(6.0)
        assert fired == ["a", "b"]
        clock.advance(10.0)
        assert fired == ["a", "b", "c"]

    def test_timer_sees_due_time(self):
        clock = SimulatedClock()
        seen = []
        clock.schedule(3.0, lambda: seen.append(clock.now()))
        clock.advance(10.0)
        assert seen == [3.0]
        assert clock.now() == 10.0

    def test_ties_fire_fifo(self):
        clock = SimulatedClock()
        fired = []
        clock.schedule(1.0, lambda: fired.append("first"))
        clock.schedule(1.0, lambda: fired.append("second"))
        clock.advance(1.0)
        assert fired == ["first", "second"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().schedule(-1.0, lambda: None)


class TestWallClock:
    def test_monotone_nondecreasing(self):
        clock = WallClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_sleep_advances(self):
        clock = WallClock()
        before = clock.now()
        clock.sleep(0.01)
        assert clock.now() - before >= 0.005
