"""Small-unit coverage: message contexts, profiles, scorer weights,
labelled streams."""

import pytest

from repro.clock import SimulatedClock
from repro.core import RecipientProfile, VirtScorer
from repro.events import Event
from repro.queues import Message
from repro.workloads import LabeledStream


class TestMessageFilterContext:
    def test_dict_payload_flattened(self):
        message = Message(
            payload={"sev": 3, "site": "A"},
            headers={"region": "west"},
            priority=7,
            correlation_id="c1",
        )
        message.queue = "alerts"
        context = message.filter_context()
        assert context["sev"] == 3
        assert context["region"] == "west"
        assert context["priority"] == 7
        assert context["correlation_id"] == "c1"
        assert context["queue"] == "alerts"

    def test_headers_override_payload(self):
        message = Message(payload={"k": "payload"}, headers={"k": "header"})
        assert message.filter_context()["k"] == "header"

    def test_scalar_payload(self):
        context = Message(payload="just text", priority=1).filter_context()
        assert context["priority"] == 1
        assert "just text" not in context  # scalars are not flattened


class TestVirtScorerWeights:
    def test_weights_normalized(self):
        clock = SimulatedClock()
        scorer = VirtScorer(clock, weights=(5.0, 3.0, 2.0))
        assert scorer.weights == pytest.approx((0.5, 0.3, 0.2))

    def test_score_bounded_by_one_without_timeliness(self):
        clock = SimulatedClock()
        scorer = VirtScorer(clock, include_timeliness=False)
        profile = RecipientProfile("r", interests={"*": 1.0})
        score = scorer.score(Event("e", 0.0, {"score": 1e9}), profile)
        assert 0.0 <= score <= 1.0

    def test_scope_half_relevance_path(self):
        profile = RecipientProfile("r", scope={"zone": "west"})
        event = Event("e", 0.0, {"other_attr": 1})
        assert profile.relevance(event) == 0.5


class TestLabeledStream:
    def test_sorted_copy_preserves_labels(self):
        a = Event("e", 5.0, {})
        b = Event("e", 1.0, {})
        stream = LabeledStream(
            events=[a, b], episodes=[1.0], critical_event_ids={b.event_id}
        )
        ordered = stream.sorted_by_time()
        assert [e.timestamp for e in ordered.events] == [1.0, 5.0]
        assert ordered.is_critical(b)
        assert not ordered.is_critical(a)
        # The copy is independent.
        ordered.critical_event_ids.clear()
        assert stream.is_critical(b)

    def test_len_and_iter(self):
        stream = LabeledStream(events=[Event("e", 0.0, {})])
        assert len(stream) == 1
        assert [e.event_type for e in stream] == ["e"]


class TestDurableSubscriptionFilters:
    def test_filter_applies_before_spooling(self, db):
        from repro.pubsub import PubSubBroker

        broker = PubSubBroker(db)
        broker.create_topic("t")
        broker.subscribe(
            "archive", "t", durable=True, content_filter="sev >= 3"
        )
        broker.publish("t", Event("e", 0.0, {"sev": 1}))
        broker.publish("t", Event("e", 1.0, {"sev": 5}))
        assert broker.backlog("archive") == 1
        assert broker.subscription("archive").filtered_out == 1


class TestQueueExpirationEdge:
    def test_browse_skips_expired_after_sweep(self, db, clock):
        from repro.queues import QueueTable

        queue = QueueTable(db, "q")
        queue.enqueue(Message(payload="dies", expires_at=clock.now() + 5))
        queue.enqueue("lives")
        clock.advance(10)
        queue.expire_messages()
        assert [m.payload for m in queue.browse()] == ["lives"]
