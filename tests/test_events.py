"""Event envelope: immutability, typing, provenance."""

import pytest

from repro.events import Event, correlate


class TestEvent:
    def test_ids_unique_and_increasing(self):
        first = Event("a", 1.0)
        second = Event("a", 1.0)
        assert second.event_id > first.event_id

    def test_payload_isolated_from_source_dict(self):
        payload = {"x": 1}
        event = Event("a", 1.0, payload)
        payload["x"] = 99
        assert event["x"] == 1

    def test_empty_type_rejected(self):
        with pytest.raises(ValueError):
            Event("", 1.0)

    def test_get_with_default(self):
        event = Event("a", 1.0, {"x": 1})
        assert event.get("x") == 1
        assert event.get("y", "d") == "d"

    @pytest.mark.parametrize("pattern,expected", [
        ("orders.insert", True),
        ("orders.*", True),
        ("*", True),
        ("orders", False),
        ("orders.update", False),
        ("ord.*", False),
    ])
    def test_matches_type(self, pattern, expected):
        assert Event("orders.insert", 0.0).matches_type(pattern) is expected


class TestDerive:
    def test_provenance_recorded(self):
        base = Event("a", 5.0, {"x": 1})
        derived = base.derive("b", {"y": 2}, source="op")
        assert derived.causes == (base.event_id,)
        assert derived.timestamp == 5.0
        assert derived.source == "op"

    def test_explicit_timestamp(self):
        base = Event("a", 5.0)
        assert base.derive("b", timestamp=9.0).timestamp == 9.0

    def test_with_payload_merges(self):
        event = Event("a", 1.0, {"x": 1}).with_payload(y=2, x=3)
        assert event.payload == {"x": 3, "y": 2}
        assert event.event_type == "a"


class TestCorrelate:
    def test_causes_and_timestamp(self):
        a = Event("a", 1.0)
        b = Event("b", 3.0)
        composite = correlate([a, b], "ab", {"n": 2})
        assert composite.causes == (a.event_id, b.event_id)
        assert composite.timestamp == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            correlate([], "x", {})
