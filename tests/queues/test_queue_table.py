"""Queue-table semantics: ordering, locking, expiry, transactions."""

import pytest

from repro.errors import MessageExpiredError, QueueError
from repro.queues import Message, MessageState, QueueTable


@pytest.fixture
def queue(db):
    return QueueTable(db, "work")


class TestEnqueueDequeue:
    def test_fifo_within_priority(self, queue):
        ids = [queue.enqueue({"n": i}) for i in range(3)]
        got = [queue.dequeue().message_id for _ in range(3)]
        assert got == ids

    def test_priority_order(self, queue):
        queue.enqueue(Message(payload="low", priority=1))
        queue.enqueue(Message(payload="high", priority=9))
        queue.enqueue(Message(payload="mid", priority=5))
        assert [queue.dequeue().payload for _ in range(3)] == ["high", "mid", "low"]

    def test_empty_returns_none(self, queue):
        assert queue.dequeue() is None

    def test_payload_roundtrip(self, queue):
        payload = {"nested": {"a": [1, 2, None]}, "s": "x'y"}
        queue.enqueue(Message(payload=payload, headers={"h": 1}, correlation_id="c9"))
        message = queue.dequeue()
        assert message.payload == payload
        # Enqueue stamps a trace id into the headers; user headers
        # round-trip alongside it.
        assert message.headers["h"] == 1
        assert isinstance(message.headers["trace_id"], str)
        assert message.correlation_id == "c9"

    def test_bare_payload_wrapped(self, queue):
        queue.enqueue("just a string")
        assert queue.dequeue().payload == "just a string"

    def test_sql_path_equivalent_to_fast_path(self, queue):
        queue.enqueue({"via": "fast"})
        queue.enqueue_via_insert({"via": "sql"})
        first, second = queue.dequeue(), queue.dequeue()
        assert first.payload == {"via": "fast"}
        assert second.payload == {"via": "sql"}

    def test_dequeue_locks(self, queue):
        queue.enqueue("only")
        message = queue.dequeue(consumer="c1")
        assert message.state is MessageState.LOCKED
        assert queue.dequeue(consumer="c2") is None  # locked, not visible

    def test_attempts_increment(self, queue):
        queue.enqueue("x")
        message = queue.dequeue()
        assert message.attempts == 1
        queue.requeue(message.message_id)
        assert queue.dequeue().attempts == 2


class TestAckRequeue:
    def test_ack_removes_by_default(self, queue, db):
        queue.enqueue("x")
        message = queue.dequeue()
        queue.ack(message.message_id)
        assert queue.depth() == 0
        assert len(db.catalog.table(queue.table_name)) == 0

    def test_keep_history_marks_consumed(self, db):
        queue = QueueTable(db, "hist", keep_history=True)
        queue.enqueue("x")
        message = queue.dequeue()
        queue.ack(message.message_id)
        table = db.catalog.table(queue.table_name)
        assert table.get(message.message_id)["state"] == "consumed"

    def test_requeue_makes_visible_again(self, queue):
        queue.enqueue("x")
        message = queue.dequeue()
        queue.requeue(message.message_id)
        assert queue.dequeue() is not None

    def test_requeue_with_delay(self, queue, clock):
        queue.enqueue("x")
        message = queue.dequeue()
        queue.requeue(message.message_id, delay=30.0)
        assert queue.dequeue() is None
        clock.advance(31.0)
        assert queue.dequeue() is not None

    def test_ack_requires_locked(self, queue):
        mid = queue.enqueue("x")
        with pytest.raises(QueueError):
            queue.ack(mid)

    def test_ack_unknown_message(self, queue):
        with pytest.raises(QueueError):
            queue.ack(12345)


class TestVisibilityAndExpiry:
    def test_delayed_message_invisible(self, queue, clock):
        message = Message(payload="later", visible_at=clock.now() + 60)
        queue.enqueue(message)
        assert queue.dequeue() is None
        clock.advance(61)
        assert queue.dequeue() is not None

    def test_expired_not_delivered(self, queue, clock):
        queue.enqueue(Message(payload="x", expires_at=clock.now() + 10))
        clock.advance(11)
        assert queue.dequeue() is None
        assert queue.stats["expired"] == 1

    def test_default_expiration_applied(self, db, clock):
        queue = QueueTable(db, "exp", default_expiration=5.0)
        queue.enqueue("x")
        clock.advance(6.0)
        assert queue.dequeue() is None

    def test_expire_sweep(self, queue, clock):
        for _ in range(3):
            queue.enqueue(Message(payload="x", expires_at=clock.now() + 1))
        queue.enqueue("fresh")
        clock.advance(2)
        assert queue.expire_messages() == 3
        assert queue.depth() == 1

    def test_expired_ack_raises(self, queue, clock):
        mid = queue.enqueue(Message(payload="x", expires_at=clock.now() + 100))
        message = queue.dequeue()
        clock.advance(200)
        queue.expire_messages()  # sweep only touches READY; this is LOCKED
        queue.ack(message.message_id)  # still ackable while locked


class TestTransactionalBehaviour:
    def test_rolled_back_enqueue_invisible(self, queue, db):
        conn = db.connect()
        conn.begin()
        queue.enqueue("phantom", conn=conn)
        conn.rollback()
        assert queue.depth() == 0

    def test_rolled_back_dequeue_releases(self, queue, db):
        queue.enqueue("x")
        conn = db.connect()
        conn.begin()
        message = queue.dequeue(conn=conn)
        assert message is not None
        conn.rollback()
        # The lock update was undone: message is READY again.
        assert queue.dequeue() is not None

    def test_atomic_consume_produce(self, db):
        source = QueueTable(db, "src")
        sink = QueueTable(db, "dst")
        source.enqueue("job")
        conn = db.connect()
        conn.begin()
        message = source.dequeue(conn=conn)
        sink.enqueue({"result": message.payload}, conn=conn)
        source.ack(message.message_id, conn=conn)
        conn.commit()
        assert source.depth() == 0
        assert sink.depth() == 1

    def test_queue_survives_crash(self, queue, db):
        queue.enqueue({"durable": True})
        db.simulate_crash()
        restored = QueueTable(db, "work")
        message = restored.dequeue()
        assert message.payload == {"durable": True}

    def test_locked_messages_recoverable(self, queue):
        queue.enqueue("a")
        queue.enqueue("b")
        queue.dequeue(consumer="crashed")
        queue.dequeue(consumer="alive")
        assert queue.recover_locked(consumer="crashed") == 1
        assert queue.depth() == 1


class TestEnqueuePathParity:
    def test_sql_path_sets_message_id(self, queue):
        """Regression: enqueue_via_insert returned lastrowid but never
        assigned it to the Message, leaving ``message_id`` None."""
        message = Message(payload={"via": "sql"})
        mid = queue.enqueue_via_insert(message)
        assert message.message_id == mid

    def test_both_paths_leave_message_in_same_state(self, queue, clock):
        fast = Message(payload="x", priority=3)
        sql = Message(payload="x", priority=3)
        queue.enqueue(fast)
        queue.enqueue_via_insert(sql)
        assert sql.message_id == fast.message_id + 1
        for attr in ("queue", "state", "enqueued_at", "visible_at",
                     "expires_at", "priority", "attempts"):
            assert getattr(sql, attr) == getattr(fast, attr), attr
        assert fast.state is MessageState.READY

    def test_sql_path_message_usable_for_ack(self, queue):
        """The id must be real: ack through it round-trips."""
        message = Message(payload="job")
        queue.enqueue_via_insert(message)
        locked = queue.dequeue()
        assert locked.message_id == message.message_id
        queue.ack(message.message_id)
        assert queue.depth() == 0


class TestExplicitZeroVisibleAt:
    def test_visible_at_zero_is_preserved(self, queue, clock):
        """Regression: ``if not message.visible_at`` treated an explicit
        0.0 (a real epoch timestamp) as unset and overwrote it with
        now()."""
        message = Message(payload="epoch", visible_at=0.0)
        mid = queue.enqueue(message)
        assert message.visible_at == 0.0
        row = queue.db.catalog.table(queue.table_name).get(mid)
        assert row["visible_at"] == 0.0

    def test_visible_at_zero_is_immediately_visible(self, queue, clock):
        # conftest clock starts at 1000.0, so 0.0 is in the past.
        queue.enqueue(Message(payload="epoch", visible_at=0.0))
        got = queue.dequeue()
        assert got is not None
        assert got.visible_at == 0.0

    def test_unset_visible_at_still_defaults_to_now(self, queue, clock):
        message = Message(payload="plain")
        queue.enqueue(message)
        assert message.visible_at == clock.now()


class TestBrowse:
    def test_browse_does_not_lock(self, queue):
        queue.enqueue("x")
        items = list(queue.browse())
        assert len(items) == 1
        assert queue.dequeue() is not None

    def test_browse_order_matches_dequeue(self, queue):
        queue.enqueue(Message(payload="low", priority=1))
        queue.enqueue(Message(payload="high", priority=9))
        assert [m.payload for m in queue.browse()] == ["high", "low"]

    def test_depth_counts_ready_only(self, queue):
        queue.enqueue("a")
        queue.enqueue("b")
        queue.dequeue()
        assert queue.depth() == 1
