"""Propagation between staging areas and to external services."""

import pytest

from repro.errors import PropagationError
from repro.queues import (
    Message,
    PropagationLink,
    Propagator,
    QueueBroker,
)


class FlakyService:
    """External service failing the first ``failures`` deliveries."""

    def __init__(self, failures: int = 0) -> None:
        self.failures = failures
        self.received: list[Message] = []

    def deliver(self, message: Message) -> None:
        if self.failures > 0:
            self.failures -= 1
            raise ConnectionError("service unavailable")
        self.received.append(message)


@pytest.fixture
def source(db):
    broker = QueueBroker(db)
    broker.create_queue("outbox")
    return broker


@pytest.fixture
def remote(clock):
    from repro.db import Database

    broker = QueueBroker(Database(clock=clock), name="remote")
    broker.create_queue("inbox")
    return broker


class TestLinkValidation:
    def test_needs_exactly_one_target(self, remote):
        with pytest.raises(PropagationError):
            PropagationLink("bad")
        with pytest.raises(PropagationError):
            PropagationLink(
                "bad", broker=remote, queue_name="inbox", service=FlakyService()
            )
        with pytest.raises(PropagationError):
            PropagationLink("bad", broker=remote)  # no queue name

    def test_run_without_links_rejected(self, source):
        with pytest.raises(PropagationError):
            Propagator(source, "outbox").run_once()


class TestForwarding:
    def test_broker_to_broker(self, source, remote):
        propagator = Propagator(source, "outbox").add_link(
            PropagationLink("r", broker=remote, queue_name="inbox")
        )
        source.publish("outbox", {"k": 1})
        assert propagator.run_once() == 1
        message = remote.consume("inbox")
        assert message.payload == {"k": 1}
        assert message.headers["propagated_from"] == "outbox"
        assert source.queue("outbox").depth() == 0

    def test_external_service(self, source):
        service = FlakyService()
        propagator = Propagator(source, "outbox").add_link(
            PropagationLink("svc", service=service)
        )
        source.publish("outbox", "hello")
        propagator.run_once()
        assert [m.payload for m in service.received] == ["hello"]

    def test_fan_out_to_multiple_links(self, source, remote):
        service = FlakyService()
        propagator = (
            Propagator(source, "outbox")
            .add_link(PropagationLink("r", broker=remote, queue_name="inbox"))
            .add_link(PropagationLink("svc", service=service))
        )
        source.publish("outbox", "x")
        propagator.run_once()
        assert remote.queue("inbox").depth() == 1
        assert len(service.received) == 1

    def test_transform_applied(self, source, remote):
        def escalate(message: Message) -> Message:
            message.priority = 9
            return message

        propagator = Propagator(source, "outbox").add_link(
            PropagationLink("r", broker=remote, queue_name="inbox", transform=escalate)
        )
        source.publish("outbox", "x")
        propagator.run_once()
        assert remote.consume("inbox").priority == 9

    def test_batch_bound(self, source, remote):
        propagator = Propagator(source, "outbox").add_link(
            PropagationLink("r", broker=remote, queue_name="inbox")
        )
        for i in range(10):
            source.publish("outbox", i)
        assert propagator.run_once(batch=4) == 4
        assert source.queue("outbox").depth() == 6


class TestRetryAndDeadLetter:
    def test_failure_retries_with_backoff(self, source, clock):
        service = FlakyService(failures=2)
        propagator = Propagator(
            source, "outbox", base_backoff=1.0
        ).add_link(PropagationLink("svc", service=service))
        source.publish("outbox", "x")
        assert propagator.run_once() == 0  # first attempt fails
        clock.advance(2.0)
        assert propagator.run_once() == 0  # second fails
        clock.advance(4.0)
        assert propagator.run_once() == 1  # third succeeds
        assert propagator.stats["retried"] == 2
        assert len(service.received) == 1

    def test_exhausted_goes_to_dead_letter(self, source, clock):
        service = FlakyService(failures=100)
        propagator = Propagator(
            source, "outbox", max_attempts=3, base_backoff=0.1,
            dead_letter_queue="dlq",
        ).add_link(PropagationLink("svc", service=service))
        source.publish("outbox", {"doomed": True})
        for _ in range(5):
            propagator.run_once()
            clock.advance(10.0)
        assert propagator.stats["dead_lettered"] == 1
        assert source.queue("outbox").depth() == 0
        dead = source.consume("dlq")
        assert dead.payload == {"doomed": True}
        assert "svc" in dead.headers["dead_letter_reason"]

    def test_partial_failure_no_duplicate_on_retry(self, source, remote, clock):
        """Link A succeeds, link B fails: on retry only B re-sends."""
        service = FlakyService(failures=1)
        propagator = (
            Propagator(source, "outbox", base_backoff=0.1)
            .add_link(PropagationLink("ok", broker=remote, queue_name="inbox"))
            .add_link(PropagationLink("flaky", service=service))
        )
        source.publish("outbox", "x")
        propagator.run_once()  # ok delivers, flaky fails
        clock.advance(1.0)
        propagator.run_once()  # retry: only flaky delivers
        assert remote.queue("inbox").depth() == 1  # no duplicate
        assert len(service.received) == 1
