"""Propagation between staging areas and to external services."""

import pytest

from repro.errors import PropagationError
from repro.queues import (
    Message,
    PropagationLink,
    Propagator,
    QueueBroker,
)


class FlakyService:
    """External service failing the first ``failures`` deliveries."""

    def __init__(self, failures: int = 0) -> None:
        self.failures = failures
        self.received: list[Message] = []

    def deliver(self, message: Message) -> None:
        if self.failures > 0:
            self.failures -= 1
            raise ConnectionError("service unavailable")
        self.received.append(message)


@pytest.fixture
def source(db):
    broker = QueueBroker(db)
    broker.create_queue("outbox")
    return broker


@pytest.fixture
def remote(clock):
    from repro.db import Database

    broker = QueueBroker(Database(clock=clock), name="remote")
    broker.create_queue("inbox")
    return broker


class TestLinkValidation:
    def test_needs_exactly_one_target(self, remote):
        with pytest.raises(PropagationError):
            PropagationLink("bad")
        with pytest.raises(PropagationError):
            PropagationLink(
                "bad", broker=remote, queue_name="inbox", service=FlakyService()
            )
        with pytest.raises(PropagationError):
            PropagationLink("bad", broker=remote)  # no queue name

    def test_run_without_links_rejected(self, source):
        with pytest.raises(PropagationError):
            Propagator(source, "outbox").run_once()


class TestForwarding:
    def test_broker_to_broker(self, source, remote):
        propagator = Propagator(source, "outbox").add_link(
            PropagationLink("r", broker=remote, queue_name="inbox")
        )
        source.publish("outbox", {"k": 1})
        assert propagator.run_once() == 1
        message = remote.consume("inbox")
        assert message.payload == {"k": 1}
        assert message.headers["propagated_from"] == "outbox"
        assert source.queue("outbox").depth() == 0

    def test_external_service(self, source):
        service = FlakyService()
        propagator = Propagator(source, "outbox").add_link(
            PropagationLink("svc", service=service)
        )
        source.publish("outbox", "hello")
        propagator.run_once()
        assert [m.payload for m in service.received] == ["hello"]

    def test_fan_out_to_multiple_links(self, source, remote):
        service = FlakyService()
        propagator = (
            Propagator(source, "outbox")
            .add_link(PropagationLink("r", broker=remote, queue_name="inbox"))
            .add_link(PropagationLink("svc", service=service))
        )
        source.publish("outbox", "x")
        propagator.run_once()
        assert remote.queue("inbox").depth() == 1
        assert len(service.received) == 1

    def test_transform_applied(self, source, remote):
        def escalate(message: Message) -> Message:
            message.priority = 9
            return message

        propagator = Propagator(source, "outbox").add_link(
            PropagationLink("r", broker=remote, queue_name="inbox", transform=escalate)
        )
        source.publish("outbox", "x")
        propagator.run_once()
        assert remote.consume("inbox").priority == 9

    def test_batch_bound(self, source, remote):
        propagator = Propagator(source, "outbox").add_link(
            PropagationLink("r", broker=remote, queue_name="inbox")
        )
        for i in range(10):
            source.publish("outbox", i)
        assert propagator.run_once(batch=4) == 4
        assert source.queue("outbox").depth() == 6


class TestRetryAndDeadLetter:
    def test_failure_retries_with_backoff(self, source, clock):
        service = FlakyService(failures=2)
        propagator = Propagator(
            source, "outbox", base_backoff=1.0
        ).add_link(PropagationLink("svc", service=service))
        source.publish("outbox", "x")
        assert propagator.run_once() == 0  # first attempt fails
        clock.advance(2.0)
        assert propagator.run_once() == 0  # second fails
        clock.advance(4.0)
        assert propagator.run_once() == 1  # third succeeds
        assert propagator.stats["retried"] == 2
        assert len(service.received) == 1

    def test_exhausted_goes_to_dead_letter(self, source, clock):
        service = FlakyService(failures=100)
        propagator = Propagator(
            source, "outbox", max_attempts=3, base_backoff=0.1,
            dead_letter_queue="dlq",
        ).add_link(PropagationLink("svc", service=service))
        source.publish("outbox", {"doomed": True})
        for _ in range(5):
            propagator.run_once()
            clock.advance(10.0)
        assert propagator.stats["dead_lettered"] == 1
        assert source.queue("outbox").depth() == 0
        dead = source.consume("dlq")
        assert dead.payload == {"doomed": True}
        assert "svc" in dead.headers["dead_letter_reason"]

    def test_partial_failure_no_duplicate_on_retry(self, source, remote, clock):
        """Link A succeeds, link B fails: on retry only B re-sends."""
        service = FlakyService(failures=1)
        propagator = (
            Propagator(source, "outbox", base_backoff=0.1)
            .add_link(PropagationLink("ok", broker=remote, queue_name="inbox"))
            .add_link(PropagationLink("flaky", service=service))
        )
        source.publish("outbox", "x")
        propagator.run_once()  # ok delivers, flaky fails
        clock.advance(1.0)
        propagator.run_once()  # retry: only flaky delivers
        assert remote.queue("inbox").depth() == 1  # no duplicate
        assert len(service.received) == 1


class TestBackoffSchedule:
    def test_exponential_growth_until_cap(self, source):
        propagator = Propagator(
            source, "outbox", base_backoff=1.0, max_backoff=8.0
        )
        delays = [propagator.backoff_for(1, attempts) for attempts in range(1, 8)]
        # Monotonically non-decreasing in the uncapped region is NOT
        # guaranteed (jitter), but the uncapped envelope doubles...
        raw = [1.0 * 2 ** (a - 1) for a in range(1, 8)]
        for delay, ceiling in zip(delays, raw):
            assert delay <= min(ceiling, 8.0)

    def test_max_backoff_is_a_hard_ceiling(self, source):
        propagator = Propagator(
            source, "outbox", base_backoff=1.0, max_backoff=5.0
        )
        for message_id in range(1, 50):
            for attempts in range(1, 20):
                assert propagator.backoff_for(message_id, attempts) <= 5.0

    def test_jitter_is_deterministic(self, source):
        propagator = Propagator(source, "outbox", base_backoff=0.5)
        a = propagator.backoff_for(7, 3)
        b = propagator.backoff_for(7, 3)
        assert a == b

    def test_jitter_spreads_same_attempt_across_messages(self, source):
        propagator = Propagator(
            source, "outbox", base_backoff=1.0, max_backoff=100.0
        )
        delays = {propagator.backoff_for(mid, 4) for mid in range(1, 20)}
        assert len(delays) > 1, "same-batch retries would thunder in lockstep"

    def test_jitter_never_exceeds_quarter(self, source):
        propagator = Propagator(
            source, "outbox", base_backoff=2.0, max_backoff=1000.0
        )
        for message_id in range(1, 30):
            for attempts in range(1, 8):
                capped = min(2.0 * 2 ** (attempts - 1), 1000.0)
                delay = propagator.backoff_for(message_id, attempts)
                assert capped * 0.75 <= delay <= capped

    def test_requeue_uses_capped_backoff(self, source, clock):
        """A high-attempt failure retries after max_backoff, not after
        the uncapped exponential (which would be ~minutes)."""
        service = FlakyService(failures=6)
        propagator = Propagator(
            source, "outbox", max_attempts=10, base_backoff=1.0,
            max_backoff=2.0,
        ).add_link(PropagationLink("svc", service=service))
        source.publish("outbox", "x")
        attempts = 0
        while len(service.received) == 0 and attempts < 20:
            propagator.run_once()
            clock.advance(2.0)  # max_backoff is always enough to retry
            attempts += 1
        assert len(service.received) == 1
        # Uncapped 2**5 = 32s would have needed far more than 2s steps:
        assert attempts <= 8


class TestBoundedDedup:
    """Regression for the formerly unbounded ``_delivered_ids`` growth."""

    def test_windows_empty_after_10k_forwarded(self, source, remote, clock):
        propagator = Propagator(source, "outbox").add_link(
            PropagationLink("r", broker=remote, queue_name="inbox")
        )
        total = 10_000
        for start in range(0, total, 500):
            source.publish_batch(
                "outbox", [Message(payload=i) for i in range(start, start + 500)]
            )
        forwarded = 0
        while forwarded < total:
            drained = propagator.pump(batch=500)
            assert drained > 0
            forwarded += drained
            # The dedup windows never retain resolved ids: bounded even
            # though every message passes through them.
            for window in propagator._delivered_ids.values():
                assert len(window) == 0
        assert propagator.stats["forwarded"] == total
        assert remote.queue("inbox").depth() == total

    def test_partial_failure_retention_is_capped(self, source, remote, clock):
        """With one link permanently down, the healthy link's dedup ids
        accumulate only until the message dead-letters — and the window
        cap bounds whatever remains in retry limbo."""
        service = FlakyService(failures=10**9)
        propagator = (
            Propagator(
                source, "outbox", max_attempts=2, base_backoff=0.1,
                dead_letter_queue="dlq", dedup_window=64,
            )
            .add_link(PropagationLink("ok", broker=remote, queue_name="inbox"))
            .add_link(PropagationLink("down", service=service))
        )
        for i in range(500):
            source.publish("outbox", i)
        for _ in range(6):
            propagator.pump(batch=500)
            clock.advance(10.0)
        assert propagator.stats["dead_lettered"] == 500
        for window in propagator._delivered_ids.values():
            assert len(window) <= 64

    def test_window_rejects_nonpositive_capacity(self):
        from repro.queues.propagation import BoundedIdWindow

        with pytest.raises(ValueError):
            BoundedIdWindow(0)

    def test_window_evicts_oldest(self):
        from repro.queues.propagation import BoundedIdWindow

        window = BoundedIdWindow(3)
        for i in range(5):
            window.add(i)
        assert len(window) == 3
        assert 0 not in window and 1 not in window
        assert 2 in window and 4 in window
        window.discard(3)
        assert len(window) == 2


class TestRunOncePumpParity:
    """Satellite fix: both drain paths report identical stats for the
    same workload (they share one accounting path in the metrics layer)."""

    def _drive(self, broker, clock, drain):
        service = FlakyService(failures=5)
        propagator = Propagator(
            broker, "outbox", max_attempts=3, base_backoff=0.1,
            dead_letter_queue="dlq",
        ).add_link(PropagationLink("svc", service=service))
        for i in range(20):
            broker.publish("outbox", {"n": i})
        for _ in range(10):
            drain(propagator)
            clock.advance(10.0)
        assert broker.queue("outbox").depth() == 0
        return propagator.stats

    def test_same_workload_same_stats(self, clock):
        from repro.db import Database

        def fresh_broker():
            broker = QueueBroker(Database(clock=clock))
            broker.create_queue("outbox")
            return broker

        single = self._drive(
            fresh_broker(), clock, lambda p: p.run_once(batch=100)
        )
        batched = self._drive(
            fresh_broker(), clock, lambda p: p.pump(batch=100)
        )
        assert single == batched
        assert single["forwarded"] + single["dead_lettered"] == 20
