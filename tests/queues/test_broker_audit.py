"""Queue broker: acceptance paths, security, audit trail."""

import pytest

from repro.errors import AccessDeniedError, QueueError, QueueNotFoundError
from repro.queues import Message, Permission, QueueBroker, SecurityManager


@pytest.fixture
def broker(db):
    broker = QueueBroker(db, audit=True)
    broker.create_queue("alerts")
    return broker


class TestLifecycle:
    def test_duplicate_queue_rejected(self, broker):
        with pytest.raises(QueueError):
            broker.create_queue("alerts")

    def test_unknown_queue(self, broker):
        with pytest.raises(QueueNotFoundError):
            broker.queue("ghost")

    def test_drop_queue_drops_table(self, broker, db):
        broker.create_queue("temp")
        broker.drop_queue("temp")
        assert not broker.has_queue("temp")
        assert not db.catalog.has_table("q_temp")

    def test_names_sorted(self, broker):
        broker.create_queue("zq")
        broker.create_queue("aq")
        assert broker.queue_names() == ["alerts", "aq", "zq"]


class TestAcceptancePaths:
    def test_publish_internal(self, broker):
        broker.publish("alerts", {"sev": 1})
        assert broker.queue("alerts").depth() == 1

    def test_enqueue_via_sql(self, broker):
        broker.enqueue_via_sql("alerts", {"sev": 2})
        message = broker.consume("alerts")
        assert message.payload == {"sev": 2}

    def test_ingest_foreign_maps_known_fields(self, broker, clock):
        broker.ingest_foreign(
            "alerts",
            {
                "payload": {"reading": 7},
                "priority": 3,
                "correlation_id": "ext-1",
                "vendor_field": "opaque",
                "delay": 10.0,
            },
            source_system="scada",
        )
        assert broker.consume("alerts") is None  # delayed
        clock.advance(11)
        message = broker.consume("alerts")
        assert message.priority == 3
        assert message.correlation_id == "ext-1"
        assert message.headers["source_system"] == "scada"
        assert message.headers["foreign_vendor_field"] == "opaque"

    def test_consume_ack_requeue(self, broker):
        broker.publish("alerts", "x")
        message = broker.consume("alerts", principal="me")
        broker.requeue("alerts", message.message_id)
        message = broker.consume("alerts")
        broker.ack("alerts", message.message_id)
        assert broker.queue("alerts").depth() == 0


class TestSecurity:
    def test_open_by_default(self, broker):
        broker.publish("alerts", "x", principal="anyone")

    def test_protected_queue_denies(self, db):
        security = SecurityManager()
        broker = QueueBroker(db, security=security)
        broker.create_queue("secure")
        security.protect("secure")
        with pytest.raises(AccessDeniedError):
            broker.publish("secure", "x", principal="stranger")

    def test_grant_allows(self, db):
        security = SecurityManager()
        broker = QueueBroker(db, security=security)
        broker.create_queue("secure")
        security.protect("secure")
        security.grant("writer", "secure", Permission.ENQUEUE)
        broker.publish("secure", "x", principal="writer")
        with pytest.raises(AccessDeniedError):
            broker.consume("secure", principal="writer")  # enqueue-only

    def test_admin_implies_all(self, db):
        security = SecurityManager()
        broker = QueueBroker(db, security=security)
        broker.create_queue("secure")
        security.protect("secure")
        security.grant("boss", "secure", Permission.ADMIN)
        broker.publish("secure", "x", principal="boss")
        message = broker.consume("secure", principal="boss")
        assert message is not None

    def test_revoke(self):
        security = SecurityManager()
        security.protect("q")
        security.grant("u", "q", Permission.ENQUEUE)
        security.revoke("u", "q", Permission.ENQUEUE)
        assert not security.allowed("u", "q", Permission.ENQUEUE)


class TestAudit:
    def test_operations_recorded(self, broker):
        broker.publish("alerts", "x", principal="producer")
        message = broker.consume("alerts", principal="worker")
        broker.ack("alerts", message.message_id, principal="worker")
        entries = broker.audit.entries(queue="alerts")
        operations = [e["operation"] for e in entries]
        assert operations == ["enqueue", "dequeue", "ack"]
        assert entries[0]["principal"] == "producer"

    def test_filter_by_principal(self, broker):
        broker.publish("alerts", "x", principal="alice")
        broker.publish("alerts", "y", principal="bob")
        assert len(broker.audit.entries(principal="alice")) == 1

    def test_audit_is_sql_queryable(self, broker, db):
        broker.publish("alerts", "x", principal="alice")
        rows = db.query(
            "SELECT count(*) AS n FROM _queue_audit WHERE principal = 'alice'"
        )
        assert rows[0]["n"] == 1

    def test_stats_aggregate(self, broker):
        broker.publish("alerts", "x")
        broker.consume("alerts")
        stats = broker.stats()
        assert stats["alerts"]["enqueued"] == 1
        assert stats["alerts"]["dequeued"] == 1
