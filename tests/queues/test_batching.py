"""Batched write path: enqueue/dequeue/ack batches, the READY heap,
group commit, and the batch pumps (propagation + delivery)."""

import pytest

from repro.clock import SimulatedClock
from repro.db import Database
from repro.errors import QueueError
from repro.queues import (
    Message,
    MessageState,
    PropagationLink,
    Propagator,
    QueueBroker,
    QueueTable,
)
from repro.pubsub import DeliveryManager


@pytest.fixture
def queue(db):
    return QueueTable(db, "work")


class TestEnqueueBatch:
    def test_returns_ids_in_input_order(self, queue):
        ids = queue.enqueue_batch([{"n": i} for i in range(5)])
        assert len(ids) == 5
        assert ids == sorted(ids)
        assert queue.depth() == 5

    def test_assigns_message_ids_like_single_enqueue(self, queue):
        messages = [Message(payload={"n": i}) for i in range(3)]
        ids = queue.enqueue_batch(messages)
        assert [m.message_id for m in messages] == ids
        assert all(m.state is MessageState.READY for m in messages)

    def test_empty_batch_is_noop(self, queue):
        assert queue.enqueue_batch([]) == []
        assert queue.db.statistics["commits"] - queue.db.statistics["commits"] == 0

    def test_batch_shares_one_journal_flush(self, clock):
        db = Database(clock=clock, sync_policy="commit")
        queue = QueueTable(db, "w")
        before = db.wal.flush_count
        queue.enqueue_batch([{"n": i} for i in range(50)])
        assert db.wal.flush_count == before + 1

    def test_batch_joins_caller_transaction(self, queue, db):
        conn = db.connect()
        conn.begin()
        queue.enqueue_batch(["a", "b", "c"], conn=conn)
        conn.rollback()
        assert queue.depth() == 0
        # The heap entries left by the rollback are stale and must not
        # resurrect phantom messages.
        assert queue.dequeue() is None

    def test_dequeue_order_matches_single_path(self, queue):
        queue.enqueue_batch(
            [Message(payload=f"m{i}", priority=i % 3) for i in range(9)]
        )
        drained = [queue.dequeue() for _ in range(9)]
        priorities = [m.priority for m in drained]
        assert priorities == sorted(priorities, reverse=True)
        # FIFO within each priority class.
        for priority in (0, 1, 2):
            ids = [m.message_id for m in drained if m.priority == priority]
            assert ids == sorted(ids)


class TestDequeueBatch:
    def test_returns_up_to_limit_in_order(self, queue):
        queue.enqueue_batch(
            [Message(payload=i, priority=p) for i, p in enumerate([1, 9, 5])]
        )
        got = queue.dequeue_batch(2)
        assert [m.payload for m in got] == [1, 2]  # priorities 9, 5
        assert all(m.state is MessageState.LOCKED for m in got)
        assert queue.depth() == 1

    def test_partial_and_empty_batches(self, queue):
        assert queue.dequeue_batch(10) == []
        queue.enqueue_batch(["a", "b"])
        assert len(queue.dequeue_batch(10)) == 2
        assert queue.dequeue_batch(10) == []

    def test_delayed_high_priority_does_not_block(self, queue, clock):
        queue.enqueue(Message(payload="later", priority=9,
                              visible_at=clock.now() + 60))
        queue.enqueue(Message(payload="now", priority=0))
        got = queue.dequeue_batch(5)
        assert [m.payload for m in got] == ["now"]
        clock.advance(61)
        assert [m.payload for m in queue.dequeue_batch(5)] == ["later"]

    def test_expired_marked_and_skipped(self, queue, clock):
        queue.enqueue(Message(payload="old", expires_at=clock.now() + 1))
        queue.enqueue(Message(payload="fresh"))
        clock.advance(5)
        got = queue.dequeue_batch(5)
        assert [m.payload for m in got] == ["fresh"]
        assert queue.stats["expired"] == 1

    def test_rolled_back_batch_dequeue_releases_all(self, queue, db):
        queue.enqueue_batch(["a", "b", "c"])
        conn = db.connect()
        conn.begin()
        assert len(queue.dequeue_batch(3, conn=conn)) == 3
        conn.rollback()
        # All three are READY again and redeliverable.
        assert len(queue.dequeue_batch(3)) == 3

    def test_heap_rebuilt_after_crash_recovery(self, queue, db):
        queue.enqueue_batch(
            [Message(payload=f"m{i}", priority=i) for i in range(3)]
        )
        db.simulate_crash()
        restored = QueueTable(db, "work")
        got = restored.dequeue_batch(3)
        assert [m.payload for m in got] == ["m2", "m1", "m0"]

    def test_rebuild_ready_index_counts(self, queue):
        queue.enqueue_batch(["a", "b"])
        queue.dequeue()
        assert queue.rebuild_ready_index() == 1


class TestAckBatch:
    def test_ack_batch_consumes_all(self, queue, db):
        queue.enqueue_batch(["a", "b", "c"])
        got = queue.dequeue_batch(3)
        assert queue.ack_batch([m.message_id for m in got]) == 3
        assert len(db.catalog.table(queue.table_name)) == 0

    def test_ack_batch_one_flush(self, clock):
        db = Database(clock=clock, sync_policy="commit")
        queue = QueueTable(db, "w")
        queue.enqueue_batch([{"n": i} for i in range(20)])
        got = queue.dequeue_batch(20)
        before = db.wal.flush_count
        queue.ack_batch([m.message_id for m in got])
        assert db.wal.flush_count == before + 1

    def test_ack_batch_all_or_nothing(self, queue, db):
        queue.enqueue_batch(["a", "b"])
        got = queue.dequeue_batch(2)
        with pytest.raises(QueueError):
            queue.ack_batch([got[0].message_id, 9999])
        # The failed batch rolled back: both rows still locked.
        table = db.catalog.table(queue.table_name)
        assert table.get(got[0].message_id)["state"] == "locked"
        assert table.get(got[1].message_id)["state"] == "locked"

    def test_keep_history_batch(self, db):
        queue = QueueTable(db, "hist", keep_history=True)
        queue.enqueue_batch(["a", "b"])
        got = queue.dequeue_batch(2)
        queue.ack_batch([m.message_id for m in got])
        table = db.catalog.table(queue.table_name)
        states = {table.get(m.message_id)["state"] for m in got}
        assert states == {"consumed"}


class TestRequeueFairness:
    """A requeued message keeps its original FIFO position: it must not
    fall behind messages enqueued while it was locked (and the heap's
    rowid tie-break must preserve that across redeliveries)."""

    def test_requeue_keeps_original_position(self, queue):
        queue.enqueue("A")
        queue.enqueue("B")
        locked = queue.dequeue()
        assert locked.payload == "A"
        queue.enqueue("C")  # arrives while A is locked
        queue.requeue(locked.message_id)
        assert [queue.dequeue().payload for _ in range(3)] == ["A", "B", "C"]

    def test_requeue_fairness_via_batch_path(self, queue):
        queue.enqueue_batch(["A", "B"])
        (locked,) = queue.dequeue_batch(1)
        queue.enqueue_batch(["C"])
        queue.requeue(locked.message_id)
        got = queue.dequeue_batch(3)
        assert [m.payload for m in got] == ["A", "B", "C"]

    def test_priority_still_beats_seniority(self, queue):
        queue.enqueue(Message(payload="old-low", priority=0))
        locked = queue.dequeue()
        queue.enqueue(Message(payload="new-high", priority=5))
        queue.requeue(locked.message_id)
        assert queue.dequeue().payload == "new-high"


class TestBrokerBatchApi:
    def test_publish_consume_ack_batch(self, db):
        broker = QueueBroker(db)
        broker.create_queue("q")
        ids = broker.publish_batch("q", [{"n": i} for i in range(4)])
        assert len(ids) == 4
        got = broker.consume_batch("q", 4)
        assert len(got) == 4
        assert broker.ack_batch("q", [m.message_id for m in got]) == 4
        assert broker.queue("q").depth() == 0

    def test_batch_audited_per_message(self, db):
        broker = QueueBroker(db, audit=True)
        broker.create_queue("q")
        broker.publish_batch("q", ["a", "b"])
        entries = broker.audit.entries()
        assert sum(1 for e in entries if e["operation"] == "enqueue") == 2


class TestPropagatorPump:
    def test_pump_forwards_and_acks_batch(self, db, clock):
        source = QueueBroker(db, name="src")
        source.create_queue("outbox")
        destination = QueueBroker(db, name="dst")
        destination.create_queue("inbox")
        propagator = Propagator(source, "outbox").add_link(
            PropagationLink("fwd", broker=destination, queue_name="inbox")
        )
        source.publish_batch("outbox", [{"n": i} for i in range(10)])
        assert propagator.pump(batch=10) == 10
        assert source.queue("outbox").depth() == 0
        assert destination.queue("inbox").depth() == 10
        assert propagator.stats["forwarded"] == 10

    def test_pump_failure_requeues_only_failed(self, db, clock):
        source = QueueBroker(db, name="src")
        source.create_queue("outbox")

        class Flaky:
            def __init__(self):
                self.calls = 0

            def deliver(self, message):
                self.calls += 1
                if message.payload["n"] == 1:
                    raise RuntimeError("boom")

        service = Flaky()
        propagator = Propagator(source, "outbox", base_backoff=0.0).add_link(
            PropagationLink("svc", service=service)
        )
        source.publish_batch("outbox", [{"n": i} for i in range(3)])
        assert propagator.pump(batch=3) == 2
        assert propagator.stats["retried"] == 1
        # The failed message is READY again; the delivered two are gone.
        assert source.queue("outbox").depth() == 1


class TestDeliveryProcessBatch:
    def test_process_batch_consumes_and_acks(self, db):
        broker = QueueBroker(db)
        broker.create_queue("q")
        broker.publish_batch("q", [{"n": i} for i in range(5)])
        manager = DeliveryManager(broker, "q")
        received = []
        assert manager.process_batch(received.append, batch=5) == 5
        assert len(received) == 5
        assert manager.stats["acked"] == 5
        assert broker.queue("q").depth() == 0

    def test_process_batch_nacks_failures(self, db):
        broker = QueueBroker(db)
        broker.create_queue("q")
        broker.publish_batch("q", [{"n": i} for i in range(3)])
        manager = DeliveryManager(broker, "q")

        def consumer(message):
            if message.payload["n"] == 1:
                raise ValueError("reject")

        assert manager.process_batch(consumer, batch=3) == 2
        assert manager.stats["consumer_errors"] == 1
        assert manager.stats["redelivered"] == 1
        assert broker.queue("q").depth() == 1

    def test_idle_pump_redelivers_timed_out_message(self, db, clock):
        """Regression: check_timeouts used to run only inside deliver(),
        so with no new traffic a dead consumer's message was never
        redelivered.  Driving the batch pump on an idle queue must
        requeue it."""
        broker = QueueBroker(db)
        broker.create_queue("q")
        broker.publish("q", {"job": 1})
        manager = DeliveryManager(broker, "q", ack_timeout=10.0)
        assert manager.deliver() is not None  # consumer dies, never acks
        clock.advance(11.0)
        # No new traffic, yet the pump must run timeouts — and the freshly
        # requeued message is redeliverable in the very same call.
        redelivered = []
        assert manager.process_batch(redelivered.append, batch=10) == 1
        assert manager.stats["redelivered"] == 1
        assert [m.payload for m in redelivered] == [{"job": 1}]
        assert broker.queue("q").depth() == 0


class TestGroupCommitDatabase:
    def test_group_commit_amortizes_flushes(self):
        clock = SimulatedClock(start=0.0)
        db = Database(clock=clock, sync_policy="commit", group_commit_size=8)
        queue = QueueTable(db, "w")
        db.wal.flush()
        before = db.wal.flush_count
        for i in range(16):
            queue.enqueue({"n": i})  # 16 commits
        assert db.wal.flush_count == before + 2  # one fsync per 8 commits

    def test_group_commit_window_bounds_latency(self):
        clock = SimulatedClock(start=0.0)
        db = Database(
            clock=clock,
            sync_policy="commit",
            group_commit_size=100,
            group_commit_window=5.0,
        )
        queue = QueueTable(db, "w")
        db.wal.flush()
        queue.enqueue({"n": 0})
        assert db.wal.pending_commits > 0
        clock.advance(6.0)
        queue.enqueue({"n": 1})  # window elapsed: this commit flushes
        assert db.wal.pending_commits == 0

    def test_group_commit_crash_loses_bounded_tail(self):
        clock = SimulatedClock(start=0.0)
        db = Database(clock=clock, sync_policy="commit", group_commit_size=4)
        queue = QueueTable(db, "w")
        db.wal.flush()
        for i in range(6):
            queue.enqueue({"n": i})  # 4 flushed at the group point, 2 pending
        db.simulate_crash()
        restored = QueueTable(db, "w")
        survivors = {m.payload["n"] for m in restored.browse()}
        assert survivors == {0, 1, 2, 3}  # at most size-1 commits lost
