"""The CLI entry point and benchmark-harness infrastructure."""

import subprocess
import sys

import pytest


def run_cli(*args, stdin=""):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        input=stdin,
        capture_output=True,
        text=True,
        timeout=60,
    )


class TestCli:
    def test_version(self):
        result = run_cli("version")
        assert result.returncode == 0
        assert result.stdout.strip() == "1.0.0"

    def test_help_when_no_command(self):
        result = run_cli()
        assert result.returncode == 2
        assert "Event processing" in result.stdout

    def test_sql_shell_roundtrip(self):
        script = (
            "CREATE TABLE t (a INT)\n"
            "INSERT INTO t VALUES (1), (2), (3)\n"
            "SELECT count(*) AS n FROM t\n"
            "EXPLAIN SELECT * FROM t WHERE a = 1\n"
            "BOGUS SYNTAX\n"
            "\n"
        )
        result = run_cli("sql", stdin=script)
        assert result.returncode == 0
        assert "ok (3 rows affected)" in result.stdout
        assert "3" in result.stdout
        assert "SCAN t" in result.stdout
        assert "error:" in result.stdout  # clean rejection, shell survives

    def test_sql_shell_wal_persistence(self, tmp_path):
        wal = str(tmp_path / "state.log")
        first = run_cli(
            "sql", "--wal", wal,
            stdin="CREATE TABLE t (a INT)\nINSERT INTO t VALUES (42)\n\n",
        )
        assert first.returncode == 0
        second = run_cli(
            "sql", "--wal", wal, stdin="SELECT a FROM t\n\n"
        )
        assert "42" in second.stdout
        assert "recovered" in second.stdout


class TestReporting:
    def test_print_table_alignment(self, capsys):
        from benchmarks.reporting import print_table

        print_table(
            "title",
            [
                {"name": "a", "value": 1234567.0, "note": None},
                {"name": "long-name", "value": 0.12345, "note": "x"},
            ],
        )
        output = capsys.readouterr().out
        assert "title" in output
        assert "1,234,567" in output
        assert "0.1235" in output or "0.1234" in output
        assert "-" in output  # None renders as dash

    def test_print_table_empty(self, capsys):
        from benchmarks.reporting import print_table

        print_table("empty", [])
        assert "(no rows)" in capsys.readouterr().out

    def test_run_all_only_selection(self):
        from benchmarks import run_all

        wanted = {"bench_exp3_"}
        selected = [
            name for name in run_all.EXPERIMENTS
            if any(name.startswith(prefix) for prefix in wanted)
        ]
        assert selected == ["bench_exp3_internal_opt"]

    def test_run_all_quick_smoke(self, tmp_path):
        """--quick shrinks every experiment to a tiny sweep; smoke-run a
        subset end to end through the real CLI."""
        out = str(tmp_path / "tables.txt")
        result = subprocess.run(
            [
                sys.executable, "benchmarks/run_all.py",
                "--quick", "--only", "1,3,8,10", "--out", out,
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "EXP-1" in result.stdout
        assert "EXP-10" in result.stdout
        assert "harness wall time" in result.stdout
        with open(out, encoding="utf-8") as handle:
            assert "EXP-3" in handle.read()

    def test_every_experiment_module_main_accepts_quick(self):
        import importlib
        import inspect

        from benchmarks import run_all

        for name in run_all.EXPERIMENTS:
            module = importlib.import_module(f"benchmarks.{name}")
            signature = inspect.signature(module.main)
            assert "quick" in signature.parameters, name

    def test_every_experiment_module_has_main_and_shape_test(self):
        import importlib

        from benchmarks import run_all

        for name in run_all.EXPERIMENTS:
            module = importlib.import_module(f"benchmarks.{name}")
            assert callable(getattr(module, "main"))
            shape_tests = [
                attr for attr in dir(module)
                if attr.startswith("test_") and attr.endswith("_shape")
            ]
            assert shape_tests, f"{name} lacks a shape-assertion test"
