"""Hypothesis property tests: windows, queues, SQL vs reference."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq import CountWindow, Stream, SlidingWindow, TumblingWindow
from repro.db import Database
from repro.events import Event
from repro.queues import Message, QueueTable


class TestWindowProperties:
    @given(
        st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=80),
        st.sampled_from([5.0, 10.0, 37.5]),
    )
    @settings(max_examples=80)
    def test_tumbling_partition_no_loss_no_duplication(self, timestamps, size):
        """Ordered input: every event lands in exactly one pane."""
        timestamps = sorted(timestamps)
        source = Stream("s")
        window = TumblingWindow(source, size)
        pane_events = []
        window.subscribe(lambda e: pane_events.extend(e["pane"].events))
        marked = [Event("t", ts, {"i": i}) for i, ts in enumerate(timestamps)]
        for event in marked:
            source.push(event)
        window.flush()
        assert sorted(e["i"] for e in pane_events) == list(range(len(marked)))

    @given(
        st.lists(st.floats(0, 500, allow_nan=False), min_size=1, max_size=60),
    )
    @settings(max_examples=60)
    def test_tumbling_pane_bounds_contain_events(self, timestamps):
        source = Stream("s")
        window = TumblingWindow(source, 20.0)
        panes = []
        window.subscribe(panes.append)
        for ts in sorted(timestamps):
            source.push(Event("t", ts, {}))
        window.flush()
        for pane_event in panes:
            pane = pane_event["pane"]
            for event in pane.events:
                assert pane.start <= event.timestamp < pane.end

    @given(
        st.lists(st.floats(0, 300, allow_nan=False), min_size=1, max_size=50),
        st.sampled_from([(10.0, 5.0), (20.0, 4.0), (12.0, 12.0)]),
    )
    @settings(max_examples=60)
    def test_sliding_multiplicity(self, timestamps, spec):
        """Each event appears in exactly size/slide panes (when slide
        divides size)."""
        size, slide = spec
        multiplicity = int(size / slide)
        source = Stream("s")
        window = SlidingWindow(source, size, slide)
        counts = {}
        window.subscribe(
            lambda e: [
                counts.__setitem__(ev["i"], counts.get(ev["i"], 0) + 1)
                for ev in e["pane"].events
            ]
        )
        for i, ts in enumerate(sorted(timestamps)):
            source.push(Event("t", ts, {"i": i}))
        window.flush()
        assert all(count == multiplicity for count in counts.values())

    @given(st.integers(1, 10), st.integers(0, 50))
    def test_count_window_exact_batches(self, batch, total):
        source = Stream("s")
        window = CountWindow(source, batch)
        sizes = []
        window.subscribe(lambda e: sizes.append(len(e["pane"].events)))
        for i in range(total):
            source.push(Event("t", float(i), {}))
        assert sizes == [batch] * (total // batch)
        window.flush()
        if total % batch:
            assert sizes[-1] == total % batch


class TestQueueProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 10**6)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_dequeue_order_is_priority_then_fifo(self, specs):
        db = Database()
        queue = QueueTable(db, "q")
        enqueued = []
        for order, (priority, marker) in enumerate(specs):
            queue.enqueue(Message(payload=marker, priority=priority))
            enqueued.append((-priority, order, marker))
        drained = []
        while True:
            message = queue.dequeue()
            if message is None:
                break
            queue.ack(message.message_id)
            drained.append(message.payload)
        expected = [marker for _p, _o, marker in sorted(enqueued)]
        assert drained == expected

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=30), st.data())
    @settings(max_examples=50, deadline=None)
    def test_conservation_under_requeue(self, payloads, data):
        """No message is ever lost or duplicated by dequeue/requeue/ack."""
        db = Database()
        queue = QueueTable(db, "q")
        for payload in payloads:
            queue.enqueue(payload)
        consumed = []
        for _ in range(len(payloads) * 3):
            message = queue.dequeue()
            if message is None:
                break
            if data.draw(st.booleans()):
                queue.ack(message.message_id)
                consumed.append(message.payload)
            else:
                queue.requeue(message.message_id)
        # Drain the rest.
        while True:
            message = queue.dequeue()
            if message is None:
                break
            queue.ack(message.message_id)
            consumed.append(message.payload)
        assert sorted(consumed) == sorted(payloads)


class TestSqlAgainstReference:
    @given(
        st.lists(
            st.tuples(st.integers(-50, 50), st.integers(0, 3)),
            min_size=0,
            max_size=40,
        ),
        st.integers(-40, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_where_and_group_by_match_python(self, rows, cutoff):
        db = Database()
        db.execute("CREATE TABLE t (v INT, g INT)")
        for v, g in rows:
            db.execute(f"INSERT INTO t VALUES ({v}, {g})")

        selected = db.query(f"SELECT v FROM t WHERE v > {cutoff}")
        assert sorted(r["v"] for r in selected) == sorted(
            v for v, _g in rows if v > cutoff
        )

        grouped = db.query(
            "SELECT g, count(*) AS n, sum(v) AS s FROM t GROUP BY g"
        )
        expected = {}
        for v, g in rows:
            count, total = expected.get(g, (0, 0))
            expected[g] = (count + 1, total + v)
        assert {
            r["g"]: (r["n"], r["s"]) for r in grouped
        } == expected

    @given(st.lists(st.integers(-100, 100), min_size=0, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_order_by_matches_sorted(self, values):
        db = Database()
        db.execute("CREATE TABLE t (v INT)")
        for v in values:
            db.execute(f"INSERT INTO t VALUES ({v})")
        result = db.query("SELECT v FROM t ORDER BY v DESC")
        assert [r["v"] for r in result] == sorted(values, reverse=True)
