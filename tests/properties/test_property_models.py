"""Property tests for expectation models and session windows."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import EwmaModel, MarkovStateModel, RangeModel
from repro.cq import SessionWindow, Stream
from repro.events import Event


class TestRangeModelProperties:
    bands = st.tuples(
        st.floats(-100, 100, allow_nan=False),
        st.floats(0.1, 100, allow_nan=False),
    )

    @given(bands, st.floats(-500, 500, allow_nan=False))
    def test_score_zero_iff_inside(self, band, value):
        low, width = band
        model = RangeModel(low, low + width)
        inside = low <= value <= low + width
        assert (model.score(value) == 0.0) == inside

    @given(bands, st.floats(0.1, 100, allow_nan=False))
    def test_score_increases_with_distance(self, band, step):
        low, width = band
        model = RangeModel(low, low + width)
        near = model.score(low + width + step)
        far = model.score(low + width + 2 * step)
        assert far > near


class TestEwmaModelProperties:
    @given(st.lists(st.floats(-50, 50, allow_nan=False), min_size=25, max_size=80))
    @settings(max_examples=60)
    def test_score_nonnegative_and_null_safe(self, values):
        model = EwmaModel(warmup=10)
        for value in values:
            score = model.score(value)
            assert score >= 0.0
            model.observe(value)

    @given(st.floats(-50, 50, allow_nan=False))
    def test_constant_history_then_same_value_scores_zero(self, constant):
        model = EwmaModel(warmup=5)
        for _ in range(20):
            model.observe(constant)
        assert model.score(constant) == 0.0
        assert model.score(constant + 1.0) == float("inf")


class TestMarkovProperties:
    @given(st.lists(st.sampled_from("ABC"), min_size=30, max_size=120))
    @settings(max_examples=60)
    def test_transition_distribution_sums_to_one(self, states):
        model = MarkovStateModel(warmup=5)
        for state in states:
            model.observe(state)
        vocabulary = set(states)
        for origin in vocabulary:
            total = sum(
                model.transition_probability(origin, target)
                for target in vocabulary
            )
            assert abs(total - 1.0) < 1e-9

    @given(st.lists(st.sampled_from("AB"), min_size=30, max_size=100))
    @settings(max_examples=60)
    def test_surprisal_orders_by_frequency(self, states):
        model = MarkovStateModel(warmup=5)
        for state in states:
            model.observe(state)
        last = states[-1]
        outgoing = {}
        for a, b in zip(states, states[1:]):
            if a == last:
                outgoing[b] = outgoing.get(b, 0) + 1
        if len(outgoing) == 2:
            frequent = max(outgoing, key=outgoing.get)
            rare = min(outgoing, key=outgoing.get)
            if outgoing[frequent] != outgoing[rare]:
                assert model.score(frequent) < model.score(rare)


class TestSessionWindowProperties:
    @given(
        st.lists(st.floats(0, 0.99, allow_nan=False), min_size=1, max_size=40),
        st.integers(1, 5),
    )
    @settings(max_examples=60)
    def test_sessions_partition_events_and_respect_gap(self, jitter, gap):
        # Build strictly increasing timestamps with gaps > or < `gap`.
        rng = random.Random(7)
        timestamps = []
        now = 0.0
        for j in jitter:
            step = j if rng.random() < 0.6 else gap + 1.0 + j
            now += step
            timestamps.append(now)

        source = Stream("s")
        window = SessionWindow(source, gap=float(gap))
        panes = []
        window.subscribe(panes.append)
        marked = [Event("e", ts, {"i": i}) for i, ts in enumerate(timestamps)]
        for event in marked:
            source.push(event)
        window.flush()

        seen = []
        for pane_event in panes:
            events = pane_event["pane"].events
            seen.extend(e["i"] for e in events)
            # Within a session, consecutive gaps never exceed `gap`.
            times = [e.timestamp for e in events]
            assert all(b - a <= gap for a, b in zip(times, times[1:]))
        # Partition: every event in exactly one session.
        assert sorted(seen) == list(range(len(marked)))
        # Between consecutive sessions the gap is exceeded.
        boundaries = sorted(
            (p["pane"].start, p["pane"].end) for p in panes
        )
        for (_s1, e1), (s2, _e2) in zip(boundaries, boundaries[1:]):
            assert s2 - e1 > gap
