"""Hypothesis property tests for expressions and the rule index."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.expr import (
    evaluate_predicate,
    expression_from_dict,
    expression_to_dict,
)
from repro.db.sql.parser import parse_expression
from repro.rules import PredicateIndex, Rule
from repro.rules.engine import EventContext


@st.composite
def condition_texts(draw):
    """Random rule conditions over columns a (int), b (float), c (str)."""
    clauses = draw(st.integers(1, 3))
    parts = []
    for _ in range(clauses):
        kind = draw(st.integers(0, 5))
        if kind == 0:
            parts.append(f"a = {draw(st.integers(0, 20))}")
        elif kind == 1:
            low = draw(st.integers(0, 50))
            parts.append(f"b BETWEEN {low} AND {low + draw(st.integers(0, 30))}")
        elif kind == 2:
            parts.append(f"b {draw(st.sampled_from(['<', '<=', '>', '>=']))} "
                         f"{draw(st.integers(0, 80))}")
        elif kind == 3:
            parts.append(f"c = 'k{draw(st.integers(0, 8))}'")
        elif kind == 4:
            parts.append(f"a IN ({draw(st.integers(0, 9))}, "
                         f"{draw(st.integers(10, 20))})")
        else:
            parts.append("c IS NOT NULL")
    connector = draw(st.sampled_from([" AND ", " OR "]))
    return connector.join(parts)


contexts = st.fixed_dictionaries(
    {
        "a": st.one_of(st.none(), st.integers(0, 25)),
        "b": st.one_of(st.none(), st.floats(0, 100, allow_nan=False)),
        "c": st.one_of(st.none(), st.sampled_from([f"k{i}" for i in range(10)])),
    }
)


class TestExpressionProperties:
    @given(condition_texts(), contexts)
    @settings(max_examples=200)
    def test_serialization_preserves_evaluation(self, text, row):
        original = parse_expression(text)
        restored = expression_from_dict(expression_to_dict(original))
        assert original.evaluate(row) == restored.evaluate(row)

    @given(condition_texts(), contexts)
    @settings(max_examples=200)
    def test_evaluation_is_three_valued(self, text, row):
        result = parse_expression(text).evaluate(row)
        assert result in (True, False, None)

    @given(condition_texts(), contexts)
    def test_double_negation_preserves_predicate(self, text, row):
        base = parse_expression(text)
        doubled = parse_expression(f"NOT (NOT ({text}))")
        assert base.evaluate(row) == doubled.evaluate(row)


class TestPredicateIndexProperties:
    @given(st.lists(condition_texts(), min_size=1, max_size=40), contexts)
    @settings(max_examples=100, deadline=None)
    def test_indexed_matches_equal_brute_force(self, texts, row):
        """The fundamental soundness+completeness property of EXP-4."""
        index = PredicateIndex()
        rules = []
        for i, text in enumerate(texts):
            rule = Rule.from_text(f"r{i}", text)
            rules.append(rule)
            index.add(rule)
        context = EventContext(row)
        brute = {
            rule.rule_id
            for rule in rules
            if evaluate_predicate(rule.condition, context)
        }
        via_index = {
            rule.rule_id
            for rule in index.candidates(context)
            if evaluate_predicate(rule.condition, context)
        }
        assert via_index == brute

    @given(
        st.lists(condition_texts(), min_size=2, max_size=30),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_removal_is_complete(self, texts, data):
        index = PredicateIndex()
        rules = {}
        for i, text in enumerate(texts):
            rule = Rule.from_text(f"r{i}", text)
            rules[rule.rule_id] = rule
            index.add(rule)
        victims = data.draw(
            st.lists(st.sampled_from(sorted(rules)), unique=True, max_size=10)
        )
        for rule_id in victims:
            index.remove(rule_id)
        context = EventContext({"a": 5, "b": 25.0, "c": "k3"})
        candidate_ids = {rule.rule_id for rule in index.candidates(context)}
        assert candidate_ids.isdisjoint(victims)
