"""Randomized crash-recovery property suite (ISSUE 3 tentpole).

Each run drives a seeded mixed workload — DML on a table, enqueues,
delivery pumps with flaky consumers — against a file-backed database
with ONE crash armed at a randomly chosen failpoint.  When the fault
fires, the "process dies" (the workload stops at the raised
:class:`FaultInjectedError`); recovery opens a fresh :class:`Database`
over the journal and the invariants are checked against the model the
workload tracked:

* **No committed write lost** — every key whose last op completed is
  present with that value.
* **No uncommitted write visible** — every recovered row is explained
  by a completed op, or by *the* single in-flight op the crash
  interrupted (which may have become durable or not).
* **No message lost** — every durably enqueued message was either
  definitely consumed, is still pending in its queue, sits in the
  dead-letter queue, or was consumed in the batch the crash
  interrupted (at-least-once: it may also still be pending).
* **No message resurrected** — a message whose ack batch committed
  never reappears.

Everything is deterministic per seed: the workload draws from its own
``random.Random``, the injector from its seeded RNG, and the clock is
simulated — a failing ``(seed,)`` id replays exactly.
"""

from __future__ import annotations

import json
import random
import warnings

import pytest

from repro.clock import SimulatedClock
from repro.db import Database
from repro.errors import FaultInjectedError, TornTailWarning
from repro.faults import (
    BROKER_ACK,
    BROKER_CONSUME,
    BROKER_PUBLISH,
    WAL_APPEND,
    WAL_PRE_FLUSH,
    WAL_TORN_WRITE,
    FaultInjector,
    on_hit,
    raise_fault,
    torn_write,
)
from repro.pubsub.delivery import DeliveryManager
from repro.queues.broker import QueueBroker

# Tier-1 runs this fixed subset; it satisfies the ">= 20 distinct
# seeds" acceptance bar while staying fast and reproducible.
SEEDS = list(range(20))

ABSENT = object()  # sentinel: "row may have vanished"

# (name, action factory) — the crash menu a seed draws from.
CRASH_POINTS = [
    (WAL_APPEND, lambda: raise_fault("crash in append")),
    (WAL_PRE_FLUSH, lambda: raise_fault("crash before flush")),
    (WAL_TORN_WRITE, lambda: torn_write("truncate")),
    (WAL_TORN_WRITE, lambda: torn_write("corrupt")),
    (BROKER_PUBLISH, lambda: raise_fault("crash in publish")),
    (BROKER_CONSUME, lambda: raise_fault("crash in consume")),
    (BROKER_ACK, lambda: raise_fault("crash in ack")),
]


class WorkloadModel:
    """What the workload believes is durably true."""

    def __init__(self) -> None:
        self.committed: dict[int, int] = {}  # key -> value
        self.in_flight: tuple[int, set] | None = None  # key, allowed outcomes
        self.enq_ok: set[int] = set()
        self.enq_maybe: set[int] = set()
        self.consumed_ok: set[int] = set()
        self.consumed_maybe: set[int] = set()


def run_workload(seed: int, path: str) -> WorkloadModel:
    rng = random.Random(seed)
    clock = SimulatedClock(start=1000.0)
    injector = FaultInjector(seed=seed)
    db = Database(path=path, clock=clock, faults=injector)
    broker = QueueBroker(db)
    broker.create_queue("jobs")
    broker.create_queue("dead")
    db.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
    manager = DeliveryManager(
        broker, "jobs", ack_timeout=5.0, max_attempts=3, dead_letter_queue="dead"
    )

    # Consumers are flaky on their own (handled failures -> retry/DLQ),
    # independent of the injected crash.  Seeded, so re-runs match.
    consumer_rng = random.Random(seed + 10_000)
    model = WorkloadModel()
    consumed_this_batch: list[int] = []

    def consumer(message) -> None:
        if consumer_rng.random() < 0.25:
            raise RuntimeError("flaky consumer")
        consumed_this_batch.append(message.payload["uid"])

    # Arm exactly one crash; everything after it models process death.
    name, action = CRASH_POINTS[rng.randrange(len(CRASH_POINTS))]
    injector.arm(name, action(), policy=on_hit(rng.randint(1, 40)))

    next_key = 0
    next_uid = 0
    try:
        for _ in range(60):
            clock.advance(rng.uniform(0.0, 2.0))
            roll = rng.random()
            if roll < 0.30:  # insert
                key, value = next_key, rng.randrange(1000)
                next_key += 1
                model.in_flight = (key, {ABSENT, value})
                db.execute(f"INSERT INTO kv VALUES ({key}, {value})")
                model.committed[key] = value
            elif roll < 0.45 and model.committed:  # update
                key = rng.choice(sorted(model.committed))
                value = rng.randrange(1000)
                model.in_flight = (key, {model.committed[key], value})
                db.execute(f"UPDATE kv SET v = {value} WHERE k = {key}")
                model.committed[key] = value
            elif roll < 0.55 and model.committed:  # delete
                key = rng.choice(sorted(model.committed))
                model.in_flight = (key, {model.committed[key], ABSENT})
                db.execute(f"DELETE FROM kv WHERE k = {key}")
                del model.committed[key]
            elif roll < 0.80:  # enqueue
                uid = next_uid
                next_uid += 1
                model.enq_maybe.add(uid)
                broker.publish("jobs", {"uid": uid})
                model.enq_maybe.discard(uid)
                model.enq_ok.add(uid)
            else:  # pump delivery
                consumed_this_batch.clear()
                manager.process_batch(consumer, batch=rng.randint(1, 5))
                # The batch ack committed before process_batch returned.
                model.consumed_ok.update(consumed_this_batch)
                consumed_this_batch.clear()
            model.in_flight = None
    except FaultInjectedError:
        # Process death: messages consumed in the interrupted batch may
        # or may not have been acked.
        model.consumed_maybe.update(consumed_this_batch)
    return model


def scan_queue_uids(db: Database, table_name: str) -> set[int]:
    uids: set[int] = set()
    table = db.catalog.table(table_name)
    for _rowid, row in table.scan():
        if row["state"] not in ("ready", "locked"):
            continue
        payload = json.loads(row["payload"]) if row["payload"] else None
        if isinstance(payload, dict) and "uid" in payload:
            uids.add(payload["uid"])
        else:  # tombstone: the id lives in headers
            headers = json.loads(row["headers"]) if row["headers"] else {}
            if "origin_message_id" in headers:
                uids.add(("tombstone", headers["origin_message_id"]))
    return uids


@pytest.mark.crash
@pytest.mark.parametrize("seed", SEEDS)
def test_crash_recovery_invariants(seed: int, tmp_path) -> None:
    path = str(tmp_path / "crash.wal")
    model = run_workload(seed, path)

    with warnings.catch_warnings():
        # A torn tail is an *expected* recovery outcome here.
        warnings.simplefilter("ignore", TornTailWarning)
        recovered = Database(path=path, clock=SimulatedClock(start=9999.0))

    # -- table invariants ---------------------------------------------------
    rows = {
        row["k"]: row["v"] for row in recovered.query("SELECT k, v FROM kv")
    }
    uncertain_key = model.in_flight[0] if model.in_flight else None
    for key, value in model.committed.items():
        if key == uncertain_key:
            continue  # the crash interrupted an op on this key
        assert rows.get(key, ABSENT) == value, (
            f"seed {seed}: committed kv[{key}]={value} lost (got "
            f"{rows.get(key, ABSENT)!r})"
        )
    for key, value in rows.items():
        if key == uncertain_key:
            allowed = model.in_flight[1]
            assert value in allowed or key in model.committed, (
                f"seed {seed}: in-flight kv[{key}] recovered as {value!r}, "
                f"allowed {allowed!r}"
            )
        else:
            assert model.committed.get(key) == value, (
                f"seed {seed}: phantom row kv[{key}]={value!r} (uncommitted "
                "write became visible)"
            )

    # -- message invariants -------------------------------------------------
    in_jobs = scan_queue_uids(recovered, "q_jobs")
    in_dead = scan_queue_uids(recovered, "q_dead")
    accounted = model.consumed_ok | model.consumed_maybe | in_jobs | in_dead
    lost = model.enq_ok - accounted
    assert not lost, f"seed {seed}: durably enqueued messages lost: {lost}"

    plain_uids = {u for u in in_jobs | in_dead if isinstance(u, int)}
    phantoms = plain_uids - model.enq_ok - model.enq_maybe
    assert not phantoms, f"seed {seed}: phantom messages: {phantoms}"

    resurrected = model.consumed_ok & plain_uids
    assert not resurrected, (
        f"seed {seed}: acked messages resurrected: {resurrected}"
    )


@pytest.mark.crash
def test_crash_point_coverage(tmp_path) -> None:
    """The 20-seed subset must actually exercise a spread of crash
    points (guards against the seed list degenerating into one path)."""
    names = set()
    for seed in SEEDS:
        rng = random.Random(seed)
        name, _action = CRASH_POINTS[rng.randrange(len(CRASH_POINTS))]
        names.add(name)
    assert len(names) >= 4, f"seed subset only covers {sorted(names)}"
