"""Hypothesis property tests for the database substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.index import OrderedIndex, _sort_key
from repro.db.schema import Column, TableSchema
from repro.db.storage import HeapTable
from repro.db.types import INT, REAL, TEXT, compare_values
from repro.db.wal import OP_ABORT, OP_COMMIT, OP_INSERT, JournalReader, WriteAheadLog

scalars = st.one_of(
    st.none(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
)


class TestCompareValues:
    @given(scalars, scalars)
    def test_antisymmetric(self, a, b):
        assert compare_values(a, b) == -compare_values(b, a)

    @given(scalars)
    def test_reflexive(self, a):
        assert compare_values(a, a) == 0

    @given(st.lists(scalars, min_size=2, max_size=20))
    def test_sort_key_consistent_with_compare(self, values):
        """Sorting by _sort_key must agree pairwise with compare_values."""
        ordered = sorted(values, key=_sort_key)
        for left, right in zip(ordered, ordered[1:]):
            assert compare_values(left, right) <= 0


class TestOrderedIndexProperties:
    @given(
        st.lists(
            st.tuples(st.integers(-100, 100), st.integers(1, 10**6)),
            max_size=100,
            unique_by=lambda pair: pair[1],
        )
    )
    def test_range_scan_equals_filter(self, entries):
        index = OrderedIndex("ix", "t", "c")
        for key, rowid in entries:
            index.insert(key, rowid)
        low, high = -30, 40
        scanned = sorted(rowid for _k, rowid in index.range_scan(low, high))
        expected = sorted(
            rowid for key, rowid in entries if low <= key <= high
        )
        assert scanned == expected

    @given(
        st.lists(
            st.tuples(st.integers(-50, 50), st.integers(1, 10**6)),
            max_size=60,
            unique_by=lambda pair: pair[1],
        ),
        st.data(),
    )
    def test_delete_then_lookup_consistent(self, entries, data):
        index = OrderedIndex("ix", "t", "c")
        for key, rowid in entries:
            index.insert(key, rowid)
        surviving = dict()
        for key, rowid in entries:
            surviving[rowid] = key
        if entries:
            victims = data.draw(
                st.lists(st.sampled_from(entries), max_size=len(entries))
            )
            for key, rowid in victims:
                if rowid in surviving:
                    index.delete(key, rowid)
                    del surviving[rowid]
        for key, rowid in entries:
            found = rowid in set(index.lookup(key))
            assert found == (rowid in surviving)


rows = st.fixed_dictionaries(
    {
        "a": st.integers(-1000, 1000),
        "b": st.one_of(st.none(), st.text(max_size=8)),
    }
)


class TestHeapTableProperties:
    @given(st.lists(rows, max_size=50))
    def test_insert_scan_roundtrip(self, inserted):
        table = HeapTable(TableSchema("t", [Column("a", INT), Column("b", TEXT)]))
        rowids = [table.insert(row) for row in inserted]
        scanned = {rowid: row for rowid, row in table.scan()}
        assert len(scanned) == len(inserted)
        for rowid, original in zip(rowids, inserted):
            assert scanned[rowid] == original

    @given(st.lists(rows, min_size=1, max_size=30), st.data())
    def test_snapshot_restore_identity(self, inserted, data):
        table = HeapTable(TableSchema("t", [Column("a", INT), Column("b", TEXT)]))
        table.create_index("ix_a", "a")
        for row in inserted:
            table.insert(row)
        snapshot = table.snapshot()
        # Arbitrary mutations afterwards...
        victims = data.draw(
            st.lists(st.sampled_from(sorted(snapshot)), max_size=10)
        )
        for rowid in set(victims):
            table.delete(rowid)
        # ...are fully undone by restore.
        table.restore(snapshot)
        assert table.snapshot() == snapshot
        for rowid, row in snapshot.items():
            assert rowid in set(table.indexes["ix_a"].lookup(row["a"]))


@st.composite
def wal_histories(draw):
    """Random interleaved transaction histories."""
    n_txns = draw(st.integers(1, 6))
    operations = []
    fates = {}
    for txid in range(1, n_txns + 1):
        count = draw(st.integers(1, 4))
        for i in range(count):
            operations.append((txid, i))
        fates[txid] = draw(st.sampled_from(["commit", "abort", "inflight"]))
    draw(st.randoms()).shuffle(operations)
    return operations, fates


class TestJournalProperties:
    @given(wal_histories())
    @settings(max_examples=60)
    def test_reader_sees_exactly_committed_dml(self, history):
        operations, fates = history
        wal = WriteAheadLog()
        reader = JournalReader(wal)
        for txid, i in operations:
            wal.append(txid, OP_INSERT, table="t", rowid=txid * 100 + i, after={})
        for txid, fate in fates.items():
            if fate == "commit":
                wal.append(txid, OP_COMMIT)
            elif fate == "abort":
                wal.append(txid, OP_ABORT)
        records = reader.poll()
        seen_txids = {record.txid for record in records}
        committed = {txid for txid, fate in fates.items() if fate == "commit"}
        assert seen_txids == {t for t in committed
                              if any(op[0] == t for op in operations)}
        expected_count = sum(
            1 for txid, _ in operations if fates[txid] == "commit"
        )
        assert len(records) == expected_count
        # Polling again yields nothing new.
        assert reader.poll() == []
