"""Cross-cutting property tests over assembled subsystems."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import SimulatedClock
from repro.core import RecipientProfile, VirtFilter, VirtScorer
from repro.db import Database
from repro.events import Event


class TestInsertSelectRoundtrip:
    @given(
        st.lists(
            st.tuples(
                st.integers(-100, 100),
                st.text(
                    alphabet=st.characters(
                        codec="utf-8", exclude_characters="'\x00"
                    ),
                    max_size=8,
                ),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_copy_preserves_rows(self, rows):
        db = Database()
        db.execute("CREATE TABLE src (a INT, b TEXT)")
        for a, b in rows:
            db.insert_row("src", {"a": a, "b": b})
        db.execute("CREATE TABLE dst (a INT, b TEXT)")
        db.execute("INSERT INTO dst SELECT a, b FROM src")
        original = sorted(
            (row["a"], row["b"]) for _id, row in db.catalog.table("src").scan()
        )
        copied = sorted(
            (row["a"], row["b"]) for _id, row in db.catalog.table("dst").scan()
        )
        assert copied == original


class TestVirtProperties:
    scores = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)

    @given(st.lists(scores, min_size=1, max_size=40),
           st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=80)
    def test_delivery_monotone_in_threshold(self, values, t_low, t_high):
        """Raising the threshold never delivers more."""
        low, high = sorted((t_low, t_high))
        clock = SimulatedClock()
        scorer = VirtScorer(clock, include_timeliness=False)
        profile = RecipientProfile("r", interests={"*": 0.5})
        events = [Event("e", 0.0, {"score": value}) for value in values]

        def delivered(threshold):
            virt = VirtFilter(scorer, profile, threshold=threshold)
            for event in events:
                virt.offer(event)
            return virt.stats["delivered"]

        assert delivered(high) <= delivered(low)

    @given(st.lists(scores, min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_score_monotone_in_surprise(self, values):
        """More surprising events never score lower, all else equal."""
        clock = SimulatedClock()
        scorer = VirtScorer(clock, include_timeliness=False)
        profile = RecipientProfile("r", interests={"*": 1.0})
        ordered = sorted(values)
        computed = [
            scorer.score(Event("e", 0.0, {"score": value}), profile)
            for value in ordered
        ]
        assert all(a <= b + 1e-12 for a, b in zip(computed, computed[1:]))

    @given(st.lists(scores, min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_stats_conserve(self, values):
        clock = SimulatedClock()
        virt = VirtFilter(
            VirtScorer(clock, include_timeliness=False),
            RecipientProfile("r", interests={"*": 1.0}),
            threshold=0.7,
        )
        for value in values:
            virt.offer(Event("e", 0.0, {"score": value}))
        stats = virt.stats
        assert stats["delivered"] + stats["suppressed"] == stats["seen"]
        assert stats["seen"] == len(values)


class TestAlertDedupProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["k1", "k2"]), st.floats(0, 500, allow_nan=False)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_raised_plus_deduplicated_equals_offered(self, offers):
        from repro.core import AlertManager

        clock = SimulatedClock()
        manager = AlertManager(clock, cooldown=60.0)
        offers = sorted(offers, key=lambda pair: pair[1])
        for kind, at in offers:
            clock.advance_to(max(clock.now(), at))
            manager.raise_alert(kind, Event("e", at, {}), entity="x")
        assert (
            manager.stats["raised"] + manager.stats["deduplicated"]
            == len(offers)
        )
        # Within any cooldown window there is at most one open alert per
        # (kind, entity): successive raised alerts of one kind are >=
        # cooldown apart (unless acknowledged, which never happens here).
        for kind in ("k1", "k2"):
            times = sorted(
                alert.created_at
                for alert in manager._alerts.values()
                if alert.kind == kind
            )
            assert all(b - a >= 60.0 for a, b in zip(times, times[1:]))
