"""Compiled vs interpreted expression evaluation must agree exactly.

The expression compiler (:func:`repro.db.expr.compile_expression`)
lowers an AST to one closure; every hot path that adopted it (WHERE
loops, CHECKs, trigger WHEN guards, rules, pub/sub filters, CQ
operators) relies on the two evaluators being observably identical —
including three-valued logic (NULL → UNKNOWN), LIKE, ranges, CASE,
functions, and the errors they raise.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.expr import (
    compile_expression,
    compile_predicate,
    evaluate_predicate,
)
from repro.db.sql.parser import parse_expression
from repro.errors import ExpressionError
from repro.rules.engine import EventContext


@st.composite
def expression_texts(draw):
    """Random value expressions over a (int), b (float), c (str)."""
    kind = draw(st.integers(0, 9))
    if kind == 0:
        return f"a + {draw(st.integers(-5, 5))} * b"
    if kind == 1:
        return f"b / {draw(st.sampled_from([2, 4, 0.5]))}"
    if kind == 2:
        return f"coalesce(a, {draw(st.integers(0, 9))})"
    if kind == 3:
        return f"upper(c) || '-{draw(st.integers(0, 9))}'"
    if kind == 4:
        return (
            f"CASE WHEN a > {draw(st.integers(0, 20))} THEN 'big' "
            f"WHEN a IS NULL THEN 'null' ELSE 'small' END"
        )
    if kind == 5:
        return f"length(c) + {draw(st.integers(0, 3))}"
    if kind == 6:
        return f"round(b, {draw(st.integers(0, 2))})"
    if kind == 7:
        return f"nullif(a, {draw(st.integers(0, 25))})"
    if kind == 8:
        return f"-a + abs(b - {draw(st.integers(0, 50))})"
    return f"{draw(st.integers(0, 9))} + {draw(st.integers(0, 9))}"


@st.composite
def predicate_texts(draw):
    """Random predicates covering every compiled node type."""
    clauses = draw(st.integers(1, 4))
    parts = []
    for _ in range(clauses):
        kind = draw(st.integers(0, 9))
        if kind == 0:
            op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
            parts.append(f"a {op} {draw(st.integers(0, 25))}")
        elif kind == 1:
            low = draw(st.integers(0, 50))
            high = low + draw(st.integers(0, 30))
            neg = draw(st.sampled_from(["", "NOT "]))
            parts.append(f"b {neg}BETWEEN {low} AND {high}")
        elif kind == 2:
            pattern = draw(
                st.sampled_from(["k%", "%1", "k_", "%", "_", "k1", "%k%"])
            )
            neg = draw(st.sampled_from(["", "NOT "]))
            parts.append(f"c {neg}LIKE '{pattern}'")
        elif kind == 3:
            neg = draw(st.sampled_from(["", "NOT "]))
            parts.append(f"a IS {neg}NULL")
        elif kind == 4:
            values = ", ".join(
                str(draw(st.integers(0, 25))) for _ in range(draw(st.integers(1, 3)))
            )
            neg = draw(st.sampled_from(["", "NOT "]))
            parts.append(f"a {neg}IN ({values})")
        elif kind == 5:
            parts.append(f"c = 'k{draw(st.integers(0, 8))}'")
        elif kind == 6:
            parts.append(f"NOT (b < {draw(st.integers(0, 80))})")
        elif kind == 7:
            parts.append(f"a + b > {draw(st.integers(0, 50))}")
        elif kind == 8:
            parts.append(
                "CASE WHEN c IS NULL THEN FALSE ELSE length(c) = 2 END"
            )
        else:
            parts.append(draw(st.sampled_from(["TRUE", "FALSE", "NULL"])))
    connector = draw(st.sampled_from([" AND ", " OR "]))
    return connector.join(parts)


rows = st.fixed_dictionaries(
    {
        "a": st.one_of(st.none(), st.integers(0, 25)),
        "b": st.one_of(st.none(), st.floats(0, 100, allow_nan=False)),
        "c": st.one_of(st.none(), st.sampled_from([f"k{i}" for i in range(10)])),
    }
)


def _outcome(fn, *args):
    """Value or (sentinel, message) of the raised ExpressionError."""
    try:
        return ("value", fn(*args))
    except ExpressionError as exc:
        return ("error", str(exc))


class TestCompiledEquivalence:
    @given(predicate_texts(), rows)
    @settings(max_examples=300, deadline=None)
    def test_predicates_agree_on_plain_dicts(self, text, row):
        expression = parse_expression(text)
        interpreted = _outcome(evaluate_predicate, expression, row)
        compiled = _outcome(compile_predicate(expression), row)
        assert interpreted == compiled

    @given(predicate_texts(), rows)
    @settings(max_examples=300, deadline=None)
    def test_predicates_agree_on_event_contexts(self, text, row):
        """EventContext reads absent keys as NULL; both evaluators must
        honor that (the compiled column lookup may not use .get)."""
        expression = parse_expression(text)
        context = EventContext({k: v for k, v in row.items() if v is not None})
        interpreted = _outcome(evaluate_predicate, expression, context)
        compiled = _outcome(compile_predicate(expression), context)
        assert interpreted == compiled

    @given(predicate_texts(), rows)
    @settings(max_examples=200, deadline=None)
    def test_raw_evaluation_is_three_valued_and_identical(self, text, row):
        expression = parse_expression(text)
        interpreted = _outcome(expression.evaluate, row)
        compiled = _outcome(compile_expression(expression), row)
        assert interpreted == compiled
        if interpreted[0] == "value":
            assert interpreted[1] in (True, False, None)

    @given(expression_texts(), rows)
    @settings(max_examples=300, deadline=None)
    def test_value_expressions_agree(self, text, row):
        """Arithmetic, functions, CASE, concatenation — including the
        errors they raise (division by zero, bad argument types)."""
        expression = parse_expression(text)
        interpreted = _outcome(expression.evaluate, row)
        compiled = _outcome(compile_expression(expression), row)
        assert interpreted == compiled

    @given(predicate_texts())
    @settings(max_examples=100, deadline=None)
    def test_compiled_closure_is_memoized_per_node(self, text):
        expression = parse_expression(text)
        assert compile_expression(expression) is compile_expression(expression)
        assert compile_predicate(expression) is compile_predicate(expression)
