"""The CEP matcher vs a brute-force reference implementation.

The NFA is the part of the system easiest to get subtly wrong, so the
key selection strategies are checked against an exhaustive reference on
random symbol streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq import PatternElement, PatternMatcher, Seq, Stream
from repro.events import Event

SYMBOLS = "ABCX"


def make_events(symbols: str) -> list[Event]:
    return [
        Event("sym", float(i), {"kind": kind, "i": i})
        for i, kind in enumerate(symbols)
    ]


def seq2(within=None):
    return Seq(
        PatternElement("a", "sym", "kind = 'A'"),
        PatternElement("b", "sym", "kind = 'B'"),
        within=within,
    )


def run_matcher(pattern, events, selection):
    source = Stream("s")
    matcher = PatternMatcher(
        source, pattern, output_type="m", selection=selection
    )
    matches = []
    matcher.subscribe(lambda e: matches.append((e["a_i"], e["b_i"])))
    for event in events:
        source.push(event)
    return sorted(matches)


def reference_seq2(symbols: str, selection: str, within=None):
    """Exhaustive SEQ(A, B) semantics per selection strategy."""
    matches = []
    n = len(symbols)
    for i in range(n):
        if symbols[i] != "A":
            continue
        if selection == "strict":
            j = i + 1
            if j < n and symbols[j] == "B":
                if within is None or j - i <= within:
                    matches.append((i, j))
        elif selection == "skip_till_next":
            for j in range(i + 1, n):
                if symbols[j] == "B":
                    if within is None or j - i <= within:
                        matches.append((i, j))
                    break
        else:  # skip_till_any
            for j in range(i + 1, n):
                if symbols[j] == "B" and (within is None or j - i <= within):
                    matches.append((i, j))
    return sorted(matches)


symbol_streams = st.text(alphabet=SYMBOLS, min_size=0, max_size=40)


class TestAgainstReference:
    @given(symbol_streams)
    @settings(max_examples=150)
    def test_skip_till_next(self, symbols):
        events = make_events(symbols)
        assert run_matcher(seq2(), events, "skip_till_next") == reference_seq2(
            symbols, "skip_till_next"
        )

    @given(symbol_streams)
    @settings(max_examples=150)
    def test_skip_till_any(self, symbols):
        events = make_events(symbols)
        assert run_matcher(seq2(), events, "skip_till_any") == reference_seq2(
            symbols, "skip_till_any"
        )

    @given(symbol_streams)
    @settings(max_examples=150)
    def test_strict(self, symbols):
        events = make_events(symbols)
        assert run_matcher(seq2(), events, "strict") == reference_seq2(
            symbols, "strict"
        )

    @given(symbol_streams, st.integers(1, 10))
    @settings(max_examples=150)
    def test_within_bound(self, symbols, within):
        events = make_events(symbols)
        got = run_matcher(seq2(within=float(within)), events, "skip_till_any")
        assert got == reference_seq2(symbols, "skip_till_any", within=within)

    @given(symbol_streams)
    @settings(max_examples=100)
    def test_negation_reference(self, symbols):
        """SEQ(A, ¬X, B) skip-till-next: first B after each A with no X
        in between."""
        pattern = Seq(
            PatternElement("a", "sym", "kind = 'A'"),
            PatternElement("x", "sym", "kind = 'X'", negated=True),
            PatternElement("b", "sym", "kind = 'B'"),
        )
        events = make_events(symbols)
        got = run_matcher(pattern, events, "skip_till_next")
        expected = []
        n = len(symbols)
        for i in range(n):
            if symbols[i] != "A":
                continue
            for j in range(i + 1, n):
                if symbols[j] == "X":
                    break  # run killed
                if symbols[j] == "B":
                    expected.append((i, j))
                    break
        assert got == sorted(expected)

    @given(symbol_streams)
    @settings(max_examples=100)
    def test_pruning_never_changes_matches(self, symbols):
        events = make_events(symbols)
        pattern = seq2(within=5.0)

        def run(prune):
            source = Stream("s")
            matcher = PatternMatcher(
                source, pattern, output_type="m", prune_expired=prune
            )
            matches = []
            matcher.subscribe(lambda e: matches.append((e["a_i"], e["b_i"])))
            for event in events:
                source.push(event)
            return sorted(matches)

        assert run(True) == run(False)
