"""Parser robustness: arbitrary input must fail cleanly, never crash.

The SQL surface is exposed to external clients (the extended-INSERT
interface), so the lexer/parser must reject garbage with
:class:`SqlSyntaxError` — never an unhandled exception — and accept
everything it itself considers well-formed, idempotently.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.db.sql.lexer import tokenize
from repro.db.sql.parser import parse_expression, parse_statement
from repro.errors import SqlSyntaxError

sql_fragments = st.lists(
    st.sampled_from([
        "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE",
        "SET", "DELETE", "CREATE", "TABLE", "INDEX", "AND", "OR", "NOT",
        "IN", "BETWEEN", "LIKE", "NULL", "GROUP", "BY", "ORDER", "LIMIT",
        "t", "a", "b", "x1", "count", "sum", "(", ")", ",", "=", "<", ">",
        "<=", ">=", "!=", "*", "+", "-", "/", "1", "2.5", "'str'", ";", ".",
        "EXPLAIN", "JOIN", "ON", "AS", "EXISTS", "CASE", "WHEN", "THEN",
        "END", "IS",
    ]),
    min_size=1,
    max_size=15,
)


class TestFuzz:
    @given(sql_fragments)
    @settings(max_examples=400)
    def test_statement_parser_never_crashes(self, fragments):
        text = " ".join(fragments)
        try:
            parse_statement(text)
        except SqlSyntaxError:
            pass  # clean rejection is the contract

    @given(sql_fragments)
    @settings(max_examples=300)
    def test_expression_parser_never_crashes(self, fragments):
        text = " ".join(fragments)
        try:
            parse_expression(text)
        except SqlSyntaxError:
            pass

    @given(st.text(max_size=60))
    @settings(max_examples=300)
    def test_lexer_never_crashes_on_arbitrary_text(self, text):
        try:
            tokenize(text)
        except SqlSyntaxError:
            pass

    @given(sql_fragments)
    @settings(max_examples=150, deadline=None)
    def test_execute_rejects_cleanly(self, fragments):
        """The full execute path surfaces only library errors."""
        from repro.errors import ReproError

        db = Database()
        db.execute("CREATE TABLE t (a INT, b TEXT)")
        text = " ".join(fragments)
        try:
            db.execute(text)
        except ReproError:
            pass
        # Whatever happened, the database remains usable.
        assert db.execute("SELECT count(*) FROM t").scalar() is not None


class TestRoundtripStability:
    @pytest.mark.parametrize("sql", [
        "SELECT a, b FROM t WHERE a = 1",
        "INSERT INTO t (a) VALUES (1)",
        "UPDATE t SET a = 2 WHERE b LIKE 'x%'",
        "DELETE FROM t WHERE a IN (1, 2)",
    ])
    def test_parse_is_deterministic(self, sql):
        first = parse_statement(sql)
        second = parse_statement(sql)
        assert type(first) is type(second)
