"""Rule engine: evaluation modes, actions, internal data, pub/sub."""

import pytest

from repro.errors import PubSubError, RuleError, RuleNotFoundError
from repro.events import Event
from repro.queues import QueueBroker
from repro.rules import (
    ActionRegistry,
    CollectAction,
    EnqueueAction,
    NotifyAction,
    PubSubRules,
    Rule,
    RuleEngine,
)


def tick(price=100.0, symbol="IBM", **extra):
    return Event("tick", 1.0, {"price": price, "symbol": symbol, **extra})


class TestEvaluation:
    def test_matching_rule_fires_action(self):
        engine = RuleEngine()
        collect = CollectAction()
        engine.add("hot", "price > 100", action=collect)
        engine.evaluate(tick(price=150))
        engine.evaluate(tick(price=50))
        assert len(collect) == 1
        assert collect.seen[0][0] == "hot"

    def test_event_type_filter(self):
        engine = RuleEngine()
        collect = CollectAction()
        engine.add("orders_only", "TRUE", action=collect, event_types=("orders.*",))
        engine.evaluate(tick())
        engine.evaluate(Event("orders.insert", 1.0, {}))
        assert len(collect) == 1

    def test_missing_attribute_is_null(self):
        engine = RuleEngine()
        matches = engine.evaluate(
            Event("tick", 1.0, {"price": 5}), run_actions=False
        )
        engine.add("needs_qty", "qty > 10")
        matches = engine.evaluate(tick(), run_actions=False)
        assert matches == []  # qty absent -> NULL -> no match

    def test_priority_orders_matches(self):
        engine = RuleEngine()
        order = []
        engine.add("low", "TRUE", action=lambda r, c: order.append("low"), priority=1)
        engine.add("high", "TRUE", action=lambda r, c: order.append("high"), priority=9)
        engine.evaluate(tick())
        assert order == ["high", "low"]

    def test_disabled_rule_skipped(self):
        engine = RuleEngine()
        collect = CollectAction()
        engine.add("r", "TRUE", action=collect)
        engine.set_enabled("r", False)
        engine.evaluate(tick())
        assert len(collect) == 0

    def test_duplicate_rule_id_rejected(self):
        engine = RuleEngine()
        engine.add("r", "TRUE")
        with pytest.raises(RuleError):
            engine.add("r", "TRUE")

    def test_remove_rule(self):
        engine = RuleEngine()
        engine.add("r", "TRUE")
        engine.remove_rule("r")
        assert engine.evaluate(tick(), run_actions=False) == []
        with pytest.raises(RuleNotFoundError):
            engine.remove_rule("r")

    def test_unknown_mode_rejected(self):
        with pytest.raises(RuleError):
            RuleEngine(mode="quantum")


class TestModesAgree:
    def test_indexed_evaluates_fewer_conditions(self):
        indexed = RuleEngine(mode="indexed")
        naive = RuleEngine(mode="naive")
        for i in range(200):
            for engine in (indexed, naive):
                engine.add(f"r{i}", f"symbol = 'S{i}'")
        event = Event("tick", 1.0, {"symbol": "S7"})
        m1 = indexed.evaluate(event, run_actions=False)
        m2 = naive.evaluate(event, run_actions=False)
        assert [m.rule.rule_id for m in m1] == [m.rule.rule_id for m in m2] == ["r7"]
        assert indexed.stats["conditions_evaluated"] < 10
        assert naive.stats["conditions_evaluated"] == 200


class TestInternalData:
    def test_evaluate_table(self, orders_db):
        engine = RuleEngine()
        engine.add("big", "qty >= 100")
        matches = engine.evaluate_table(orders_db, "orders")
        assert len(matches) == 2  # qty 100 and 200

    def test_evaluate_queue(self, db):
        broker = QueueBroker(db)
        broker.create_queue("q")
        broker.publish("q", {"sev": 1})
        broker.publish("q", {"sev": 5})
        engine = RuleEngine()
        engine.add("urgent", "sev >= 3")
        matches = engine.evaluate_queue(broker.queue("q"))
        assert len(matches) == 1
        assert matches[0].context["sev"] == 5


class TestActions:
    def test_registry(self):
        registry = ActionRegistry()
        action = CollectAction()
        registry.register("c", action)
        assert registry.get("c") is action
        with pytest.raises(RuleError):
            registry.register("c", action)
        with pytest.raises(RuleError):
            registry.get("ghost")

    def test_enqueue_action(self, db):
        broker = QueueBroker(db)
        broker.create_queue("alerts")
        engine = RuleEngine()
        engine.add(
            "hot", "price > 100",
            action=EnqueueAction(broker, "alerts", priority_key="price"),
        )
        engine.evaluate(tick(price=150))
        message = broker.consume("alerts")
        assert message.payload["rule_id"] == "hot"
        assert message.payload["context"]["price"] == 150
        assert message.priority == 150

    def test_notify_action(self):
        received = []
        action = NotifyAction(lambda rule, ctx: received.append(rule.rule_id))
        engine = RuleEngine()
        engine.add("r", "TRUE", action=action)
        engine.evaluate(tick())
        assert received == ["r"]


class TestPubSubRules:
    def test_content_based_delivery(self):
        pubsub = PubSubRules()
        inbox_a, inbox_b = [], []
        pubsub.subscribe("a", "symbol = 'IBM'", inbox_a.append)
        pubsub.subscribe("b", "price > 1000", inbox_b.append)
        count = pubsub.publish(tick(price=50))
        assert count == 1
        assert len(inbox_a) == 1 and inbox_b == []

    def test_duplicate_subscriber_rejected(self):
        pubsub = PubSubRules()
        pubsub.subscribe("a", "TRUE", lambda e: None)
        with pytest.raises(PubSubError):
            pubsub.subscribe("a", "TRUE", lambda e: None)

    def test_unsubscribe_stops_delivery(self):
        pubsub = PubSubRules()
        inbox = []
        pubsub.subscribe("a", "TRUE", inbox.append)
        pubsub.unsubscribe("a")
        pubsub.publish(tick())
        assert inbox == []

    def test_interested_consumers_no_delivery(self):
        pubsub = PubSubRules()
        inbox = []
        pubsub.subscribe("a", "price > 10", inbox.append)
        interested = pubsub.interested_consumers(tick(price=20))
        assert interested == ["a"]
        assert inbox == []

    def test_publish_lazy_skips_build_when_no_interest(self):
        pubsub = PubSubRules()
        pubsub.subscribe("a", "price > 1000", lambda e: None)

        def exploding_build():
            raise AssertionError("should not be built")

        delivered = pubsub.publish_lazy(
            "tick", 1.0, {"price": 5}, exploding_build
        )
        assert delivered == 0
        assert pubsub.stats["suppressed"] == 1

    def test_publish_lazy_builds_when_interested(self):
        pubsub = PubSubRules()
        inbox = []
        pubsub.subscribe("a", "price > 10", inbox.append)
        delivered = pubsub.publish_lazy(
            "tick", 1.0, {"price": 50},
            lambda: Event("tick", 1.0, {"price": 50, "heavy": "blob"}),
        )
        assert delivered == 1
        assert inbox[0]["heavy"] == "blob"

    def test_delivery_counters(self):
        pubsub = PubSubRules()
        pubsub.subscribe("a", "TRUE", lambda e: None)
        pubsub.publish(tick())
        pubsub.publish(tick())
        assert pubsub.stats == {"published": 2, "delivered": 2, "suppressed": 0}
