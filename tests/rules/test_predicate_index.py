"""Predicate index: anchoring, candidate soundness, interval trees."""

import random

import pytest

from repro.rules import IntervalTree, PredicateIndex, Rule
from repro.rules.index import Interval


class TestIntervalTree:
    def test_stab_basics(self):
        tree = IntervalTree()
        tree.insert(Interval(1.0, 5.0, True, True, "a"))
        tree.insert(Interval(3.0, 8.0, True, True, "b"))
        tree.insert(Interval(10.0, None, True, False, "c"))
        tree.rebuild()
        assert {i.rule_id for i in tree.stab(4)} == {"a", "b"}
        assert {i.rule_id for i in tree.stab(9)} == set()
        assert {i.rule_id for i in tree.stab(100)} == {"c"}

    def test_bound_inclusivity(self):
        tree = IntervalTree()
        tree.insert(Interval(1.0, 5.0, False, False, "open"))
        tree.insert(Interval(1.0, 5.0, True, True, "closed"))
        tree.rebuild()
        assert {i.rule_id for i in tree.stab(1.0)} == {"closed"}
        assert {i.rule_id for i in tree.stab(5.0)} == {"closed"}
        assert {i.rule_id for i in tree.stab(3.0)} == {"open", "closed"}

    def test_remove_via_tombstone(self):
        tree = IntervalTree()
        interval = Interval(1.0, 5.0, True, True, "a")
        tree.insert(interval)
        tree.rebuild()
        tree.remove(interval)
        assert tree.stab(3.0) == []
        assert len(tree) == 0

    def test_pending_inserts_visible_before_rebuild(self):
        tree = IntervalTree()
        tree.insert(Interval(1.0, 2.0, True, True, "a"))
        assert [i.rule_id for i in tree.stab(1.5)] == ["a"]

    def test_non_numeric_stab_empty(self):
        tree = IntervalTree()
        tree.insert(Interval(1.0, 2.0, True, True, "a"))
        assert tree.stab("text") == []
        assert tree.stab(True) == []
        assert tree.stab(None) == []

    def test_matches_linear_scan_randomized(self):
        rng = random.Random(3)
        tree = IntervalTree()
        intervals = []
        for i in range(300):
            low = rng.uniform(0, 100)
            high = low + rng.uniform(0, 20)
            interval = Interval(low, high, True, True, f"r{i}")
            intervals.append(interval)
            tree.insert(interval)
        # Random churn.
        for interval in rng.sample(intervals, 80):
            tree.remove(interval)
            intervals.remove(interval)
        for _ in range(50):
            probe = rng.uniform(-5, 110)
            expected = {i.rule_id for i in intervals if i.contains(probe)}
            actual = {i.rule_id for i in tree.stab(probe)}
            assert actual == expected

    def test_eager_mode_rebuilds_every_time(self):
        tree = IntervalTree(eager=True)
        for i in range(5):
            tree.insert(Interval(float(i), float(i + 1), True, True, f"r{i}"))
        assert tree.rebuilds == 5

    def test_lazy_mode_rebuilds_rarely(self):
        tree = IntervalTree(rebuild_fraction=0.5)
        for i in range(100):
            tree.insert(Interval(float(i), float(i + 1), True, True, f"r{i}"))
        assert tree.rebuilds < 20


class TestAnchoring:
    def test_equality_anchor_preferred(self):
        index = PredicateIndex()
        index.add(Rule.from_text("r", "price > 10 AND symbol = 'IBM'"))
        assert index.residual_count == 0
        # Candidate only when the symbol matches.
        assert len(index.candidates({"symbol": "IBM", "price": 50})) == 1
        assert index.candidates({"symbol": "HP", "price": 50}) == []

    def test_range_anchor(self):
        index = PredicateIndex()
        index.add(Rule.from_text("r", "price BETWEEN 10 AND 20"))
        assert [r.rule_id for r in index.candidates({"price": 15})] == ["r"]
        assert index.candidates({"price": 25}) == []

    def test_unanchorable_goes_residual(self):
        index = PredicateIndex()
        index.add(Rule.from_text("r", "a = 1 OR b = 2"))  # OR: no anchor
        assert index.residual_count == 1
        assert len(index.candidates({"x": 0})) == 1  # always a candidate

    def test_string_range_goes_residual(self):
        index = PredicateIndex()
        index.add(Rule.from_text("r", "name > 'm'"))
        assert index.residual_count == 1

    def test_remove_each_anchor_kind(self):
        index = PredicateIndex()
        index.add(Rule.from_text("eq", "a = 1"))
        index.add(Rule.from_text("rng", "b > 2"))
        index.add(Rule.from_text("res", "a = 1 OR b = 1"))
        for rule_id in ("eq", "rng", "res"):
            index.remove(rule_id)
        assert len(index) == 0
        assert index.candidates({"a": 1, "b": 5}) == []

    def test_missing_attribute_excludes_anchored_rule(self):
        index = PredicateIndex()
        index.add(Rule.from_text("r", "price > 10"))
        # Event without price: NULL comparison could never match.
        assert index.candidates({"qty": 5}) == []


class TestSoundnessAgainstNaive:
    def test_randomized_equivalence(self):
        """The indexed engine must agree exactly with brute force."""
        from repro.db.expr import evaluate_predicate

        rng = random.Random(11)
        index = PredicateIndex()
        rules = []
        for i in range(500):
            kind = rng.randrange(4)
            if kind == 0:
                text = f"region = 'r{rng.randrange(20)}'"
            elif kind == 1:
                low = rng.randrange(90)
                text = f"price BETWEEN {low} AND {low + rng.randrange(1, 10)}"
            elif kind == 2:
                text = f"qty >= {rng.randrange(100)} AND region = 'r{rng.randrange(20)}'"
            else:
                text = f"price < {rng.randrange(100)} OR qty = {rng.randrange(100)}"
            rule = Rule.from_text(f"rule{i}", text)
            rules.append(rule)
            index.add(rule)

        from repro.rules.engine import EventContext

        for _ in range(100):
            context = EventContext(
                {
                    "region": f"r{rng.randrange(25)}",
                    "price": rng.uniform(0, 110),
                    "qty": rng.randrange(120),
                }
            )
            brute = {
                rule.rule_id
                for rule in rules
                if evaluate_predicate(rule.condition, context)
            }
            candidates = index.candidates(context)
            indexed = {
                rule.rule_id
                for rule in candidates
                if evaluate_predicate(rule.condition, context)
            }
            assert indexed == brute

    def test_candidate_set_much_smaller_than_rule_set(self):
        rng = random.Random(5)
        index = PredicateIndex()
        for i in range(2000):
            index.add(
                Rule.from_text(f"r{i}", f"region = 'r{rng.randrange(500)}'")
            )
        from repro.rules.engine import EventContext

        candidates = index.candidates(EventContext({"region": "r7"}))
        # ~2000/500 = 4 expected; anything near 2000 means no indexing.
        assert len(candidates) < 50
