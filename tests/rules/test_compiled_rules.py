"""Compiled rule evaluation, recompilation on churn, and the memoized
referenced-column sets the predicate index reuses."""

import pytest

from repro.db.sql.parser import parse_expression
from repro.events import Event
from repro.rules import PredicateIndex, Rule, RuleEngine
from repro.rules.engine import EventContext


def _event(payload, event_type="tick"):
    return Event(event_type, 1.0, payload)


class TestCompiledEngineAgreement:
    CONDITIONS = [
        ("eq", "region = 'emea' AND qty > 10"),
        ("range", "price BETWEEN 5 AND 10"),
        ("disj", "qty = 3 OR price < 1"),
        ("null", "missing_attr IS NULL"),
        ("like", "region LIKE 'e%'"),
    ]

    EVENTS = [
        {"region": "emea", "qty": 20, "price": 7.5},
        {"region": "apac", "qty": 2, "price": 0.5},
        {"qty": 3},  # absent attributes read as NULL
        {},
        {"region": "emea", "qty": 10, "price": 100.0},
    ]

    @pytest.mark.parametrize("mode", ["indexed", "naive"])
    def test_compiled_and_interpreted_match_sets_agree(self, mode):
        compiled = RuleEngine(mode=mode, compiled=True)
        interpreted = RuleEngine(mode=mode, compiled=False)
        for rule_id, text in self.CONDITIONS:
            compiled.add(rule_id, text)
            interpreted.add(rule_id, text)
        for payload in self.EVENTS:
            a = {
                m.rule.rule_id
                for m in compiled.evaluate(_event(payload), run_actions=False)
            }
            b = {
                m.rule.rule_id
                for m in interpreted.evaluate(
                    _event(payload), run_actions=False
                )
            }
            assert a == b
        assert (
            compiled.stats["conditions_evaluated"]
            == interpreted.stats["conditions_evaluated"]
        )

    def test_compiled_engine_is_the_default(self):
        assert RuleEngine().compiled is True

    def test_event_context_absent_attributes_are_null_when_compiled(self):
        engine = RuleEngine(compiled=True)
        engine.add("r", "qty > 5")
        # qty absent -> NULL -> UNKNOWN -> no match (not a KeyError).
        assert engine.evaluate(_event({"price": 1}), run_actions=False) == []
        assert len(engine.evaluate(_event({"qty": 6}), run_actions=False)) == 1


class TestRecompileOnChurn:
    def test_registration_compiles_eagerly(self):
        engine = RuleEngine(compiled=True)
        rule = engine.add("r", "qty > 5")
        assert rule._compiled_condition is not None

    def test_replacing_a_rule_recompiles_its_condition(self):
        engine = RuleEngine(compiled=True)
        engine.add("r", "qty > 5")
        assert engine.evaluate(_event({"qty": 6}), run_actions=False)
        engine.remove_rule("r")
        engine.add("r", "qty > 100")
        # The new condition (a fresh tree) is what evaluates now.
        assert engine.evaluate(_event({"qty": 6}), run_actions=False) == []
        assert len(engine.evaluate(_event({"qty": 101}), run_actions=False)) == 1

    def test_recompile_after_condition_swap(self):
        rule = Rule.from_text("r", "qty > 5")
        old = rule.compiled_condition
        rule.condition = parse_expression("qty > 50")
        fresh = rule.recompile()
        assert fresh is not old
        assert fresh({"qty": 10}) is False
        assert fresh({"qty": 51}) is True


class TestReferencedColumnsMemo:
    def test_memoized_and_frozen(self):
        expression = parse_expression("a > 1 AND b = 'x' OR c IS NULL")
        first = expression.referenced_columns()
        assert first == frozenset({"a", "b", "c"})
        assert isinstance(first, frozenset)
        # Memoized: the same object comes back, no re-walk.
        assert expression.referenced_columns() is first

    def test_shared_subtree_memo_is_not_corrupted(self):
        """Regression: collecting a parent's columns must not pollute a
        shared child's memo with the parent's other columns."""
        child = parse_expression("a > 1")
        assert child.referenced_columns() == frozenset({"a"})
        from repro.db.expr import BinaryOp

        parent = BinaryOp("AND", child, parse_expression("b < 2"))
        assert parent.referenced_columns() == frozenset({"a", "b"})
        # The shared child still reports only its own columns.
        assert child.referenced_columns() == frozenset({"a"})

    def test_index_captures_columns_at_registration(self):
        index = PredicateIndex()
        rule = Rule.from_text("r", "region = 'emea' AND qty > 2")
        index.add(rule)
        assert index.referenced_columns("r") == frozenset({"region", "qty"})
        index.remove("r")
        assert index.referenced_columns("r") == frozenset()


class TestConstantConditionRules:
    def test_always_true_rule_is_a_permanent_candidate(self):
        index = PredicateIndex()
        index.add(Rule.from_text("t", "1 = 1"))
        assert [r.rule_id for r in index.candidates({})] == ["t"]
        assert [r.rule_id for r in index.candidates({"x": 5})] == ["t"]

    def test_always_false_rule_is_never_a_candidate(self):
        index = PredicateIndex()
        index.add(Rule.from_text("f", "1 = 2"))
        assert index.candidates({}) == []
        assert index.candidates({"x": 5}) == []

    def test_constant_rules_agree_with_naive_evaluation(self):
        for text in ("1 = 1", "1 = 2", "NULL = 1"):
            indexed = RuleEngine(mode="indexed")
            naive = RuleEngine(mode="naive")
            indexed.add("r", text)
            naive.add("r", text)
            for payload in ({}, {"x": 1}):
                a = {
                    m.rule.rule_id
                    for m in indexed.evaluate(_event(payload), run_actions=False)
                }
                b = {
                    m.rule.rule_id
                    for m in naive.evaluate(_event(payload), run_actions=False)
                }
                assert a == b

    def test_constant_rule_removal(self):
        index = PredicateIndex()
        index.add(Rule.from_text("t", "2 = 2"))
        index.remove("t")
        assert index.candidates({}) == []
        assert len(index) == 0
