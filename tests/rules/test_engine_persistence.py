"""Engine ↔ store integration: persisted rules load into a live engine."""

import pytest

from repro.events import Event
from repro.rules import CollectAction, Rule, RuleEngine, RuleStore


class TestEngineLoad:
    def test_load_binds_actions_and_evaluates(self, db):
        store = RuleStore(db)
        collect = CollectAction()
        rule = Rule.from_text("hot", "price > 100", event_types=("tick",))
        rule.action_name = "collect"
        store.save(rule)

        engine = RuleEngine()
        assert engine.load(store, {"collect": collect}) == 1
        engine.evaluate(Event("tick", 0.0, {"price": 500}))
        assert len(collect) == 1

    def test_load_is_idempotent(self, db):
        store = RuleStore(db)
        store.save(Rule.from_text("r", "a = 1"))
        engine = RuleEngine()
        engine.load(store)
        engine.load(store)  # replaces, does not raise
        assert len(engine) == 1

    def test_load_replaces_updated_condition(self, db):
        store = RuleStore(db)
        store.save(Rule.from_text("r", "a = 1"))
        engine = RuleEngine()
        engine.load(store)
        store.save(Rule.from_text("r", "a = 2"))  # upsert
        engine.load(store)
        matches = engine.evaluate(Event("e", 0.0, {"a": 2}), run_actions=False)
        assert [m.rule.rule_id for m in matches] == ["r"]

    def test_crash_recovery_cycle(self, db):
        """The full 'expressions as data' story: rules persist in the
        database, survive a crash, and reload into a fresh engine."""
        store = RuleStore(db)
        collect = CollectAction()
        for i in range(5):
            rule = Rule.from_text(f"r{i}", f"region = 'z{i}'")
            rule.action_name = "collect"
            store.save(rule)

        db.simulate_crash()

        engine = RuleEngine()
        loaded = engine.load(RuleStore(db), {"collect": collect})
        assert loaded == 5
        engine.evaluate(Event("e", 0.0, {"region": "z3"}))
        assert collect.seen[0][0] == "r3"


class TestStreamPlumbing:
    def test_operator_detach(self):
        from repro.cq import FilterOperator, Stream
        from repro.events import Event

        source = Stream("s")
        out = []
        operator = FilterOperator(source, "TRUE")
        operator.subscribe(out.append)
        source.push(Event("e", 0.0, {}))
        operator.detach()
        source.push(Event("e", 1.0, {}))
        assert len(out) == 1

    def test_capture_unsubscribe(self, db):
        from repro.capture import TriggerCapture

        db.execute("CREATE TABLE t (a INT)")
        capture = TriggerCapture(db, ["t"])
        out = []
        capture.subscribe(out.append)
        capture.unsubscribe(out.append)
        db.execute("INSERT INTO t VALUES (1)")
        assert out == []
        assert capture.events_captured == 1  # captured, nobody listening
