"""Rules as data: definition and database persistence."""

import pytest

from repro.errors import RuleError, RuleNotFoundError
from repro.rules import CollectAction, Rule, RuleStore


class TestRule:
    def test_from_text_parses_condition(self):
        rule = Rule.from_text("r1", "price > 100 AND symbol = 'IBM'")
        assert rule.condition.evaluate({"price": 200, "symbol": "IBM"}) is True

    def test_string_condition_in_constructor(self):
        rule = Rule(rule_id="r", condition="a = 1")
        assert rule.condition.evaluate({"a": 1}) is True

    @pytest.mark.parametrize("pattern,event_type,expected", [
        (("orders.insert",), "orders.insert", True),
        (("orders.*",), "orders.delete", True),
        (("*",), "anything", True),
        (("orders.insert",), "orders.update", False),
        (None, "whatever", True),
    ])
    def test_event_type_matching(self, pattern, event_type, expected):
        rule = Rule.from_text("r", "TRUE", event_types=pattern)
        assert rule.matches_event_type(event_type) is expected

    def test_metadata_kwargs(self):
        rule = Rule.from_text("r", "TRUE", owner="ops", ticket=42)
        assert rule.metadata == {"owner": "ops", "ticket": 42}


class TestRuleStore:
    def test_save_load_roundtrip(self, db):
        store = RuleStore(db)
        action = CollectAction()
        rule = Rule.from_text(
            "big", "qty * price > 10000", event_types=("orders.*",), priority=5
        )
        rule.action_name = "collect"
        rule.metadata["owner"] = "desk1"
        store.save(rule)
        loaded = store.load_all({"collect": action})
        assert len(loaded) == 1
        restored = loaded[0]
        assert restored.rule_id == "big"
        assert restored.priority == 5
        assert restored.event_types == ("orders.*",)
        assert restored.metadata == {"owner": "desk1"}
        assert restored.action is action
        assert restored.condition.evaluate({"qty": 200, "price": 100}) is True

    def test_save_is_upsert(self, db):
        store = RuleStore(db)
        store.save(Rule.from_text("r", "a = 1"))
        store.save(Rule.from_text("r", "a = 2"))
        loaded = store.load_all()
        assert len(loaded) == 1
        assert loaded[0].condition.evaluate({"a": 2}) is True

    def test_delete(self, db):
        store = RuleStore(db)
        store.save(Rule.from_text("r", "TRUE"))
        store.delete("r")
        assert store.load_all() == []
        with pytest.raises(RuleNotFoundError):
            store.delete("r")

    def test_missing_action_raises(self, db):
        store = RuleStore(db)
        rule = Rule.from_text("r", "TRUE")
        rule.action_name = "ghost"
        store.save(rule)
        with pytest.raises(RuleError):
            store.load_all({})

    def test_rules_survive_crash(self, db):
        store = RuleStore(db)
        store.save(Rule.from_text("durable", "price > 1"))
        db.simulate_crash()
        reloaded = RuleStore(db).load_all()
        assert [r.rule_id for r in reloaded] == ["durable"]

    def test_rules_queryable_as_data(self, db):
        store = RuleStore(db)
        store.save(Rule.from_text("a", "x = 1", priority=1))
        store.save(Rule.from_text("b", "x = 2", priority=9))
        rows = db.query("SELECT rule_id FROM _rules WHERE priority > 5")
        assert [r["rule_id"] for r in rows] == ["b"]
