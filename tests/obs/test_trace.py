"""Unit tests for trace ids and the TraceLog ring buffer."""

from repro.obs.trace import (
    TraceLog,
    default_trace_log,
    lookup_trace,
    new_trace_id,
    record_hop,
    set_default_trace_log,
)


class TestTraceIds:
    def test_unique_and_stringy(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(tid.startswith("t-") for tid in ids)


class TestTraceLog:
    def test_record_and_lookup_in_order(self):
        log = TraceLog()
        tid = new_trace_id()
        log.record(tid, "capture", 1.0, source="x")
        log.record(tid, "queue.enqueue", 2.0, queue="q")
        log.record(new_trace_id(), "capture", 3.0)
        hops = log.lookup(tid)
        assert [hop.stage for hop in hops] == ["capture", "queue.enqueue"]
        assert hops[0].detail == {"source": "x"}
        assert hops[1].ts == 2.0

    def test_none_trace_id_ignored(self):
        log = TraceLog()
        log.record(None, "capture", 1.0)
        assert len(log) == 0

    def test_disabled_log_records_nothing(self):
        log = TraceLog(enabled=False)
        log.record(new_trace_id(), "capture", 1.0)
        assert len(log) == 0

    def test_ring_buffer_bounded(self):
        log = TraceLog(capacity=10)
        for i in range(50):
            log.record(f"t-fixed-{i}", "stage", float(i))
        assert len(log) == 10
        # Only the newest hops survive.
        assert [hop.ts for hop in log] == [float(i) for i in range(40, 50)]

    def test_trace_ids_distinct_oldest_first(self):
        log = TraceLog()
        log.record("a", "s1", 1.0)
        log.record("b", "s1", 2.0)
        log.record("a", "s2", 3.0)
        assert log.trace_ids() == ["a", "b"]

    def test_clear(self):
        log = TraceLog()
        log.record("a", "s1", 1.0)
        log.clear()
        assert len(log) == 0


class TestDefaultLog:
    def test_module_helpers_use_installed_default(self):
        fresh = TraceLog()
        previous = set_default_trace_log(fresh)
        try:
            tid = new_trace_id()
            record_hop(tid, "capture", 1.0)
            assert default_trace_log() is fresh
            assert [hop.stage for hop in lookup_trace(tid)] == ["capture"]
            assert len(fresh) == 1
        finally:
            restored = set_default_trace_log(previous)
            assert restored is fresh
