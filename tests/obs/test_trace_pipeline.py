"""End-to-end trace-id propagation (the tracking story of §2.2).

One event, captured at the database boundary, must carry one stable
trace id through rules → staging queue → cross-broker propagation →
reliable delivery — including retries and dead-letter tombstones — and
the TraceLog must reconstruct the full hop list from that id alone.
"""

import pytest

from repro.capture.journal_capture import JournalCapture
from repro.capture.trigger_capture import TriggerCapture
from repro.db import Database
from repro.obs.trace import TraceLog, set_default_trace_log
from repro.pubsub.delivery import DeliveryManager
from repro.queues import Message, PropagationLink, Propagator, QueueBroker
from repro.rules.actions import EnqueueAction
from repro.rules.engine import RuleEngine


@pytest.fixture
def trace_log():
    """A fresh default TraceLog, restored after the test."""
    log = TraceLog()
    previous = set_default_trace_log(log)
    yield log
    set_default_trace_log(previous)


def _build_pipeline(db, clock):
    db.execute(
        "CREATE TABLE orders (order_id INT PRIMARY KEY, amount REAL)"
    )
    broker = QueueBroker(db)
    broker.create_queue("matched")
    engine = RuleEngine(metrics=db.obs)
    engine.add(
        "hot",
        "amount > 50",
        action=EnqueueAction(broker, "matched"),
        event_types=("orders.insert",),
    )
    remote = QueueBroker(Database(clock=clock), name="remote")
    remote.create_queue("inbox")
    propagator = Propagator(broker, "matched").add_link(
        PropagationLink(name="wire", broker=remote, queue_name="inbox")
    )
    return broker, engine, remote, propagator


class TestTriggerCaptureTrace:
    def test_one_trace_id_from_capture_to_delivery(self, db, clock, trace_log):
        broker, engine, remote, propagator = _build_pipeline(db, clock)
        capture = TriggerCapture(db, ["orders"])
        captured = []
        capture.subscribe(captured.append)
        capture.subscribe(engine.evaluate)

        db.execute("INSERT INTO orders (order_id, amount) VALUES (1, 75.0)")
        clock.advance(1.0)

        assert len(captured) == 1
        trace_id = captured[0].trace_id
        assert isinstance(trace_id, str)

        # The rule-produced message carries the event's trace id.
        assert propagator.pump() == 1
        clock.advance(1.0)

        # Reliable consumption on the remote side: the consumer crashes
        # once (retry) and then succeeds — same trace throughout.
        delivery = DeliveryManager(remote, "inbox", max_attempts=3)
        crashes = [True]
        def consumer(message):
            assert message.headers["trace_id"] == trace_id
            if crashes:
                crashes.pop()
                raise RuntimeError("first attempt fails")
        assert delivery.process(consumer, batch=1) == 0
        clock.advance(1.0)
        assert delivery.process(consumer, batch=1) == 1

        stages = [hop.stage for hop in trace_log.lookup(trace_id)]
        for stage in (
            "capture",
            "rule.match",
            "queue.enqueue",
            "queue.dequeue",
            "propagate.forwarded",
            "delivery.redelivered",
            "delivery.consumed",
        ):
            assert stage in stages, f"missing hop {stage!r} in {stages}"
        # Capture precedes everything; successful consumption is last.
        assert stages[0] == "capture"
        assert stages[-1] == "delivery.consumed"
        # The hop list is reconstructable from the id alone — no other
        # trace's hops bleed in.
        assert {hop.trace_id for hop in trace_log.lookup(trace_id)} == {trace_id}

    def test_unrelated_events_get_distinct_traces(self, db, clock, trace_log):
        db.execute("CREATE TABLE orders (order_id INT PRIMARY KEY, amount REAL)")
        capture = TriggerCapture(db, ["orders"])
        captured = []
        capture.subscribe(captured.append)
        db.execute("INSERT INTO orders (order_id, amount) VALUES (1, 10.0)")
        db.execute("INSERT INTO orders (order_id, amount) VALUES (2, 20.0)")
        assert len({event.trace_id for event in captured}) == 2


class TestJournalCaptureTrace:
    def test_mined_event_is_traced_into_the_queue(self, db, clock, trace_log):
        broker, engine, remote, propagator = _build_pipeline(db, clock)
        capture = JournalCapture(db, ["orders"])
        capture.subscribe(engine.evaluate)

        db.execute("INSERT INTO orders (order_id, amount) VALUES (9, 99.0)")
        events = capture.poll()
        assert len(events) == 1
        trace_id = events[0].trace_id
        assert isinstance(trace_id, str)

        message = broker.consume("matched", principal="test")
        assert message.headers["trace_id"] == trace_id
        stages = [hop.stage for hop in trace_log.lookup(trace_id)]
        assert stages[0] == "capture"
        assert "rule.match" in stages
        assert "queue.enqueue" in stages


class TestDeadLetterTrace:
    def test_tombstone_headers_stay_on_trace(self, db, clock, trace_log):
        broker = QueueBroker(db)
        broker.create_queue("jobs")
        broker.publish("jobs", Message(payload={"job": 1}))
        original = next(iter(broker.queue("jobs").browse()))
        trace_id = original.headers["trace_id"]

        delivery = DeliveryManager(
            broker, "jobs", max_attempts=1, dead_letter_queue="jobs_dlq"
        )
        def consumer(message):
            raise RuntimeError("always fails")
        delivery.process(consumer, batch=1)
        clock.advance(1.0)
        delivery.process(consumer, batch=1)

        dead = broker.consume("jobs_dlq", principal="test")
        assert dead is not None
        assert dead.headers["trace_id"] == trace_id
        assert dead.headers["origin_queue"] == "jobs"
        stages = [hop.stage for hop in trace_log.lookup(trace_id)]
        assert "delivery.dead_letter" in stages


class TestPropagationRetryTrace:
    def test_retry_hops_recorded(self, db, clock, trace_log):
        broker = QueueBroker(db)
        broker.create_queue("outbox")

        class Flaky:
            def __init__(self):
                self.failures = 1
                self.received = []
            def deliver(self, message):
                if self.failures:
                    self.failures -= 1
                    raise ConnectionError("down")
                self.received.append(message)

        service = Flaky()
        propagator = Propagator(broker, "outbox", base_backoff=0.1).add_link(
            PropagationLink(name="svc", service=service)
        )
        broker.publish("outbox", Message(payload={"n": 1}))
        trace_id = None

        assert propagator.pump() == 0  # first attempt fails → retry hop
        clock.advance(5.0)
        assert propagator.pump() == 1
        (message,) = service.received
        trace_id = message.headers["trace_id"]
        stages = [hop.stage for hop in trace_log.lookup(trace_id)]
        assert "propagate.retry" in stages
        assert stages[-1] == "propagate.forwarded"
