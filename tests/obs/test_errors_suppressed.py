"""Every former silent-swallow site must account for what it suppresses.

One test per boundary: the exception is counted under the stage label,
the most recent exception object is retained, and the pipeline keeps
its existing behaviour (requeue, retry, best-effort teardown).
"""

import pytest

from repro.capture.notification_capture import QueryNotificationCapture
from repro.capture.trigger_capture import TriggerCapture
from repro.errors import FaultInjectedError
from repro.events import Event
from repro.faults import (
    CAPTURE_DROP_TRIGGER,
    DELIVERY_CONSUMER,
    PUBSUB_CONSUMER,
    FaultInjector,
    raise_fault,
)
from repro.pubsub.broker import PubSubBroker
from repro.pubsub.delivery import DeliveryManager
from repro.queues import Message, QueueBroker


@pytest.fixture
def faulty_db(db):
    db.faults = FaultInjector()
    return db


class TestPubSubDrain:
    def test_raising_listener_counted_and_message_kept(self, faulty_db):
        pubsub = PubSubBroker(faulty_db)
        pubsub.create_topic("alerts")
        pubsub.subscribe("app", "alerts", durable=True)
        pubsub.publish(
            "alerts",
            Event(event_type="alert", timestamp=1.0, payload={"n": 1}),
        )
        faulty_db.faults.arm(PUBSUB_CONSUMER, raise_fault("listener crash"))
        with pytest.raises(FaultInjectedError):
            pubsub.attach_listener("app", lambda event: None)
        # Counted under the stage label with the exception retained...
        assert faulty_db.obs.errors_suppressed("pubsub.drain") == 1
        assert isinstance(
            faulty_db.obs.last_error("pubsub.drain"), FaultInjectedError
        )
        # ...and the activation contract is unchanged: the message was
        # requeued, not lost.
        assert pubsub.backlog("app") == 1


class TestDeliveryProcess:
    def test_consumer_error_counted_before_nack(self, db):
        db.faults = FaultInjector()
        broker = QueueBroker(db)
        broker.create_queue("jobs")
        broker.publish("jobs", Message(payload={"job": 1}))
        delivery = DeliveryManager(broker, "jobs", max_attempts=3)
        db.faults.arm(
            DELIVERY_CONSUMER, raise_fault("consumer crash"), max_fires=1
        )
        assert delivery.process(lambda message: None, batch=1) == 0
        assert delivery.stats["consumer_errors"] == 1
        assert db.obs.errors_suppressed("delivery.process") == 1
        assert isinstance(
            db.obs.last_error("delivery.process"), FaultInjectedError
        )
        # The message survives for a later retry.
        assert delivery.process(lambda message: None) == 1

    def test_batch_pump_counts_under_its_own_stage(self, db):
        db.faults = FaultInjector()
        broker = QueueBroker(db)
        broker.create_queue("jobs")
        broker.publish("jobs", Message(payload={"job": 1}))
        delivery = DeliveryManager(broker, "jobs", max_attempts=3)
        db.faults.arm(
            DELIVERY_CONSUMER, raise_fault("consumer crash"), max_fires=1
        )
        assert delivery.process_batch(lambda message: None) == 0
        assert delivery.stats["consumer_errors"] == 1
        assert db.obs.errors_suppressed("delivery.process_batch") == 1
        assert db.obs.errors_suppressed("delivery.process") == 0
        assert delivery.process_batch(lambda message: None) == 1


class TestCaptureTeardown:
    def test_trigger_capture_close_failures_counted(self, orders_db):
        orders_db.faults = FaultInjector()
        capture = TriggerCapture(orders_db, ["orders"])
        orders_db.faults.arm(CAPTURE_DROP_TRIGGER, raise_fault("drop failed"))
        capture.close()  # must not raise
        # One suppressed failure per trigger (insert/update/delete).
        assert orders_db.obs.errors_suppressed("capture.trigger.close") == 3
        assert isinstance(
            orders_db.obs.last_error("capture.trigger.close"),
            FaultInjectedError,
        )

    def test_notification_capture_close_failures_counted(self, orders_db):
        orders_db.faults = FaultInjector()
        capture = QueryNotificationCapture(
            orders_db, "SELECT * FROM orders WHERE price > 50"
        )
        orders_db.faults.arm(CAPTURE_DROP_TRIGGER, raise_fault("drop failed"))
        capture.close()  # must not raise
        assert orders_db.obs.errors_suppressed("capture.notification.close") == 3
        assert isinstance(
            orders_db.obs.last_error("capture.notification.close"),
            FaultInjectedError,
        )
