"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import gc

import pytest

from repro.clock import SimulatedClock
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    MetricsRegistry,
    aggregate_counters,
    metric_key,
    reset_aggregate,
    split_metric_key,
)


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("wal.fsyncs", {}) == "wal.fsyncs"

    def test_labels_sorted(self):
        key = metric_key("queue.depth", {"queue": "q", "broker": "b"})
        assert key == "queue.depth{broker=b,queue=q}"

    def test_split_roundtrip(self):
        key = metric_key("x", {"a": "1", "b": "two"})
        name, labels = split_metric_key(key)
        assert name == "x"
        assert labels == {"a": "1", "b": "two"}

    def test_split_bare(self):
        assert split_metric_key("plain") == ("plain", {})


class TestCountersAndGauges:
    def test_counter_identity_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", queue="q1")
        b = registry.counter("hits", queue="q1")
        c = registry.counter("hits", queue="q2")
        assert a is b
        assert a is not c
        a.inc()
        a.inc(3)
        assert registry.snapshot()["counters"]["hits{queue=q1}"] == 4
        assert registry.snapshot()["counters"]["hits{queue=q2}"] == 0

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert registry.snapshot()["gauges"]["depth"] == 12

    def test_gauge_fn_evaluated_at_snapshot(self):
        registry = MetricsRegistry()
        state = {"value": 1}
        registry.gauge_fn("lazy", lambda: state["value"])
        state["value"] = 42
        assert registry.snapshot()["gauges"]["lazy"] == 42

    def test_broken_gauge_provider_does_not_break_snapshot(self):
        registry = MetricsRegistry()
        registry.gauge_fn("broken", lambda: 1 / 0)
        assert registry.snapshot()["gauges"]["broken"] is None

    def test_snapshot_timestamp_from_clock(self):
        clock = SimulatedClock(start=500.0)
        registry = MetricsRegistry(clock=clock)
        clock.advance(7.0)
        assert registry.snapshot()["ts"] == 507.0


class TestHistogram:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 10.0
        assert snap["mean"] == 2.5
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0

    def test_percentiles_nearest_rank(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in range(1, 101):
            histogram.observe(float(value))
        snap = histogram.snapshot()
        assert snap["p50"] == pytest.approx(50.0, abs=1.0)
        assert snap["p95"] == pytest.approx(95.0, abs=1.0)
        assert snap["p99"] == pytest.approx(99.0, abs=1.0)

    def test_window_is_bounded_but_totals_exact(self):
        registry = MetricsRegistry(histogram_window=8)
        histogram = registry.histogram("latency")
        for value in range(1000):
            histogram.observe(float(value))
        assert histogram.count == 1000
        assert len(histogram._window) == 8
        # Percentiles reflect the recent window only.
        assert histogram.percentile(0) >= 992.0

    def test_empty_percentile_is_none(self):
        histogram = MetricsRegistry().histogram("latency")
        assert histogram.percentile(50) is None
        assert histogram.snapshot()["p99"] is None


class TestDisabledRegistry:
    def test_hands_out_shared_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("c") is NULL_COUNTER
        assert registry.gauge("g") is NULL_GAUGE
        assert registry.histogram("h") is NULL_HISTOGRAM

    def test_null_instruments_record_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc(100)
        registry.gauge("g").set(5)
        registry.gauge_fn("lazy", lambda: 1)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_error_accounting_still_works_when_disabled(self):
        # Failure accounting is cold-path and must never be optimized
        # away — the whole point of fixing the silent-swallow sites.
        registry = MetricsRegistry(enabled=False)
        exc = ValueError("boom")
        registry.record_error("stage.x", exc)
        assert registry.errors_suppressed("stage.x") == 1
        assert registry.errors_suppressed() == 1
        assert registry.last_error("stage.x") is exc


class TestErrorAccounting:
    def test_counts_per_stage_and_retains_last(self):
        registry = MetricsRegistry()
        first, second = KeyError("a"), RuntimeError("b")
        registry.record_error("s1", first)
        registry.record_error("s1", second)
        registry.record_error("s2", first)
        assert registry.errors_suppressed("s1") == 2
        assert registry.errors_suppressed("s2") == 1
        assert registry.errors_suppressed() == 3
        assert registry.last_error("s1") is second
        snap = registry.snapshot()
        assert snap["errors_suppressed"] == {"s1": 2, "s2": 1}
        assert "RuntimeError: b" in snap["last_errors"]["s1"]


class TestProcessAggregate:
    def test_live_and_retired_registries_fold_together(self):
        reset_aggregate()
        live = MetricsRegistry()
        live.counter("agg.test", side="live").inc(2)

        def make_retired():
            retired = MetricsRegistry()
            retired.counter("agg.test", side="gone").inc(5)

        make_retired()
        gc.collect()
        totals = aggregate_counters(by_name=True)
        assert totals["agg.test"] == 7
        by_key = aggregate_counters(by_name=False)
        assert by_key["agg.test{side=live}"] == 2
        assert by_key["agg.test{side=gone}"] == 5

    def test_errors_included_in_aggregate(self):
        reset_aggregate()
        registry = MetricsRegistry()
        registry.record_error("stage.y", ValueError("x"))
        totals = aggregate_counters(by_name=True)
        assert totals["errors_suppressed"] == 1

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("will.be.reset").inc(9)
        reset_aggregate()
        assert aggregate_counters().get("will.be.reset", 0) == 0


class TestMergeSnapshots:
    """Folding per-process registry snapshots (the shard fleet path)."""

    def _snapshots(self):
        from repro.obs.metrics import merge_snapshots  # noqa: F401

        a = MetricsRegistry(clock=SimulatedClock(start=10.0))
        a.counter("queue.enqueued", queue="orders").inc(7)
        a.gauge("queue.depth", queue="orders").set(3)
        a.histogram("wal.group_commit_batch").observe(4.0)
        a.record_error("shard.worker", ValueError("a"))
        b = MetricsRegistry(clock=SimulatedClock(start=20.0))
        b.counter("queue.enqueued", queue="orders").inc(5)
        b.counter("queue.enqueued", queue="alerts").inc(2)
        b.gauge("queue.depth", queue="orders").set(1)
        b.histogram("wal.group_commit_batch").observe(8.0)
        return a.snapshot(), b.snapshot()

    def test_counters_and_gauges_sum_across_sources(self):
        from repro.obs.metrics import merge_snapshots

        snap_a, snap_b = self._snapshots()
        merged = merge_snapshots({0: snap_a, 1: snap_b})
        assert merged["counters"]["queue.enqueued{queue=orders}"] == 12
        assert merged["counters"]["queue.enqueued{queue=alerts}"] == 2
        assert merged["gauges"]["queue.depth{queue=orders}"] == 4
        assert merged["errors_suppressed"]["shard.worker"] == 1
        assert merged["ts"] == 20.0
        assert merged["sources"] == [0, 1]

    def test_label_name_retains_per_source_series(self):
        from repro.obs.metrics import merge_snapshots

        snap_a, snap_b = self._snapshots()
        merged = merge_snapshots({0: snap_a, 1: snap_b}, label_name="shard")
        assert merged["gauges"]["queue.depth{queue=orders,shard=0}"] == 3
        assert merged["gauges"]["queue.depth{queue=orders,shard=1}"] == 1
        assert merged["counters"]["queue.enqueued{queue=orders,shard=1}"] == 5
        # the unlabeled sum is still present
        assert merged["counters"]["queue.enqueued{queue=orders}"] == 12

    def test_histograms_merge_exact_fields_only(self):
        from repro.obs.metrics import merge_snapshots

        snap_a, snap_b = self._snapshots()
        merged = merge_snapshots({0: snap_a, 1: snap_b})
        h = merged["histograms"]["wal.group_commit_batch"]
        assert h["count"] == 2
        assert h["sum"] == 12.0
        assert h["mean"] == 6.0
        assert h["min"] == 4.0 and h["max"] == 8.0
        # window percentiles are not mergeable across processes
        assert h["p50"] is None

    def test_single_source_histogram_keeps_percentiles(self):
        from repro.obs.metrics import merge_snapshots

        snap_a, _ = self._snapshots()
        merged = merge_snapshots({0: snap_a})
        assert merged["histograms"]["wal.group_commit_batch"]["p50"] == 4.0

    def test_absorb_snapshot_feeds_aggregate(self):
        from repro.obs.metrics import absorb_snapshot

        reset_aggregate()
        _, snap_b = self._snapshots()
        absorb_snapshot(snap_b)
        totals = aggregate_counters(by_name=True)
        # 5 + 2 from the absorbed remote snapshot (plus the live
        # registry's own 7+... is excluded: reset_aggregate zeroed it).
        assert totals["queue.enqueued"] >= 7
