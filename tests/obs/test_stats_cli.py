"""``python -m repro stats`` — the acceptance surface of the obs layer."""

import json

from repro.__main__ import main
from repro.obs.report import run_stats_workload


class TestStatsWorkload:
    def test_hot_stage_counters_nonzero(self):
        report = run_stats_workload(events=20)
        counters = report["local"]["counters"]
        assert counters["wal.fsyncs"] > 0
        assert counters["queue.enqueued{queue=matched}"] > 0
        assert counters["queue.acked{queue=matched}"] > 0
        assert counters["rules.events_evaluated"] == 20
        assert counters["rules.conditions_evaluated"] > 0
        assert counters["rules.matches"] > 0
        assert report["remote"]["counters"]["delivery.acked{queue=remote}"] > 0

    def test_sample_trace_covers_capture_to_delivery(self):
        report = run_stats_workload(events=20)
        trace = report["trace"]
        assert trace is not None
        stages = [hop["stage"] for hop in trace["hops"]]
        for stage in (
            "capture", "rule.match", "queue.enqueue", "delivery.consumed"
        ):
            assert stage in stages

    def test_faults_surface_every_swallow_site(self):
        report = run_stats_workload(events=20, faults=True)
        suppressed = dict(report["local"]["errors_suppressed"])
        suppressed.update(report["remote"]["errors_suppressed"])
        for stage in (
            "pubsub.drain",
            "delivery.process",
            "delivery.process_batch",
            "capture.trigger.close",
            "capture.notification.close",
        ):
            assert suppressed.get(stage, 0) > 0, f"{stage} not surfaced"


class TestStatsCli:
    def test_text_output(self, capsys):
        assert main(["stats", "--events", "10"]) == 0
        out = capsys.readouterr().out
        assert "wal.fsyncs" in out
        assert "queue.enqueued" in out
        assert "rules.events_evaluated" in out
        assert "sample trace" in out

    def test_json_output_parses(self, capsys):
        assert main(["stats", "--events", "10", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["local"]["counters"]["wal.fsyncs"] > 0
        assert report["trace"]["hops"]
