"""Equivalence suite: the vectorized columnar fast path must produce
the same results as the row path for every eligible aggregate query.

Strategy: build seeded tables with NULL-dense columns of every
vectorizable kind, run a grid of aggregate x WHERE-shape queries twice
— once with the fast path enabled, once forced onto the row path via
``set_vectorized(False)`` — and compare row sets.

Comparison policy: count/min/max (and sum/avg over the
exactly-representable values used here) must match exactly, including
result types (bool stays bool).  ``stddev`` tolerates relative 1e-12:
``np.add.reduceat`` does not reduce in sequential order, so the
two-pass vector formula and the row path's sequential sums can differ
in the last ulp.  That tolerance is the *contract* (documented in
docs/architecture.md), not test slack.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.db.database import Database
from repro.db.sql import executor


pytestmark = pytest.mark.columnar


def _close(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-12)
    return a == b and type(a) is type(b)


def _sort_key(row):
    return sorted((key, repr(value)) for key, value in row.items())


def assert_rows_equal(fast, slow, query, *, ordered=False):
    assert len(fast) == len(slow), f"row count differs for {query!r}"
    if not ordered:
        fast = sorted(fast, key=_sort_key)
        slow = sorted(slow, key=_sort_key)
    for fast_row, slow_row in zip(fast, slow):
        assert set(fast_row) == set(slow_row), f"columns differ for {query!r}"
        for column in fast_row:
            assert _close(fast_row[column], slow_row[column]), (
                f"{query!r}: column {column!r} differs: "
                f"{fast_row[column]!r} != {slow_row[column]!r}"
            )


def run_both(db, query):
    """Run ``query`` on the fast path (asserting it actually engaged)
    and on the row path; returns (fast_rows, slow_rows)."""
    before = executor.VECTOR_STATS["fast_path"]
    fast = db.query(query)
    engaged = executor.VECTOR_STATS["fast_path"] > before
    previous = executor.set_vectorized(False)
    try:
        slow = db.query(query)
    finally:
        executor.set_vectorized(previous)
    return fast, slow, engaged


def build_db(seed, rows, null_density=0.3):
    """Seeded table with every vectorizable kind plus a JSON column
    (which is never vectorizable and must force fallback).

    Integer-valued REALs and small INTs keep sums exactly
    representable, so sum/avg compare exactly despite reduction-order
    differences.
    """
    rng = random.Random(seed)
    db = Database()
    db.execute(
        "CREATE TABLE events (id INT, grp TEXT, val INT, score REAL,"
        " flag BOOL, note TEXT, meta JSON)"
    )

    def maybe(value):
        return None if rng.random() < null_density else value

    for i in range(rows):
        db.execute(
            "INSERT INTO events (id, grp, val, score, flag, note, meta)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            [
                i,
                maybe(rng.choice(["alpha", "beta", "gamma", "delta"])),
                maybe(rng.randint(-100, 100)),
                maybe(float(rng.randint(-50, 50))),
                maybe(rng.random() < 0.5),
                maybe(rng.choice(["x", "yy", "zzz", "zz_top"])),
                maybe({"k": i % 3}),
            ],
        )
    return db


AGGREGATES = [
    "count(*)",
    "count(val)",
    "sum(val)",
    "avg(val)",
    "min(val)",
    "max(val)",
    "stddev(val)",
    "sum(score)",
    "min(note)",
    "max(note)",
    "min(flag)",
    "max(flag)",
    "count(grp)",
]

WHERE_SHAPES = [
    None,
    "val > 0",
    "val >= -10 AND val <= 10",
    "grp = 'alpha'",
    "grp = 'alpha' OR grp = 'beta'",
    "val > 0 AND (grp = 'alpha' OR flag)",
    "val IS NULL",
    "val IS NOT NULL AND score IS NOT NULL",
    "note LIKE 'z%'",
    "note NOT LIKE '%y'",
    "grp IN ('alpha', 'gamma')",
    "grp NOT IN ('alpha', 'gamma')",
    "val BETWEEN -5 AND 25",
    "val NOT BETWEEN -5 AND 25",
    "NOT (val < 0)",
    "val % 7 = 3",
    "val + 10 > score",
    "val / 2 >= 12",
    "-val > 50",
    "flag",
    "NOT flag",
    "flag = 1",
    "grp > 'b'",
    "val > 'text'",  # cross-type: constant-sign comparison
    "0",
    "1",
]

GROUP_BYS = [None, "grp", "flag", "grp, flag", "val % 10"]


@pytest.mark.parametrize("seed", [11, 23])
def test_aggregate_where_grid(seed):
    db = build_db(seed, rows=400)
    select_list = ", ".join(AGGREGATES)
    engaged_count = 0
    for where in WHERE_SHAPES:
        query = f"SELECT {select_list} FROM events"
        if where:
            query += f" WHERE {where}"
        fast, slow, engaged = run_both(db, query)
        engaged_count += engaged
        assert_rows_equal(fast, slow, query)
    # Every shape in this grid is vector-eligible.
    assert engaged_count == len(WHERE_SHAPES)


@pytest.mark.parametrize("seed", [7])
def test_group_by_grid(seed):
    db = build_db(seed, rows=400)
    for group_by in GROUP_BYS[1:]:
        for where in [None, "val > 0", "note LIKE 'z%'", "0"]:
            query = (
                f"SELECT {group_by}, count(*), sum(val), avg(val),"
                f" min(score), max(note), stddev(val)"
                f" FROM events"
            )
            if where:
                query += f" WHERE {where}"
            query += f" GROUP BY {group_by}"
            fast, slow, engaged = run_both(db, query)
            assert engaged
            assert_rows_equal(fast, slow, query)


def test_group_by_ordering_and_having():
    db = build_db(31, rows=300)
    for query in [
        "SELECT grp, count(*) AS c FROM events GROUP BY grp ORDER BY c DESC",
        "SELECT grp, sum(val) AS s FROM events GROUP BY grp ORDER BY grp",
        "SELECT grp, count(*) FROM events GROUP BY grp HAVING count(*) > 40",
        "SELECT grp, avg(val) FROM events GROUP BY grp"
        " HAVING avg(val) IS NOT NULL ORDER BY grp",
        "SELECT grp, count(*) AS c FROM events GROUP BY grp"
        " ORDER BY c DESC LIMIT 2",
    ]:
        fast, slow, engaged = run_both(db, query)
        assert engaged
        assert_rows_equal(fast, slow, query, ordered="ORDER BY" in query)


def test_unordered_group_rows_match_row_path_order():
    """Without ORDER BY, group emission order is first-occurrence over
    the heap scan — the fast path must reproduce it exactly."""
    db = build_db(43, rows=250)
    query = "SELECT grp, flag, count(*) FROM events GROUP BY grp, flag"
    fast, slow, engaged = run_both(db, query)
    assert engaged
    assert_rows_equal(fast, slow, query, ordered=True)


def test_null_density_sweep():
    for density in (0.0, 0.5, 1.0):
        db = build_db(int(density * 100) + 3, rows=150, null_density=density)
        for query in [
            "SELECT count(val), sum(val), min(val), max(note), stddev(val)"
            " FROM events",
            "SELECT grp, count(*), avg(val) FROM events GROUP BY grp",
            "SELECT count(*) FROM events WHERE val > 0 OR flag",
        ]:
            fast, slow, _engaged = run_both(db, query)
            assert_rows_equal(fast, slow, f"{query} @density={density}")


def test_kleene_three_valued_logic():
    """AND/OR over NULL operands follow Kleene truth tables — compare
    against the row path on shapes designed to hit every cell."""
    db = build_db(57, rows=300, null_density=0.5)
    shapes = [
        "val > 0 AND score > 0",
        "val > 0 OR score > 0",
        "val > 0 AND score IS NULL",
        "val > 0 OR score IS NULL",
        "NOT (val > 0 AND score > 0)",
        "NOT (val > 0 OR score > 0)",
        "(val > 0 OR val <= 0) AND flag",  # tautology over non-NULL val
        "val > 0 AND val < 0",  # contradiction, NULL val stays UNKNOWN
        "flag AND NOT flag",
        "flag OR NOT flag",
    ]
    for where in shapes:
        query = f"SELECT count(*) FROM events WHERE {where}"
        fast, slow, engaged = run_both(db, query)
        assert engaged
        assert_rows_equal(fast, slow, query)


def test_empty_table_and_empty_groups():
    db = Database()
    db.execute("CREATE TABLE empty_t (a INT, b TEXT)")
    for query in [
        "SELECT count(*), sum(a), min(a), stddev(a) FROM empty_t",
        "SELECT b, count(*) FROM empty_t GROUP BY b",
        "SELECT count(*) FROM empty_t WHERE a > 0",
    ]:
        fast, slow, _engaged = run_both(db, query)
        assert_rows_equal(fast, slow, query)
    # count(*) over an empty table is one row of 0; GROUP BY emits none.
    assert db.query("SELECT count(*) FROM empty_t") == [{"count": 0}]
    assert db.query("SELECT b, count(*) FROM empty_t GROUP BY b") == []


def test_interleaved_dml_stays_consistent():
    """Insert-append, update/delete-invalidate, and rollback all leave
    the columnar projection consistent with the heap."""
    db = build_db(71, rows=200)
    query = "SELECT grp, count(*), sum(val), max(note) FROM events GROUP BY grp"

    def check(label):
        fast, slow, _engaged = run_both(db, query)
        assert_rows_equal(fast, slow, f"{query} [{label}]")

    check("initial")
    db.execute(
        "INSERT INTO events (id, grp, val, score, flag, note, meta)"
        " VALUES (9001, 'omega', 42, 1.0, 1, 'new-note', ?)",
        [None],
    )
    check("after insert (pending append)")
    db.execute("UPDATE events SET val = 0 WHERE grp = 'alpha'")
    check("after update (invalidation)")
    db.execute("DELETE FROM events WHERE val > 50")
    check("after delete (invalidation)")
    conn = db.connect()
    conn.execute("BEGIN")
    conn.execute("DELETE FROM events")
    conn.execute("ROLLBACK")
    check("after rolled-back delete")
    store = db.catalog.table("events").column_store()
    assert store.rebuilds >= 1


def test_distinct_aggregate_falls_back():
    db = build_db(83, rows=100)
    before = dict(executor.VECTOR_STATS)
    fast, slow, engaged = run_both(db, "SELECT count(DISTINCT grp) FROM events")
    assert not engaged
    assert executor.VECTOR_STATS["fallback_compile"] > before["fallback_compile"]
    assert_rows_equal(fast, slow, "count distinct")


def test_json_column_falls_back():
    db = build_db(89, rows=100)
    fast, slow, engaged = run_both(
        db, "SELECT count(*) FROM events WHERE meta IS NULL"
    )
    assert not engaged
    assert_rows_equal(fast, slow, "json predicate")


def test_parameterized_queries_match():
    db = build_db(97, rows=200)
    query = "SELECT grp, count(*), sum(val) FROM events WHERE val > ? GROUP BY grp"
    before = executor.VECTOR_STATS["fast_path"]
    fast = db.query(query, [5])
    previous = executor.set_vectorized(False)
    try:
        slow = db.query(query, [5])
    finally:
        executor.set_vectorized(previous)
    assert_rows_equal(fast, slow, query)
    # Bound parameters become literals before execution, so the fast
    # path may or may not engage depending on binding strategy — but
    # results must match either way (asserted above).
    del before


def test_huge_integer_constants():
    """Comparisons against out-of-int64-range constants must not
    diverge from the row path (numpy compares exactly; arithmetic on
    huge constants falls back at compile time)."""
    db = Database()
    db.execute("CREATE TABLE big (v INT)")
    for value in [0, 2**40, -(2**40), 17]:
        db.execute("INSERT INTO big (v) VALUES (?)", [value])
    for where in [
        f"v < {2**70}",
        f"v > {-(2**70)}",
        f"v = {2**70}",
        f"v + {2**70} > 0",  # arithmetic: compile-time fallback
    ]:
        query = f"SELECT count(*) FROM big WHERE {where}"
        fast, slow, _engaged = run_both(db, query)
        assert_rows_equal(fast, slow, query)


def test_unbounded_int_column_falls_back_at_runtime():
    """A column holding a Python int beyond int64 cannot be encoded;
    the whole statement must rerun on the row path, not error."""
    db = Database()
    db.execute("CREATE TABLE big (v INT)")
    db.execute("INSERT INTO big (v) VALUES (?)", [2**80])
    db.execute("INSERT INTO big (v) VALUES (?)", [5])
    query = "SELECT count(*), max(v) FROM big WHERE v > 0"
    fast, slow, engaged = run_both(db, query)
    assert not engaged
    assert_rows_equal(fast, slow, query)
