"""Hash and ordered index behaviour."""

import pytest

from repro.db.index import HashIndex, OrderedIndex, build_index
from repro.errors import ConstraintViolation, SchemaError


class TestHashIndex:
    def test_insert_lookup(self):
        index = HashIndex("ix", "t", "c")
        index.insert("a", 1)
        index.insert("a", 2)
        index.insert("b", 3)
        assert sorted(index.lookup("a")) == [1, 2]
        assert list(index.lookup("missing")) == []

    def test_delete(self):
        index = HashIndex("ix", "t", "c")
        index.insert("a", 1)
        index.delete("a", 1)
        assert list(index.lookup("a")) == []
        index.delete("a", 99)  # absent delete is a no-op

    def test_unique_rejects_duplicate(self):
        index = HashIndex("ix", "t", "c", unique=True)
        index.insert("k", 1)
        with pytest.raises(ConstraintViolation):
            index.insert("k", 2)

    def test_unique_allows_many_nulls(self):
        index = HashIndex("ix", "t", "c", unique=True)
        index.insert(None, 1)
        index.insert(None, 2)

    def test_numeric_key_folding(self):
        index = HashIndex("ix", "t", "c")
        index.insert(1, 10)
        assert list(index.lookup(1.0)) == [10]
        assert list(index.lookup(True)) == [10]

    def test_len(self):
        index = HashIndex("ix", "t", "c")
        index.insert("a", 1)
        index.insert("b", 2)
        assert len(index) == 2


class TestOrderedIndex:
    def make(self):
        index = OrderedIndex("ix", "t", "c")
        for key, rowid in [(5, 1), (3, 2), (8, 3), (3, 4), (None, 5), (1, 6)]:
            index.insert(key, rowid)
        return index

    def test_point_lookup(self):
        index = self.make()
        assert sorted(index.lookup(3)) == [2, 4]

    def test_range_scan_inclusive(self):
        index = self.make()
        assert [rowid for _k, rowid in index.range_scan(3, 5)] == [2, 4, 1]

    def test_range_scan_exclusive(self):
        index = self.make()
        result = [k for k, _r in index.range_scan(3, 8, low_inclusive=False, high_inclusive=False)]
        assert result == [5]

    def test_unbounded_scan_skips_nulls(self):
        index = self.make()
        keys = [k for k, _r in index.range_scan()]
        assert keys == [1, 3, 3, 5, 8]
        assert None not in keys

    def test_min_max(self):
        index = self.make()
        assert index.min_key() == 1
        assert index.max_key() == 8

    def test_delete_specific_rowid(self):
        index = self.make()
        index.delete(3, 2)
        assert sorted(index.lookup(3)) == [4]

    def test_unique_rejects_duplicate(self):
        index = OrderedIndex("ix", "t", "c", unique=True)
        index.insert(1, 1)
        with pytest.raises(ConstraintViolation):
            index.insert(1, 2)

    def test_supports_range_flag(self):
        assert OrderedIndex("i", "t", "c").supports_range
        assert not HashIndex("i", "t", "c").supports_range

    def test_mixed_numeric_ordering(self):
        index = OrderedIndex("ix", "t", "c")
        index.insert(2, 1)
        index.insert(1.5, 2)
        index.insert(3, 3)
        assert [k for k, _r in index.range_scan()] == [1.5, 2, 3]


class TestBuildIndex:
    def test_kinds(self):
        assert isinstance(build_index("hash", "i", "t", "c"), HashIndex)
        assert isinstance(build_index("ordered", "i", "t", "c"), OrderedIndex)
        assert isinstance(build_index("btree", "i", "t", "c"), OrderedIndex)

    def test_unknown_kind(self):
        with pytest.raises(SchemaError):
            build_index("bitmap", "i", "t", "c")
