"""Column type coercion and value comparison."""

import pytest

from repro.db.types import (
    BOOL,
    INT,
    JSON,
    REAL,
    TEXT,
    TIMESTAMP,
    compare_values,
    type_by_name,
)
from repro.errors import TypeMismatchError


class TestIntCoercion:
    def test_int_passes_through(self):
        assert INT.coerce(42) == 42

    def test_integral_float_folds(self):
        assert INT.coerce(3.0) == 3

    def test_fractional_float_rejected(self):
        with pytest.raises(TypeMismatchError):
            INT.coerce(3.5)

    def test_numeric_string_parses(self):
        assert INT.coerce("17") == 17

    def test_garbage_string_rejected(self):
        with pytest.raises(TypeMismatchError):
            INT.coerce("abc")

    def test_bool_folds_to_int(self):
        assert INT.coerce(True) == 1

    def test_null_passes(self):
        assert INT.coerce(None) is None

    def test_list_rejected(self):
        with pytest.raises(TypeMismatchError):
            INT.coerce([1])


class TestRealCoercion:
    def test_int_widens(self):
        assert REAL.coerce(2) == 2.0
        assert isinstance(REAL.coerce(2), float)

    def test_string_parses(self):
        assert REAL.coerce("2.5") == 2.5

    def test_nan_rejected(self):
        with pytest.raises(TypeMismatchError):
            REAL.coerce(float("nan"))

    def test_nan_string_rejected(self):
        with pytest.raises(TypeMismatchError):
            REAL.coerce("nan")


class TestTextCoercion:
    def test_string_passes(self):
        assert TEXT.coerce("hello") == "hello"

    def test_number_stringifies(self):
        assert TEXT.coerce(5) == "5"

    def test_dict_rejected(self):
        with pytest.raises(TypeMismatchError):
            TEXT.coerce({"a": 1})


class TestBoolCoercion:
    @pytest.mark.parametrize("value,expected", [
        (True, True), (False, False), (1, True), (0, False),
        ("true", True), ("f", False), ("1", True), ("FALSE", False),
    ])
    def test_accepted_forms(self, value, expected):
        assert BOOL.coerce(value) is expected

    def test_other_int_rejected(self):
        with pytest.raises(TypeMismatchError):
            BOOL.coerce(2)

    def test_garbage_string_rejected(self):
        with pytest.raises(TypeMismatchError):
            BOOL.coerce("maybe")


class TestTimestampCoercion:
    def test_number_accepted(self):
        assert TIMESTAMP.coerce(1234) == 1234.0

    def test_bool_rejected(self):
        with pytest.raises(TypeMismatchError):
            TIMESTAMP.coerce(True)


class TestJsonCoercion:
    def test_structures_accepted(self):
        assert JSON.coerce({"a": [1, 2]}) == {"a": [1, 2]}

    def test_unserializable_rejected(self):
        with pytest.raises(TypeMismatchError):
            JSON.coerce(object())


class TestTypeByName:
    @pytest.mark.parametrize("name,expected", [
        ("int", INT), ("INTEGER", INT), ("varchar", TEXT),
        ("double", REAL), ("Boolean", BOOL), ("timestamp", TIMESTAMP),
    ])
    def test_aliases(self, name, expected):
        assert type_by_name(name) is expected

    def test_unknown_raises(self):
        with pytest.raises(TypeMismatchError):
            type_by_name("blob")


class TestCompareValues:
    def test_null_sorts_first(self):
        assert compare_values(None, -10) == -1
        assert compare_values(10, None) == 1
        assert compare_values(None, None) == 0

    def test_numeric_cross_type(self):
        assert compare_values(1, 1.0) == 0
        assert compare_values(2, 1.5) == 1

    def test_strings(self):
        assert compare_values("a", "b") == -1

    def test_bool_compares_as_int(self):
        assert compare_values(True, 1) == 0
        assert compare_values(False, 1) == -1

    def test_cross_type_is_total(self):
        # Strings vs numbers: stable, deterministic order by type name.
        first = compare_values("a", 1)
        assert first in (-1, 1)
        assert compare_values(1, "a") == -first
