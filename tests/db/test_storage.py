"""Heap table storage: mutations, index maintenance, uniqueness."""

import pytest

from repro.db.schema import Column, TableSchema
from repro.db.storage import HeapTable
from repro.db.types import INT, TEXT
from repro.errors import ConstraintViolation, SchemaError


def make_table() -> HeapTable:
    return HeapTable(
        TableSchema(
            "t",
            [
                Column("id", INT, primary_key=True),
                Column("name", TEXT),
            ],
        )
    )


class TestInsert:
    def test_rowids_monotonic(self):
        table = make_table()
        first = table.insert({"id": 1, "name": "a"})
        second = table.insert({"id": 2, "name": "b"})
        assert second == first + 1

    def test_pk_uniqueness_auto_enforced(self):
        table = make_table()
        table.insert({"id": 1, "name": "a"})
        with pytest.raises(ConstraintViolation):
            table.insert({"id": 1, "name": "b"})

    def test_failed_insert_leaves_no_trace(self):
        table = make_table()
        table.insert({"id": 1, "name": "a"})
        with pytest.raises(ConstraintViolation):
            table.insert({"id": 1, "name": "dup"})
        assert len(table) == 1
        # Index must not contain a phantom entry either.
        assert len(table.lookup_rowids("id", 1)) == 1

    def test_forced_rowid_for_recovery(self):
        table = make_table()
        table.insert({"id": 1, "name": "a"}, rowid=10)
        assert table.get(10) == {"id": 1, "name": "a"}
        # The counter skips past forced ids.
        assert table.insert({"id": 2, "name": "b"}) > 10

    def test_forced_duplicate_rowid_rejected(self):
        table = make_table()
        table.insert({"id": 1, "name": "a"}, rowid=5)
        with pytest.raises(ConstraintViolation):
            table.insert({"id": 2, "name": "b"}, rowid=5)


class TestUpdate:
    def test_update_returns_old_row(self):
        table = make_table()
        rowid = table.insert({"id": 1, "name": "a"})
        old = table.update(rowid, {"name": "z"})
        assert old["name"] == "a"
        assert table.get(rowid)["name"] == "z"

    def test_indexes_follow_update(self):
        table = make_table()
        rowid = table.insert({"id": 1, "name": "a"})
        table.create_index("ix_name", "name", kind="hash")
        table.update(rowid, {"name": "b"})
        assert table.lookup_rowids("name", "b") == [rowid]
        assert table.lookup_rowids("name", "a") == []

    def test_unique_violation_on_update(self):
        table = make_table()
        table.insert({"id": 1, "name": "a"})
        rowid = table.insert({"id": 2, "name": "b"})
        with pytest.raises(ConstraintViolation):
            table.update(rowid, {"id": 1})

    def test_self_update_allowed(self):
        table = make_table()
        rowid = table.insert({"id": 1, "name": "a"})
        table.update(rowid, {"id": 1})  # same value, same row: fine

    def test_missing_rowid_raises(self):
        with pytest.raises(SchemaError):
            make_table().update(99, {"name": "x"})


class TestDelete:
    def test_delete_returns_row(self):
        table = make_table()
        rowid = table.insert({"id": 1, "name": "a"})
        row = table.delete(rowid)
        assert row["id"] == 1
        assert table.get(rowid) is None
        assert len(table) == 0

    def test_indexes_cleaned(self):
        table = make_table()
        rowid = table.insert({"id": 1, "name": "a"})
        table.delete(rowid)
        assert table.lookup_rowids("id", 1) == []

    def test_missing_rowid_raises(self):
        with pytest.raises(SchemaError):
            make_table().delete(42)


class TestIndexManagement:
    def test_backfill_on_create(self):
        table = make_table()
        table.insert({"id": 1, "name": "x"})
        table.insert({"id": 2, "name": "x"})
        table.create_index("ix_name", "name", kind="hash")
        assert len(table.lookup_rowids("name", "x")) == 2

    def test_duplicate_index_name_rejected(self):
        table = make_table()
        table.create_index("ix", "name")
        with pytest.raises(SchemaError):
            table.create_index("ix", "name")

    def test_drop_index(self):
        table = make_table()
        table.create_index("ix", "name")
        table.drop_index("ix")
        with pytest.raises(SchemaError):
            table.drop_index("ix")

    def test_index_on_prefers_capability(self):
        table = make_table()
        table.create_index("ix_hash", "name", kind="hash")
        assert table.index_on("name", require_range=True) is None
        table.create_index("ix_ord", "name", kind="ordered")
        assert table.index_on("name", require_range=True).name == "ix_ord"


class TestScans:
    def test_scan_returns_copies(self):
        table = make_table()
        rowid = table.insert({"id": 1, "name": "a"})
        for _rowid, row in table.scan():
            row["name"] = "mutated"
        assert table.get(rowid)["name"] == "a"

    def test_lookup_without_index_scans(self):
        table = make_table()
        rowid = table.insert({"id": 1, "name": "a"})
        assert table.lookup_rowids("name", "a") == [rowid]

    def test_lookup_null_returns_nothing(self):
        table = make_table()
        table.insert({"id": 1, "name": None})
        assert table.lookup_rowids("name", None) == []

    def test_lookup_null_with_index_matches_scan_path(self):
        # Regression: the indexed path used to return rows whose key
        # was NULL (indexes store NULL entries), diverging from the
        # scan path where SQL semantics apply: NULL never matches.
        table = make_table()
        table.insert({"id": 1, "name": None})
        table.insert({"id": 2, "name": "a"})
        table.create_index("ix_name", "name")
        assert table.lookup_rowids("name", None) == []
        assert table.lookup_rowids("name", "a") == [2]

    def test_scan_internal_yields_live_rows_without_copying(self):
        table = make_table()
        rowid = table.insert({"id": 1, "name": "a"})
        internal = dict(table.scan_internal())
        assert internal[rowid] is table._rows[rowid]

    def test_update_replaces_dict_so_internal_refs_stay_frozen(self):
        # scan_internal is only safe because mutations never write a
        # stored dict in place — update must swap in a fresh dict.
        table = make_table()
        rowid = table.insert({"id": 1, "name": "a"})
        before = dict(table.scan_internal())[rowid]
        table.update(rowid, {"name": "b"})
        assert before["name"] == "a"
        assert table.get(rowid)["name"] == "b"


class TestSnapshotRestore:
    def test_roundtrip(self):
        table = make_table()
        table.insert({"id": 1, "name": "a"})
        table.insert({"id": 2, "name": "b"})
        snapshot = table.snapshot()
        table.delete(1)
        table.restore(snapshot)
        assert len(table) == 2
        assert table.get(1)["name"] == "a"
        # Indexes rebuilt and consistent.
        assert table.lookup_rowids("id", 2) == [2]

    def test_restore_resets_rowid_counter(self):
        table = make_table()
        table.insert({"id": 1, "name": "a"})
        snapshot = table.snapshot()
        table.restore(snapshot)
        new_rowid = table.insert({"id": 9, "name": "z"})
        assert new_rowid == 2
