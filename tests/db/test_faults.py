"""Fault-injection harness: policies, actions, and the WAL/broker/
delivery failpoints (ISSUE 3 tentpole).

The acceptance-critical scenarios live here:

* a torn WAL tail — injected through the ``wal.flush.torn`` failpoint,
  not hand-crafted bytes — recovers losing only the tail;
* a checksum-corrupted record *before* the last commit fails loudly
  with the offending LSN and byte offset;
* pre-existing plain-JSONL (v1) journals still replay, and a WAL
  attached to one keeps appending v1 (no mixed-format files).
"""

import json
import os
import warnings

import pytest

from repro.clock import SimulatedClock
from repro.db import Database
from repro.db.wal import (
    OP_BEGIN,
    OP_COMMIT,
    OP_INSERT,
    WAL_HEADER,
    LogRecord,
    WriteAheadLog,
    scan_wal_bytes,
)
from repro.errors import (
    FaultInjectedError,
    RecoveryError,
    TornTailWarning,
)
from repro.faults import (
    BROKER_ACK,
    BROKER_CONSUME,
    BROKER_PUBLISH,
    DELIVERY_CONSUMER,
    WAL_APPEND,
    WAL_PRE_FLUSH,
    WAL_TORN_WRITE,
    FaultInjector,
    after,
    corrupt_record_on_disk,
    crash_wal,
    every,
    on_hit,
    raise_fault,
    torn_write,
    with_probability,
)
from repro.pubsub.delivery import DeliveryManager
from repro.queues.broker import QueueBroker


# --------------------------------------------------------------------------
# Policies and the injector itself
# --------------------------------------------------------------------------


class TestPolicies:
    def fires(self, policy, hits, seed=0):
        injector = FaultInjector(seed=seed)
        injector.arm("p", raise_fault(), policy=policy)
        out = []
        for _ in range(hits):
            try:
                injector.fire("p")
                out.append(False)
            except FaultInjectedError:
                out.append(True)
        return out

    def test_on_hit_fires_exactly_once(self):
        assert self.fires(on_hit(3), 6) == [False, False, True, False, False, False]

    def test_on_hit_rejects_zero(self):
        with pytest.raises(ValueError):
            on_hit(0)

    def test_every_n(self):
        assert self.fires(every(2), 5) == [False, True, False, True, False]

    def test_after_n(self):
        assert self.fires(after(2), 4) == [False, False, True, True]

    def test_probabilistic_is_seed_deterministic(self):
        a = self.fires(with_probability(0.5), 40, seed=123)
        b = self.fires(with_probability(0.5), 40, seed=123)
        assert a == b
        assert any(a) and not all(a)

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            with_probability(1.5)

    def test_max_fires_bounds_always(self):
        injector = FaultInjector()
        injector.arm("p", raise_fault(), max_fires=2)
        fired = 0
        for _ in range(5):
            try:
                injector.fire("p")
            except FaultInjectedError:
                fired += 1
        assert fired == 2

    def test_unarmed_fire_is_noop(self):
        assert FaultInjector().fire("nothing.armed") is None

    def test_disarm_and_history(self):
        injector = FaultInjector()
        injector.arm("p", raise_fault(), policy=on_hit(1))
        assert injector.armed("p")
        with pytest.raises(FaultInjectedError):
            injector.fire("p")
        injector.disarm("p")
        assert injector.fire("p") is None
        assert injector.history == [("p", 1)]
        injector.reset()
        assert injector.history == []


# --------------------------------------------------------------------------
# WAL failpoints
# --------------------------------------------------------------------------


class TestWalFailpoints:
    def test_append_fault_is_side_effect_free(self):
        injector = FaultInjector()
        wal = WriteAheadLog(faults=injector)
        wal.append(1, OP_BEGIN)
        injector.arm(WAL_APPEND, raise_fault(), policy=on_hit(1))
        with pytest.raises(FaultInjectedError):
            wal.append(1, OP_INSERT, table="t", rowid=1, after={})
        # The failed append consumed no LSN and left no record behind.
        assert len(wal) == 1
        assert wal.last_lsn == 1
        wal.append(1, OP_COMMIT)
        assert [r.lsn for r in wal.records()] == [1, 2]

    def test_pre_flush_crash_drops_volatile_tail(self, tmp_path):
        path = str(tmp_path / "wal.log")
        injector = FaultInjector()
        db = Database(path=path, clock=SimulatedClock(start=0.0), faults=injector)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        injector.arm(WAL_PRE_FLUSH, crash_wal(), policy=on_hit(1))
        with pytest.raises(FaultInjectedError):
            db.execute("INSERT INTO t VALUES (2)")
        reborn = Database(path=path, clock=SimulatedClock(start=0.0))
        assert [r["a"] for r in reborn.query("SELECT a FROM t")] == [1]

    def test_post_flush_fires_with_durable_data(self, tmp_path):
        path = str(tmp_path / "wal.log")
        injector = FaultInjector()
        seen = []
        from repro.faults import call

        injector.arm(
            "wal.post_flush",
            call(lambda ctx: seen.append(ctx.site["wal"].durable_lsn)),
        )
        db = Database(path=path, clock=SimulatedClock(start=0.0), faults=injector)
        db.execute("CREATE TABLE t (a INT)")
        assert seen, "post_flush never fired"
        assert seen[-1] == db.wal.durable_lsn


class TestTornTail:
    """Acceptance: torn-tail WAL recovers losing only the tail, and the
    tear is injected via the failpoint, not hand-crafted bytes."""

    @pytest.mark.parametrize("mode", ["truncate", "corrupt"])
    def test_torn_flush_recovers_to_last_commit(self, tmp_path, mode):
        path = str(tmp_path / "wal.log")
        injector = FaultInjector()
        db = Database(path=path, clock=SimulatedClock(start=0.0), faults=injector)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO t VALUES (2)")

        injector.arm(WAL_TORN_WRITE, torn_write(mode), policy=on_hit(1))
        with pytest.raises(FaultInjectedError):
            db.execute("INSERT INTO t VALUES (3)")

        # "New process": recover from the damaged file.
        with pytest.warns(TornTailWarning):
            reborn = Database(path=path, clock=SimulatedClock(start=0.0))
        assert sorted(r["a"] for r in reborn.query("SELECT a FROM t")) == [1, 2]
        assert reborn.wal.load_report is not None
        assert reborn.wal.load_report.torn
        assert reborn.wal.load_report.dropped_bytes > 0

        # The truncation repaired the file: a second open is clean.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            third = Database(path=path, clock=SimulatedClock(start=0.0))
        assert sorted(r["a"] for r in third.query("SELECT a FROM t")) == [1, 2]

    def test_recovered_wal_accepts_new_writes(self, tmp_path):
        path = str(tmp_path / "wal.log")
        injector = FaultInjector()
        db = Database(path=path, clock=SimulatedClock(start=0.0), faults=injector)
        db.execute("CREATE TABLE t (a INT)")
        injector.arm(WAL_TORN_WRITE, torn_write("truncate"), policy=on_hit(1))
        with pytest.raises(FaultInjectedError):
            db.execute("INSERT INTO t VALUES (1)")
        with pytest.warns(TornTailWarning):
            reborn = Database(path=path, clock=SimulatedClock(start=0.0))
        reborn.execute("INSERT INTO t VALUES (7)")
        third = Database(path=path, clock=SimulatedClock(start=0.0))
        assert [r["a"] for r in third.query("SELECT a FROM t")] == [7]


class TestMidLogCorruption:
    """Acceptance: a checksum-corrupted record *before* the last commit
    fails loudly, naming the LSN and byte offset."""

    def test_corruption_before_commit_raises_with_lsn(self, tmp_path):
        path = str(tmp_path / "wal.log")
        db = Database(path=path, clock=SimulatedClock(start=0.0))
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO t VALUES (2)")
        victim = db.wal.records()[2].lsn  # mid-log, committed work follows

        offset = corrupt_record_on_disk(path, victim)
        with pytest.raises(RecoveryError) as excinfo:
            Database(path=path, clock=SimulatedClock(start=0.0))
        assert excinfo.value.lsn == victim
        # The error names the corrupt frame's start; the flipped byte
        # lies inside that frame.
        assert excinfo.value.byte_offset is not None
        assert excinfo.value.byte_offset <= offset
        assert "mid-log corruption" in str(excinfo.value)
        # Refusal means the file was NOT truncated behind our back.
        assert os.path.getsize(path) > offset

    def test_corrupting_the_final_record_is_a_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.log")
        db = Database(path=path, clock=SimulatedClock(start=0.0))
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        last = db.wal.records()[-1].lsn  # the trailing commit record
        corrupt_record_on_disk(path, last)
        with pytest.warns(TornTailWarning):
            reborn = Database(path=path, clock=SimulatedClock(start=0.0))
        # The final transaction's commit vanished with the tail.
        assert reborn.query("SELECT a FROM t") == []


class TestLegacyFormat:
    """Pre-existing plain-JSONL (v1) journals replay unchanged."""

    def _write_v1(self, path: str) -> None:
        records = [
            LogRecord(lsn=1, txid=1, op=OP_BEGIN),
            LogRecord(lsn=2, txid=1, op=OP_INSERT, table="t", rowid=1, after={"a": 5}),
            LogRecord(lsn=3, txid=1, op=OP_COMMIT),
        ]
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(record.to_json() + "\n")

    def test_v1_log_replays(self, tmp_path):
        path = str(tmp_path / "old.log")
        self._write_v1(path)
        wal = WriteAheadLog(path=path)
        assert len(wal) == 3
        assert wal.records()[1].after == {"a": 5}
        assert wal.load_report.version == 1

    def test_v1_log_keeps_appending_v1(self, tmp_path):
        path = str(tmp_path / "old.log")
        self._write_v1(path)
        wal = WriteAheadLog(path=path)
        wal.append(2, OP_BEGIN)
        wal.append(2, OP_COMMIT)
        wal.flush()
        with open(path, "rb") as handle:
            data = handle.read()
        # Still headerless plain JSONL — one file never mixes formats.
        assert not data.startswith(WAL_HEADER.encode("utf-8"))
        json.loads(data.splitlines()[-1])  # every line is bare JSON
        assert len(WriteAheadLog(path=path)) == 5

    def test_v1_torn_tail_truncates(self, tmp_path):
        path = str(tmp_path / "old.log")
        self._write_v1(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"lsn": 4, "txid": 2, "op"')  # interrupted write
        with pytest.warns(TornTailWarning):
            wal = WriteAheadLog(path=path)
        assert len(wal) == 3

    def test_new_files_get_v2_header(self, tmp_path):
        path = str(tmp_path / "new.log")
        wal = WriteAheadLog(path=path)
        wal.append(1, OP_BEGIN)
        wal.append(1, OP_COMMIT)
        wal.flush()
        with open(path, "rb") as handle:
            data = handle.read()
        assert data.startswith(WAL_HEADER.encode("utf-8"))
        report = scan_wal_bytes(data)
        assert report.version == 2
        assert not report.torn
        assert len(report.records) == 2


# --------------------------------------------------------------------------
# Broker and delivery failpoints
# --------------------------------------------------------------------------


class TestBrokerFailpoints:
    def make_broker(self):
        injector = FaultInjector()
        db = Database(clock=SimulatedClock(start=0.0), faults=injector)
        broker = QueueBroker(db)
        broker.create_queue("jobs")
        return injector, broker

    def test_publish_fault_leaves_queue_empty(self):
        injector, broker = self.make_broker()
        injector.arm(BROKER_PUBLISH, raise_fault(), policy=on_hit(1))
        with pytest.raises(FaultInjectedError):
            broker.publish("jobs", {"n": 1})
        assert broker.queue("jobs").depth() == 0
        broker.publish("jobs", {"n": 2})  # next attempt succeeds
        assert broker.queue("jobs").depth() == 1

    def test_consume_fault_leaves_message_ready(self):
        injector, broker = self.make_broker()
        broker.publish("jobs", {"n": 1})
        injector.arm(BROKER_CONSUME, raise_fault(), policy=on_hit(1))
        with pytest.raises(FaultInjectedError):
            broker.consume("jobs")
        assert broker.queue("jobs").depth() == 1  # not locked, not lost
        assert broker.consume("jobs").payload == {"n": 1}

    def test_ack_fault_keeps_message_locked(self):
        injector, broker = self.make_broker()
        broker.publish("jobs", {"n": 1})
        message = broker.consume("jobs")
        injector.arm(BROKER_ACK, raise_fault(), policy=on_hit(1))
        with pytest.raises(FaultInjectedError):
            broker.ack("jobs", message.message_id)
        locked = list(broker.queue("jobs").browse(include_locked=True))
        assert [m.message_id for m in locked] == [message.message_id]
        broker.ack("jobs", message.message_id)  # retry succeeds
        assert list(broker.queue("jobs").browse(include_locked=True)) == []


class TestDeliveryConsumerFailpoint:
    def test_injected_consumer_fault_retries_then_succeeds(self):
        injector = FaultInjector()
        db = Database(clock=SimulatedClock(start=0.0), faults=injector)
        broker = QueueBroker(db)
        broker.create_queue("jobs")
        manager = DeliveryManager(broker, "jobs", max_attempts=5)
        broker.publish("jobs", {"n": 1})
        injector.arm(DELIVERY_CONSUMER, raise_fault(), policy=on_hit(1))

        consumed = []
        assert manager.process(consumed.append, batch=1) == 0  # injected failure
        assert manager.stats["consumer_errors"] == 1
        assert manager.process(consumed.append, batch=1) == 1  # redelivery succeeds
        assert [m.payload for m in consumed] == [{"n": 1}]

    def test_persistent_consumer_fault_dead_letters(self):
        injector = FaultInjector()
        db = Database(clock=SimulatedClock(start=0.0), faults=injector)
        broker = QueueBroker(db)
        broker.create_queue("jobs")
        manager = DeliveryManager(
            broker, "jobs", max_attempts=2, dead_letter_queue="jobs_dead"
        )
        broker.publish("jobs", {"n": 1})
        injector.arm(DELIVERY_CONSUMER, raise_fault())  # always fails

        for _ in range(3):
            manager.process(lambda message: None)
        dead = list(broker.queue("jobs_dead").browse())
        assert len(dead) == 1
        assert dead[0].headers["origin_queue"] == "jobs"
        assert dead[0].headers["dead_letter_reason"] == "max delivery attempts"
        assert manager.stats["dead_lettered"] == 1
        assert broker.queue("jobs").depth() == 0
