"""Write-ahead log: durability horizon, journal reading, persistence."""

import os

import pytest

from repro.clock import SimulatedClock
from repro.errors import WALError
from repro.db.wal import (
    OP_ABORT,
    OP_BEGIN,
    OP_COMMIT,
    OP_INSERT,
    OP_UPDATE,
    JournalReader,
    LogRecord,
    WriteAheadLog,
)


def dml(wal, txid, n=1):
    records = []
    for i in range(n):
        records.append(
            wal.append(txid, OP_INSERT, table="t", rowid=i + 1, after={"a": i})
        )
    return records


class TestAppendFlush:
    def test_lsns_monotonic(self):
        wal = WriteAheadLog()
        first = wal.append(1, OP_BEGIN)
        second = wal.append(1, OP_COMMIT)
        assert second.lsn == first.lsn + 1

    def test_durable_horizon(self):
        wal = WriteAheadLog(sync_policy="none")
        wal.append(1, OP_BEGIN)
        assert wal.durable_lsn == 0
        wal.flush()
        assert wal.durable_lsn == 1

    def test_sync_always_flushes_each_record(self):
        wal = WriteAheadLog(sync_policy="always")
        wal.append(1, OP_BEGIN)
        assert wal.durable_lsn == 1

    def test_flush_idempotent(self):
        wal = WriteAheadLog()
        wal.append(1, OP_BEGIN)
        wal.flush()
        count = wal.flush_count
        wal.flush()  # nothing new: no extra fsync
        assert wal.flush_count == count

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            WriteAheadLog(sync_policy="sometimes")


class TestCrash:
    def test_crash_drops_unflushed(self):
        wal = WriteAheadLog(sync_policy="none")
        wal.append(1, OP_BEGIN)
        wal.flush()
        wal.append(1, OP_COMMIT)  # not flushed
        survivors = wal.crash()
        assert [r.op for r in survivors] == [OP_BEGIN]
        assert wal.last_lsn == 1

    def test_crash_preserves_flushed(self):
        wal = WriteAheadLog()
        wal.append(1, OP_BEGIN)
        wal.flush()
        assert len(wal.crash()) == 1

    def test_new_appends_continue_after_crash(self):
        wal = WriteAheadLog(sync_policy="none")
        wal.append(1, OP_BEGIN)
        wal.flush()
        wal.append(1, OP_COMMIT)
        wal.crash()
        record = wal.append(2, OP_BEGIN)
        assert record.lsn == 2


class TestRecordsFrom:
    def test_reads_after_lsn(self):
        wal = WriteAheadLog()
        wal.append(1, OP_BEGIN)
        marker = wal.last_lsn
        wal.append(1, OP_COMMIT)
        tail = list(wal.records_from(marker))
        assert [r.op for r in tail] == [OP_COMMIT]

    def test_truncate_before(self):
        wal = WriteAheadLog()
        dml(wal, 1, 5)
        wal.flush()
        dropped = wal.truncate_before(4)
        assert dropped == 3
        assert [r.lsn for r in wal.records()] == [4, 5]


class TestJournalReader:
    def test_only_committed_surfaces(self):
        wal = WriteAheadLog()
        reader = JournalReader(wal)
        wal.append(1, OP_BEGIN)
        dml(wal, 1, 2)
        assert reader.poll() == []  # not yet committed
        wal.append(1, OP_COMMIT)
        records = reader.poll()
        assert len(records) == 2
        assert all(r.op == OP_INSERT for r in records)

    def test_aborted_never_surfaces(self):
        wal = WriteAheadLog()
        reader = JournalReader(wal)
        wal.append(1, OP_BEGIN)
        dml(wal, 1, 3)
        wal.append(1, OP_ABORT)
        assert reader.poll() == []

    def test_interleaved_transactions_in_commit_order(self):
        wal = WriteAheadLog()
        reader = JournalReader(wal)
        wal.append(1, OP_BEGIN)
        wal.append(2, OP_BEGIN)
        wal.append(1, OP_INSERT, table="t", rowid=1, after={"tx": 1})
        wal.append(2, OP_INSERT, table="t", rowid=2, after={"tx": 2})
        wal.append(2, OP_COMMIT)  # tx2 commits first
        wal.append(1, OP_COMMIT)
        records = reader.poll()
        assert [r.txid for r in records] == [2, 1]

    def test_position_advances(self):
        wal = WriteAheadLog()
        reader = JournalReader(wal)
        wal.append(1, OP_BEGIN)
        wal.append(1, OP_COMMIT)
        reader.poll()
        assert reader.position == wal.last_lsn
        assert reader.poll() == []  # nothing new

    def test_update_records_carry_both_images(self):
        wal = WriteAheadLog()
        reader = JournalReader(wal)
        wal.append(1, OP_BEGIN)
        wal.append(1, OP_UPDATE, table="t", rowid=1, before={"a": 1}, after={"a": 2})
        wal.append(1, OP_COMMIT)
        record = reader.poll()[0]
        assert record.before == {"a": 1}
        assert record.after == {"a": 2}


class TestGroupCommit:
    def test_default_size_flushes_every_commit(self):
        wal = WriteAheadLog()
        wal.append(1, OP_BEGIN)
        wal.append(1, OP_COMMIT)
        wal.commit_point()
        assert wal.pending_commits == 0
        assert wal.durable_lsn == 2

    def test_flush_deferred_until_group_fills(self):
        wal = WriteAheadLog(group_commit_size=3)
        for txid in (1, 2):
            dml(wal, txid)
            wal.append(txid, OP_COMMIT)
            wal.commit_point()
        assert wal.pending_commits == 2
        assert wal.durable_lsn == 0  # nothing fsynced yet
        dml(wal, 3)
        wal.append(3, OP_COMMIT)
        wal.commit_point()  # third commit fills the group
        assert wal.pending_commits == 0
        assert wal.durable_lsn == wal.last_lsn

    def test_window_forces_flush_for_stale_pending_commit(self):
        clock = SimulatedClock(start=0.0)
        wal = WriteAheadLog(
            clock=clock, group_commit_size=100, group_commit_window=2.0
        )
        wal.append(1, OP_COMMIT)
        wal.commit_point()
        assert wal.pending_commits == 1
        clock.advance(3.0)
        wal.append(2, OP_COMMIT)
        wal.commit_point()  # oldest pending exceeded the window
        assert wal.pending_commits == 0
        assert wal.durable_lsn == wal.last_lsn

    def test_crash_loses_at_most_pending_tail(self):
        wal = WriteAheadLog(group_commit_size=4)
        for txid in range(1, 6):  # 5 commits: group of 4 flushed, 1 pending
            wal.append(txid, OP_COMMIT)
            wal.commit_point()
        assert wal.pending_commits == 1
        survivors = wal.crash()
        assert [r.txid for r in survivors] == [1, 2, 3, 4]
        assert wal.pending_commits == 0

    def test_explicit_flush_drains_pending(self):
        wal = WriteAheadLog(group_commit_size=10)
        wal.append(1, OP_COMMIT)
        wal.commit_point()
        wal.flush()
        assert wal.pending_commits == 0
        assert wal.durable_lsn == wal.last_lsn

    def test_invalid_group_size_rejected(self):
        with pytest.raises(ValueError):
            WriteAheadLog(group_commit_size=0)


class TestSerializationFidelity:
    def test_unserializable_value_rejected_at_append(self, tmp_path):
        """Regression: to_json used ``default=str``, silently journaling
        e.g. sets as strings; replay then resurrected rows with the
        wrong types.  A file-backed WAL must reject at append time."""
        wal = WriteAheadLog(path=str(tmp_path / "journal.log"))
        before_len, before_lsn = len(wal), wal.last_lsn
        with pytest.raises(WALError, match="does not round-trip"):
            wal.append(1, OP_INSERT, table="t", rowid=1, after={"x": {1, 2}})
        # The failed append left the log untouched and usable.
        assert (len(wal), wal.last_lsn) == (before_len, before_lsn)
        wal.append(1, OP_INSERT, table="t", rowid=1, after={"x": "ok"})
        wal.flush()
        assert wal.durable_lsn == wal.last_lsn

    def test_in_memory_wal_keeps_objects_verbatim(self):
        # Without a file, replay consumes the records as Python objects;
        # no serialization happens, so nothing needs rejecting.
        wal = WriteAheadLog()
        record = wal.append(1, OP_INSERT, table="t", rowid=1, after={"x": {1, 2}})
        assert record.after == {"x": {1, 2}}

    def test_recovery_preserves_payload_types(self, tmp_path):
        """Enqueue a structured payload, crash, replay from the on-disk
        journal, and compare types value-for-value."""
        from repro.clock import SimulatedClock as Clock
        from repro.db import Database
        from repro.queues import QueueTable

        path = str(tmp_path / "db.wal")
        payload = {
            "count": 3,
            "ratio": 2.5,
            "flag": True,
            "none": None,
            "items": [1, "two", 3.0],
            "nested": {"k": 0},
        }
        db = Database(path=path, clock=Clock(start=1000.0))
        QueueTable(db, "jobs").enqueue(payload)

        reborn = Database(path=path, clock=Clock(start=2000.0))
        message = QueueTable(reborn, "jobs").dequeue()
        assert message.payload == payload
        for key, value in payload.items():
            assert type(message.payload[key]) is type(value), key
        assert [type(v) for v in message.payload["items"]] == [int, str, float]


class TestFilePersistence:
    def test_roundtrip_through_file(self, tmp_path):
        path = str(tmp_path / "journal.log")
        wal = WriteAheadLog(path=path)
        wal.append(1, OP_BEGIN)
        wal.append(1, OP_INSERT, table="t", rowid=1, after={"a": "x"})
        wal.append(1, OP_COMMIT)
        wal.flush()

        reloaded = WriteAheadLog(path=path)
        assert len(reloaded) == 3
        assert reloaded.records()[1].after == {"a": "x"}
        assert reloaded.last_lsn == 3

    def test_unflushed_records_not_in_file(self, tmp_path):
        path = str(tmp_path / "journal.log")
        wal = WriteAheadLog(path=path, sync_policy="none")
        wal.append(1, OP_BEGIN)
        assert not os.path.exists(path) or os.path.getsize(path) == 0

    def test_json_roundtrip(self):
        record = LogRecord(
            lsn=7, txid=3, op=OP_INSERT, table="t", rowid=9,
            after={"s": "hi", "n": 1.5, "b": True, "z": None},
        )
        restored = LogRecord.from_json(record.to_json())
        assert restored == record
