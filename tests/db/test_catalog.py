"""System catalog: object registry and introspection."""

import pytest

from repro.db.catalog import Catalog
from repro.db.schema import Column, TableSchema
from repro.db.types import INT, TEXT
from repro.errors import SchemaError


def make_catalog():
    catalog = Catalog()
    catalog.create_table(TableSchema("orders", [
        Column("id", INT, primary_key=True), Column("sym", TEXT),
    ]))
    return catalog


class TestTables:
    def test_create_and_lookup(self):
        catalog = make_catalog()
        assert catalog.has_table("orders")
        assert catalog.table("ORDERS").name == "orders"

    def test_duplicate_rejected(self):
        catalog = make_catalog()
        with pytest.raises(SchemaError):
            catalog.create_table(TableSchema("orders", [Column("a", INT)]))

    def test_drop(self):
        catalog = make_catalog()
        catalog.drop_table("orders")
        assert not catalog.has_table("orders")
        with pytest.raises(SchemaError):
            catalog.drop_table("orders")

    def test_drop_removes_triggers(self):
        from repro.db.triggers import Trigger, TriggerEvent, TriggerTiming

        catalog = make_catalog()
        catalog.triggers.create(Trigger(
            name="t1", table="orders", timing=TriggerTiming.AFTER,
            event=TriggerEvent.INSERT, action=lambda ctx: None,
        ))
        catalog.drop_table("orders")
        assert catalog.triggers.names() == []

    def test_names_sorted(self):
        catalog = make_catalog()
        catalog.create_table(TableSchema("aaa", [Column("x", INT)]))
        assert catalog.table_names() == ["aaa", "orders"]


class TestDescribe:
    def test_information_schema_shape(self, orders_db):
        rows = orders_db.catalog.describe()
        kinds = {row["object_type"] for row in rows}
        assert kinds == {"table", "index"}
        table_row = next(r for r in rows if r["object_type"] == "table")
        assert table_row["name"] == "orders"
        assert table_row["row_count"] == 6
        assert "id INT" in table_row["detail"]

    def test_triggers_listed(self, orders_db):
        from repro.db.triggers import TriggerEvent, TriggerTiming

        orders_db.create_trigger(
            "audit", "orders", timing=TriggerTiming.AFTER,
            event=TriggerEvent.INSERT, action=lambda ctx: None,
        )
        rows = orders_db.catalog.describe()
        trigger_rows = [r for r in rows if r["object_type"] == "trigger"]
        assert trigger_rows[0]["name"] == "audit"
        assert "after insert on orders" in trigger_rows[0]["detail"]

    def test_unique_index_marked(self, orders_db):
        rows = orders_db.catalog.describe()
        unique_rows = [
            r for r in rows
            if r["object_type"] == "index" and "unique" in r["detail"]
        ]
        assert unique_rows  # the PK's backing index
