"""EXPLAIN: the access path is observable and correct."""

import pytest

from repro.errors import SqlSyntaxError


class TestExplainSelect:
    def test_pk_lookup(self, orders_db):
        rows = orders_db.query("EXPLAIN SELECT * FROM orders WHERE id = 3")
        assert "INDEX LOOKUP orders.id" in rows[0]["operation"]

    def test_hash_index_equality(self, orders_db):
        rows = orders_db.query(
            "EXPLAIN SELECT * FROM orders WHERE symbol = 'IBM'"
        )
        assert "ix_orders_symbol" in rows[0]["operation"]

    def test_range_uses_ordered_index(self, orders_db):
        rows = orders_db.query(
            "EXPLAIN SELECT * FROM orders WHERE price BETWEEN 20 AND 60"
        )
        assert "INDEX RANGE orders.price" in rows[0]["operation"]

    def test_unindexed_scans(self, orders_db):
        rows = orders_db.query(
            "EXPLAIN SELECT * FROM orders WHERE account = 'a1'"
        )
        assert rows[0]["operation"] == "SCAN orders"

    def test_pipeline_steps_listed(self, orders_db):
        rows = orders_db.query(
            "EXPLAIN SELECT symbol, count(*) FROM orders WHERE price > 10 "
            "GROUP BY symbol ORDER BY symbol LIMIT 2"
        )
        operations = [row["operation"] for row in rows]
        assert operations[0].startswith("INDEX RANGE")
        assert operations[1:] == ["AGGREGATE", "SORT", "LIMIT/OFFSET"]

    def test_join_strategies(self, orders_db):
        orders_db.execute("CREATE TABLE accounts (account TEXT PRIMARY KEY)")
        rows = orders_db.query(
            "EXPLAIN SELECT * FROM orders o JOIN accounts a "
            "ON o.account = a.account"
        )
        operations = [row["operation"] for row in rows]
        assert operations[0] == "SCAN orders"
        assert operations[1] == "HASH JOIN INNER accounts"
        rows = orders_db.query(
            "EXPLAIN SELECT * FROM orders o JOIN accounts a ON o.qty > 5"
        )
        assert rows[1]["operation"] == "NESTED LOOP INNER accounts"

    def test_constant_select(self, db):
        rows = db.query("EXPLAIN SELECT 1 + 1")
        assert rows[0]["operation"] == "CONSTANT (no table)"


class TestExplainDml:
    def test_update_path(self, orders_db):
        rows = orders_db.query(
            "EXPLAIN UPDATE orders SET qty = 1 WHERE symbol = 'IBM'"
        )
        assert "INDEX LOOKUP" in rows[0]["operation"]
        assert rows[1]["operation"] == "UPDATE rows"

    def test_delete_path(self, orders_db):
        rows = orders_db.query("EXPLAIN DELETE FROM orders")
        assert rows[0]["operation"] == "SCAN orders"
        assert rows[1]["operation"] == "DELETE rows"

    def test_explain_does_not_mutate(self, orders_db):
        orders_db.query("EXPLAIN DELETE FROM orders")
        assert orders_db.execute("SELECT count(*) FROM orders").scalar() == 6

    def test_explain_insert_rejected(self, orders_db):
        with pytest.raises(SqlSyntaxError):
            orders_db.query("EXPLAIN INSERT INTO orders VALUES (1)")


class TestSelectActuallyUsesIndex:
    def test_select_via_index_matches_scan_results(self, orders_db):
        """Behavioural check that the planner path is live for SELECT:
        drop the index and results stay identical (plan changes)."""
        with_index = orders_db.query(
            "SELECT id FROM orders WHERE symbol = 'IBM' ORDER BY id"
        )
        plan_before = orders_db.query(
            "EXPLAIN SELECT id FROM orders WHERE symbol = 'IBM'"
        )[0]["operation"]
        orders_db.execute("DROP INDEX ix_orders_symbol ON orders")
        without_index = orders_db.query(
            "SELECT id FROM orders WHERE symbol = 'IBM' ORDER BY id"
        )
        plan_after = orders_db.query(
            "EXPLAIN SELECT id FROM orders WHERE symbol = 'IBM'"
        )[0]["operation"]
        assert with_index == without_index
        assert plan_before.startswith("INDEX LOOKUP")
        assert plan_after == "SCAN orders"
