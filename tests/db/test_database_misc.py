"""Facade odds and ends: results, statistics, errors, lexer edges."""

import pytest

from repro.db import Database
from repro.db.sql.executor import Result
from repro.db.sql.parser import parse_expression
from repro.errors import DatabaseError, SqlSyntaxError, TransactionError


class TestResultHelpers:
    def test_iter_len_column(self, orders_db):
        result = orders_db.execute("SELECT id, symbol FROM orders ORDER BY id")
        assert len(result) == 6
        assert [row["id"] for row in result] == [1, 2, 3, 4, 5, 6]
        assert result.column("symbol")[0] == "IBM"

    def test_scalar_empty(self, orders_db):
        result = orders_db.execute("SELECT id FROM orders WHERE id = 999")
        assert result.scalar() is None

    def test_scalar_no_columns(self):
        assert Result(rows=[{"x": 5}]).scalar() == 5
        assert Result().scalar() is None


class TestStatistics:
    def test_dml_counters(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        db.execute("UPDATE t SET a = 3")
        db.execute("DELETE FROM t WHERE a = 3")
        assert db.statistics["inserts"] == 2
        assert db.statistics["updates"] == 2
        assert db.statistics["deletes"] == 2
        assert db.statistics["commits"] >= 4

    def test_rollback_counter(self, db):
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("ROLLBACK")
        assert db.statistics["rollbacks"] == 1


class TestErrorPaths:
    def test_commit_without_transaction(self, db):
        with pytest.raises(TransactionError):
            db.connect().commit()

    def test_rollback_without_transaction(self, db):
        with pytest.raises(TransactionError):
            db.connect().rollback()

    def test_savepoint_without_transaction(self, db):
        conn = db.connect()
        with pytest.raises(TransactionError):
            conn.execute("SAVEPOINT sp")

    def test_nested_begin_rejected(self, db):
        conn = db.connect()
        conn.execute("BEGIN")
        with pytest.raises(TransactionError):
            conn.execute("BEGIN")

    def test_drop_index_sql(self, orders_db):
        orders_db.execute("DROP INDEX ix_orders_price ON orders")
        table = orders_db.catalog.table("orders")
        assert "ix_orders_price" not in table.indexes

    def test_default_connection_reused(self, db):
        db.execute("CREATE TABLE t (a INT)")
        first = db._default()
        db.execute("INSERT INTO t VALUES (1)")
        assert db._default() is first


class TestLexerEdges:
    def test_comment_only_statement_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("-- nothing here")

    def test_multiline_statement(self, db):
        db.execute(
            """CREATE TABLE t (
                 a INT,   -- trailing comment
                 b TEXT
               )"""
        )
        assert db.catalog.has_table("t")

    def test_string_with_newline(self, db):
        db.execute("CREATE TABLE t (s TEXT)")
        db.execute("INSERT INTO t VALUES ('line1\nline2')")
        assert db.query("SELECT s FROM t")[0]["s"] == "line1\nline2"

    def test_like_against_column_pattern(self):
        expression = parse_expression("name LIKE pat")
        assert expression.evaluate({"name": "abc", "pat": "a%"}) is True
        assert expression.evaluate({"name": "abc", "pat": None}) is None


class TestReprs:
    """Reprs exist for debugging; keep them stable and informative."""

    @pytest.mark.parametrize("text", [
        "a = 1 AND b > 2",
        "x IN (1, 2)",
        "y NOT BETWEEN 1 AND 5",
        "name NOT LIKE 'x%'",
        "z IS NOT NULL",
        "CASE WHEN a > 0 THEN 'p' END",
        "abs(a)",
        "NOT a",
        "t.col = 1",
    ])
    def test_expression_reprs_render(self, text):
        rendered = repr(parse_expression(text))
        assert rendered  # non-empty, no exception

    def test_transaction_repr(self, db):
        conn = db.connect()
        transaction = conn.begin()
        assert "active" in repr(transaction)
        conn.commit()
        assert "committed" in repr(transaction)


class TestMapOperatorEventReturn:
    def test_map_returning_event_passes_through(self):
        from repro.cq import MapOperator, Stream
        from repro.events import Event

        source = Stream("s")
        out = []
        MapOperator(
            source,
            lambda e: Event("rewrapped", e.timestamp + 1, {"was": e.event_type}),
        ).subscribe(out.append)
        source.push(Event("orig", 1.0, {}))
        assert out[0].event_type == "rewrapped"
        assert out[0].timestamp == 2.0


class TestJournalRunForever:
    def test_bounded_polling_loop(self, db, clock):
        from repro.capture import JournalCapture

        db.execute("CREATE TABLE t (a INT)")
        capture = JournalCapture(db, ["t"])
        db.execute("INSERT INTO t VALUES (1)")
        capture.run_forever(poll_interval=5.0, max_polls=3)
        assert capture.polls == 3
        assert capture.events_captured == 1
        assert clock.now() == 1000.0 + 15.0
