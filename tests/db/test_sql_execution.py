"""End-to-end SQL execution: SELECT features, DML semantics, DDL."""

import pytest

from repro.db import Database
from repro.errors import (
    ConstraintViolation,
    SchemaError,
    SqlSyntaxError,
)


class TestSelectBasics:
    def test_where_filter(self, orders_db):
        rows = orders_db.query("SELECT id FROM orders WHERE symbol = 'IBM'")
        assert sorted(r["id"] for r in rows) == [1, 3]

    def test_projection_alias(self, orders_db):
        rows = orders_db.query(
            "SELECT qty * price AS notional FROM orders WHERE id = 1"
        )
        assert rows[0]["notional"] == 9850.0

    def test_star(self, orders_db):
        rows = orders_db.query("SELECT * FROM orders WHERE id = 2")
        assert set(rows[0]) == {"id", "symbol", "qty", "price", "account"}

    def test_order_by_desc_limit_offset(self, orders_db):
        rows = orders_db.query(
            "SELECT id FROM orders ORDER BY price DESC LIMIT 2 OFFSET 1"
        )
        assert [r["id"] for r in rows] == [1, 4]

    def test_order_by_expression(self, orders_db):
        rows = orders_db.query("SELECT id FROM orders ORDER BY qty * price")
        assert rows[0]["id"] == 6  # smallest notional

    def test_distinct(self, orders_db):
        rows = orders_db.query("SELECT DISTINCT symbol FROM orders ORDER BY symbol")
        assert [r["symbol"] for r in rows] == ["HPQ", "IBM", "MSFT", "ORCL"]

    def test_tableless(self, db):
        assert db.execute("SELECT 2 + 3 AS v").scalar() == 5

    def test_empty_result(self, orders_db):
        assert orders_db.query("SELECT * FROM orders WHERE id = 999") == []

    def test_case_projection(self, orders_db):
        rows = orders_db.query(
            "SELECT id, CASE WHEN qty >= 100 THEN 'big' ELSE 'small' END AS size "
            "FROM orders ORDER BY id"
        )
        assert rows[0]["size"] == "big"
        assert rows[1]["size"] == "small"


class TestAggregation:
    def test_global_aggregates(self, orders_db):
        row = orders_db.query(
            "SELECT count(*) AS n, sum(qty) AS total, avg(price) AS mean, "
            "min(qty) AS lo, max(qty) AS hi FROM orders"
        )[0]
        assert row["n"] == 6
        assert row["total"] == 465
        assert row["lo"] == 10 and row["hi"] == 200

    def test_group_by_having(self, orders_db):
        rows = orders_db.query(
            "SELECT symbol, count(*) AS n FROM orders GROUP BY symbol "
            "HAVING count(*) > 1 ORDER BY symbol"
        )
        assert [(r["symbol"], r["n"]) for r in rows] == [("IBM", 2), ("ORCL", 2)]

    def test_empty_table_global_group(self, db):
        db.execute("CREATE TABLE e (a INT)")
        row = db.query("SELECT count(*) AS n, sum(a) AS s FROM e")[0]
        assert row["n"] == 0
        assert row["s"] is None

    def test_count_distinct(self, orders_db):
        assert (
            orders_db.execute(
                "SELECT count(DISTINCT symbol) AS n FROM orders"
            ).scalar()
            == 4
        )

    def test_aggregate_in_expression(self, orders_db):
        row = orders_db.query(
            "SELECT max(price) - min(price) AS spread FROM orders"
        )[0]
        assert row["spread"] == pytest.approx(99.0 - 20.25)

    def test_count_skips_nulls(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (NULL), (3)")
        assert db.execute("SELECT count(a) AS n FROM t").scalar() == 2
        assert db.execute("SELECT count(*) AS n FROM t").scalar() == 3

    def test_stddev(self, db):
        db.execute("CREATE TABLE t (a REAL)")
        db.execute("INSERT INTO t VALUES (2.0), (4.0), (4.0), (4.0), (5.0), (5.0), (7.0), (9.0)")
        assert db.execute("SELECT stddev(a) AS s FROM t").scalar() == pytest.approx(2.138, abs=0.01)

    def test_order_by_aggregate(self, orders_db):
        rows = orders_db.query(
            "SELECT symbol, sum(qty) AS total FROM orders "
            "GROUP BY symbol ORDER BY sum(qty) DESC"
        )
        assert rows[0]["symbol"] == "MSFT"


class TestJoins:
    @pytest.fixture
    def joined_db(self, orders_db):
        orders_db.execute("CREATE TABLE accounts (account TEXT PRIMARY KEY, owner TEXT)")
        for account, owner in [("a1", "alice"), ("a2", "bob"), ("a3", "carol")]:
            orders_db.execute(
                f"INSERT INTO accounts VALUES ('{account}', '{owner}')"
            )
        return orders_db

    def test_inner_join(self, joined_db):
        rows = joined_db.query(
            "SELECT o.id, a.owner FROM orders o "
            "JOIN accounts a ON o.account = a.account ORDER BY o.id"
        )
        # a4 has no accounts row: order 6 drops out.
        assert [r["id"] for r in rows] == [1, 2, 3, 4, 5]
        assert rows[0]["owner"] == "alice"

    def test_left_join_pads_nulls(self, joined_db):
        rows = joined_db.query(
            "SELECT o.id, a.owner FROM orders o "
            "LEFT JOIN accounts a ON o.account = a.account ORDER BY o.id"
        )
        assert len(rows) == 6
        assert rows[-1]["owner"] is None

    def test_join_with_where_and_group(self, joined_db):
        rows = joined_db.query(
            "SELECT a.owner, sum(o.qty) AS total FROM orders o "
            "JOIN accounts a ON o.account = a.account "
            "WHERE o.price > 21 GROUP BY a.owner ORDER BY a.owner"
        )
        assert [(r["owner"], r["total"]) for r in rows] == [
            ("alice", 130), ("carol", 200),
        ]

    def test_non_equi_join(self, joined_db):
        rows = joined_db.query(
            "SELECT count(*) AS n FROM orders o JOIN accounts a ON o.qty > 100"
        )
        # qty>100 matches only order 4 (200); 3 account rows each.
        assert rows[0]["n"] == 3


class TestDml:
    def test_insert_defaults(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, n INT DEFAULT 7)")
        db.execute("INSERT INTO t (id) VALUES (1)")
        assert db.query("SELECT n FROM t")[0]["n"] == 7

    def test_update_expression_uses_row_values(self, orders_db):
        orders_db.execute("UPDATE orders SET qty = qty * 2 WHERE symbol = 'IBM'")
        rows = orders_db.query("SELECT qty FROM orders WHERE symbol = 'IBM' ORDER BY id")
        assert [r["qty"] for r in rows] == [200, 60]

    def test_update_rowcount(self, orders_db):
        result = orders_db.execute("UPDATE orders SET qty = 1 WHERE symbol = 'ORCL'")
        assert result.rowcount == 2

    def test_delete_where(self, orders_db):
        result = orders_db.execute("DELETE FROM orders WHERE qty < 60")
        assert result.rowcount == 3
        assert orders_db.execute("SELECT count(*) FROM orders").scalar() == 3

    def test_check_constraint_blocks_insert(self, orders_db):
        with pytest.raises(ConstraintViolation):
            orders_db.execute(
                "INSERT INTO orders (id, symbol, qty, price) VALUES (9, 'X', -5, 1.0)"
            )

    def test_check_constraint_blocks_update(self, orders_db):
        with pytest.raises(ConstraintViolation):
            orders_db.execute("UPDATE orders SET qty = -1 WHERE id = 1")

    def test_pk_violation_blocks_insert(self, orders_db):
        with pytest.raises(ConstraintViolation):
            orders_db.execute(
                "INSERT INTO orders (id, symbol, qty, price) VALUES (1, 'X', 5, 1.0)"
            )

    def test_failed_statement_autocommit_rolls_back(self, orders_db):
        # Multi-row insert where the second row violates PK: the first
        # row must not survive (statement atomicity via autocommit).
        with pytest.raises(ConstraintViolation):
            orders_db.execute(
                "INSERT INTO orders (id, symbol, qty, price) "
                "VALUES (100, 'NEW', 5, 1.0), (1, 'DUP', 5, 1.0)"
            )
        assert orders_db.query("SELECT * FROM orders WHERE id = 100") == []

    def test_wrong_arity_rejected(self, orders_db):
        with pytest.raises(SqlSyntaxError):
            orders_db.execute("INSERT INTO orders (id, symbol) VALUES (9)")


class TestDdl:
    def test_drop_table(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("DROP TABLE t")
        with pytest.raises(SchemaError):
            db.query("SELECT * FROM t")

    def test_drop_missing_table(self, db):
        with pytest.raises(SchemaError):
            db.execute("DROP TABLE ghost")
        db.execute("DROP TABLE IF EXISTS ghost")  # tolerated

    def test_create_duplicate_table(self, db):
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(SchemaError):
            db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE TABLE IF NOT EXISTS t (a INT)")  # tolerated

    def test_create_index_then_used(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        db.execute("CREATE INDEX ix ON t(a)")
        assert len(db.query("SELECT * FROM t WHERE a = 2")) == 1

    def test_unique_index_enforces(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE UNIQUE INDEX ux ON t(a)")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO t VALUES (1)")


class TestTransactionsViaSql:
    def test_rollback_discards(self, orders_db):
        conn = orders_db.connect()
        conn.execute("BEGIN")
        conn.execute("DELETE FROM orders")
        conn.execute("ROLLBACK")
        assert orders_db.execute("SELECT count(*) FROM orders").scalar() == 6

    def test_commit_persists(self, orders_db):
        conn = orders_db.connect()
        conn.execute("BEGIN")
        conn.execute("DELETE FROM orders WHERE id = 1")
        conn.execute("COMMIT")
        assert orders_db.execute("SELECT count(*) FROM orders").scalar() == 5

    def test_savepoint_partial_rollback(self, orders_db):
        conn = orders_db.connect()
        conn.execute("BEGIN")
        conn.execute("DELETE FROM orders WHERE id = 1")
        conn.execute("SAVEPOINT sp")
        conn.execute("DELETE FROM orders WHERE id = 2")
        conn.execute("ROLLBACK TO sp")
        conn.execute("COMMIT")
        ids = sorted(r["id"] for r in orders_db.query("SELECT id FROM orders"))
        assert ids == [2, 3, 4, 5, 6]

    def test_context_manager_commits(self, orders_db):
        with orders_db.connect() as conn:
            conn.execute("DELETE FROM orders WHERE id = 6")
        assert orders_db.execute("SELECT count(*) FROM orders").scalar() == 5

    def test_context_manager_rolls_back_on_error(self, orders_db):
        with pytest.raises(RuntimeError):
            with orders_db.connect() as conn:
                conn.execute("DELETE FROM orders")
                raise RuntimeError("boom")
        assert orders_db.execute("SELECT count(*) FROM orders").scalar() == 6

    def test_ddl_rolls_back(self, db):
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("CREATE TABLE temp (a INT)")
        conn.execute("ROLLBACK")
        assert not db.catalog.has_table("temp")
