"""Schema validation and row coercion."""

import pytest

from repro.db.schema import Column, TableSchema, validate_identifier
from repro.db.sql.parser import parse_expression
from repro.db.types import INT, REAL, TEXT
from repro.errors import ConstraintViolation, SchemaError


def make_schema(**kwargs):
    return TableSchema(
        "t",
        [
            Column("id", INT, primary_key=True),
            Column("name", TEXT, nullable=False),
            Column("score", REAL, default=0.0),
        ],
        **kwargs,
    )


class TestIdentifiers:
    def test_lowercased(self):
        assert validate_identifier("MyTable") == "mytable"

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            validate_identifier("")

    def test_leading_digit_rejected(self):
        with pytest.raises(SchemaError):
            validate_identifier("1abc")

    def test_punctuation_rejected(self):
        with pytest.raises(SchemaError):
            validate_identifier("a-b")


class TestColumn:
    def test_primary_key_implies_not_null_unique(self):
        column = Column("id", INT, primary_key=True)
        assert not column.nullable
        assert column.unique

    def test_callable_default(self):
        counter = iter(range(10))
        column = Column("seq", INT, default=lambda: next(counter))
        assert column.default_value() == 0
        assert column.default_value() == 1


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", INT), Column("A", INT)])

    def test_two_primary_keys_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", INT, primary_key=True), Column("b", INT, primary_key=True)],
            )

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_column_lookup_case_insensitive(self):
        schema = make_schema()
        assert schema.column("NAME").name == "name"

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            make_schema().column("missing")

    def test_unique_columns_includes_pk(self):
        assert make_schema().unique_columns() == ["id"]


class TestCoerceRow:
    def test_defaults_applied(self):
        row = make_schema().coerce_row({"id": 1, "name": "x"})
        assert row == {"id": 1, "name": "x", "score": 0.0}

    def test_values_coerced(self):
        row = make_schema().coerce_row({"id": "5", "name": "x", "score": "1.5"})
        assert row["id"] == 5
        assert row["score"] == 1.5

    def test_unknown_key_rejected(self):
        with pytest.raises(SchemaError):
            make_schema().coerce_row({"id": 1, "name": "x", "extra": 1})

    def test_not_null_enforced(self):
        with pytest.raises(ConstraintViolation):
            make_schema().coerce_row({"id": 1, "name": None})

    def test_missing_not_null_without_default_rejected(self):
        with pytest.raises(ConstraintViolation):
            make_schema().coerce_row({"id": 1})

    def test_check_constraint_enforced(self):
        schema = make_schema(checks=[parse_expression("score >= 0")])
        evaluator = lambda check, row: check.evaluate(row)
        schema.coerce_row({"id": 1, "name": "x", "score": 1.0}, check_evaluator=evaluator)
        with pytest.raises(ConstraintViolation):
            schema.coerce_row(
                {"id": 1, "name": "x", "score": -1.0}, check_evaluator=evaluator
            )

    def test_check_passes_on_null(self):
        # SQL semantics: CHECK with UNKNOWN result does not fail.
        schema = TableSchema(
            "t",
            [Column("a", INT)],
            checks=[parse_expression("a > 0")],
        )
        evaluator = lambda check, row: check.evaluate(row)
        schema.coerce_row({"a": None}, check_evaluator=evaluator)


class TestCoerceUpdate:
    def test_partial_coercion(self):
        assert make_schema().coerce_update({"score": "2"}) == {"score": 2.0}

    def test_not_null_enforced_on_update(self):
        with pytest.raises(ConstraintViolation):
            make_schema().coerce_update({"name": None})

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            make_schema().coerce_update({"bogus": 1})
