"""Isolation semantics: read committed via table locks."""

import threading
import time

import pytest

from repro.db import Database
from repro.errors import DeadlockError, LockTimeoutError


@pytest.fixture
def tdb(clock):
    db = Database(clock=clock, lock_timeout=5.0)
    db.execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)")
    db.execute("INSERT INTO accounts VALUES (1, 100), (2, 100)")
    return db


class TestReadCommitted:
    def test_reader_blocks_until_writer_commits(self, tdb):
        writer = tdb.connect()
        writer.execute("BEGIN")
        writer.execute("UPDATE accounts SET balance = 0 WHERE id = 1")

        observed = []

        def reader():
            # Runs on its own connection; must wait for the writer.
            rows = tdb.connect().query(
                "SELECT balance FROM accounts WHERE id = 1"
            )
            observed.append(rows[0]["balance"])

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert observed == []  # still blocked: no dirty read
        writer.execute("COMMIT")
        thread.join(timeout=2.0)
        assert observed == [0]  # sees the committed value only

    def test_reader_sees_pre_state_after_rollback(self, tdb):
        writer = tdb.connect()
        writer.execute("BEGIN")
        writer.execute("UPDATE accounts SET balance = 0 WHERE id = 1")
        observed = []

        def reader():
            rows = tdb.connect().query(
                "SELECT balance FROM accounts WHERE id = 1"
            )
            observed.append(rows[0]["balance"])

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        writer.execute("ROLLBACK")
        thread.join(timeout=2.0)
        assert observed == [100]

    def test_writers_serialize_per_table(self, tdb):
        """Two concurrent transfer transactions cannot interleave on the
        same table: the invariant (total balance) always holds."""
        def transfer(amount):
            conn = tdb.connect()
            conn.execute("BEGIN")
            conn.execute(
                f"UPDATE accounts SET balance = balance - {amount} WHERE id = 1"
            )
            conn.execute(
                f"UPDATE accounts SET balance = balance + {amount} WHERE id = 2"
            )
            conn.execute("COMMIT")

        threads = [
            threading.Thread(target=transfer, args=(amount,))
            for amount in (10, 20, 30)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        rows = {r["id"]: r["balance"] for r in tdb.query("SELECT * FROM accounts")}
        assert rows[1] + rows[2] == 200
        assert rows[1] == 100 - 60

    def test_cross_table_deadlock_detected(self, clock):
        db = Database(clock=clock, lock_timeout=3.0)
        db.execute("CREATE TABLE a (x INT)")
        db.execute("CREATE TABLE b (x INT)")
        db.execute("INSERT INTO a VALUES (1)")
        db.execute("INSERT INTO b VALUES (1)")

        barrier = threading.Barrier(2, timeout=5.0)
        outcomes = []

        def worker(first, second):
            conn = db.connect()
            conn.execute("BEGIN")
            conn.execute(f"UPDATE {first} SET x = 2")
            barrier.wait()
            try:
                conn.execute(f"UPDATE {second} SET x = 2")
                conn.execute("COMMIT")
                outcomes.append("committed")
            except (DeadlockError, LockTimeoutError) as exc:
                conn.execute("ROLLBACK")
                outcomes.append(type(exc).__name__)

        threads = [
            threading.Thread(target=worker, args=("a", "b")),
            threading.Thread(target=worker, args=("b", "a")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        # At least one transaction survives; the conflict is surfaced,
        # never silently hung.
        assert "committed" in outcomes
        assert len(outcomes) == 2

    def test_autocommit_statements_interleave_fine(self, tdb):
        errors = []

        def hammer(identity):
            try:
                for i in range(30):
                    tdb.execute(
                        f"UPDATE accounts SET balance = {i} WHERE id = {identity}"
                    )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(1,)),
            threading.Thread(target=hammer, args=(2,)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert errors == []
        rows = tdb.query("SELECT balance FROM accounts")
        assert all(r["balance"] == 29 for r in rows)
