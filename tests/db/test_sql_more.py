"""Additional SQL behaviours: join projections, NULL grouping, limits."""

import pytest

from repro.db import Database


@pytest.fixture
def jdb(db):
    db.execute("CREATE TABLE a (id INT PRIMARY KEY, v TEXT)")
    db.execute("CREATE TABLE b (id INT PRIMARY KEY, a_id INT, w TEXT)")
    db.execute("INSERT INTO a VALUES (1, 'x'), (2, 'y')")
    db.execute("INSERT INTO b VALUES (10, 1, 'p'), (11, 1, 'q'), (12, 9, 'r')")
    return db


class TestJoinProjection:
    def test_star_over_join_exposes_bare_columns(self, jdb):
        rows = jdb.query(
            "SELECT * FROM a JOIN b ON a.id = b.a_id ORDER BY b.id"
        )
        assert len(rows) == 2
        # Bare names resolve; the left side wins the `id` collision.
        assert rows[0]["v"] == "x"
        assert rows[0]["w"] == "p"
        assert rows[0]["id"] == 1

    def test_qualified_projection(self, jdb):
        rows = jdb.query(
            "SELECT a.id AS aid, b.id AS bid FROM a JOIN b ON a.id = b.a_id "
            "ORDER BY bid"
        )
        assert [(r["aid"], r["bid"]) for r in rows] == [(1, 10), (1, 11)]

    def test_self_join_with_aliases(self, jdb):
        rows = jdb.query(
            "SELECT x.id AS lo, y.id AS hi FROM a x JOIN a y ON x.id < y.id"
        )
        assert [(r["lo"], r["hi"]) for r in rows] == [(1, 2)]

    def test_join_count(self, jdb):
        assert (
            jdb.execute(
                "SELECT count(*) FROM a JOIN b ON a.id = b.a_id"
            ).scalar()
            == 2
        )


class TestNullHandling:
    @pytest.fixture
    def ndb(self, db):
        db.execute("CREATE TABLE t (g TEXT, v INT)")
        db.execute(
            "INSERT INTO t VALUES ('a', 1), ('a', 2), (NULL, 3), (NULL, 4), ('b', NULL)"
        )
        return db

    def test_group_by_null_forms_one_group(self, ndb):
        rows = ndb.query(
            "SELECT g, count(*) AS n FROM t GROUP BY g ORDER BY n DESC"
        )
        groups = {row["g"]: row["n"] for row in rows}
        assert groups == {"a": 2, None: 2, "b": 1}

    def test_where_null_comparison_excludes(self, ndb):
        rows = ndb.query("SELECT v FROM t WHERE g = 'a'")
        assert len(rows) == 2  # NULL groups are not 'a' and not != 'a'
        rows = ndb.query("SELECT v FROM t WHERE g != 'a'")
        assert len(rows) == 1  # only 'b'; NULL is UNKNOWN

    def test_is_null_filter(self, ndb):
        rows = ndb.query("SELECT v FROM t WHERE g IS NULL ORDER BY v")
        assert [r["v"] for r in rows] == [3, 4]

    def test_order_by_nulls_first(self, ndb):
        rows = ndb.query("SELECT g FROM t ORDER BY g")
        assert rows[0]["g"] is None and rows[1]["g"] is None

    def test_distinct_with_nulls(self, ndb):
        rows = ndb.query("SELECT DISTINCT g FROM t")
        values = [row["g"] for row in rows]
        assert values.count(None) == 1
        assert len(values) == 3


class TestLimitsAndOrdering:
    def test_limit_zero(self, jdb):
        assert jdb.query("SELECT * FROM a LIMIT 0") == []

    def test_offset_past_end(self, jdb):
        assert jdb.query("SELECT * FROM a OFFSET 10") == []

    def test_order_by_alias(self, jdb):
        rows = jdb.query(
            "SELECT id * -1 AS neg FROM a ORDER BY neg"
        )
        assert [r["neg"] for r in rows] == [-2, -1]

    def test_order_by_two_keys(self, db):
        db.execute("CREATE TABLE t (a INT, b INT)")
        db.execute("INSERT INTO t VALUES (1, 2), (1, 1), (0, 9)")
        rows = db.query("SELECT a, b FROM t ORDER BY a, b DESC")
        assert [(r["a"], r["b"]) for r in rows] == [(0, 9), (1, 2), (1, 1)]

    def test_update_via_index_path(self, orders_db):
        # price has an ordered index: the planner should use it and the
        # update must still be correct.
        orders_db.execute("UPDATE orders SET qty = 7 WHERE price > 90")
        rows = orders_db.query("SELECT qty FROM orders WHERE price > 90")
        assert all(r["qty"] == 7 for r in rows)

    def test_select_star_empty_table_has_no_rows(self, db):
        db.execute("CREATE TABLE t (a INT)")
        result = db.execute("SELECT * FROM t")
        assert result.rows == []
