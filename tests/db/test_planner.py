"""Access-path planning: choice and result-equivalence."""

import pytest

from repro.db.sql.parser import parse_expression
from repro.db.sql.planner import plan_access


@pytest.fixture
def table(orders_db):
    return orders_db.catalog.table("orders")


def rows_of(path):
    return sorted(rowid for rowid, _row in path.rows())


class TestPathChoice:
    def test_no_where_scans(self, table):
        assert plan_access(table, None).kind == "scan"

    def test_equality_uses_index(self, table):
        path = plan_access(table, parse_expression("symbol = 'IBM'"))
        assert path.kind == "index_eq"
        assert "ix_orders_symbol" in path.explain()

    def test_pk_equality_uses_unique_index(self, table):
        path = plan_access(table, parse_expression("id = 3"))
        assert path.kind == "index_eq"

    def test_range_uses_ordered_index(self, table):
        path = plan_access(table, parse_expression("price > 50"))
        assert path.kind == "index_range"
        assert path.low == 50 and path.high is None

    def test_range_bounds_merged(self, table):
        path = plan_access(
            table, parse_expression("price >= 20 AND price < 60")
        )
        assert path.kind == "index_range"
        assert (path.low, path.high) == (20, 60)
        assert path.low_inclusive and not path.high_inclusive

    def test_equality_preferred_over_range(self, table):
        path = plan_access(
            table, parse_expression("price > 50 AND symbol = 'IBM'")
        )
        assert path.kind == "index_eq"
        assert path.column == "symbol"

    def test_unindexed_column_scans(self, table):
        path = plan_access(table, parse_expression("account = 'a1'"))
        assert path.kind == "scan"

    def test_range_on_hash_only_column_scans(self, table):
        # symbol has only a hash index: a range on it cannot use it.
        path = plan_access(table, parse_expression("symbol > 'A'"))
        assert path.kind == "scan"

    def test_or_prevents_index(self, table):
        path = plan_access(
            table, parse_expression("symbol = 'IBM' OR price > 50")
        )
        assert path.kind == "scan"


class TestResultEquivalence:
    """Whatever path is chosen, results must match a full scan."""

    @pytest.mark.parametrize("where", [
        "symbol = 'IBM'",
        "price > 50",
        "price >= 20.25 AND price <= 55",
        "price BETWEEN 21 AND 99",
        "symbol = 'ORCL' AND qty > 60",
        "qty > 20 AND qty < 100 AND symbol != 'IBM'",
        "id = 4",
        "symbol = 'NONE'",
        "price < 0",
    ])
    def test_matches_scan(self, table, where):
        expression = parse_expression(where)
        chosen = plan_access(table, expression)
        baseline = [
            rowid
            for rowid, row in table.scan()
            if _predicate(expression, row)
        ]
        assert rows_of(chosen) == sorted(baseline)


def _predicate(expression, row):
    from repro.db.expr import evaluate_predicate

    return evaluate_predicate(expression, row)


class TestExplain:
    def test_explain_strings(self, table):
        assert plan_access(table, None).explain() == "SCAN orders"
        eq = plan_access(table, parse_expression("symbol = 'IBM'"))
        assert "INDEX LOOKUP" in eq.explain()
        rng = plan_access(table, parse_expression("price BETWEEN 1 AND 2"))
        assert "INDEX RANGE" in rng.explain()
        assert "[1, 2]" in rng.explain()
