"""Crash recovery: committed survives, uncommitted vanishes."""

import pytest

from repro.db import Database
from repro.db.recovery import analyze, schema_from_dict, schema_to_dict
from repro.db.schema import Column, TableSchema
from repro.db.sql.parser import parse_expression
from repro.db.types import INT, TEXT
from repro.db.wal import OP_BEGIN, OP_COMMIT, OP_INSERT, WriteAheadLog


class TestAnalyze:
    def test_classifies_transactions(self):
        wal = WriteAheadLog()
        wal.append(1, OP_BEGIN)
        wal.append(1, OP_INSERT, table="t", rowid=1, after={})
        wal.append(1, OP_COMMIT)
        wal.append(2, OP_BEGIN)
        wal.append(2, OP_INSERT, table="t", rowid=2, after={})
        wal.append(3, OP_BEGIN)
        wal.append(3, "abort")
        plan = analyze(wal.records())
        assert plan.committed_txids == {1}
        assert plan.aborted_txids == {3}
        assert plan.inflight_txids == {2}
        assert [r.rowid for r in plan.redo_records] == [1]
        assert plan.max_txid == 3

    def test_checkpoint_bounds_redo(self):
        wal = WriteAheadLog()
        wal.append(1, OP_BEGIN)
        wal.append(1, OP_INSERT, table="t", rowid=1, after={})
        wal.append(1, OP_COMMIT)
        wal.append(0, "checkpoint", meta={"tables": {}})
        wal.append(2, OP_BEGIN)
        wal.append(2, OP_INSERT, table="t", rowid=2, after={})
        wal.append(2, OP_COMMIT)
        plan = analyze(wal.records())
        assert plan.checkpoint is not None
        assert [r.rowid for r in plan.redo_records] == [2]


class TestSchemaSerialization:
    def test_roundtrip(self):
        schema = TableSchema(
            "t",
            [
                Column("id", INT, primary_key=True),
                Column("name", TEXT, nullable=False, default="x"),
            ],
            checks=[parse_expression("length(name) > 0")],
        )
        restored = schema_from_dict(schema_to_dict(schema))
        assert restored.name == "t"
        assert restored.primary_key == "id"
        assert restored.column("name").default == "x"
        assert len(restored.checks) == 1
        assert restored.checks[0].evaluate({"name": ""}) is False


class TestCrashRecovery:
    def test_committed_rows_survive(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        db.simulate_crash()
        assert sorted(r["a"] for r in db.query("SELECT a FROM t")) == [1, 2]

    def test_inflight_transaction_lost(self, db):
        db.execute("CREATE TABLE t (a INT)")
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (99)")
        # Crash with the transaction still open.
        db.simulate_crash()
        assert db.query("SELECT * FROM t") == []

    def test_rolled_back_stays_gone(self, db):
        db.execute("CREATE TABLE t (a INT)")
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (1)")
        conn.execute("ROLLBACK")
        db.simulate_crash()
        assert db.query("SELECT * FROM t") == []

    def test_updates_and_deletes_replayed(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
        db.execute("UPDATE t SET v = 99 WHERE id = 2")
        db.execute("DELETE FROM t WHERE id = 3")
        db.simulate_crash()
        rows = {r["id"]: r["v"] for r in db.query("SELECT * FROM t")}
        assert rows == {1: 10, 2: 99}

    def test_indexes_rebuilt(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE INDEX ix ON t(a)")
        db.execute("INSERT INTO t VALUES (5)")
        db.simulate_crash()
        table = db.catalog.table("t")
        assert "ix" in table.indexes
        assert table.lookup_rowids("a", 5) == [1]

    def test_constraints_still_enforced_after_recovery(self, db):
        from repro.errors import ConstraintViolation

        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        db.simulate_crash()
        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO t VALUES (1)")

    def test_rowids_stable_across_recovery(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO t VALUES (2)")
        db.execute("DELETE FROM t WHERE a = 1")
        db.simulate_crash()
        table = db.catalog.table("t")
        assert table.get(2) == {"a": 2}
        # New inserts never reuse journaled rowids.
        assert db.insert_row("t", {"a": 3}) == 3

    def test_unflushed_commit_lost_with_sync_none(self, clock):
        db = Database(sync_policy="none", clock=clock)
        db.execute("CREATE TABLE t (a INT)")
        db.wal.flush()
        db.execute("INSERT INTO t VALUES (1)")  # committed, not flushed
        db.simulate_crash()
        assert db.query("SELECT * FROM t") == []

    def test_sync_commit_never_loses_committed(self, db):
        db.execute("CREATE TABLE t (a INT)")
        for i in range(10):
            db.execute(f"INSERT INTO t VALUES ({i})")
        db.simulate_crash()
        assert db.execute("SELECT count(*) FROM t").scalar() == 10

    def test_dropped_table_stays_dropped(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("DROP TABLE t")
        db.simulate_crash()
        assert not db.catalog.has_table("t")

    def test_double_crash(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.simulate_crash()
        db.execute("INSERT INTO t VALUES (2)")
        db.simulate_crash()
        assert sorted(r["a"] for r in db.query("SELECT a FROM t")) == [1, 2]


class TestCheckpoint:
    def test_checkpoint_then_recover(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.checkpoint()
        db.execute("INSERT INTO t VALUES (2)")
        db.simulate_crash()
        assert sorted(r["a"] for r in db.query("SELECT a FROM t")) == [1, 2]

    def test_checkpoint_truncate_shrinks_log(self, db):
        db.execute("CREATE TABLE t (a INT)")
        for i in range(20):
            db.execute(f"INSERT INTO t VALUES ({i})")
        before = len(db.wal)
        db.checkpoint(truncate=True)
        assert len(db.wal) < before
        db.simulate_crash()
        assert db.execute("SELECT count(*) FROM t").scalar() == 20

    def test_checkpoint_requires_quiescence(self, db):
        from repro.errors import TransactionError

        conn = db.connect()
        conn.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.checkpoint()
        conn.execute("COMMIT")
        db.checkpoint()

    def test_checkpoint_preserves_secondary_indexes(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE INDEX ix ON t(a) USING HASH")
        db.execute("INSERT INTO t VALUES (7)")
        db.checkpoint(truncate=True)
        db.simulate_crash()
        assert "ix" in db.catalog.table("t").indexes
        assert db.catalog.table("t").lookup_rowids("a", 7) == [1]


class TestFileBasedRecovery:
    def test_new_process_recovers_from_file(self, tmp_path, clock):
        path = str(tmp_path / "wal.log")
        db = Database(path=path, clock=clock)
        db.execute("CREATE TABLE t (a INT, b TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        db.execute("UPDATE t SET b = 'y' WHERE a = 1")

        # "New process": a fresh Database over the same journal file.
        db2 = Database(path=path, clock=clock)
        assert db2.query("SELECT * FROM t") == [{"a": 1, "b": "y"}]

    def test_new_process_continues_writing(self, tmp_path, clock):
        path = str(tmp_path / "wal.log")
        db = Database(path=path, clock=clock)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db2 = Database(path=path, clock=clock)
        db2.execute("INSERT INTO t VALUES (2)")
        db3 = Database(path=path, clock=clock)
        assert db3.execute("SELECT count(*) FROM t").scalar() == 2
