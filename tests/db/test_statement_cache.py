"""Statement cache: normalization, hits, binding, and invalidation."""

import pytest

from repro.clock import SimulatedClock
from repro.db import Database
from repro.db.schema import Column
from repro.db.sql.cache import StatementCache, normalize_sql
from repro.db.types import INT, TEXT
from repro.errors import DatabaseError


class TestNormalizeSql:
    def test_collapses_whitespace_and_case(self):
        assert (
            normalize_sql("SELECT  *\n FROM\tOrders ;")
            == normalize_sql("select * from orders")
        )

    def test_string_literals_survive_verbatim(self):
        a = normalize_sql("SELECT * FROM t WHERE c = 'It''s  HERE'")
        b = normalize_sql("select * from t where c = 'It''s  HERE'")
        c = normalize_sql("select * from t where c = 'it''s  here'")
        assert a == b
        assert a != c
        assert "'It''s  HERE'" in a

    def test_strips_comments_and_trailing_semicolons(self):
        assert (
            normalize_sql("SELECT * FROM t -- trailing comment\n;")
            == "select * from t"
        )

    def test_distinct_statements_stay_distinct(self):
        assert normalize_sql("SELECT a FROM t") != normalize_sql(
            "SELECT b FROM t"
        )


@pytest.fixture
def db():
    return Database(clock=SimulatedClock(start=1000.0))


def _make_table(db, name="t"):
    db.create_table(
        name,
        [Column("id", INT, primary_key=True), Column("name", TEXT)],
    )


class TestCacheHitsAndStats:
    def test_repeated_statement_hits_after_first_parse(self, db):
        _make_table(db)
        base = dict(db.statement_cache.stats)
        for i in range(10):
            db.execute(f"INSERT INTO t (id, name) VALUES ({i}, 'x')")
        stats = db.statement_cache.stats
        # Every INSERT has distinct text -> all misses...
        assert stats["misses"] - base["misses"] == 10
        for _ in range(10):
            db.query("SELECT * FROM t WHERE id = 3")
        # ...while the repeated SELECT parses once and hits 9 times.
        assert db.statement_cache.stats["misses"] - base["misses"] == 11
        assert db.statement_cache.stats["hits"] - base["hits"] == 9

    def test_normalization_shares_entries(self, db):
        _make_table(db)
        db.query("SELECT * FROM t")
        before = db.statement_cache.stats["hits"]
        db.query("select  *\nFROM   t ;")
        assert db.statement_cache.stats["hits"] == before + 1

    def test_transaction_control_is_never_cached(self, db):
        size = len(db.statement_cache)
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("COMMIT")
        assert len(db.statement_cache) == size

    def test_hit_rate(self):
        cache = StatementCache(capacity=8)
        cache.lookup("SELECT 1", 0)
        cache.lookup("SELECT 1", 0)
        cache.lookup("SELECT 1", 0)
        assert cache.stats["misses"] == 1
        assert cache.stats["hits"] == 2
        assert cache.hit_rate == pytest.approx(2 / 3)


class TestParameterBinding:
    def test_parameterized_select(self, db):
        _make_table(db)
        for i, name in enumerate(["ada", "bob", "cyd"]):
            db.execute(
                "INSERT INTO t (id, name) VALUES (?, ?)", [i, name]
            )
        rows = db.query("SELECT name FROM t WHERE id = ?", [1])
        assert rows == [{"name": "bob"}]
        rows = db.query("SELECT name FROM t WHERE id = ?", [2])
        assert rows == [{"name": "cyd"}]

    def test_bound_values_do_not_leak_between_executions(self, db):
        _make_table(db)
        db.execute("INSERT INTO t (id, name) VALUES (?, ?)", [1, "a"])
        db.execute("INSERT INTO t (id, name) VALUES (?, ?)", [2, "b"])
        rows = db.query("SELECT id, name FROM t")
        assert sorted((r["id"], r["name"]) for r in rows) == [
            (1, "a"),
            (2, "b"),
        ]

    def test_update_and_delete_with_parameters(self, db):
        _make_table(db)
        db.execute("INSERT INTO t (id, name) VALUES (1, 'a')")
        db.execute("INSERT INTO t (id, name) VALUES (2, 'b')")
        db.execute("UPDATE t SET name = ? WHERE id = ?", ["z", 1])
        assert db.query("SELECT name FROM t WHERE id = 1") == [{"name": "z"}]
        db.execute("DELETE FROM t WHERE id = ?", [2])
        assert db.query("SELECT id FROM t") == [{"id": 1}]

    def test_null_parameter_binds_as_sql_null(self, db):
        _make_table(db)
        db.execute("INSERT INTO t (id, name) VALUES (?, ?)", [1, None])
        assert db.query("SELECT name FROM t") == [{"name": None}]

    def test_arity_mismatch_raises(self, db):
        _make_table(db)
        with pytest.raises(DatabaseError, match="expects 2 parameter"):
            db.execute("INSERT INTO t (id, name) VALUES (?, ?)", [1])
        with pytest.raises(DatabaseError, match="expects 0 parameter"):
            db.query("SELECT * FROM t", [1])

    def test_parameters_rejected_in_ddl(self, db):
        with pytest.raises(DatabaseError):
            db.execute("DROP TABLE ?", ["t"])

    def test_prepare_api(self, db):
        _make_table(db)
        insert = db.prepare("INSERT INTO t (id, name) VALUES (?, ?)")
        assert insert.parameter_count == 2
        insert.execute([1, "a"])
        insert.execute([2, "b"])
        select = db.prepare("SELECT name FROM t WHERE id = ?")
        assert select.query([2]) == [{"name": "b"}]

    def test_prepare_surfaces_syntax_errors_eagerly(self, db):
        with pytest.raises(Exception):
            db.prepare("SELEKT * FROM t")


class TestInvalidation:
    def test_ddl_invalidates_cached_plans(self, db):
        """DROP+CREATE with a different shape must not serve stale plans
        (the grammar has no ALTER TABLE; this is the schema-change path).
        """
        _make_table(db)
        db.execute("INSERT INTO t (id, name) VALUES (1, 'a')")
        assert db.query("SELECT * FROM t") == [{"id": 1, "name": "a"}]
        version = db.schema_version
        db.execute("DROP TABLE t")
        db.create_table(
            "t",
            [Column("id", INT, primary_key=True), Column("qty", INT)],
        )
        assert db.schema_version > version
        db.execute("INSERT INTO t (id, qty) VALUES (7, 70)")
        # The same SELECT text now reflects the new schema.
        assert db.query("SELECT * FROM t") == [{"id": 7, "qty": 70}]

    def test_ddl_purges_stale_entries_and_counts_them(self, db):
        _make_table(db)
        db.query("SELECT * FROM t")
        assert len(db.statement_cache) > 0
        before = db.statement_cache.stats["invalidations"]
        db.execute("CREATE INDEX ix_t_name ON t (name)")
        assert db.statement_cache.stats["invalidations"] > before
        # Only entries for the current schema version remain.
        current = db.schema_version
        assert all(
            key[1] == current for key in db.statement_cache._entries
        )

    def test_index_ddl_bumps_schema_version(self, db):
        _make_table(db)
        v0 = db.schema_version
        db.execute("CREATE INDEX ix_t_name ON t (name)")
        assert db.schema_version > v0
        v1 = db.schema_version
        db.execute("DROP INDEX ix_t_name ON t")
        assert db.schema_version > v1


class TestLruEviction:
    def test_capacity_bounds_entries_and_counts_evictions(self):
        db = Database(
            clock=SimulatedClock(start=1000.0), statement_cache_size=4
        )
        _make_table(db)
        for i in range(10):
            db.query(f"SELECT * FROM t WHERE id = {i}")
        assert len(db.statement_cache) <= 4
        assert db.statement_cache.stats["evictions"] >= 6

    def test_lru_order_keeps_hot_statements(self):
        cache = StatementCache(capacity=2)
        cache.lookup("SELECT 1", 0)
        cache.lookup("SELECT 2", 0)
        cache.lookup("SELECT 1", 0)  # refresh 1
        cache.lookup("SELECT 3", 0)  # evicts 2
        misses = cache.stats["misses"]
        cache.lookup("SELECT 1", 0)
        assert cache.stats["misses"] == misses  # still cached
        cache.lookup("SELECT 2", 0)
        assert cache.stats["misses"] == misses + 1  # was evicted
