"""Subqueries: IN (SELECT ...), EXISTS, INSERT INTO ... SELECT."""

import pytest

from repro.errors import SqlSyntaxError


@pytest.fixture
def sdb(orders_db):
    orders_db.execute("CREATE TABLE watchlist (symbol TEXT PRIMARY KEY)")
    orders_db.execute("INSERT INTO watchlist VALUES ('IBM'), ('HPQ')")
    return orders_db


class TestInSelect:
    def test_basic(self, sdb):
        rows = sdb.query(
            "SELECT id FROM orders WHERE symbol IN "
            "(SELECT symbol FROM watchlist) ORDER BY id"
        )
        assert [r["id"] for r in rows] == [1, 3, 6]

    def test_not_in(self, sdb):
        rows = sdb.query(
            "SELECT DISTINCT symbol FROM orders WHERE symbol NOT IN "
            "(SELECT symbol FROM watchlist) ORDER BY symbol"
        )
        assert [r["symbol"] for r in rows] == ["MSFT", "ORCL"]

    def test_empty_subquery(self, sdb):
        sdb.execute("DELETE FROM watchlist")
        rows = sdb.query(
            "SELECT id FROM orders WHERE symbol IN (SELECT symbol FROM watchlist)"
        )
        assert rows == []

    def test_subquery_with_filter(self, sdb):
        rows = sdb.query(
            "SELECT id FROM orders WHERE symbol IN "
            "(SELECT symbol FROM watchlist WHERE symbol LIKE 'I%')"
        )
        assert sorted(r["id"] for r in rows) == [1, 3]

    def test_multi_column_subquery_rejected(self, sdb):
        with pytest.raises(SqlSyntaxError):
            sdb.query(
                "SELECT id FROM orders WHERE symbol IN "
                "(SELECT symbol, id FROM orders)"
            )

    def test_in_select_in_update(self, sdb):
        sdb.execute(
            "UPDATE orders SET qty = 1 WHERE symbol IN "
            "(SELECT symbol FROM watchlist)"
        )
        rows = sdb.query("SELECT qty FROM orders WHERE symbol = 'IBM'")
        assert all(r["qty"] == 1 for r in rows)

    def test_in_select_in_delete(self, sdb):
        sdb.execute(
            "DELETE FROM orders WHERE symbol IN (SELECT symbol FROM watchlist)"
        )
        assert sdb.execute("SELECT count(*) FROM orders").scalar() == 3


class TestExists:
    def test_exists_true(self, sdb):
        rows = sdb.query(
            "SELECT count(*) AS n FROM orders WHERE EXISTS "
            "(SELECT * FROM watchlist WHERE symbol = 'IBM')"
        )
        assert rows[0]["n"] == 6  # uncorrelated TRUE: all rows pass

    def test_exists_false(self, sdb):
        rows = sdb.query(
            "SELECT id FROM orders WHERE EXISTS "
            "(SELECT * FROM watchlist WHERE symbol = 'ZZZ')"
        )
        assert rows == []

    def test_not_exists(self, sdb):
        rows = sdb.query(
            "SELECT count(*) AS n FROM orders WHERE NOT EXISTS "
            "(SELECT * FROM watchlist WHERE symbol = 'ZZZ')"
        )
        assert rows[0]["n"] == 6


class TestInsertSelect:
    def test_copy_table(self, sdb):
        sdb.execute(
            "CREATE TABLE order_archive (id INT, symbol TEXT, qty INT)"
        )
        result = sdb.execute(
            "INSERT INTO order_archive SELECT id, symbol, qty FROM orders "
            "WHERE qty >= 75"
        )
        assert result.rowcount == 3
        rows = sdb.query("SELECT id FROM order_archive ORDER BY id")
        assert [r["id"] for r in rows] == [1, 4, 5]

    def test_with_explicit_columns(self, sdb):
        sdb.execute("CREATE TABLE symbols (name TEXT, total INT DEFAULT 0)")
        sdb.execute(
            "INSERT INTO symbols (name) SELECT DISTINCT symbol FROM orders"
        )
        rows = sdb.query("SELECT name, total FROM symbols ORDER BY name")
        assert len(rows) == 4
        assert all(r["total"] == 0 for r in rows)

    def test_aggregated_select_source(self, sdb):
        sdb.execute("CREATE TABLE totals (symbol TEXT, qty INT)")
        sdb.execute(
            "INSERT INTO totals SELECT symbol, sum(qty) AS q FROM orders "
            "GROUP BY symbol"
        )
        rows = {r["symbol"]: r["qty"] for r in sdb.query("SELECT * FROM totals")}
        assert rows["IBM"] == 130

    def test_arity_mismatch_rejected(self, sdb):
        sdb.execute("CREATE TABLE narrow (a INT)")
        with pytest.raises(SqlSyntaxError):
            sdb.execute("INSERT INTO narrow SELECT id, qty FROM orders")

    def test_constraints_apply(self, sdb):
        from repro.errors import ConstraintViolation

        sdb.execute("CREATE TABLE uniq (symbol TEXT PRIMARY KEY)")
        with pytest.raises(ConstraintViolation):
            # orders has duplicate symbols: the PK must reject the copy.
            sdb.execute("INSERT INTO uniq SELECT symbol FROM orders")
        # Statement atomicity: nothing survived the failed insert.
        assert sdb.execute("SELECT count(*) FROM uniq").scalar() == 0

    def test_insert_select_triggers_fire(self, sdb):
        from repro.db.triggers import TriggerEvent, TriggerTiming

        sdb.execute("CREATE TABLE copy_t (id INT)")
        fired = []
        sdb.create_trigger(
            "trg", "copy_t", timing=TriggerTiming.AFTER,
            event=TriggerEvent.INSERT, action=lambda ctx: fired.append(1),
        )
        sdb.execute("INSERT INTO copy_t SELECT id FROM orders")
        assert len(fired) == 6
