"""Expression evaluation: three-valued logic, operators, functions,
serialization, and the analysis hooks the rule index relies on."""

import pytest

from repro.db.expr import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
    conjuncts,
    evaluate_predicate,
    expression_from_dict,
    expression_to_dict,
    register_function,
)
from repro.db.sql.parser import parse_expression
from repro.errors import ExpressionError


def ev(text, row=None):
    return parse_expression(text).evaluate(row or {})


class TestComparisons:
    @pytest.mark.parametrize("text,expected", [
        ("1 = 1", True), ("1 = 2", False), ("1 != 2", True),
        ("2 < 3", True), ("3 <= 3", True), ("4 > 5", False),
        ("'a' < 'b'", True), ("1 = 1.0", True), ("2 <> 2", False),
    ])
    def test_literals(self, text, expected):
        assert ev(text) is expected

    def test_null_comparison_is_unknown(self):
        assert ev("NULL = 1") is None
        assert ev("1 < NULL") is None
        assert ev("NULL != NULL") is None


class TestBooleanLogic:
    def test_and_truth_table(self):
        assert ev("TRUE AND TRUE") is True
        assert ev("TRUE AND FALSE") is False
        assert ev("FALSE AND NULL") is False  # FALSE absorbs UNKNOWN
        assert ev("TRUE AND NULL") is None
        assert ev("NULL AND NULL") is None

    def test_or_truth_table(self):
        assert ev("FALSE OR TRUE") is True
        assert ev("FALSE OR FALSE") is False
        assert ev("TRUE OR NULL") is True  # TRUE absorbs UNKNOWN
        assert ev("FALSE OR NULL") is None

    def test_not(self):
        assert ev("NOT TRUE") is False
        assert ev("NOT NULL") is None

    def test_and_short_circuits(self):
        # The right side would raise (unknown column) if evaluated.
        expression = parse_expression("FALSE AND missing_column = 1")
        assert expression.evaluate({}) is False


class TestArithmetic:
    @pytest.mark.parametrize("text,expected", [
        ("1 + 2", 3), ("5 - 3", 2), ("4 * 2.5", 10.0),
        ("7 / 2", 3.5), ("7 % 3", 1), ("-(3)", -3), ("2 + 3 * 4", 14),
        ("(2 + 3) * 4", 20),
    ])
    def test_values(self, text, expected):
        assert ev(text) == expected

    def test_null_propagates(self):
        assert ev("1 + NULL") is None

    def test_division_by_zero_raises(self):
        with pytest.raises(ExpressionError):
            ev("1 / 0")

    def test_concat(self):
        assert ev("'a' || 'b' || 'c'") == "abc"


class TestPredicates:
    def test_in_list(self):
        assert ev("2 IN (1, 2, 3)") is True
        assert ev("5 IN (1, 2, 3)") is False
        assert ev("5 NOT IN (1, 2)") is True

    def test_in_with_null_member(self):
        assert ev("5 IN (1, NULL)") is None  # maybe it's the NULL
        assert ev("1 IN (1, NULL)") is True

    def test_null_in_anything_is_unknown(self):
        assert ev("NULL IN (1, 2)") is None

    def test_between(self):
        assert ev("5 BETWEEN 1 AND 10") is True
        assert ev("0 BETWEEN 1 AND 10") is False
        assert ev("0 NOT BETWEEN 1 AND 10") is True
        assert ev("NULL BETWEEN 1 AND 2") is None

    def test_like(self):
        assert ev("'hello' LIKE 'he%'") is True
        assert ev("'hello' LIKE 'h_llo'") is True
        assert ev("'hello' LIKE 'x%'") is False
        assert ev("'hello' NOT LIKE 'x%'") is True

    def test_like_escapes_regex_chars(self):
        assert ev("'a.b' LIKE 'a.b'") is True
        assert ev("'axb' LIKE 'a.b'") is False  # dot is literal

    def test_is_null(self):
        assert ev("NULL IS NULL") is True
        assert ev("1 IS NULL") is False
        assert ev("1 IS NOT NULL") is True


class TestCase:
    def test_branches(self):
        text = "CASE WHEN x > 10 THEN 'big' WHEN x > 5 THEN 'mid' ELSE 'small' END"
        assert ev(text, {"x": 20}) == "big"
        assert ev(text, {"x": 7}) == "mid"
        assert ev(text, {"x": 1}) == "small"

    def test_no_else_yields_null(self):
        assert ev("CASE WHEN FALSE THEN 1 END") is None


class TestFunctions:
    @pytest.mark.parametrize("text,expected", [
        ("abs(-5)", 5), ("length('abcd')", 4), ("upper('ab')", "AB"),
        ("lower('AB')", "ab"), ("round(2.567, 2)", 2.57),
        ("coalesce(NULL, NULL, 3)", 3), ("nullif(2, 2)", None),
        ("substr('hello', 2, 3)", "ell"), ("min(3, 1)", 1), ("max(3, 1)", 3),
        ("sign(-9)", -1), ("floor(2.7)", 2), ("ceil(2.1)", 3),
        ("trim('  x  ')", "x"), ("instr('hello', 'll')", 3),
    ])
    def test_standard(self, text, expected):
        assert ev(text) == expected

    def test_null_guard(self):
        assert ev("abs(NULL)") is None

    def test_unknown_function_rejected_at_parse(self):
        with pytest.raises(Exception):
            parse_expression("frobnicate(1)")

    def test_register_function(self):
        register_function("double_it", lambda x: x * 2)
        assert ev("double_it(21)") == 42

    def test_domain_error_wrapped(self):
        with pytest.raises(ExpressionError):
            ev("sqrt(-1)")


class TestColumnRef:
    def test_bare_lookup(self):
        assert ev("price * qty", {"price": 2.0, "qty": 3}) == 6.0

    def test_qualified_lookup(self):
        expression = parse_expression("t.price")
        assert expression.evaluate({"t.price": 9}) == 9
        assert expression.evaluate({"price": 7}) == 7  # falls back to bare

    def test_missing_column_raises(self):
        with pytest.raises(ExpressionError):
            ev("nope", {})

    def test_referenced_columns(self):
        expression = parse_expression("a + b > c AND lower(d) = 'x'")
        assert expression.referenced_columns() == {"a", "b", "c", "d"}


class TestAnalysis:
    def test_conjuncts_split(self):
        parts = conjuncts(parse_expression("a = 1 AND b > 2 AND c LIKE 'x%'"))
        assert len(parts) == 3

    def test_or_not_split(self):
        assert len(conjuncts(parse_expression("a = 1 OR b = 2"))) == 1

    def test_as_equality(self):
        assert parse_expression("a = 5").as_equality() == ("a", 5)
        assert parse_expression("5 = a").as_equality() == ("a", 5)
        assert parse_expression("a = b").as_equality() is None
        assert parse_expression("a > 5").as_equality() is None

    def test_as_range_lt(self):
        assert parse_expression("a < 5").as_range() == ("a", None, 5, False, False)

    def test_as_range_ge(self):
        assert parse_expression("a >= 5").as_range() == ("a", 5, None, True, False)

    def test_as_range_flipped(self):
        assert parse_expression("5 > a").as_range() == ("a", None, 5, False, False)

    def test_between_as_range(self):
        assert parse_expression("a BETWEEN 1 AND 9").as_range() == (
            "a", 1, 9, True, True,
        )

    def test_evaluate_predicate_maps_unknown_to_false(self):
        assert evaluate_predicate(parse_expression("NULL = 1"), {}) is False


class TestSerialization:
    @pytest.mark.parametrize("text", [
        "a = 1 AND b > 2",
        "price BETWEEN 1 AND 10 OR qty IN (1, 2, 3)",
        "name LIKE 'x%' AND note IS NOT NULL",
        "CASE WHEN a > 0 THEN 'p' ELSE 'n' END = 'p'",
        "abs(a - b) < 0.5",
        "NOT (a = 1)",
    ])
    def test_roundtrip_preserves_semantics(self, text):
        original = parse_expression(text)
        restored = expression_from_dict(expression_to_dict(original))
        rows = [
            {"a": 1, "b": 3, "price": 5, "qty": 2, "name": "xy", "note": "n"},
            {"a": -1, "b": 0, "price": 50, "qty": 9, "name": "zz", "note": None},
        ]
        for row in rows:
            assert original.evaluate(row) == restored.evaluate(row)

    def test_dict_is_json_stable(self):
        import json

        data = expression_to_dict(parse_expression("a = 1 AND b LIKE 'x%'"))
        assert json.loads(json.dumps(data)) == data

    def test_unknown_node_rejected(self):
        with pytest.raises(ExpressionError):
            expression_from_dict({"node": "mystery"})
