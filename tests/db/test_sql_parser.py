"""Lexer and parser: token forms, statement shapes, error positions."""

import pytest

from repro.db.sql.ast import (
    AggregateCall,
    CreateIndex,
    CreateTable,
    CreateTrigger,
    Delete,
    DropTable,
    Insert,
    Select,
    Update,
)
from repro.db.sql.lexer import tokenize
from repro.db.sql.parser import parse_expression, parse_statement
from repro.errors import SqlSyntaxError


class TestLexer:
    def test_kinds(self):
        tokens = tokenize("SELECT a, 'txt', 1.5 FROM t -- comment")
        kinds = [t.kind for t in tokens]
        assert kinds == ["KEYWORD", "IDENT", "OP", "STRING", "OP", "NUMBER",
                         "KEYWORD", "IDENT", "EOF"]

    def test_string_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_scientific_notation(self):
        assert tokenize("1.5e-3")[0].value == "1.5e-3"

    def test_diamond_normalized(self):
        assert tokenize("a <> b")[1].value == "!="

    def test_unknown_char_position(self):
        with pytest.raises(SqlSyntaxError) as exc:
            tokenize("a @ b")
        assert exc.value.position == 2

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].kind == "KEYWORD"
        assert tokenize("SeLeCt")[0].value == "SELECT"


class TestCreateTableParse:
    def test_full_form(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INT PRIMARY KEY, name TEXT NOT NULL, "
            "score REAL DEFAULT 1.5, flag BOOL UNIQUE, CHECK (score >= 0))"
        )
        assert isinstance(stmt, CreateTable)
        assert stmt.table == "t"
        assert stmt.columns[0].primary_key
        assert not stmt.columns[1].nullable
        assert stmt.columns[2].default == 1.5
        assert stmt.columns[3].unique
        assert len(stmt.checks) == 1

    def test_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (a INT)")
        assert stmt.if_not_exists

    def test_negative_default(self):
        stmt = parse_statement("CREATE TABLE t (a INT DEFAULT -5)")
        assert stmt.columns[0].default == -5

    def test_null_default(self):
        stmt = parse_statement("CREATE TABLE t (a INT DEFAULT NULL)")
        assert stmt.columns[0].default is None
        assert stmt.columns[0].has_default


class TestOtherDdl:
    def test_create_index(self):
        stmt = parse_statement("CREATE UNIQUE INDEX ix ON t(col) USING HASH")
        assert isinstance(stmt, CreateIndex)
        assert stmt.unique and stmt.kind == "hash"

    def test_create_trigger(self):
        stmt = parse_statement(
            "CREATE TRIGGER trg AFTER INSERT ON t FOR EACH ROW "
            "WHEN (qty > 10) EXECUTE my_callback"
        )
        assert isinstance(stmt, CreateTrigger)
        assert stmt.timing == "after"
        assert stmt.event == "insert"
        assert stmt.callback == "my_callback"
        assert stmt.when is not None

    def test_statement_trigger(self):
        stmt = parse_statement(
            "CREATE TRIGGER trg BEFORE DELETE ON t FOR EACH STATEMENT EXECUTE cb"
        )
        assert not stmt.for_each_row

    def test_drop_table_if_exists(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, DropTable) and stmt.if_exists


class TestDmlParse:
    def test_insert_multi_row(self):
        stmt = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"
        )
        assert isinstance(stmt, Insert)
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_positional(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 2)")
        assert stmt.columns is None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3")
        assert isinstance(stmt, Update)
        assert [name for name, _ in stmt.assignments] == ["a", "b"]
        assert stmt.where is not None

    def test_delete_without_where(self):
        stmt = parse_statement("DELETE FROM t")
        assert isinstance(stmt, Delete)
        assert stmt.where is None


class TestSelectParse:
    def test_full_clause_set(self):
        stmt = parse_statement(
            "SELECT symbol, sum(qty) AS total FROM orders "
            "WHERE price > 10 GROUP BY symbol HAVING sum(qty) > 100 "
            "ORDER BY total DESC LIMIT 5 OFFSET 2"
        )
        assert isinstance(stmt, Select)
        assert stmt.items[1].alias == "total"
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].descending
        assert stmt.limit == 5 and stmt.offset == 2

    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert stmt.items[0].is_star

    def test_join(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.id = b.a_id LEFT JOIN c ON b.id = c.b_id"
        )
        assert [j.kind for j in stmt.joins] == ["inner", "left"]

    def test_table_alias(self):
        stmt = parse_statement("SELECT o.id FROM orders o WHERE o.id = 1")
        assert stmt.alias == "o"

    def test_count_star(self):
        stmt = parse_statement("SELECT count(*) FROM t")
        agg = stmt.items[0].expression
        assert isinstance(agg, AggregateCall)
        assert agg.argument is None

    def test_count_distinct(self):
        stmt = parse_statement("SELECT count(DISTINCT a) FROM t")
        assert stmt.items[0].expression.distinct

    def test_aggregate_not_allowed_in_where(self):
        # In WHERE context min/max parse as scalar functions; count(*)
        # has no scalar form and must be rejected.
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT a FROM t WHERE count(*) > 1")

    def test_tableless_select(self):
        stmt = parse_statement("SELECT 1 + 1 AS two")
        assert stmt.table is None

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct


class TestErrors:
    @pytest.mark.parametrize("sql", [
        "SELECT FROM t",
        "INSERT t VALUES (1)",
        "CREATE TABLE t",
        "SELECT a FROM t WHERE",
        "UPDATE t WHERE a = 1",
        "SELECT a FROM t LIMIT -1",
        "DELETE t",
        "SELECT a FROM t trailing garbage garbage",
    ])
    def test_rejected(self, sql):
        with pytest.raises(SqlSyntaxError):
            parse_statement(sql)

    def test_trailing_semicolon_ok(self):
        parse_statement("SELECT 1;")

    def test_expression_entry_rejects_trailing(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("a = 1 bogus")


class TestExpressionPrecedence:
    def test_and_binds_tighter_than_or(self):
        expression = parse_expression("a = 1 OR b = 2 AND c = 3")
        # Should parse as a=1 OR (b=2 AND c=3).
        assert expression.evaluate({"a": 0, "b": 2, "c": 3}) is True
        assert expression.evaluate({"a": 0, "b": 2, "c": 0}) is False

    def test_not_binds_tighter_than_and(self):
        expression = parse_expression("NOT a = 1 AND b = 2")
        assert expression.evaluate({"a": 2, "b": 2}) is True
        assert expression.evaluate({"a": 1, "b": 2}) is False

    def test_unary_minus(self):
        assert parse_expression("-2 * 3").evaluate({}) == -6

    def test_not_in(self):
        assert parse_expression("2 NOT IN (1, 3)").evaluate({}) is True
