"""Locks, undo, savepoints, deadlock detection."""

import threading

import pytest

from repro.db.transactions import (
    LockManager,
    LockMode,
    Transaction,
    TransactionManager,
    TransactionState,
)
from repro.errors import DeadlockError, LockTimeoutError, TransactionError


class TestLockManager:
    def test_shared_locks_compatible(self):
        locks = LockManager()
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(2, "r", LockMode.SHARED)  # no block
        assert set(locks.held_by(1)) == {"r"}

    def test_exclusive_blocks_then_grants(self):
        locks = LockManager(timeout=5.0)
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        acquired = threading.Event()

        def contender():
            locks.acquire(2, "r", LockMode.EXCLUSIVE)
            acquired.set()

        thread = threading.Thread(target=contender, daemon=True)
        thread.start()
        assert not acquired.wait(0.05)
        locks.release_all(1)
        assert acquired.wait(2.0)
        thread.join()

    def test_timeout(self):
        locks = LockManager(timeout=0.05)
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            locks.acquire(2, "r", LockMode.EXCLUSIVE)

    def test_reentrant_upgrade(self):
        locks = LockManager()
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(1, "r", LockMode.EXCLUSIVE)  # own S upgrades to X

    def test_deadlock_detected(self):
        locks = LockManager(timeout=5.0)
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(2, "b", LockMode.EXCLUSIVE)
        failed = []

        def t1_wants_b():
            try:
                locks.acquire(1, "b", LockMode.EXCLUSIVE)
            except (DeadlockError, LockTimeoutError) as exc:
                failed.append(type(exc).__name__)

        thread = threading.Thread(target=t1_wants_b, daemon=True)
        thread.start()
        import time

        time.sleep(0.05)  # let t1 start waiting
        # t2 requesting "a" closes the cycle: it must get DeadlockError.
        with pytest.raises(DeadlockError):
            locks.acquire(2, "a", LockMode.EXCLUSIVE)
        locks.release_all(2)
        thread.join(timeout=2.0)

    def test_release_wakes_waiters(self):
        locks = LockManager(timeout=2.0)
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        results = []

        def waiter():
            locks.acquire(2, "r", LockMode.SHARED)
            results.append("got it")

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        locks.release_all(1)
        thread.join(timeout=2.0)
        assert results == ["got it"]


class TestTransactionLifecycle:
    def test_commit_transitions(self):
        manager = TransactionManager()
        tx = manager.begin()
        assert tx.state is TransactionState.ACTIVE
        manager.commit(tx)
        assert tx.state is TransactionState.COMMITTED

    def test_double_commit_rejected(self):
        manager = TransactionManager()
        tx = manager.begin()
        manager.commit(tx)
        with pytest.raises(TransactionError):
            manager.commit(tx)

    def test_rollback_is_idempotent(self):
        manager = TransactionManager()
        tx = manager.begin()
        manager.rollback(tx)
        manager.rollback(tx)  # second call no-ops

    def test_undo_runs_in_reverse_order(self):
        manager = TransactionManager()
        tx = manager.begin()
        order = []
        tx.record_undo(lambda: order.append("first"))
        tx.record_undo(lambda: order.append("second"))
        manager.rollback(tx)
        assert order == ["second", "first"]

    def test_commit_discards_undo(self):
        manager = TransactionManager()
        tx = manager.begin()
        ran = []
        tx.record_undo(lambda: ran.append(1))
        manager.commit(tx)
        assert ran == []

    def test_locks_released_on_finish(self):
        manager = TransactionManager()
        tx = manager.begin()
        manager.locks.acquire(tx.txid, "r", LockMode.EXCLUSIVE)
        manager.commit(tx)
        assert manager.locks.held_by(tx.txid) == []

    def test_hooks_invoked(self):
        manager = TransactionManager()
        log = []
        manager.on_commit = lambda tx: log.append(("commit", tx.txid))
        manager.on_abort = lambda tx: log.append(("abort", tx.txid))
        tx1 = manager.begin()
        manager.commit(tx1)
        tx2 = manager.begin()
        manager.rollback(tx2)
        assert log == [("commit", tx1.txid), ("abort", tx2.txid)]

    def test_txid_fast_forward(self):
        manager = TransactionManager()
        manager.set_next_txid(100)
        assert manager.begin().txid == 100


class TestSavepoints:
    def test_partial_rollback(self):
        manager = TransactionManager()
        tx = manager.begin()
        state = []
        state.append("a")
        tx.record_undo(lambda: state.remove("a"))
        tx.savepoint("sp")
        state.append("b")
        tx.record_undo(lambda: state.remove("b"))
        tx.rollback_to_savepoint("sp")
        assert state == ["a"]

    def test_savepoint_survives_its_rollback(self):
        manager = TransactionManager()
        tx = manager.begin()
        tx.savepoint("sp")
        tx.rollback_to_savepoint("sp")
        tx.rollback_to_savepoint("sp")  # still valid

    def test_later_savepoints_invalidated(self):
        manager = TransactionManager()
        tx = manager.begin()
        tx.savepoint("outer")
        tx.record_undo(lambda: None)
        tx.savepoint("inner")
        tx.rollback_to_savepoint("outer")
        with pytest.raises(TransactionError):
            tx.rollback_to_savepoint("inner")

    def test_unknown_savepoint(self):
        manager = TransactionManager()
        tx = manager.begin()
        with pytest.raises(TransactionError):
            tx.rollback_to_savepoint("nope")
