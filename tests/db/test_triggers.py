"""Trigger firing: timings, events, guards, rewriting, cascades."""

import pytest

from repro.db import Database
from repro.db.triggers import TriggerEvent, TriggerTiming
from repro.errors import TriggerError


@pytest.fixture
def tdb(db):
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    return db


def add_trigger(db, log, *, timing=TriggerTiming.AFTER, event=TriggerEvent.INSERT,
                name="trg", when=None, for_each_row=True):
    def action(ctx):
        log.append((ctx.timing.value, ctx.event.value, ctx.old_row, ctx.new_row,
                    ctx.affected_rows, ctx.statement_level))

    db.create_trigger(name, "t", timing=timing, event=event, action=action,
                      when=when, for_each_row=for_each_row)


class TestRowTriggers:
    def test_after_insert_sees_new_row(self, tdb):
        log = []
        add_trigger(tdb, log)
        tdb.execute("INSERT INTO t VALUES (1, 10)")
        assert len(log) == 1
        _timing, _event, old, new, _n, _stmt = log[0]
        assert old is None and new == {"id": 1, "v": 10}

    def test_after_update_sees_both_images(self, tdb):
        log = []
        add_trigger(tdb, log, event=TriggerEvent.UPDATE)
        tdb.execute("INSERT INTO t VALUES (1, 10)")
        tdb.execute("UPDATE t SET v = 20 WHERE id = 1")
        _t, _e, old, new, _n, _s = log[0]
        assert old["v"] == 10 and new["v"] == 20

    def test_after_delete_sees_old_row(self, tdb):
        log = []
        add_trigger(tdb, log, event=TriggerEvent.DELETE)
        tdb.execute("INSERT INTO t VALUES (1, 10)")
        tdb.execute("DELETE FROM t WHERE id = 1")
        _t, _e, old, new, _n, _s = log[0]
        assert old["v"] == 10 and new is None

    def test_fires_once_per_row(self, tdb):
        log = []
        add_trigger(tdb, log)
        tdb.execute("INSERT INTO t VALUES (1, 1), (2, 2), (3, 3)")
        assert len(log) == 3

    def test_when_guard(self, tdb):
        from repro.db.sql.parser import parse_expression

        log = []
        add_trigger(tdb, log, when=parse_expression("v > 100"))
        tdb.execute("INSERT INTO t VALUES (1, 50)")
        tdb.execute("INSERT INTO t VALUES (2, 500)")
        assert len(log) == 1
        assert log[0][3]["id"] == 2

    def test_before_insert_rewrites_row(self, tdb):
        def clamp(ctx):
            row = dict(ctx.new_row)
            row["v"] = min(row["v"], 99)
            return row

        tdb.create_trigger(
            "clamp", "t", timing=TriggerTiming.BEFORE,
            event=TriggerEvent.INSERT, action=clamp,
        )
        tdb.execute("INSERT INTO t VALUES (1, 12345)")
        assert tdb.query("SELECT v FROM t")[0]["v"] == 99

    def test_before_trigger_can_veto(self, tdb):
        def veto(ctx):
            raise TriggerError("not allowed")

        tdb.create_trigger(
            "veto", "t", timing=TriggerTiming.BEFORE,
            event=TriggerEvent.DELETE, action=veto,
        )
        tdb.execute("INSERT INTO t VALUES (1, 1)")
        with pytest.raises(TriggerError):
            tdb.execute("DELETE FROM t WHERE id = 1")
        # Veto aborted the statement: row still there.
        assert tdb.execute("SELECT count(*) FROM t").scalar() == 1


class TestStatementTriggers:
    def test_fires_once_per_statement(self, tdb):
        log = []
        add_trigger(tdb, log, for_each_row=False)
        tdb.execute("INSERT INTO t VALUES (1, 1), (2, 2), (3, 3)")
        statement_entries = [entry for entry in log if entry[5]]
        assert len(statement_entries) == 1
        assert statement_entries[0][4] == 3  # affected_rows

    def test_after_delete_statement_count(self, tdb):
        log = []
        tdb.execute("INSERT INTO t VALUES (1, 1), (2, 2)")
        add_trigger(tdb, log, event=TriggerEvent.DELETE, for_each_row=False)
        tdb.execute("DELETE FROM t")
        assert log[-1][4] == 2


class TestRegistry:
    def test_duplicate_name_rejected(self, tdb):
        add_trigger(tdb, [])
        with pytest.raises(TriggerError):
            add_trigger(tdb, [])

    def test_drop(self, tdb):
        log = []
        add_trigger(tdb, log)
        tdb.drop_trigger("trg")
        tdb.execute("INSERT INTO t VALUES (1, 1)")
        assert log == []

    def test_drop_missing(self, tdb):
        with pytest.raises(TriggerError):
            tdb.drop_trigger("ghost")

    def test_disabled_trigger_does_not_fire(self, tdb):
        log = []
        add_trigger(tdb, log)
        tdb.catalog.triggers.get("trg").enabled = False
        tdb.execute("INSERT INTO t VALUES (1, 1)")
        assert log == []

    def test_trigger_on_missing_table(self, db):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            db.create_trigger(
                "x", "ghost", timing=TriggerTiming.AFTER,
                event=TriggerEvent.INSERT, action=lambda ctx: None,
            )

    def test_firing_order_is_creation_order(self, tdb):
        order = []
        tdb.create_trigger("b_second", "t", timing=TriggerTiming.AFTER,
                           event=TriggerEvent.INSERT,
                           action=lambda ctx: order.append("first"))
        tdb.create_trigger("a_first", "t", timing=TriggerTiming.AFTER,
                           event=TriggerEvent.INSERT,
                           action=lambda ctx: order.append("second"))
        tdb.execute("INSERT INTO t VALUES (1, 1)")
        assert order == ["first", "second"]


class TestCascades:
    def test_cascading_trigger_dml(self, tdb):
        tdb.execute("CREATE TABLE audit_t (id INT, v INT)")

        def copy_to_audit(ctx):
            tdb.insert_row(
                "audit_t",
                {"id": ctx.new_row["id"], "v": ctx.new_row["v"]},
                conn=ctx.connection,
            )

        tdb.create_trigger("cp", "t", timing=TriggerTiming.AFTER,
                           event=TriggerEvent.INSERT, action=copy_to_audit)
        tdb.execute("INSERT INTO t VALUES (1, 10)")
        assert tdb.execute("SELECT count(*) FROM audit_t").scalar() == 1

    def test_infinite_cascade_stopped(self, tdb):
        def recurse(ctx):
            tdb.insert_row(
                "t", {"id": ctx.new_row["id"] + 1, "v": 0}, conn=ctx.connection
            )

        tdb.create_trigger("rec", "t", timing=TriggerTiming.AFTER,
                           event=TriggerEvent.INSERT, action=recurse)
        with pytest.raises(TriggerError):
            tdb.execute("INSERT INTO t VALUES (1, 1)")


class TestSqlTriggers:
    def test_create_via_sql_and_fire(self, tdb):
        log = []
        tdb.register_trigger_function("notify_fn", lambda ctx: log.append(ctx.new_row))
        tdb.execute(
            "CREATE TRIGGER sql_trg AFTER INSERT ON t FOR EACH ROW "
            "WHEN (v > 5) EXECUTE notify_fn"
        )
        tdb.execute("INSERT INTO t VALUES (1, 3)")
        tdb.execute("INSERT INTO t VALUES (2, 9)")
        assert len(log) == 1

    def test_unregistered_callback_rejected(self, tdb):
        with pytest.raises(TriggerError):
            tdb.execute("CREATE TRIGGER x AFTER INSERT ON t EXECUTE ghost_fn")

    def test_sql_trigger_survives_crash(self, tdb):
        log = []
        tdb.register_trigger_function("notify_fn", lambda ctx: log.append(1))
        tdb.execute("CREATE TRIGGER sql_trg AFTER INSERT ON t EXECUTE notify_fn")
        tdb.simulate_crash()
        tdb.execute("INSERT INTO t VALUES (1, 1)")
        assert log == [1]

    def test_unbindable_trigger_reported_after_crash(self, tdb):
        tdb.register_trigger_function("notify_fn", lambda ctx: None)
        tdb.execute("CREATE TRIGGER sql_trg AFTER INSERT ON t EXECUTE notify_fn")
        tdb._trigger_functions.clear()
        tdb.simulate_crash()
        assert tdb.recovery_skipped_triggers == ["sql_trg"]
