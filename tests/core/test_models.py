"""Expectation models: ranges, EWMA, seasonal profiles, Markov."""

import math
import random

import pytest

from repro.core import (
    EwmaModel,
    MarkovStateModel,
    RangeModel,
    SeasonalProfileModel,
)
from repro.errors import ModelError


class TestRangeModel:
    def test_inside_band_scores_zero(self):
        model = RangeModel(10.0, 20.0)
        assert model.score(15.0) == 0.0
        assert model.score(10.0) == 0.0
        assert model.score(20.0) == 0.0

    def test_outside_scales_with_distance(self):
        model = RangeModel(10.0, 20.0)
        assert model.score(25.0) == pytest.approx(0.5)  # 5 / width 10
        assert model.score(0.0) == pytest.approx(1.0)

    def test_expectation_band(self):
        expectation = RangeModel(10.0, 20.0).expect()
        assert expectation.value == 15.0
        assert expectation.contains(12.0)
        assert not expectation.contains(21.0)

    def test_invalid_band(self):
        with pytest.raises(ModelError):
            RangeModel(5.0, 5.0)

    def test_always_ready(self):
        assert RangeModel(0, 1).ready


class TestEwmaModel:
    def test_not_ready_before_warmup(self):
        model = EwmaModel(warmup=10)
        for _ in range(5):
            model.observe(10.0)
        assert not model.ready
        assert model.score(1e9) == 0.0

    def test_scores_outlier_in_sigmas(self):
        rng = random.Random(3)
        model = EwmaModel(alpha=0.1, warmup=10)
        for _ in range(200):
            model.observe(rng.gauss(50.0, 2.0))
        assert model.score(50.0) < 2.0
        assert model.score(70.0) > 5.0

    def test_adapts_to_new_regime(self):
        model = EwmaModel(alpha=0.3, warmup=5)
        for _ in range(50):
            model.observe(10.0)
        for _ in range(50):
            model.observe(100.0)
        # Baseline followed the shift: 100 is no longer surprising
        # relative to the EWMA.
        expectation = model.expect()
        assert expectation.value == pytest.approx(100.0, abs=1.0)

    def test_expectation_before_data(self):
        expectation = EwmaModel().expect()
        assert expectation.value is None
        assert expectation.confidence == 0.0


class TestSeasonalProfileModel:
    def make_trained(self):
        model = SeasonalProfileModel(period=24.0, bins=24, warmup_per_bin=3)
        rng = random.Random(5)
        for day in range(10):
            for hour in range(24):
                timestamp = day * 24.0 + hour
                base = 100.0 if 8 <= hour < 18 else 10.0
                model.observe(
                    base + rng.gauss(0, 1), {"timestamp": timestamp}
                )
        return model

    def test_expectation_varies_by_phase(self):
        model = self.make_trained()
        day_expectation = model.expect({"timestamp": 250 * 24.0 + 12})
        night_expectation = model.expect({"timestamp": 250 * 24.0 + 3})
        assert day_expectation.value == pytest.approx(100.0, abs=2.0)
        assert night_expectation.value == pytest.approx(10.0, abs=2.0)

    def test_night_spike_is_deviation_even_below_day_mean(self):
        model = self.make_trained()
        # 50 at 3am: far below the daily mean (~47 avg) but way off the
        # 3am profile of ~10.
        assert model.score(50.0, {"timestamp": 11 * 24.0 + 3}) > 5.0
        # The same 50 at noon is *low* but let's check a normal value:
        assert model.score(100.0, {"timestamp": 11 * 24.0 + 12}) < 3.0

    def test_requires_timestamp(self):
        model = SeasonalProfileModel(period=24.0, bins=4)
        with pytest.raises(ModelError):
            model.score(1.0, {})

    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            SeasonalProfileModel(period=0, bins=4)
        with pytest.raises(ModelError):
            SeasonalProfileModel(period=10, bins=0)


class TestMarkovStateModel:
    def make_trained(self):
        model = MarkovStateModel(warmup=10)
        # A strongly periodic process: A -> B -> C -> A ...
        for _ in range(50):
            for state in ("A", "B", "C"):
                model.observe(state)
        return model

    def test_expected_transition_unsurprising(self):
        model = self.make_trained()
        # After ...C comes A; then B is expected.
        assert model.score("A") < 1.0

    def test_rare_transition_surprising(self):
        model = self.make_trained()
        # After C the model expects A; C->C never happened.
        surprise_expected = model.score("A")
        surprise_rare = model.score("C")
        assert surprise_rare > surprise_expected + 3.0

    def test_probabilities_sum_to_one(self):
        model = self.make_trained()
        total = sum(
            model.transition_probability("A", state) for state in ("A", "B", "C")
        )
        assert total == pytest.approx(1.0)

    def test_warmup(self):
        model = MarkovStateModel(warmup=100)
        model.observe("A")
        assert model.score("B") == 0.0

    def test_unseen_state_smoothed(self):
        model = self.make_trained()
        probability = model.transition_probability("A", "never_seen")
        assert 0.0 < probability < 0.1
