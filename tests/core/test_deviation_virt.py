"""Deviation detection and VIRT scoring/filtering."""

import pytest

from repro.clock import SimulatedClock
from repro.core import (
    DeviationDetector,
    EwmaModel,
    RangeModel,
    RecipientProfile,
    UpdatePolicy,
    VirtFilter,
    VirtScorer,
)
from repro.cq import Stream
from repro.errors import ModelError
from repro.events import Event


def reading(t, value, meter="m1"):
    return Event("meter.reading", float(t), {"usage": value, "meter_id": meter})


class TestDeviationDetector:
    def make(self, **kwargs):
        source = Stream("s")
        defaults = dict(
            name="usage",
            field="usage",
            model_factory=lambda: RangeModel(0.0, 100.0),
            threshold=0.1,
        )
        defaults.update(kwargs)
        detector = DeviationDetector(source, **defaults)
        out = []
        detector.subscribe(out.append)
        return source, detector, out

    def test_emits_on_deviation(self):
        source, detector, out = self.make()
        source.push(reading(1, 50.0))
        source.push(reading(2, 500.0))
        assert len(out) == 1
        event = out[0]
        assert event.event_type == "deviation.usage"
        assert event["observed"] == 500.0
        assert event["score"] > 0.1
        assert event["expected_low"] == 0.0

    def test_per_key_models(self):
        source, detector, out = self.make(
            model_factory=lambda: EwmaModel(alpha=0.2, warmup=5),
            threshold=4.0,
            key_field="meter_id",
        )
        for t in range(30):
            source.push(reading(t, 10.0, meter="m1"))
            source.push(reading(t, 1000.0, meter="m2"))
        assert out == []  # each meter normal in its own terms
        assert detector.entities == 2
        source.push(reading(99, 1000.0, meter="m1"))  # huge for m1
        assert len(out) == 1
        assert out[0]["key"] == "m1"

    def test_missing_field_skipped(self):
        source, detector, out = self.make()
        source.push(Event("meter.reading", 1.0, {"other": 1}))
        assert detector.stats["skipped"] == 1
        assert out == []

    def test_update_policy_when_normal_keeps_baseline_clean(self):
        factory = lambda: EwmaModel(alpha=0.5, warmup=5)
        source_a, _d1, out_always = self.make(
            model_factory=factory, threshold=4.0,
            update_policy=UpdatePolicy.ALWAYS,
        )
        source_b, _d2, out_clean = self.make(
            model_factory=factory, threshold=4.0,
            update_policy=UpdatePolicy.WHEN_NORMAL,
        )
        # Warm up both, then a sustained anomaly.
        for t in range(20):
            source_a.push(reading(t, 10.0))
            source_b.push(reading(t, 10.0))
        for t in range(20, 30):
            source_a.push(reading(t, 100.0))
            source_b.push(reading(t, 100.0))
        # ALWAYS adapts and stops alerting; WHEN_NORMAL keeps alerting.
        assert len(out_clean) > len(out_always)

    def test_never_policy_freezes_model(self):
        source, detector, out = self.make(
            model_factory=lambda: EwmaModel(alpha=0.5, warmup=5),
            threshold=4.0,
            update_policy=UpdatePolicy.NEVER,
        )
        for t in range(100):
            source.push(reading(t, 10.0))
        model = detector.model_for(None)
        assert model.stats.count == 0  # never trained

    def test_threshold_validated(self):
        with pytest.raises(ModelError):
            self.make(threshold=0.0)


class TestRecipientProfile:
    def test_actionability_patterns(self):
        profile = RecipientProfile(
            "ops",
            interests={"deviation.*": 0.9, "tick": 0.1, "*": 0.05},
        )
        assert profile.actionability("deviation.usage") == 0.9
        assert profile.actionability("tick") == 0.1
        assert profile.actionability("other") == 0.05

    def test_scope_relevance(self):
        profile = RecipientProfile("west_ops", scope={"zone": "west"})
        match = Event("a", 0.0, {"zone": "west"})
        clash = Event("a", 0.0, {"zone": "east"})
        unknown = Event("a", 0.0, {"other": 1})
        assert profile.relevance(match) == 1.0
        assert profile.relevance(clash) == 0.0
        assert profile.relevance(unknown) == 0.5

    def test_empty_scope_fully_relevant(self):
        assert RecipientProfile("x").relevance(Event("a", 0.0)) == 1.0


class TestVirtScorer:
    def test_surprise_saturates(self):
        scorer = VirtScorer(SimulatedClock(), surprise_scale=3.0)
        low = scorer.surprise(Event("d", 0.0, {"score": 0.5}))
        high = scorer.surprise(Event("d", 0.0, {"score": 10.0}))
        assert 0 < low < high < 1.0

    def test_no_score_means_no_surprise(self):
        scorer = VirtScorer(SimulatedClock())
        assert scorer.surprise(Event("d", 0.0, {})) == 0.0

    def test_timeliness_decay(self):
        clock = SimulatedClock(start=1000.0)
        scorer = VirtScorer(clock)
        profile = RecipientProfile("r", interests={"*": 1.0}, half_life=100.0)
        fresh = Event("d", 1000.0, {"score": 5.0})
        fresh_score = scorer.score(fresh, profile)
        clock.advance(100.0)  # one half-life
        stale_score = scorer.score(fresh, profile)
        assert stale_score == pytest.approx(fresh_score / 2, rel=0.01)

    def test_timeliness_can_be_disabled(self):
        clock = SimulatedClock(start=1000.0)
        scorer = VirtScorer(clock, include_timeliness=False)
        profile = RecipientProfile("r", interests={"*": 1.0})
        event = Event("d", 0.0, {"score": 5.0})  # ancient
        assert scorer.score(event, profile) > 0.3

    def test_irrelevant_event_scores_lower(self):
        clock = SimulatedClock()
        scorer = VirtScorer(clock)
        interested = RecipientProfile("a", interests={"deviation.*": 1.0})
        uninterested = RecipientProfile("b", interests={"tick": 1.0})
        event = Event("deviation.x", 0.0, {"score": 5.0})
        assert scorer.score(event, interested) > scorer.score(event, uninterested)


class TestVirtFilter:
    def test_threshold_gates_delivery(self):
        clock = SimulatedClock()
        scorer = VirtScorer(clock)
        delivered = []
        # Actionability (0.3) + relevance (0.2) floor the score at 0.5
        # for a fully interested recipient; the threshold must sit above
        # that floor so only genuine surprise clears it.
        virt = VirtFilter(
            scorer,
            RecipientProfile("ops", interests={"*": 1.0}),
            threshold=0.75,
            deliver=lambda e, s: delivered.append((e, s)),
        )
        assert virt.offer(Event("d", 0.0, {"score": 20.0})) is not None
        assert virt.offer(Event("d", 0.0, {"score": 0.01})) is None
        assert len(delivered) == 1
        assert virt.stats == {"seen": 2, "delivered": 1, "suppressed": 1}

    def test_volume_reduction(self):
        clock = SimulatedClock()
        virt = VirtFilter(
            VirtScorer(clock),
            RecipientProfile("ops", interests={"*": 0.1}),
            threshold=0.6,
        )
        for i in range(100):
            score = 10.0 if i % 10 == 0 else 0.0
            virt.offer(Event("d", 0.0, {"score": score}))
        assert virt.stats["delivered"] == 10
        assert virt.volume_reduction == pytest.approx(10.0)
