"""Business Activity Monitoring: KPIs, status transitions, dashboard."""

import pytest

from repro.core.bam import (
    KPI_STATUS_BREACH,
    KPI_STATUS_OK,
    KPI_STATUS_WARNING,
    BusinessActivityMonitor,
    Kpi,
)
from repro.cq.aggregate import Avg, Count, Sum
from repro.errors import StreamError
from repro.events import Event


def feed(monitor, values, *, start=0.0, spacing=1.0, event_type="order"):
    for i, value in enumerate(values):
        monitor.push(Event(event_type, start + i * spacing, {"amount": value}))


class TestKpiClassification:
    def make(self):
        return Kpi(
            name="k", field="amount", aggregate=Sum, window=10.0,
            target_low=100.0, target_high=200.0, warning_band=0.1,
        )

    @pytest.mark.parametrize("value,expected", [
        (150.0, KPI_STATUS_OK),
        (105.0, KPI_STATUS_WARNING),   # within 10% of the low edge
        (195.0, KPI_STATUS_WARNING),
        (90.0, KPI_STATUS_BREACH),
        (250.0, KPI_STATUS_BREACH),
        (None, KPI_STATUS_BREACH),     # missing data is an exception
    ])
    def test_bands(self, value, expected):
        assert self.make().classify(value) == expected

    def test_one_sided_band(self):
        kpi = Kpi(name="k", field="x", aggregate=Count, window=1.0,
                  target_high=5.0)
        assert kpi.classify(3.0) == KPI_STATUS_OK
        assert kpi.classify(9.0) == KPI_STATUS_BREACH

    def test_no_band_rejected(self):
        with pytest.raises(StreamError):
            Kpi(name="k", field="x", aggregate=Count, window=1.0)

    def test_empty_band_rejected(self):
        with pytest.raises(StreamError):
            Kpi(name="k", field="x", aggregate=Count, window=1.0,
                target_low=5.0, target_high=5.0)


class TestMonitor:
    def test_windowed_evaluation(self):
        monitor = BusinessActivityMonitor()
        monitor.add_kpi(
            "revenue", field="amount", aggregate=Sum, window=10.0,
            target_low=50.0, target_high=500.0,
        )
        feed(monitor, [10.0] * 25)  # 10/window for 2 full windows
        readings = monitor.kpi("revenue").history
        assert [r.value for r in readings] == [100.0, 100.0]
        assert all(r.status == KPI_STATUS_OK for r in readings)

    def test_breach_detected(self):
        monitor = BusinessActivityMonitor()
        monitor.add_kpi(
            "revenue", field="amount", aggregate=Sum, window=10.0,
            target_low=50.0,
        )
        feed(monitor, [1.0] * 15)  # 10/window << 50
        assert monitor.kpi("revenue").current.status == KPI_STATUS_BREACH

    def test_status_change_listener_fires_on_transitions_only(self):
        monitor = BusinessActivityMonitor()
        transitions = []
        monitor.on_status_change(
            lambda kpi, reading: transitions.append((kpi.name, reading.status))
        )
        monitor.add_kpi(
            "rate", field=None, aggregate=Count, window=10.0,
            target_low=5.0, target_high=100.0, warning_band=0.0,
        )
        # Window 1: 10 events (ok). Window 2: 10 events (ok, no event).
        # Window 3: 2 events (breach).
        feed(monitor, [1.0] * 10, start=0.0)
        feed(monitor, [1.0] * 10, start=10.0)
        feed(monitor, [1.0] * 2, start=20.0, spacing=4.0)
        monitor.flush()
        assert transitions == [("rate", KPI_STATUS_OK), ("rate", KPI_STATUS_BREACH)]

    def test_event_filter_scopes_kpi(self):
        monitor = BusinessActivityMonitor()
        monitor.add_kpi(
            "big_orders", field=None, aggregate=Count, window=10.0,
            target_high=100.0, target_low=None,
            event_filter="amount > 50",
        )
        feed(monitor, [10.0, 60.0, 70.0, 20.0, 90.0] * 3)
        monitor.flush()
        # 9 of 15 events pass the filter: 6 land in [0,10), 3 in [10,20).
        assert [r.value for r in monitor.kpi("big_orders").history] == [6, 3]

    def test_duplicate_kpi_rejected(self):
        monitor = BusinessActivityMonitor()
        monitor.add_kpi("k", field="x", aggregate=Sum, window=1.0, target_low=0.0)
        with pytest.raises(StreamError):
            monitor.add_kpi("k", field="x", aggregate=Sum, window=1.0, target_low=0.0)

    def test_unknown_kpi(self):
        with pytest.raises(StreamError):
            BusinessActivityMonitor().kpi("ghost")

    def test_dashboard_orders_breaches_first(self):
        monitor = BusinessActivityMonitor()
        monitor.add_kpi("healthy", field="amount", aggregate=Avg, window=10.0,
                        target_low=0.0, target_high=100.0)
        monitor.add_kpi("broken", field="amount", aggregate=Sum, window=10.0,
                        target_low=1000.0)
        feed(monitor, [10.0] * 15)
        board = monitor.dashboard()
        assert board[0]["kpi"] == "broken"
        assert board[0]["status"] == KPI_STATUS_BREACH
        assert board[0]["breaches"] >= 1
        assert board[1]["kpi"] == "healthy"
        assert board[1]["status"] == KPI_STATUS_OK

    def test_dashboard_before_any_window(self):
        monitor = BusinessActivityMonitor()
        monitor.add_kpi("k", field="amount", aggregate=Sum, window=10.0,
                        target_low=0.0)
        board = monitor.dashboard()
        assert board[0]["status"] == "no-data"
