"""Error accounting, alert lifecycle, responder selection."""

import pytest

from repro.clock import SimulatedClock
from repro.core import (
    AlertManager,
    ConfusionTracker,
    EpisodeTracker,
    Responder,
    ResponderRegistry,
)
from repro.errors import ResponderError
from repro.events import Event


class TestConfusionTracker:
    def test_counts_and_rates(self):
        tracker = ConfusionTracker()
        for _ in range(8):
            tracker.record(predicted=True, actual=True)
        for _ in range(2):
            tracker.record(predicted=True, actual=False)
        for _ in range(4):
            tracker.record(predicted=False, actual=True)
        for _ in range(86):
            tracker.record(predicted=False, actual=False)
        assert tracker.total == 100
        assert tracker.precision == 0.8
        assert tracker.recall == pytest.approx(8 / 12)
        assert tracker.false_positive_rate == pytest.approx(2 / 88)
        assert tracker.false_negative_rate == pytest.approx(4 / 12)
        assert 0 < tracker.f1 < 1

    def test_empty_rates_are_zero(self):
        tracker = ConfusionTracker()
        assert tracker.precision == 0.0
        assert tracker.recall == 0.0
        assert tracker.f1 == 0.0

    def test_summary_keys(self):
        summary = ConfusionTracker().summary()
        assert set(summary) == {
            "tp", "fp", "fn", "tn", "precision", "recall", "fpr", "fnr", "f1",
        }


class TestEpisodeTracker:
    def test_detection_and_delay(self):
        tracker = EpisodeTracker([100.0, 500.0], window=60.0)
        tracker.record_alert(110.0)   # detects first, delay 10
        tracker.record_alert(130.0)   # duplicate true alert
        tracker.record_alert(300.0)   # false alarm
        result = tracker.result()
        assert result.episodes == 2
        assert result.detected == 1
        assert result.recall == 0.5
        assert result.false_negative_rate == 0.5
        assert result.true_alerts == 2
        assert result.false_alerts == 1
        assert result.mean_delay == 10.0

    def test_alert_before_episode_is_false(self):
        tracker = EpisodeTracker([100.0], window=60.0)
        tracker.record_alert(95.0)
        result = tracker.result()
        assert result.detected == 0
        assert result.false_alerts == 1

    def test_no_episodes(self):
        tracker = EpisodeTracker([], window=10.0)
        tracker.record_alert(1.0)
        assert tracker.result().recall == 0.0


@pytest.fixture
def registry():
    registry = ResponderRegistry()
    registry.register(Responder(
        "near_unqualified", authorizations={"fire"}, capabilities=set(),
        location=(0.0, 0.0),
    ))
    registry.register(Responder(
        "far_qualified", authorizations={"hazmat"},
        capabilities={"chem_suit"}, location=(10.0, 10.0),
    ))
    registry.register(Responder(
        "near_qualified", authorizations={"hazmat"},
        capabilities={"chem_suit", "medic"}, location=(1.0, 1.0),
    ))
    return registry


class TestResponderSelection:
    def test_authorized_available_able_nearest(self, registry):
        chosen = registry.select(
            category="hazmat",
            required_capabilities=["chem_suit"],
            location=(0.0, 0.0),
        )
        assert [r.name for r in chosen] == ["near_qualified"]

    def test_unavailable_skipped(self, registry):
        registry.set_available("near_qualified", False)
        chosen = registry.select(
            category="hazmat", required_capabilities=["chem_suit"],
            location=(0.0, 0.0),
        )
        assert [r.name for r in chosen] == ["far_qualified"]

    def test_unauthorized_never_chosen(self, registry):
        with pytest.raises(ResponderError):
            registry.select(category="radiation")

    def test_capability_required(self, registry):
        with pytest.raises(ResponderError):
            registry.select(
                category="hazmat", required_capabilities=["submarine"],
            )

    def test_duty_windows(self):
        registry = ResponderRegistry()
        registry.register(Responder(
            "night_shift", authorizations={"*"},
            duty_windows=[(0.0, 8.0)],
        ))
        assert registry.select(category="x", now=4.0)
        with pytest.raises(ResponderError):
            registry.select(category="x", now=12.0)

    def test_count_and_load_balancing(self, registry):
        chosen = registry.select(
            category="hazmat", required_capabilities=["chem_suit"], count=2,
            location=(0.0, 0.0),
        )
        assert [r.name for r in chosen] == ["near_qualified", "far_qualified"]
        # Without location, least-dispatched goes first.
        again = registry.select(category="hazmat", count=1)
        assert again[0].dispatched >= 1

    def test_duplicate_registration(self, registry):
        with pytest.raises(ResponderError):
            registry.register(Responder("near_qualified"))


class TestAlertManager:
    def make(self, **kwargs):
        clock = SimulatedClock(start=0.0)
        registry = ResponderRegistry()
        registry.register(Responder("ops", authorizations={"*"}))
        manager = AlertManager(clock, responders=registry, **kwargs)
        channel_log = []
        manager.add_channel(lambda alert, responders: channel_log.append(
            (alert.alert_id, alert.severity, [r.name for r in responders])
        ))
        return clock, manager, channel_log

    def event(self):
        return Event("deviation.usage", 0.0, {"score": 9.0})

    def test_raise_dispatches_to_channel_and_responders(self):
        _clock, manager, log = self.make()
        alert = manager.raise_alert(
            "usage", self.event(), entity="m1", category="usage",
        )
        assert alert is not None
        assert log[0][2] == ["ops"]
        assert alert.responders == ["ops"]

    def test_dedup_within_cooldown(self):
        clock, manager, log = self.make(cooldown=60.0)
        first = manager.raise_alert("usage", self.event(), entity="m1")
        duplicate = manager.raise_alert("usage", self.event(), entity="m1")
        assert duplicate is None
        assert first.repeats == 1
        assert manager.stats["deduplicated"] == 1
        # Different entity is not a duplicate.
        other = manager.raise_alert("usage", self.event(), entity="m2")
        assert other is not None

    def test_dedup_expires_after_cooldown(self):
        clock, manager, _log = self.make(cooldown=60.0)
        manager.raise_alert("usage", self.event(), entity="m1")
        clock.advance(61.0)
        second = manager.raise_alert("usage", self.event(), entity="m1")
        assert second is not None

    def test_acknowledged_alert_allows_new_one(self):
        clock, manager, _log = self.make(cooldown=1000.0)
        first = manager.raise_alert("usage", self.event(), entity="m1")
        manager.acknowledge(first.alert_id, by="oncall")
        second = manager.raise_alert("usage", self.event(), entity="m1")
        assert second is not None
        assert first.acknowledged_by == "oncall"

    def test_escalation_after_timeout(self):
        clock, manager, log = self.make(escalation_timeout=300.0)
        alert = manager.raise_alert(
            "usage", self.event(), entity="m1", severity="warning",
        )
        clock.advance(301.0)
        escalated = manager.check_escalations()
        assert [a.alert_id for a in escalated] == [alert.alert_id]
        assert alert.severity == "critical"
        clock.advance(600.0)
        manager.check_escalations()
        assert alert.severity == "emergency"
        # Top severity: no further escalation.
        clock.advance(10_000.0)
        assert manager.check_escalations() == []

    def test_acknowledged_never_escalates(self):
        clock, manager, _log = self.make(escalation_timeout=10.0)
        alert = manager.raise_alert("usage", self.event(), entity="m1")
        manager.acknowledge(alert.alert_id)
        clock.advance(100.0)
        assert manager.check_escalations() == []

    def test_dispatch_failure_counted_not_raised(self):
        clock = SimulatedClock()
        registry = ResponderRegistry()  # nobody registered
        manager = AlertManager(clock, responders=registry)
        alert = manager.raise_alert(
            "usage", self.event(), entity="m1", category="usage",
        )
        assert alert is not None
        assert manager.stats["dispatch_failures"] == 1

    def test_invalid_severity(self):
        _clock, manager, _log = self.make()
        with pytest.raises(ValueError):
            manager.raise_alert("k", self.event(), severity="catastrophic")

    def test_open_alerts(self):
        _clock, manager, _log = self.make()
        alert = manager.raise_alert("usage", self.event(), entity="m1")
        assert manager.open_alerts() == [alert]
        manager.acknowledge(alert.alert_id)
        assert manager.open_alerts() == []
