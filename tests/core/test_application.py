"""EventDrivenApplication: the assembled pipeline."""

import pytest

from repro.core import (
    EventDrivenApplication,
    EwmaModel,
    RecipientProfile,
    UpdatePolicy,
)
from repro.cq import ContinuousQuery, Count
from repro.errors import ReproError
from repro.events import Event
from repro.rules import Rule


@pytest.fixture
def app(db):
    db.execute("CREATE TABLE meters (meter_id TEXT PRIMARY KEY, usage REAL)")
    return EventDrivenApplication(db)


class TestCaptureIntegration:
    def test_trigger_capture_feeds_rules(self, app, db):
        seen = []
        app.capture_table("meters", method="trigger")
        app.add_rule(Rule.from_text(
            "hot", "usage > 100",
            action=lambda rule, ctx: seen.append(ctx["meter_id"]),
        ))
        db.execute("INSERT INTO meters VALUES ('m1', 50.0)")
        db.execute("INSERT INTO meters VALUES ('m2', 500.0)")
        assert seen == ["m2"]

    def test_journal_capture_needs_pump(self, app, db):
        seen = []
        app.capture_table("meters", method="journal")
        app.add_rule(Rule.from_text(
            "any", "TRUE", action=lambda rule, ctx: seen.append(1),
        ))
        db.execute("INSERT INTO meters VALUES ('m1', 1.0)")
        assert seen == []
        app.pump()
        assert len(seen) == 1

    def test_query_capture(self, app, db):
        seen = []
        app.capture_query(
            "SELECT meter_id FROM meters WHERE usage > 100",
            name="hot", key_columns=["meter_id"],
        )
        app.add_rule(Rule.from_text(
            "added", "TRUE", event_types=("query.hot.added",),
            action=lambda rule, ctx: seen.append(ctx["meter_id"]),
        ))
        app.pump()  # baseline
        db.execute("INSERT INTO meters VALUES ('m9', 900.0)")
        app.pump()
        assert seen == ["m9"]

    def test_unknown_method_rejected(self, app):
        with pytest.raises(ReproError):
            app.capture_table("meters", method="telepathy")


class TestMonitoringPipeline:
    def test_deviation_raises_alert_and_passes_virt(self, app, db, clock):
        app.capture_table("meters", method="trigger")
        app.monitor(
            "usage_anomaly",
            field="usage",
            model_factory=lambda: EwmaModel(alpha=0.3, warmup=5),
            threshold=4.0,
            key_field="meter_id",
            update_policy=UpdatePolicy.WHEN_NORMAL,
            category="usage",
        )
        delivered = []
        app.add_recipient(
            RecipientProfile("ops", interests={"deviation.*": 1.0}),
            threshold=0.6,
            deliver=lambda event, score: delivered.append((event, score)),
        )
        db.execute("INSERT INTO meters VALUES ('m1', 10.0)")
        for i in range(20):
            clock.advance(1.0)
            db.execute("UPDATE meters SET usage = 10.0 WHERE meter_id = 'm1'")
        clock.advance(1.0)
        db.execute("UPDATE meters SET usage = 9000.0 WHERE meter_id = 'm1'")
        assert app.alerts.stats["raised"] == 1
        assert len(delivered) == 1
        event, score = delivered[0]
        assert event["observed"] == 9000.0
        assert score >= 0.6
        stats = app.statistics()
        assert stats["detectors"]["usage_anomaly"]["deviations"] == 1
        assert stats["virt"]["ops"]["delivered"] == 1

    def test_uninterested_recipient_filtered(self, app, db, clock):
        app.capture_table("meters", method="trigger")
        app.monitor(
            "usage_anomaly", field="usage",
            model_factory=lambda: EwmaModel(warmup=2), threshold=3.0,
        )
        suppressed = []
        # Even an infinitely surprising event caps at
        # 0.5 (surprise) + 0.2 (relevance) = 0.7 for a recipient with no
        # actionability on this type; 0.75 filters them all out.
        app.add_recipient(
            RecipientProfile("finance", interests={"orders.*": 1.0}),
            threshold=0.75,
            deliver=lambda e, s: suppressed.append(e),
        )
        db.execute("INSERT INTO meters VALUES ('m1', 10.0)")
        db.execute("UPDATE meters SET usage = 10.0 WHERE meter_id = 'm1'")
        db.execute("UPDATE meters SET usage = 10.0 WHERE meter_id = 'm1'")
        db.execute("UPDATE meters SET usage = 99999.0 WHERE meter_id = 'm1'")
        virt = app.virt_filters["finance"]
        assert virt.stats["seen"] >= 1
        assert suppressed == []  # not their domain

    def test_continuous_query_attached(self, app):
        out = []
        app.add_query(
            ContinuousQuery("counts")
            .window_tumbling(10.0)
            .aggregate("counts.out", {"n": (None, Count)})
            .sink(out.append)
        )
        for i in range(25):
            app.process(Event("tick", float(i), {}))
        assert [e["n"] for e in out] == [10, 10]

    def test_statistics_shape(self, app):
        stats = app.statistics()
        assert set(stats) == {
            "rules", "queries", "alerts", "detectors", "virt", "captures",
        }
