"""Application specification validation (§2.1.d)."""

import pytest

from repro.core import EventDrivenApplication, EwmaModel, RecipientProfile, Responder
from repro.core.spec import (
    ApplicationSpec,
    CategorySpec,
    ConditionSpec,
    EventTypeSpec,
    SpecificationError,
    Violation,
)
from repro.rules import Rule


@pytest.fixture
def app(db):
    db.execute("CREATE TABLE meters (meter_id TEXT PRIMARY KEY, usage REAL)")
    return EventDrivenApplication(db)


def spec(**overrides):
    defaults = dict(
        name="metering",
        monitored_tables=("meters",),
        event_types=(
            EventTypeSpec("meters.insert", {"meter_id", "usage"}),
            EventTypeSpec("meters.update", {"meter_id", "usage"}),
        ),
        conditions=(
            ConditionSpec("usage_spike", implemented_by_detector="usage_anomaly"),
        ),
        categories=(
            CategorySpec("usage", required_capabilities=(), recipients=("ops",)),
        ),
    )
    defaults.update(overrides)
    return ApplicationSpec(**defaults)


def fully_wire(app):
    app.capture_table("meters", method="trigger")
    app.monitor(
        "usage_anomaly", field="usage",
        model_factory=lambda: EwmaModel(), threshold=3.0,
    )
    app.responders.register(Responder("oncall", authorizations={"usage"}))
    app.add_recipient(
        RecipientProfile("ops", interests={"deviation.*": 1.0}), threshold=0.6
    )


class TestValidation:
    def test_fully_wired_app_passes(self, app):
        fully_wire(app)
        assert spec().validate(app) == []
        spec().enforce(app)  # no raise

    def test_uncaptured_table_flagged(self, app):
        fully_wire(app)
        bad = spec(monitored_tables=("meters", "orders"))
        violations = bad.validate(app)
        assert [v.kind for v in violations] == ["uncaptured-table"]
        assert violations[0].subject == "orders"

    def test_unimplemented_condition_flagged(self, app):
        fully_wire(app)
        bad = spec(conditions=(
            ConditionSpec("usage_spike", implemented_by_detector="usage_anomaly"),
            ConditionSpec("night_drain", implemented_by_rule="drain_rule"),
        ))
        violations = bad.validate(app)
        assert [v.kind for v in violations] == ["unimplemented-condition"]

    def test_condition_satisfied_by_rule(self, app):
        fully_wire(app)
        app.add_rule(Rule.from_text("drain_rule", "usage < 0.1"))
        good = spec(conditions=(
            ConditionSpec("night_drain", implemented_by_rule="drain_rule"),
        ))
        assert good.validate(app) == []

    def test_unanswerable_category_flagged(self, app):
        fully_wire(app)
        bad = spec(categories=(
            CategorySpec("hazmat", required_capabilities=("chem_suit",)),
        ))
        violations = bad.validate(app)
        assert violations[0].kind == "unanswerable-category"

    def test_capability_gap_flagged(self, app):
        fully_wire(app)  # oncall has no capabilities
        bad = spec(categories=(
            CategorySpec("usage", required_capabilities=("forklift",)),
        ))
        assert bad.validate(app)[0].kind == "unanswerable-category"

    def test_missing_recipient_flagged(self, app):
        fully_wire(app)
        bad = spec(categories=(
            CategorySpec("usage", recipients=("ops", "exec_dashboard")),
        ))
        violations = bad.validate(app)
        assert [v.kind for v in violations] == ["missing-recipient"]
        assert violations[0].subject == "exec_dashboard"

    def test_rule_with_unknown_attributes_flagged(self, app):
        fully_wire(app)
        app.add_rule(Rule.from_text("typo", "usgae > 100"))  # misspelled
        violations = spec().validate(app)
        assert [v.kind for v in violations] == ["unknown-attributes"]
        assert "usgae" in violations[0].detail

    def test_no_event_types_skips_attribute_check(self, app):
        fully_wire(app)
        app.add_rule(Rule.from_text("anything", "whatever > 1"))
        lenient = spec(event_types=())
        assert lenient.validate(app) == []

    def test_enforce_raises_with_all_violations(self, app):
        # Nothing wired at all: every check trips.
        with pytest.raises(SpecificationError) as exc:
            spec().enforce(app)
        message = str(exc.value)
        assert "uncaptured-table" in message
        assert "unimplemented-condition" in message
        assert "unanswerable-category" in message

    def test_violation_str(self):
        violation = Violation("kind", "subject", "detail")
        assert str(violation) == "[kind] subject: detail"
