"""Alert silences and push-mode query capture in the application."""

import pytest

from repro.clock import SimulatedClock
from repro.core import AlertManager, EventDrivenApplication
from repro.events import Event
from repro.rules import Rule


def event():
    return Event("e", 0.0, {})


class TestSilences:
    def make(self):
        clock = SimulatedClock()
        return clock, AlertManager(clock, cooldown=0.0)

    def test_exact_silence(self):
        clock, manager = self.make()
        manager.silence(kind="usage", entity="m1", duration=100.0)
        assert manager.raise_alert("usage", event(), entity="m1") is None
        assert manager.stats["silenced"] == 1
        # Other entities and kinds unaffected.
        assert manager.raise_alert("usage", event(), entity="m2") is not None
        assert manager.raise_alert("other", event(), entity="m1") is not None

    def test_kind_wide_silence(self):
        clock, manager = self.make()
        manager.silence(kind="usage", duration=100.0)
        assert manager.raise_alert("usage", event(), entity="m1") is None
        assert manager.raise_alert("usage", event(), entity="m2") is None

    def test_global_silence(self):
        clock, manager = self.make()
        manager.silence(duration=100.0)
        assert manager.raise_alert("anything", event(), entity="x") is None

    def test_silence_expires(self):
        clock, manager = self.make()
        manager.silence(kind="usage", duration=50.0)
        clock.advance(51.0)
        assert manager.raise_alert("usage", event(), entity="m1") is not None

    def test_clear_silence(self):
        clock, manager = self.make()
        manager.silence(kind="usage", duration=1000.0)
        manager.clear_silence(kind="usage")
        assert manager.raise_alert("usage", event(), entity="m1") is not None

    def test_silenced_not_counted_as_dedup(self):
        clock, manager = self.make()
        manager.silence(duration=10.0)
        manager.raise_alert("k", event(), entity="e")
        assert manager.stats["deduplicated"] == 0
        assert manager.stats["raised"] == 0


class TestPushQueryCapture:
    def test_push_mode_needs_no_pump(self, db):
        db.execute("CREATE TABLE meters (meter_id TEXT PRIMARY KEY, usage REAL)")
        app = EventDrivenApplication(db)
        app.capture_query(
            "SELECT meter_id FROM meters WHERE usage > 100",
            name="hot", key_columns=["meter_id"], push=True,
        )
        seen = []
        app.add_rule(Rule.from_text(
            "hot_added", "TRUE", event_types=("query.hot.added",),
            action=lambda rule, ctx: seen.append(ctx["meter_id"]),
        ))
        db.execute("INSERT INTO meters VALUES ('m1', 500.0)")
        assert seen == ["m1"]  # no pump() call anywhere

    def test_poll_mode_still_requires_pump(self, db):
        db.execute("CREATE TABLE meters (meter_id TEXT PRIMARY KEY, usage REAL)")
        app = EventDrivenApplication(db)
        app.capture_query(
            "SELECT meter_id FROM meters WHERE usage > 100",
            name="hot", key_columns=["meter_id"], push=False,
        )
        seen = []
        app.add_rule(Rule.from_text(
            "hot_added", "TRUE", event_types=("query.hot.added",),
            action=lambda rule, ctx: seen.append(1),
        ))
        app.pump()  # baseline
        db.execute("INSERT INTO meters VALUES ('m1', 500.0)")
        assert seen == []
        app.pump()
        assert seen == [1]
