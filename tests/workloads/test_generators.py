"""Workload generators: determinism, labels, statistical shape."""

import random

import pytest

from repro.workloads import (
    HazmatGenerator,
    MarketDataGenerator,
    OrderFlowGenerator,
    SensorGridGenerator,
    UtilityUsageGenerator,
    poisson_times,
)
from repro.workloads.hazmat import AUTHORIZED_ZONES, SAFE_TEMPERATURE
from repro.workloads.generators import pick_episode_times


class TestPrimitives:
    def test_poisson_rate(self):
        rng = random.Random(1)
        times = poisson_times(rng, rate=10.0, duration=1000.0)
        assert len(times) == pytest.approx(10_000, rel=0.05)
        assert all(0 <= t < 1000.0 for t in times)
        assert times == sorted(times)

    def test_poisson_zero_rate(self):
        assert poisson_times(random.Random(1), 0.0, 100.0) == []

    def test_episode_times_bounds_and_gaps(self):
        rng = random.Random(2)
        times = pick_episode_times(rng, 900.0, 5, min_gap=50.0, start=100.0)
        assert len(times) == 5
        assert all(100.0 <= t <= 900.0 for t in times)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g >= 50.0 for g in gaps)

    def test_episode_times_empty_interval(self):
        assert pick_episode_times(random.Random(1), 10.0, 3, min_gap=1, start=20.0) == []


ALL_GENERATORS = [
    (MarketDataGenerator(episode_count=2, seed=1), 300.0),
    (OrderFlowGenerator(episode_count=2, seed=1), 300.0),
    (SensorGridGenerator(rows=4, cols=4, plume_count=2, seed=1), 600.0),
    (HazmatGenerator(containers=8, violation_count=2, seed=1), 600.0),
    (UtilityUsageGenerator(meters=4, anomaly_count=2, seed=1,
                           anomaly_duration=3600.0), 4 * 86400.0),
]


class TestCommonProperties:
    @pytest.mark.parametrize("generator,duration", ALL_GENERATORS)
    def test_deterministic_given_seed(self, generator, duration):
        first = type(generator)(**_params(generator)).generate(duration)
        second = type(generator)(**_params(generator)).generate(duration)
        assert len(first) == len(second)
        assert [e.payload for e in first.events[:50]] == [
            e.payload for e in second.events[:50]
        ]
        assert first.episodes == second.episodes

    @pytest.mark.parametrize("generator,duration", ALL_GENERATORS)
    def test_episodes_within_duration(self, generator, duration):
        stream = generator.generate(duration)
        assert all(0 <= t <= duration for t in stream.episodes)
        assert len(stream.episodes) > 0

    @pytest.mark.parametrize("generator,duration", ALL_GENERATORS)
    def test_critical_events_are_minority(self, generator, duration):
        stream = generator.generate(duration)
        assert 0 < len(stream.critical_event_ids) < 0.2 * len(stream)

    @pytest.mark.parametrize("generator,duration", ALL_GENERATORS)
    def test_events_time_ordered_or_sortable(self, generator, duration):
        stream = generator.generate(duration).sorted_by_time()
        timestamps = [e.timestamp for e in stream.events]
        assert timestamps == sorted(timestamps)

    @pytest.mark.parametrize("generator,duration", ALL_GENERATORS)
    def test_is_critical_helper(self, generator, duration):
        stream = generator.generate(duration)
        critical = [e for e in stream if stream.is_critical(e)]
        assert len(critical) == len(stream.critical_event_ids)


def _params(generator):
    """Re-extract constructor parameters from a generator instance."""
    import inspect

    signature = inspect.signature(type(generator).__init__)
    return {
        name: getattr(generator, name)
        for name in signature.parameters
        if name != "self" and hasattr(generator, name)
    }


class TestFinanceSpecifics:
    def test_spike_episodes_move_price(self):
        generator = MarketDataGenerator(episode_count=3, seed=9)
        stream = generator.generate(400.0)
        critical = [e for e in stream if stream.is_critical(e)]
        assert critical
        # Critical ticks are the episode ticks; their symbols cluster.
        symbols = {e["symbol"] for e in critical}
        assert len(symbols) <= 3

    def test_order_bursts_are_large(self):
        generator = OrderFlowGenerator(episode_count=2, seed=9)
        stream = generator.generate(300.0)
        normal_max = max(
            e["qty"] for e in stream if not stream.is_critical(e)
        )
        burst_min = min(e["qty"] for e in stream if stream.is_critical(e))
        assert burst_min > normal_max


class TestSensorSpecifics:
    def test_plume_elevates_origin_readings(self):
        generator = SensorGridGenerator(rows=4, cols=4, plume_count=1, seed=3)
        stream = generator.generate(600.0)
        critical_readings = [
            e["reading"] for e in stream if stream.is_critical(e)
        ]
        normal_readings = [
            e["reading"] for e in stream if not stream.is_critical(e)
        ]
        assert min(critical_readings) > generator.baseline
        mean_normal = sum(normal_readings) / len(normal_readings)
        mean_critical = sum(critical_readings) / len(critical_readings)
        assert mean_critical > mean_normal + 5


class TestHazmatSpecifics:
    def test_zone_violations_are_unauthorized(self):
        generator = HazmatGenerator(containers=8, violation_count=2, seed=7)
        stream = generator.generate(600.0)
        zone_violations = [
            e for e in stream
            if stream.is_critical(e)
            and e["zone"] not in AUTHORIZED_ZONES[e["material"]]
        ]
        temp_violations = [
            e for e in stream
            if stream.is_critical(e)
            and e["temperature"] > SAFE_TEMPERATURE[e["material"]]
        ]
        assert zone_violations or temp_violations
        # Non-critical events are always in authorized zones.
        for event in stream:
            if not stream.is_critical(event):
                assert event["zone"] in AUTHORIZED_ZONES[event["material"]]

    def test_reference_rows_cover_all_materials(self):
        rows = HazmatGenerator().reference_rows()
        materials = {row["material"] for row in rows}
        assert materials == set(AUTHORIZED_ZONES)


class TestUtilitySpecifics:
    def test_seasonal_shape(self):
        generator = UtilityUsageGenerator(meters=1, anomaly_count=0, seed=2,
                                          noise=0.01)
        peak = generator.expected_usage(0, 0.8 * 86400.0)
        trough = generator.expected_usage(0, 0.3 * 86400.0)
        assert peak > 2 * trough

    def test_anomalies_multiply_usage(self):
        generator = UtilityUsageGenerator(meters=3, anomaly_count=1, seed=2)
        stream = generator.generate(5 * 86400.0)
        for event in stream:
            if stream.is_critical(event):
                meter = int(event["meter_id"][1:])
                expected = generator.expected_usage(meter, event.timestamp)
                assert event["usage"] > expected * 2
