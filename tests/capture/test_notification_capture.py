"""CQN-style query notification capture."""

import pytest

from repro.capture import QueryCapture, QueryNotificationCapture
from repro.capture.notification_capture import query_dependencies
from repro.errors import SqlSyntaxError


@pytest.fixture
def mdb(db):
    db.execute("CREATE TABLE meters (meter_id INT PRIMARY KEY, usage REAL)")
    return db


class TestDependencies:
    def test_single_table(self):
        assert query_dependencies("SELECT * FROM meters") == {"meters"}

    def test_join_tables(self):
        deps = query_dependencies(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        assert deps == {"a", "b", "c"}

    def test_tableless_rejected(self):
        with pytest.raises(SqlSyntaxError):
            query_dependencies("SELECT 1")

    def test_non_select_rejected(self):
        with pytest.raises(SqlSyntaxError):
            query_dependencies("DELETE FROM t")


class TestPushSemantics:
    def test_events_at_commit_not_poll(self, mdb):
        capture = QueryNotificationCapture(
            mdb,
            "SELECT meter_id, usage FROM meters WHERE usage > 100",
            name="hot",
            key_columns=["meter_id"],
        )
        events = []
        capture.subscribe(events.append)
        mdb.execute("INSERT INTO meters VALUES (1, 150.0)")
        # No poll call — the commit pushed the notification.
        assert [e.event_type for e in events] == ["query.hot.added"]

    def test_uncommitted_changes_invisible(self, mdb):
        capture = QueryNotificationCapture(
            mdb, "SELECT * FROM meters", name="all", key_columns=["meter_id"]
        )
        events = []
        capture.subscribe(events.append)
        conn = mdb.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO meters VALUES (1, 1.0)")
        assert events == []
        conn.execute("COMMIT")
        assert len(events) == 1

    def test_rollback_produces_nothing(self, mdb):
        capture = QueryNotificationCapture(
            mdb, "SELECT * FROM meters", name="all"
        )
        events = []
        capture.subscribe(events.append)
        conn = mdb.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO meters VALUES (1, 1.0)")
        conn.execute("ROLLBACK")
        assert events == []
        assert capture.reevaluations == 0

    def test_sees_transients_across_transactions(self, mdb):
        """The polling blind spot is gone: add-then-remove across two
        commits is observed as added + removed."""
        capture = QueryNotificationCapture(
            mdb, "SELECT meter_id, usage FROM meters", name="all",
            key_columns=["meter_id"],
        )
        events = []
        capture.subscribe(events.append)
        mdb.execute("INSERT INTO meters VALUES (1, 1.0)")
        mdb.execute("DELETE FROM meters WHERE meter_id = 1")
        assert [e.event_type for e in events] == [
            "query.all.added", "query.all.removed",
        ]

    def test_changed_rows(self, mdb):
        capture = QueryNotificationCapture(
            mdb, "SELECT meter_id, usage FROM meters", name="all",
            key_columns=["meter_id"],
        )
        events = []
        capture.subscribe(events.append)
        mdb.execute("INSERT INTO meters VALUES (1, 1.0)")
        mdb.execute("UPDATE meters SET usage = 2.0 WHERE meter_id = 1")
        assert events[-1].event_type == "query.all.changed"
        assert events[-1]["old"]["usage"] == 1.0


class TestSelectivity:
    def test_unrelated_commits_skipped(self, mdb):
        mdb.execute("CREATE TABLE other (a INT)")
        capture = QueryNotificationCapture(
            mdb, "SELECT * FROM meters", name="all"
        )
        for i in range(10):
            mdb.execute(f"INSERT INTO other VALUES ({i})")
        assert capture.reevaluations == 0
        assert capture.commits_skipped >= 10

    def test_filtered_changes_still_reevaluate_but_emit_nothing(self, mdb):
        capture = QueryNotificationCapture(
            mdb,
            "SELECT meter_id FROM meters WHERE usage > 100",
            name="hot",
            key_columns=["meter_id"],
        )
        events = []
        capture.subscribe(events.append)
        mdb.execute("INSERT INTO meters VALUES (1, 5.0)")  # below threshold
        assert capture.reevaluations == 1
        assert events == []

    def test_close_detaches(self, mdb):
        capture = QueryNotificationCapture(
            mdb, "SELECT * FROM meters", name="all"
        )
        events = []
        capture.subscribe(events.append)
        capture.close()
        mdb.execute("INSERT INTO meters VALUES (1, 1.0)")
        # The dirty-marking triggers are gone: no reevaluation.
        assert capture.reevaluations == 0
        assert events == []


class TestVersusPolling:
    def test_notification_beats_polling_on_latency_and_completeness(self, mdb, clock):
        polled = QueryCapture(
            mdb, "SELECT meter_id, usage FROM meters", name="poll",
            key_columns=["meter_id"],
        )
        pushed = QueryNotificationCapture(
            mdb, "SELECT meter_id, usage FROM meters", name="push",
            key_columns=["meter_id"],
        )
        polled_events, pushed_events = [], []
        polled.subscribe(polled_events.append)
        pushed.subscribe(pushed_events.append)
        polled.poll()  # baseline

        mdb.execute("INSERT INTO meters VALUES (1, 1.0)")
        mdb.execute("DELETE FROM meters WHERE meter_id = 1")
        clock.advance(60.0)
        polled.poll()

        assert polled_events == []          # transient missed
        assert len(pushed_events) == 2      # transient observed
