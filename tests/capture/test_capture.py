"""All four capture mechanisms (paper §2.2.a) and their contrasts."""

import pytest

from repro.capture import (
    JournalCapture,
    PatternCapture,
    QueryCapture,
    Transition,
    TriggerCapture,
)


@pytest.fixture
def mdb(db):
    db.execute("CREATE TABLE meters (meter_id INT PRIMARY KEY, usage REAL)")
    return db


class TestTriggerCapture:
    def test_captures_all_operations(self, mdb):
        events = []
        capture = TriggerCapture(mdb, ["meters"])
        capture.subscribe(events.append)
        mdb.execute("INSERT INTO meters VALUES (1, 10.0)")
        mdb.execute("UPDATE meters SET usage = 20.0 WHERE meter_id = 1")
        mdb.execute("DELETE FROM meters WHERE meter_id = 1")
        assert [e.event_type for e in events] == [
            "meters.insert", "meters.update", "meters.delete",
        ]

    def test_payload_carries_images_and_columns(self, mdb):
        events = []
        TriggerCapture(mdb, ["meters"]).subscribe(events.append)
        mdb.execute("INSERT INTO meters VALUES (1, 10.0)")
        event = events[0]
        assert event["new"] == {"meter_id": 1, "usage": 10.0}
        assert event["old"] is None
        assert event["usage"] == 10.0  # flattened for rule filters
        assert event["meter_id"] == 1

    def test_transactional_mode_waits_for_commit(self, mdb):
        events = []
        TriggerCapture(mdb, ["meters"]).subscribe(events.append)
        conn = mdb.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO meters VALUES (1, 10.0)")
        assert events == []  # nothing published before commit
        conn.execute("COMMIT")
        assert len(events) == 1

    def test_transactional_mode_discards_on_rollback(self, mdb):
        events = []
        TriggerCapture(mdb, ["meters"]).subscribe(events.append)
        conn = mdb.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO meters VALUES (1, 10.0)")
        conn.execute("ROLLBACK")
        assert events == []

    def test_immediate_mode_publishes_inside_transaction(self, mdb):
        events = []
        TriggerCapture(mdb, ["meters"], transactional=False, name="imm").subscribe(
            events.append
        )
        conn = mdb.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO meters VALUES (1, 10.0)")
        assert len(events) == 1  # phantom risk, by design
        conn.execute("ROLLBACK")

    def test_close_removes_triggers(self, mdb):
        events = []
        capture = TriggerCapture(mdb, ["meters"])
        capture.subscribe(events.append)
        capture.close()
        mdb.execute("INSERT INTO meters VALUES (1, 1.0)")
        assert events == []

    def test_when_filter(self, mdb):
        from repro.db.sql.parser import parse_expression

        events = []
        TriggerCapture(
            mdb, ["meters"], when=parse_expression("usage > 100"), name="hot"
        ).subscribe(events.append)
        mdb.execute("INSERT INTO meters VALUES (1, 10.0)")
        mdb.execute("INSERT INTO meters VALUES (2, 500.0)")
        assert len(events) == 1


class TestJournalCapture:
    def test_poll_returns_committed_changes(self, mdb):
        capture = JournalCapture(mdb, ["meters"])
        mdb.execute("INSERT INTO meters VALUES (1, 10.0)")
        mdb.execute("UPDATE meters SET usage = 11.0 WHERE meter_id = 1")
        events = capture.poll()
        assert [e.event_type for e in events] == ["meters.insert", "meters.update"]
        assert events[1]["old"]["usage"] == 10.0

    def test_uncommitted_invisible(self, mdb):
        capture = JournalCapture(mdb, ["meters"])
        conn = mdb.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO meters VALUES (1, 10.0)")
        assert capture.poll() == []
        conn.execute("COMMIT")
        assert len(capture.poll()) == 1

    def test_rolled_back_never_visible(self, mdb):
        capture = JournalCapture(mdb, ["meters"])
        conn = mdb.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO meters VALUES (1, 10.0)")
        conn.execute("ROLLBACK")
        assert capture.poll() == []

    def test_table_filter(self, mdb):
        mdb.execute("CREATE TABLE other (a INT)")
        capture = JournalCapture(mdb, ["meters"])
        mdb.execute("INSERT INTO other VALUES (1)")
        mdb.execute("INSERT INTO meters VALUES (1, 1.0)")
        events = capture.poll()
        assert [e["table"] for e in events] == ["meters"]

    def test_from_start_replays_history(self, mdb):
        mdb.execute("INSERT INTO meters VALUES (1, 1.0)")
        capture = JournalCapture(mdb, ["meters"], from_start=True)
        assert len(capture.poll()) == 1

    def test_no_foreground_work(self, mdb):
        """The writer does no event work: events appear only at poll."""
        capture = JournalCapture(mdb, ["meters"])
        seen = []
        capture.subscribe(seen.append)
        mdb.execute("INSERT INTO meters VALUES (1, 1.0)")
        assert seen == []  # nothing until the miner polls
        capture.poll()
        assert len(seen) == 1


class TestQueryCapture:
    def test_added_removed_changed(self, mdb):
        capture = QueryCapture(
            mdb,
            "SELECT meter_id, usage FROM meters WHERE usage > 100",
            name="hot",
            key_columns=["meter_id"],
        )
        assert capture.poll() == []  # baseline
        mdb.execute("INSERT INTO meters VALUES (1, 150.0)")
        events = capture.poll()
        assert [e.event_type for e in events] == ["query.hot.added"]
        mdb.execute("UPDATE meters SET usage = 200.0 WHERE meter_id = 1")
        events = capture.poll()
        assert [e.event_type for e in events] == ["query.hot.changed"]
        mdb.execute("UPDATE meters SET usage = 50.0 WHERE meter_id = 1")
        events = capture.poll()
        assert [e.event_type for e in events] == ["query.hot.removed"]

    def test_no_change_no_events(self, mdb):
        capture = QueryCapture(mdb, "SELECT * FROM meters", name="all")
        mdb.execute("INSERT INTO meters VALUES (1, 1.0)")
        capture.poll()
        assert capture.poll() == []

    def test_misses_transient_rows(self, mdb):
        """The polling blind spot: appear+disappear between polls."""
        capture = QueryCapture(mdb, "SELECT * FROM meters", name="all")
        capture.poll()
        mdb.execute("INSERT INTO meters VALUES (1, 1.0)")
        mdb.execute("DELETE FROM meters WHERE meter_id = 1")
        assert capture.poll() == []  # never seen — inherent false negative

    def test_without_keys_changes_are_add_remove(self, mdb):
        capture = QueryCapture(mdb, "SELECT meter_id, usage FROM meters", name="nk")
        mdb.execute("INSERT INTO meters VALUES (1, 1.0)")
        capture.poll()
        mdb.execute("UPDATE meters SET usage = 2.0 WHERE meter_id = 1")
        kinds = sorted(e.event_type for e in capture.poll())
        assert kinds == ["query.nk.added", "query.nk.removed"]


class TestPatternCapture:
    def test_transition_pattern_fires(self, mdb):
        capture = PatternCapture(
            mdb,
            Transition("meters", "new_usage > old_usage * 2", ["meter_id"]),
            name="doubled",
        )
        mdb.execute("INSERT INTO meters VALUES (1, 10.0)")
        capture.poll()
        mdb.execute("UPDATE meters SET usage = 25.0 WHERE meter_id = 1")
        events = capture.poll()
        assert len(events) == 1
        assert events[0]["new"]["usage"] == 25.0
        assert events[0]["old"]["usage"] == 10.0

    def test_small_change_does_not_fire(self, mdb):
        capture = PatternCapture(
            mdb,
            Transition("meters", "new_usage > old_usage * 2", ["meter_id"]),
        )
        mdb.execute("INSERT INTO meters VALUES (1, 10.0)")
        capture.poll()
        mdb.execute("UPDATE meters SET usage = 12.0 WHERE meter_id = 1")
        assert capture.poll() == []

    def test_appearing_rows_skipped_by_default(self, mdb):
        capture = PatternCapture(
            mdb, Transition("meters", "new_usage > 0", ["meter_id"])
        )
        capture.poll()
        mdb.execute("INSERT INTO meters VALUES (1, 10.0)")
        assert capture.poll() == []  # no previous state: no transition

    def test_include_appearing(self, mdb):
        capture = PatternCapture(
            mdb,
            Transition(
                "meters",
                "old_usage IS NULL AND new_usage > 5",
                ["meter_id"],
                include_appearing=True,
            ),
        )
        capture.poll()
        mdb.execute("INSERT INTO meters VALUES (1, 10.0)")
        assert len(capture.poll()) == 1

    def test_query_form_expansion(self):
        transition = Transition("meters", "TRUE", ["meter_id"])
        assert transition.sql() == "SELECT * FROM meters"
        explicit = Transition("SELECT a FROM t", "TRUE", ["a"])
        assert explicit.sql() == "SELECT a FROM t"
