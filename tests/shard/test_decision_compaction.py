"""Decision-log compaction: bounded growth without losing resolvability.

The satellite fix under test: the coordinator's ``shard_gtid`` journal
previously kept every decision forever.  Compaction may delete a
decision only once every participant has durably resolved the gtid —
after that, no recovery path can ever ask about it again.  The
regression that must never happen: compacting a decision some shard
still holds in doubt, which would flip a committed transaction to
presumed-abort on restart.
"""

from __future__ import annotations

import pytest

from repro.queues.message import Message
from repro.shard import ShardCoordinator, ShardedQueueBroker, ShardMap

pytestmark = pytest.mark.shard

TIMEOUT = 20.0


def two_queues(shards: int = 2) -> tuple[str, str]:
    shard_map = ShardMap(range(shards))
    names: dict[int, str] = {}
    for i in range(10_000):
        name = f"q{i}"
        names.setdefault(shard_map.shard_for(name), name)
        if len(names) == shards:
            return names[0], names[1]
    raise AssertionError("could not cover both shards")


class TestCompaction:
    def test_fully_resolved_decisions_are_reclaimed(self, tmp_path):
        with ShardCoordinator(
            2, data_dir=str(tmp_path), timeout=TIMEOUT
        ) as fleet:
            q0, q1 = two_queues()
            broker = ShardedQueueBroker(fleet)
            broker.create_queue(q0)
            broker.create_queue(q1)
            for i in range(5):
                broker.publish_atomic(
                    [(q0, Message(payload=f"a{i}")),
                     (q1, Message(payload=f"b{i}"))]
                )
            assert len(fleet.decisions) == 5
            assert fleet.compact_decisions() == 5
            assert len(fleet.decisions) == 0
            # Idempotent; and later transactions journal normally.
            assert fleet.compact_decisions() == 0
            broker.publish_atomic(
                [(q0, Message(payload="x")), (q1, Message(payload="y"))]
            )
            assert len(fleet.decisions) == 1

    def test_indoubt_decisions_survive_compaction_and_resolve(self, tmp_path):
        """A decide-window crash leaves shard 1 in doubt.  Compaction
        with the shard down must keep that decision; after restart the
        (compacted) journal still resolves it to COMMITTED."""
        with ShardCoordinator(
            2, data_dir=str(tmp_path), timeout=TIMEOUT
        ) as fleet:
            q0, q1 = two_queues()
            broker = ShardedQueueBroker(fleet)
            broker.create_queue(q0)
            broker.create_queue(q1)
            # A fully resolved transaction (compactable)...
            resolved_gtid = broker.publish_atomic(
                [(q0, Message(payload="r0")), (q1, Message(payload="r1"))]
            )
            # ...then one whose decide round kills shard 1 (in doubt).
            fleet.restart_worker(
                1,
                fault={
                    "failpoint": "shard.decide",
                    "action": "exit",
                    "code": 3,
                    "seed": 5,
                    "max_fires": 1,
                },
            )
            indoubt_gtid = broker.publish_atomic(
                [(q0, Message(payload="x")), (q1, Message(payload="y"))]
            )
            assert not fleet.worker(1).alive
            assert len(fleet.decisions) == 2
            # Shard 1 is unreachable, and it participates in both
            # gtids: compaction cannot confirm resolution there, so it
            # must keep everything — even the one already resolved.
            assert fleet.compact_decisions() == 0
            remaining = {row["gtid"] for row in fleet.decisions.rows()}
            assert remaining == {resolved_gtid, indoubt_gtid}

            summary = fleet.restart_worker(1)
            assert summary["resolved"] == {indoubt_gtid: "committed"}
            assert broker.depth(q1) == 2  # both transactions, exactly once
            # Now both are resolved everywhere and reclaimable.
            assert fleet.compact_decisions() == 2
            assert len(fleet.decisions) == 0

    def test_compacted_journal_survives_coordinator_restart(self, tmp_path):
        """Compaction rewrites durable state; a reopened coordinator
        must see the compacted journal and still resolve what's left."""
        data_dir = str(tmp_path)
        q0, q1 = two_queues()
        with ShardCoordinator(2, data_dir=data_dir, timeout=TIMEOUT) as fleet:
            broker = ShardedQueueBroker(fleet)
            broker.create_queue(q0)
            broker.create_queue(q1)
            broker.publish_atomic(
                [(q0, Message(payload="a")), (q1, Message(payload="b"))]
            )
            # Compact while healthy: the first decision is reclaimed
            # and that deletion hits the durable journal.
            assert fleet.compact_decisions() == 1
            fleet.restart_worker(
                1,
                fault={
                    "failpoint": "shard.decide",
                    "action": "exit",
                    "code": 3,
                    "seed": 6,
                    "max_fires": 1,
                },
            )
            indoubt_gtid = broker.publish_atomic(
                [(q0, Message(payload="x")), (q1, Message(payload="y"))]
            )
            assert [row["gtid"] for row in fleet.decisions.rows()] == [
                indoubt_gtid
            ]

        with ShardCoordinator(2, data_dir=data_dir, timeout=TIMEOUT) as fleet:
            # The reopened coordinator resolved shard 1's in-doubt gtid
            # from the compacted journal during startup.
            assert fleet.decisions.decision_for(indoubt_gtid) == "committed"
            assert fleet.worker(1).call("list_indoubt") == []
            assert (
                fleet.worker(1).call("twopc_state", {"gtid": indoubt_gtid})
                == "committed"
            )
            broker = ShardedQueueBroker(fleet)
            assert broker.depth(q1) == 2
