"""Coordinator-crash recovery: the decision journal is the truth.

These tests crash the *coordinator* (not a worker) inside the 2PC
window between prepare and decide, then bring up a fresh coordinator
over the same data directory.  The contract under test is presumed
abort: a prepared gtid with no journaled decision aborts everywhere;
a journaled COMMITTED decision commits everywhere — regardless of
which process died when.

The crash is simulated by abandoning the coordinator object after the
prepare round: the workers journaled their YES votes durably, and the
new coordinator sees exactly what a restarted one would.
"""

from __future__ import annotations

import pytest

from repro.queues.message import Message
from repro.shard import ShardCoordinator, ShardedQueueBroker, ShardMap
from repro.shard.protocol import message_to_wire

pytestmark = [pytest.mark.shard, pytest.mark.chaos]

TIMEOUT = 20.0


def two_queues(shards: int = 2) -> tuple[str, str]:
    shard_map = ShardMap(range(shards))
    names: dict[int, str] = {}
    for i in range(10_000):
        name = f"q{i}"
        names.setdefault(shard_map.shard_for(name), name)
        if len(names) == shards:
            return names[0], names[1]
    raise AssertionError("could not cover both shards")


def prepare_everywhere(fleet, gtid: str, q0: str, q1: str) -> None:
    """Run phase 1 by hand on both shards; each journals a YES vote."""
    for shard_id, queue in ((0, q0), (1, q1)):
        ops = [{"queue": queue, "message": message_to_wire(Message(payload=gtid))}]
        assert fleet.worker(shard_id).call(
            "prepare", {"gtid": gtid, "ops": ops}
        ) is True


class TestCoordinatorCrash:
    def test_crash_before_decision_presumes_abort(self, tmp_path):
        data_dir = str(tmp_path)
        q0, q1 = two_queues()
        gtid = "gtid-orphan-1"
        with ShardCoordinator(
            2, data_dir=data_dir, group_commit_size=1, timeout=TIMEOUT
        ) as fleet:
            broker = ShardedQueueBroker(fleet)
            broker.create_queue(q0)
            broker.create_queue(q1)
            prepare_everywhere(fleet, gtid, q0, q1)
            # Crash window: votes journaled, no decision recorded.
            assert fleet.decisions.decision_for(gtid) is None

        with ShardCoordinator(
            2, data_dir=data_dir, group_commit_size=1, timeout=TIMEOUT
        ) as fleet:
            # Startup resolution found no decision → presumed abort.
            for shard_id in (0, 1):
                assert fleet.worker(shard_id).call("list_indoubt") == []
                assert (
                    fleet.worker(shard_id).call("twopc_state", {"gtid": gtid})
                    == "aborted"
                )
            broker = ShardedQueueBroker(fleet)
            assert broker.depth(q0) == 0
            assert broker.depth(q1) == 0

    def test_crash_after_decision_commits_on_recovery(self, tmp_path):
        data_dir = str(tmp_path)
        q0, q1 = two_queues()
        gtid = "gtid-decided-1"
        with ShardCoordinator(
            2, data_dir=data_dir, group_commit_size=1, timeout=TIMEOUT
        ) as fleet:
            broker = ShardedQueueBroker(fleet)
            broker.create_queue(q0)
            broker.create_queue(q1)
            prepare_everywhere(fleet, gtid, q0, q1)
            # The commit point lands in the journal... and then the
            # coordinator dies before sending a single decide frame.
            fleet.decisions.record(gtid, "committed", participants=[0, 1])

        with ShardCoordinator(
            2, data_dir=data_dir, group_commit_size=1, timeout=TIMEOUT
        ) as fleet:
            for shard_id in (0, 1):
                assert fleet.worker(shard_id).call("list_indoubt") == []
                assert (
                    fleet.worker(shard_id).call("twopc_state", {"gtid": gtid})
                    == "committed"
                )
            broker = ShardedQueueBroker(fleet)
            assert broker.depth(q0) == 1
            assert broker.depth(q1) == 1
            # Exactly once: a second manual resolve must not re-apply.
            assert fleet.worker(0).call(
                "resolve", {"gtid": gtid, "decision": "committed"}
            )["applied"] is False
            assert broker.depth(q0) == 1
