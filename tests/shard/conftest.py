"""Shared fixtures for the shard suite.

The ``chaos`` marker gets a **hard per-test deadline** enforced with
SIGALRM: these tests kill worker processes mid-protocol on purpose, so
the failure mode to guard against is not a wrong answer but a hang
(a supervisor loop that never converges, a recv with no peer).  A
pytest-level timeout plugin isn't available offline; the stdlib alarm
is enough because the whole suite is POSIX-only already (fork-spawned
workers).
"""

from __future__ import annotations

import signal

import pytest

#: Hard wall-clock ceiling for one chaos test.  Generous — a healthy
#: run finishes in a couple of seconds; the alarm exists to turn a
#: hang into a failure, not to race the scheduler.
CHAOS_DEADLINE_S = 60


@pytest.fixture(autouse=True)
def _chaos_deadline(request):
    """Arm SIGALRM for tests marked ``chaos``; no-op otherwise."""
    if request.node.get_closest_marker("chaos") is None:
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"chaos test exceeded the {CHAOS_DEADLINE_S}s hard deadline"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(CHAOS_DEADLINE_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
