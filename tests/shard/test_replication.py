"""Replication-layer tests: log shipping, id translation, reseeding.

Replica state is observed through the replica's own channel (``depth``
/ ``browse_ids`` are read ops a replica serves); the invariant under
test is always *convergence with what the coordinator acknowledged*,
never byte-identical engines — replicas assign their own rowids.
"""

from __future__ import annotations

import pytest

from repro.errors import ShardWorkerError
from repro.queues.message import Message
from repro.shard import ShardCoordinator, ShardedQueueBroker, ShardMap

pytestmark = pytest.mark.shard

TIMEOUT = 20.0


def two_queues(shards: int = 2) -> tuple[str, str]:
    shard_map = ShardMap(range(shards))
    names: dict[int, str] = {}
    for i in range(10_000):
        name = f"q{i}"
        names.setdefault(shard_map.shard_for(name), name)
        if len(names) == shards:
            return names[0], names[1]
    raise AssertionError("could not cover both shards")


@pytest.fixture()
def fleet():
    with ShardCoordinator(2, replication_factor=1, timeout=TIMEOUT) as c:
        yield c


def replica_depth(coordinator, shard_id: int, queue: str) -> int:
    replica = coordinator.live_replica(shard_id)
    assert replica is not None
    return replica.handle.call("depth", {"queue": queue})


class TestLogShipping:
    def test_publishes_and_acks_converge_on_the_replica(self, fleet):
        broker = ShardedQueueBroker(fleet)
        broker.create_queue("orders")
        shard_id = broker.shard_for("orders")
        ids = broker.publish_batch(
            "orders", [Message(payload={"i": i}) for i in range(6)]
        )
        assert replica_depth(fleet, shard_id, "orders") == 6

        # Ack by primary id — the replica must translate through its
        # id map, not assume rowids line up.
        consumed = broker.consume_batch("orders", 2)
        broker.ack_batch("orders", [m.message_id for m in consumed])
        assert broker.depth("orders") == 4
        assert replica_depth(fleet, shard_id, "orders") == 4
        assert fleet.replicator.lag(shard_id)["lag_ops"] == 0
        assert ids == list(range(1, 7))

    def test_consume_without_ack_is_not_replicated(self, fleet):
        """Lock state is deliberately local: a replica keeps consumed-
        but-unacked messages READY, so promotion redelivers them
        (at-least-once, same as a primary restart)."""
        broker = ShardedQueueBroker(fleet)
        broker.create_queue("orders")
        shard_id = broker.shard_for("orders")
        broker.publish_batch("orders", [Message(payload=i) for i in range(4)])
        broker.consume_batch("orders", 3)  # locked on primary only
        assert broker.depth("orders") == 1
        assert replica_depth(fleet, shard_id, "orders") == 4

    def test_replica_refuses_direct_mutations(self, fleet):
        broker = ShardedQueueBroker(fleet)
        broker.create_queue("orders")
        shard_id = broker.shard_for("orders")
        replica = fleet.live_replica(shard_id)
        with pytest.raises(ShardWorkerError, match="refuses"):
            replica.handle.call(
                "publish_batch",
                {"queue": "orders", "messages": [{"payload": "rogue"}]},
            )
        # Reads are fine.
        assert replica.handle.call("depth", {"queue": "orders"}) == 0

    def test_lag_is_visible_when_shipping_is_deferred(self):
        with ShardCoordinator(
            2, replication_factor=1, auto_ship=False, timeout=TIMEOUT
        ) as fleet:
            broker = ShardedQueueBroker(fleet)
            broker.create_queue("orders")
            shard_id = broker.shard_for("orders")
            broker.publish_batch(
                "orders", [Message(payload=i) for i in range(5)]
            )
            lag = fleet.replicator.lag(shard_id)
            assert lag["lag_ops"] == 2  # create_queue + publish entries
            # Nothing shipped yet: the replica doesn't even have the queue.
            replica = fleet.live_replica(shard_id)
            assert "orders" not in replica.handle.call("ping")["queues"]
            fleet.replicator.ship(shard_id)
            assert fleet.replicator.lag(shard_id)["lag_ops"] == 0
            assert replica_depth(fleet, shard_id, "orders") == 5
            # Shipped entries the slowest replica acked are trimmed.
            assert len(fleet.replicator.log_for(shard_id)) == 0

    def test_two_phase_commit_effects_reach_replicas(self, fleet):
        q0, q1 = two_queues()
        broker = ShardedQueueBroker(fleet)
        broker.create_queue(q0)
        broker.create_queue(q1)
        gtid = broker.publish_atomic(
            [(q0, Message(payload="x")), (q1, Message(payload="y"))]
        )
        assert gtid is not None
        assert replica_depth(fleet, 0, q0) == 1
        assert replica_depth(fleet, 1, q1) == 1

    def test_single_shard_atomic_path_reaches_replicas(self, fleet):
        broker = ShardedQueueBroker(fleet)
        broker.create_queue("orders")
        shard_id = broker.shard_for("orders")
        assert broker.publish_atomic(
            [("orders", Message(payload="a")), ("orders", Message(payload="b"))]
        ) is None
        assert replica_depth(fleet, shard_id, "orders") == 2


class TestReseeding:
    def test_reseed_after_primary_restart(self, tmp_path):
        """A restarted primary may have lost a group-commit-buffered
        tail the replicas already applied; reseeding snaps them back to
        exactly the primary's recovered state."""
        with ShardCoordinator(
            2,
            data_dir=str(tmp_path),
            replication_factor=1,
            group_commit_size=1,
            timeout=TIMEOUT,
        ) as fleet:
            broker = ShardedQueueBroker(fleet)
            broker.create_queue("orders")
            shard_id = broker.shard_for("orders")
            broker.publish_batch(
                "orders", [Message(payload=i) for i in range(8)]
            )
            consumed = broker.consume_batch("orders", 3)
            broker.ack_batch("orders", [m.message_id for m in consumed])
            fleet.restart_worker(shard_id, graceful=False)
            assert broker.depth("orders") == 5
            assert replica_depth(fleet, shard_id, "orders") == 5
            # The shipped stream continues cleanly after the reseed.
            broker.publish("orders", Message(payload="post-restart"))
            assert replica_depth(fleet, shard_id, "orders") == 6
