"""Crash tests for the cross-shard 2PC protocol.

The harness reuses :mod:`repro.faults`: each worker rehydrates a seeded
:class:`FaultInjector` from its config, and the ``shard.prepared`` /
``shard.decide`` failpoints armed with :func:`exit_process` model a
worker dying at the two interesting windows:

* after voting YES (vote durable and on the wire, decision never
  received) — the in-doubt window;
* after receiving a decision but before applying it.

The invariant under every history: a transaction whose COMMITTED
decision was journaled is applied on every shard exactly once after
recovery, and one never journaled as committed is applied nowhere.
"""

from __future__ import annotations

import pytest

from repro.errors import ShardError
from repro.queues.message import Message
from repro.shard import ShardCoordinator, ShardedQueueBroker, ShardMap

pytestmark = pytest.mark.shard

TIMEOUT = 20.0


def two_queues(shards: int = 2) -> tuple[str, str]:
    shard_map = ShardMap(range(shards))
    names: dict[int, str] = {}
    for i in range(10_000):
        name = f"q{i}"
        names.setdefault(shard_map.shard_for(name), name)
        if len(names) == shards:
            return names[0], names[1]
    raise AssertionError("could not cover both shards")


@pytest.fixture()
def durable_fleet(tmp_path):
    with ShardCoordinator(
        2, data_dir=str(tmp_path), timeout=TIMEOUT
    ) as coordinator:
        yield coordinator


class TestVotedYesThenDied:
    def test_decision_journal_resolves_indoubt_to_commit(self, durable_fleet):
        """Worker 1 votes YES then exits before seeing the decision.
        The coordinator journaled COMMITTED, so the transaction IS
        committed; restart must apply it on shard 1 exactly once."""
        coordinator = durable_fleet
        q0, q1 = two_queues()
        broker = ShardedQueueBroker(coordinator)
        broker.create_queue(q0)
        broker.create_queue(q1)

        coordinator.restart_worker(
            1,
            fault={
                "failpoint": "shard.prepared",
                "action": "exit",
                "code": 3,
                "seed": 1,
                "max_fires": 1,
            },
        )
        gtid = broker.publish_atomic(
            [(q0, Message(payload="x")), (q1, Message(payload="y"))]
        )
        # Phase 1 completed (both votes arrived before the crash), so
        # the protocol committed even though shard 1 died immediately
        # after voting.
        assert gtid is not None
        assert coordinator.decisions.decision_for(gtid) == "committed"
        assert not coordinator.worker(1).alive

        summary = coordinator.restart_worker(1)
        assert summary["resolved"] == {gtid: "committed"}
        # Exactly once: depth 1, not 0 (lost) and not 2 (reapplied).
        assert broker.depth(q1) == 1
        assert broker.depth(q0) == 1
        assert coordinator.worker(1).call("list_indoubt") == []
        assert coordinator.worker(1).call("twopc_state", {"gtid": gtid}) == "committed"

    def test_presumed_abort_when_no_decision_was_journaled(self, durable_fleet):
        """A prepared transaction whose coordinator never journaled a
        decision resolves to ABORT on recovery (presumed abort), and
        the abort is journaled so later resolution attempts agree."""
        coordinator = durable_fleet
        q0, q1 = two_queues()
        broker = ShardedQueueBroker(coordinator)
        broker.create_queue(q0)
        broker.create_queue(q1)

        # Inject the in-doubt state directly: prepare on shard 1 as the
        # coordinator would, but "crash" before recording any decision.
        gtid = "deadbeef" * 4
        coordinator.worker(1).call(
            "prepare",
            {"gtid": gtid,
             "ops": [{"queue": q1, "message": {"payload": "ghost"}}]},
        )
        coordinator.restart_worker(1, graceful=False)
        coordinator.restart_worker(1)
        # Whichever restart resolved it, the outcome must be the
        # presumed abort, and it must now be journaled.
        assert coordinator.decisions.decision_for(gtid) == "aborted"
        assert coordinator.worker(1).call("list_indoubt") == []
        assert broker.depth(q1) == 0

    def test_seeded_crash_histories_never_lose_committed_work(self, durable_fleet):
        """Drive several cross-shard transactions against a worker that
        dies on its first prepare; after recovery, every transaction
        the decision journal calls committed is visible exactly once."""
        coordinator = durable_fleet
        q0, q1 = two_queues()
        broker = ShardedQueueBroker(coordinator)
        broker.create_queue(q0)
        broker.create_queue(q1)

        committed: list[str] = []
        for round_no in range(3):
            coordinator.restart_worker(
                1,
                fault={
                    "failpoint": "shard.prepared",
                    "action": "exit",
                    "code": 3,
                    "seed": round_no,
                    "max_fires": 1,
                },
            )
            try:
                gtid = broker.publish_atomic(
                    [(q0, Message(payload=f"a{round_no}")),
                     (q1, Message(payload=f"b{round_no}"))]
                )
            except ShardError:
                continue  # aborted round: must not surface anywhere
            committed.append(gtid)
            coordinator.restart_worker(1)

        coordinator.restart_worker(1)  # idempotent: nothing in doubt
        assert coordinator.worker(1).call("list_indoubt") == []
        for gtid in committed:
            assert coordinator.decisions.decision_for(gtid) == "committed"
        assert broker.depth(q0) == len(committed)
        assert broker.depth(q1) == len(committed)


class TestDecideWindowCrash:
    def test_crash_before_applying_decision_recovers(self, durable_fleet):
        """Worker 1 receives the commit decision but dies before
        applying it.  The participant row is still PREPARED, so restart
        re-resolves from the decision journal — still exactly once."""
        coordinator = durable_fleet
        q0, q1 = two_queues()
        broker = ShardedQueueBroker(coordinator)
        broker.create_queue(q0)
        broker.create_queue(q1)

        coordinator.restart_worker(
            1,
            fault={
                "failpoint": "shard.decide",
                "action": "exit",
                "code": 3,
                "seed": 9,
                "max_fires": 1,
            },
        )
        # Phase 1 succeeds on both shards; the decide round kills
        # worker 1 before it applies.  two_phase_publish tolerates the
        # dead worker (the decision is journaled), so this returns.
        gtid = broker.publish_atomic(
            [(q0, Message(payload="x")), (q1, Message(payload="y"))]
        )
        assert gtid is not None
        assert coordinator.decisions.decision_for(gtid) == "committed"
        assert not coordinator.worker(1).alive
        assert broker.depth(q0) == 1  # shard 0 already applied

        summary = coordinator.restart_worker(1)
        assert summary["resolved"] == {gtid: "committed"}
        assert broker.depth(q1) == 1
        assert coordinator.worker(1).call("list_indoubt") == []


class TestWorkerRecovery:
    def test_queue_state_survives_worker_restart(self, durable_fleet):
        """A restarted worker re-attaches its queue tables from the WAL
        and returns LOCKED messages to READY (their consumer died)."""
        coordinator = durable_fleet
        q0, q1 = two_queues()
        broker = ShardedQueueBroker(coordinator)
        broker.create_queue(q1)
        broker.publish_batch(q1, [Message(payload={"i": i}) for i in range(4)])
        locked = broker.consume_batch(q1, 2)
        assert len(locked) == 2

        summary = coordinator.restart_worker(1)
        assert q1 in summary["queues"]
        assert summary["recovered_locked"] == 2
        # All four messages consumable again — none lost, none duplicated.
        replay = broker.consume_batch(q1, 10)
        assert sorted(m.payload["i"] for m in replay) == [0, 1, 2, 3]
