"""End-to-end tests of the multi-process shard fleet.

Worker counts are bounded (2 shards) and every coordinator channel
carries a hard per-request socket timeout, so a wedged worker fails the
test instead of hanging the suite.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    QueueNotFoundError,
    ShardError,
    ShardUnavailable,
    ShardWorkerDied,
)
from repro.events import Event
from repro.queues.message import Message
from repro.shard import (
    ShardCoordinator,
    ShardedPubSubBroker,
    ShardedQueueBroker,
    ShardMap,
)

pytestmark = pytest.mark.shard

#: Hard per-request deadline for every fleet test in this module.
TIMEOUT = 20.0


def queue_names_per_shard(shards: int = 2, per_shard: int = 1) -> dict[int, list[str]]:
    """Deterministically pick queue names that hash to each shard."""
    shard_map = ShardMap(range(shards))
    found: dict[int, list[str]] = {s: [] for s in range(shards)}
    for i in range(10_000):
        name = f"q{i}"
        owner = shard_map.shard_for(name)
        if len(found[owner]) < per_shard:
            found[owner].append(name)
        if all(len(names) == per_shard for names in found.values()):
            return found
    raise AssertionError("could not cover every shard")


@pytest.fixture()
def fleet():
    with ShardCoordinator(2, timeout=TIMEOUT) as coordinator:
        yield coordinator


class TestRoutedQueueOps:
    def test_publish_consume_ack_roundtrip(self, fleet):
        broker = ShardedQueueBroker(fleet)
        broker.create_queue("orders")
        ids = broker.publish_batch(
            "orders", [Message(payload={"n": i}) for i in range(8)]
        )
        assert ids == list(range(1, 9))
        messages = broker.consume_batch("orders", 8)
        assert [m.payload["n"] for m in messages] == list(range(8))
        assert broker.ack_batch("orders", [m.message_id for m in messages]) == 8
        assert broker.depth("orders") == 0

    def test_priority_and_headers_survive_the_wire(self, fleet):
        broker = ShardedQueueBroker(fleet)
        broker.create_queue("prio")
        broker.publish("prio", Message(payload="low", priority=1))
        broker.publish(
            "prio",
            Message(payload="high", priority=9, headers={"k": "v"},
                    correlation_id="c-1"),
        )
        first = broker.consume("prio")
        assert first.payload == "high"
        assert first.headers["k"] == "v"  # trace stamping may add more
        assert first.correlation_id == "c-1"
        assert first.priority == 9

    def test_requeue_returns_message(self, fleet):
        broker = ShardedQueueBroker(fleet)
        broker.create_queue("retry")
        broker.publish("retry", Message(payload="x"))
        message = broker.consume("retry")
        broker.requeue("retry", message.message_id)
        again = broker.consume("retry")
        assert again.payload == "x"
        assert again.attempts == 2

    def test_worker_errors_come_back_as_local_classes(self, fleet):
        broker = ShardedQueueBroker(fleet)
        with pytest.raises(QueueNotFoundError):
            broker.publish("missing", Message(payload="x"))
        with pytest.raises(QueueNotFoundError):
            broker.depth("missing")

    def test_queues_land_on_distinct_shards(self, fleet):
        """The routing actually spreads: our per-shard picks create
        their tables in different worker processes."""
        names = queue_names_per_shard(2)
        broker = ShardedQueueBroker(fleet)
        for shard_id, (name,) in names.items():
            assert broker.create_queue(name) == shard_id
        for shard_id, (name,) in names.items():
            ping = fleet.worker(shard_id).call("ping")
            assert name in ping["queues"]
            other = fleet.worker(1 - shard_id).call("ping")
            assert name not in other["queues"]

    def test_publish_many_returns_ids_in_input_order(self, fleet):
        names = queue_names_per_shard(2)
        q0, q1 = names[0][0], names[1][0]
        broker = ShardedQueueBroker(fleet)
        broker.create_queue(q0)
        broker.create_queue(q1)
        entries = [
            (q0 if i % 2 == 0 else q1, Message(payload={"i": i}))
            for i in range(10)
        ]
        ids = broker.publish_many(entries)
        assert len(ids) == 10
        # Per queue, ids must ascend in entry order.
        assert ids[0::2] == sorted(ids[0::2])
        assert ids[1::2] == sorted(ids[1::2])
        for queue_name, expect in ((q0, range(0, 10, 2)), (q1, range(1, 10, 2))):
            consumed = broker.consume_batch(queue_name, 10)
            assert [m.payload["i"] for m in consumed] == list(expect)

    def test_stats_and_metrics_merge_across_shards(self, fleet):
        names = queue_names_per_shard(2)
        q0, q1 = names[0][0], names[1][0]
        broker = ShardedQueueBroker(fleet)
        broker.create_queue(q0)
        broker.create_queue(q1)
        broker.publish_batch(q0, [Message(payload=i) for i in range(3)])
        broker.publish_batch(q1, [Message(payload=i) for i in range(5)])
        stats = broker.stats()
        assert stats[q0]["enqueued"] == 3
        assert stats[q1]["enqueued"] == 5
        merged = fleet.metrics()
        assert merged["counters"][f"queue.enqueued{{queue={q0}}}"] == 3
        assert merged["gauges"][f"queue.depth{{queue={q1},shard=1}}"] == 5
        # Fleet-wide depth: both shards' gauges summed.
        assert merged["gauges"][f"queue.depth{{queue={q0}}}"] == 3


class TestCrossShardAtomicity:
    def test_single_shard_group_skips_2pc(self, fleet):
        names = queue_names_per_shard(2, per_shard=2)
        a, b = names[0]
        broker = ShardedQueueBroker(fleet)
        broker.create_queue(a)
        broker.create_queue(b)
        gtid = broker.publish_atomic(
            [(a, Message(payload="x")), (b, Message(payload="y"))]
        )
        assert gtid is None  # degenerate local case, no decision round
        assert broker.depth(a) == 1 and broker.depth(b) == 1

    def test_cross_shard_publish_commits_everywhere(self, fleet):
        names = queue_names_per_shard(2)
        q0, q1 = names[0][0], names[1][0]
        broker = ShardedQueueBroker(fleet)
        broker.create_queue(q0)
        broker.create_queue(q1)
        gtid = broker.publish_atomic(
            [(q0, Message(payload="x")), (q1, Message(payload="y"))]
        )
        assert gtid is not None
        assert fleet.decisions.decision_for(gtid) == "committed"
        assert broker.depth(q0) == 1 and broker.depth(q1) == 1

    def test_missing_queue_aborts_the_whole_transaction(self, fleet):
        names = queue_names_per_shard(2)
        q0, q1 = names[0][0], names[1][0]
        broker = ShardedQueueBroker(fleet)
        broker.create_queue(q0)  # q1 deliberately not created
        with pytest.raises(ShardError):
            broker.publish_atomic(
                [(q0, Message(payload="x")), (q1, Message(payload="y"))]
            )
        # Atomicity: the prepared-but-aborted shard applied nothing.
        assert broker.depth(q0) == 0


class TestShardedPubSub:
    def test_fanout_spools_and_drains(self, fleet):
        pubsub = ShardedPubSubBroker(fleet)
        pubsub.create_topic("sensor.temp")
        pubsub.subscribe("alice", "sensor.*")
        pubsub.subscribe("bob", "sensor.temp")
        events = [
            Event(event_type="reading", timestamp=float(i), payload={"v": i})
            for i in range(6)
        ]
        assert pubsub.publish_events("sensor.temp", events) == 12
        assert pubsub.backlog("alice") == 6
        seen: list[int] = []
        assert pubsub.drain("alice", lambda e: seen.append(e.payload["v"])) == 6
        assert seen == list(range(6))
        assert pubsub.backlog("alice") == 0
        assert pubsub.fetch("bob").payload == {"v": 0}
        assert pubsub.backlog("bob") == 5

    def test_non_matching_topic_spools_nothing(self, fleet):
        pubsub = ShardedPubSubBroker(fleet)
        pubsub.create_topic("other.topic")
        pubsub.subscribe("alice", "sensor.*")
        assert pubsub.publish(
            "other.topic",
            Event(event_type="x", timestamp=1.0, payload={}),
        ) == 0
        assert pubsub.backlog("alice") == 0


class TestWorkerDeath:
    def test_dead_worker_raises_instead_of_hanging(self, fleet):
        broker = ShardedQueueBroker(fleet)
        names = queue_names_per_shard(2)
        q1 = names[1][0]
        broker.create_queue(q1)
        fleet.worker(1).kill()
        # Default policies fail fast with the degraded-mode error (the
        # raw ShardWorkerDied is a coordinator-level detail now).
        with pytest.raises(ShardUnavailable):
            broker.publish(q1, Message(payload="x"))
        # The other shard keeps serving.
        q0 = names[0][0]
        broker.create_queue(q0)
        broker.publish(q0, Message(payload="ok"))
        assert broker.depth(q0) == 1

    def test_broadcast_returns_partial_results_with_missing(self, fleet):
        """Fleet-wide fan-outs degrade to partial answers: a dead shard
        lands in ``missing`` (with its error) instead of poisoning the
        whole broadcast."""
        broker = ShardedQueueBroker(fleet)
        names = queue_names_per_shard(2)
        q0, q1 = names[0][0], names[1][0]
        broker.create_queue(q0)
        broker.create_queue(q1)
        broker.publish(q0, Message(payload="a"))
        fleet.worker(1).kill()

        view = fleet.metrics_by_shard()
        assert view.missing == [1]
        assert 0 in view and 1 not in view
        assert isinstance(view.errors[1], ShardWorkerDied)

        # Queue-level stats survive too: shard 0's queues are there.
        stats = broker.stats()
        assert stats[q0]["enqueued"] == 1
        assert q1 not in stats

        # strict mode still propagates the failure for callers that
        # need all-or-nothing semantics.
        with pytest.raises(ShardWorkerDied):
            fleet.broadcast("stats", strict=True)
