"""Seeded chaos suite: supervised failover under fault injection.

Every test is deterministic — faults are seeded specs rehydrated in the
worker, kills are explicit, and the supervisor's backoff jitter is a
hash, not an RNG.  The ``chaos`` marker arms a hard SIGALRM deadline
(see conftest) so a supervision loop that fails to converge becomes a
test failure, not a hung suite.
"""

from __future__ import annotations

import pytest

from repro.errors import ShardUnavailable
from repro.queues.message import Message
from repro.shard import (
    BREAKER_OPEN,
    ShardCoordinator,
    ShardedQueueBroker,
    ShardSupervisor,
)

pytestmark = [pytest.mark.shard, pytest.mark.chaos]

TIMEOUT = 20.0


class TestClassification:
    def test_dead_process_classified_crashed_and_restarted(self, tmp_path):
        with ShardCoordinator(
            2, data_dir=str(tmp_path), group_commit_size=1, timeout=TIMEOUT
        ) as fleet:
            supervisor = ShardSupervisor(fleet, heartbeat_timeout=2.0)
            broker = ShardedQueueBroker(fleet)
            broker.create_queue("orders")
            shard_id = broker.shard_for("orders")
            broker.publish_batch(
                "orders", [Message(payload=i) for i in range(5)]
            )
            fleet.worker(shard_id).kill()
            events = supervisor.run_until_healthy(deadline=15.0)
            repair = [e for e in events if e["action"] == "restart"]
            assert repair and repair[0]["class"] == "crashed"
            assert repair[0]["ok"] is True
            assert fleet.primary_alive(shard_id)
            assert broker.depth("orders") == 5  # WAL recovery, no loss

    def test_stalled_worker_classified_fenced_and_restarted(self, tmp_path):
        """An armed ``sleep`` on the heartbeat makes the worker wedge:
        the process is alive but the probe times out.  The supervisor
        must classify that as *stalled*, fence (kill) it, and restart —
        never leave a zombie primary that could wake up later."""
        with ShardCoordinator(
            2,
            data_dir=str(tmp_path),
            group_commit_size=1,
            timeout=TIMEOUT,
            worker_faults={
                1: {
                    "failpoint": "shard.heartbeat",
                    "action": "sleep",
                    "seconds": 8.0,
                    "max_fires": 1,
                    "seed": 11,
                }
            },
        ) as fleet:
            supervisor = ShardSupervisor(fleet, heartbeat_timeout=0.5)
            events = supervisor.run_until_healthy(deadline=20.0)
            stalled = [e for e in events if e.get("class") == "stalled"]
            assert stalled and stalled[0]["action"] == "restart"
            assert stalled[0]["ok"] is True
            assert fleet.primary_alive(1)


class TestKillThePrimary:
    def test_kill_mid_load_no_committed_loss(self, tmp_path):
        """The acceptance scenario: primary killed mid-load; the fleet
        recovers within the deadline; exactly-once accounting over the
        acknowledged ids holds across the kill."""
        with ShardCoordinator(
            1,
            data_dir=str(tmp_path),
            replication_factor=1,
            group_commit_size=1,  # every acked publish is flushed
            timeout=TIMEOUT,
        ) as fleet:
            supervisor = ShardSupervisor(fleet, heartbeat_timeout=2.0)
            broker = ShardedQueueBroker(
                fleet, read_policy="replica_ok", write_policy="spool"
            )
            broker.create_queue("load")
            committed: list[int] = []
            for round_no in range(3):
                ids = broker.publish_batch(
                    "load",
                    [Message(payload={"r": round_no, "i": i}) for i in range(20)],
                )
                committed.extend(ids)
            fleet.worker(0).kill()  # mid-load
            # During the outage, writes spool instead of failing.
            spooled = broker.publish_batch(
                "load", [Message(payload={"r": "late", "i": i}) for i in range(4)]
            )
            assert spooled == [-1] * 4
            assert fleet.spool_depth(0) == 1

            events = supervisor.run_until_healthy(deadline=20.0)
            assert any(
                e["action"] in ("restart", "promote") and e.get("ok")
                for e in events
            )
            # Exactly-once over acknowledged ids: every committed
            # payload present once; the spooled batch arrived too.
            drained = []
            while True:
                batch = broker.consume_batch("load", 50)
                if not batch:
                    break
                drained.extend(batch)
                broker.ack_batch("load", [m.message_id for m in batch])
            keyed = [(m.payload["r"], m.payload["i"]) for m in drained]
            assert len(keyed) == len(set(keyed))  # no duplicates
            assert len([k for k in keyed if k[0] != "late"]) == len(committed)
            assert len([k for k in keyed if k[0] == "late"]) == 4

    def test_promotion_preserves_replicated_state_in_memory(self):
        """An in-memory primary's death loses its engine; promotion of
        the caught-up replica preserves every acknowledged op."""
        with ShardCoordinator(
            1, replication_factor=2, timeout=TIMEOUT
        ) as fleet:
            supervisor = ShardSupervisor(fleet, heartbeat_timeout=2.0)
            broker = ShardedQueueBroker(fleet)
            broker.create_queue("orders")
            broker.publish_batch(
                "orders", [Message(payload={"i": i}) for i in range(10)]
            )
            consumed = broker.consume_batch("orders", 4)
            broker.ack_batch(
                "orders", [m.message_id for m in consumed[:3]]
            )  # 3 acked, 1 locked-unacked, 6 untouched
            fleet.worker(0).kill()
            events = supervisor.run_until_healthy(deadline=15.0)
            promote = [e for e in events if e["action"] == "promote"]
            assert promote and promote[0]["ok"] is True
            # Acked messages stay consumed; the locked-unacked one is
            # redelivered (at-least-once, same as a primary restart).
            redelivered = broker.consume_batch("orders", 20)
            values = sorted(m.payload["i"] for m in redelivered)
            acked = sorted(m.payload["i"] for m in consumed[:3])
            assert len(values) == 7
            assert not set(values) & set(acked)
            # The supervisor restored the standby tier afterwards.
            assert any(e["action"] == "respawn_replica" for e in events)
            assert fleet.live_replica(0) is not None

    def test_stale_reads_served_and_tagged_during_outage(self):
        with ShardCoordinator(
            1, replication_factor=1, timeout=TIMEOUT
        ) as fleet:
            ShardSupervisor(fleet, heartbeat_timeout=2.0)
            broker = ShardedQueueBroker(fleet, read_policy="replica_ok")
            broker.create_queue("orders")
            broker.publish_batch(
                "orders", [Message(payload=i) for i in range(7)]
            )
            assert broker.depth_info("orders") == {
                "depth": 7, "stale": False, "lag_ops": 0, "source": "primary",
            }
            fleet.worker(0).kill()
            info = broker.depth_info("orders")
            assert info["stale"] is True
            assert info["depth"] == 7
            assert info["source"].startswith("replica:")
            assert info["lag_ops"] == 0
            peeked = broker.peek("orders", 3)
            assert peeked["stale"] is True
            assert [m.payload for m in peeked["messages"]] == [0, 1, 2]
            # stats fall back to the replica as well, tagged per shard.
            stats = broker.stats_info()
            assert 0 in stats["stale_shards"]
            assert stats["queues"]["orders"]["enqueued"] == 7
            # Writes under the default fail-fast policy carry shard id.
            with pytest.raises(ShardUnavailable) as excinfo:
                broker.publish("orders", Message(payload="x"))
            assert excinfo.value.shard == 0

    def test_reads_fail_under_primary_read_policy(self):
        with ShardCoordinator(
            1, replication_factor=1, timeout=TIMEOUT
        ) as fleet:
            broker = ShardedQueueBroker(fleet)  # read_policy="primary"
            broker.create_queue("orders")
            fleet.worker(0).kill()
            with pytest.raises(ShardUnavailable):
                broker.depth("orders")


class TestCircuitBreaker:
    def test_crash_loop_opens_breaker_and_degrades(self):
        """A worker that dies on every heartbeat (fault preserved
        across restarts) must not be restarted forever: after
        ``max_restarts`` the breaker opens, recovery defers with a
        retry hint, and writes fail fast carrying it."""
        with ShardCoordinator(
            1,
            timeout=TIMEOUT,
            worker_faults={
                0: {
                    "failpoint": "shard.heartbeat",
                    "action": "exit",
                    "code": 3,
                    "seed": 7,
                }
            },
        ) as fleet:
            supervisor = ShardSupervisor(
                fleet,
                heartbeat_timeout=1.0,
                max_restarts=2,
                base_backoff=0.01,
                preserve_faults=True,
            )
            broker = ShardedQueueBroker(fleet)
            for _ in range(8):
                supervisor.tick()
                if supervisor.health[0].breaker == BREAKER_OPEN:
                    break
            health = supervisor.health[0]
            assert health.breaker == BREAKER_OPEN
            assert health.restart_attempts == supervisor.max_restarts
            assert supervisor.health[0].restarts == supervisor.max_restarts
            deferred = [e for e in supervisor.events if e["action"] == "defer"]
            assert deferred and deferred[-1]["breaker"] == BREAKER_OPEN
            assert fleet.retry_hints.get(0) is not None
            with pytest.raises(ShardUnavailable) as excinfo:
                broker.publish("anything", Message(payload="x"))
            assert excinfo.value.retry_after is not None

    def test_backoff_is_deterministic_capped_and_jittered(self):
        with ShardCoordinator(1, timeout=TIMEOUT) as fleet:
            supervisor = ShardSupervisor(
                fleet, base_backoff=0.1, max_backoff=1.0
            )
            first = supervisor.backoff_for(0, 1)
            assert first == supervisor.backoff_for(0, 1)  # deterministic
            assert supervisor.backoff_for(0, 2) > first    # exponential
            assert supervisor.backoff_for(1, 1) != first   # per-shard jitter
            for attempt in range(1, 12):
                delay = supervisor.backoff_for(0, attempt)
                raw = min(0.1 * 2 ** (attempt - 1), 1.0)
                # Jitter is downward-only and bounded at 25%; the cap
                # is a hard upper bound regardless of attempt count.
                assert 0.75 * raw <= delay <= raw <= 1.0


class TestPromotionCrash:
    def test_replica_dying_during_promotion_falls_through(self):
        """The ``shard.promote`` failpoint kills the chosen replica
        mid-promotion; the coordinator must fall through to the next
        replica instead of flipping routing to a corpse."""
        with ShardCoordinator(
            1,
            replication_factor=2,
            timeout=5.0,
            replica_faults={
                (0, 0): {
                    "failpoint": "shard.promote",
                    "action": "exit",
                    "code": 3,
                    "seed": 3,
                    "max_fires": 1,
                }
            },
        ) as fleet:
            broker = ShardedQueueBroker(fleet)
            broker.create_queue("orders")
            broker.publish_batch(
                "orders", [Message(payload=i) for i in range(5)]
            )
            fleet.worker(0).kill()
            # Replica 0 (the first candidate — ties break by index) is
            # armed to die inside op_promote; replica 1 is clean.
            summary = fleet.promote_replica(0)
            assert summary["role"] == "primary"
            assert fleet.primary_alive(0)
            assert broker.depth("orders") == 5
