"""Shard-routing invariants: stability, determinism, balance.

These are pure in-process tests of the consistent-hash layer — no
worker processes — so they are cheap enough to pin tight statistical
invariants (the growth test checks ~1/N movement, not just "some keys
moved").
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.errors import ShardError
from repro.shard.hashring import ShardMap, ShardRouter, stable_hash

pytestmark = pytest.mark.shard

KEYS = [f"queue_{i}" for i in range(2000)]


class TestStableHash:
    def test_deterministic_within_process(self):
        assert stable_hash("orders") == stable_hash("orders")
        assert stable_hash("orders") != stable_hash("orders2")

    def test_deterministic_across_processes(self):
        """The routing hash must not be Python's per-process-salted
        ``hash()`` — a fresh interpreter must agree on every key."""
        script = (
            "from repro.shard.hashring import ShardMap, stable_hash\n"
            "m = ShardMap(range(4))\n"
            "print(stable_hash('orders'))\n"
            "print(','.join(str(m.shard_for(f'queue_{i}')) for i in range(64)))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
            check=True,
        )
        remote_hash, remote_route = result.stdout.strip().splitlines()
        assert int(remote_hash) == stable_hash("orders")
        local = ShardMap(range(4))
        assert remote_route == ",".join(
            str(local.shard_for(f"queue_{i}")) for i in range(64)
        )


class TestShardMap:
    def test_every_key_routes_to_a_member(self):
        shard_map = ShardMap([0, 1, 2])
        for key in KEYS:
            assert shard_map.shard_for(key) in (0, 1, 2)

    def test_balance_is_roughly_uniform(self):
        shard_map = ShardMap(range(4))
        counts = {s: len(ks) for s, ks in shard_map.assign(KEYS).items()}
        expected = len(KEYS) / 4
        for shard, count in counts.items():
            # 64 vnodes keep per-shard load within ~2x of fair share.
            assert expected / 2 < count < expected * 2, counts

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_growth_moves_about_one_over_n_keys(self, n):
        """Adding shard N to an N-shard ring relocates ~1/(N+1) of the
        keys — the consistent-hashing contract.  A modulo router would
        relocate ~N/(N+1); the 2/(N+1) ceiling rules that out."""
        before = ShardMap(range(n))
        after = before.with_shard(n)
        moved = sum(
            1 for key in KEYS if before.shard_for(key) != after.shard_for(key)
        )
        fraction = moved / len(KEYS)
        ideal = 1 / (n + 1)
        assert fraction < 2 * ideal, (
            f"growth {n}->{n + 1} moved {fraction:.1%} of keys "
            f"(ideal {ideal:.1%})"
        )
        assert fraction > ideal / 3, "suspiciously few keys moved"

    def test_growth_only_moves_keys_onto_the_new_shard(self):
        """Keys never shuffle between surviving shards — every moved
        key lands on the newcomer."""
        before = ShardMap(range(3))
        after = before.with_shard(3)
        for key in KEYS:
            if before.shard_for(key) != after.shard_for(key):
                assert after.shard_for(key) == 3, key

    def test_removal_inverts_growth(self):
        grown = ShardMap(range(3)).with_shard(3)
        assert grown.without_shard(3) == ShardMap(range(3))

    def test_roundtrip_through_dict(self):
        shard_map = ShardMap([1, 5, 9], vnodes=16)
        clone = ShardMap.from_dict(shard_map.to_dict())
        assert clone == shard_map
        for key in KEYS[:200]:
            assert clone.shard_for(key) == shard_map.shard_for(key)

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ShardError):
            ShardMap([])
        assert ShardMap([1, 1, 2]).shard_ids == (1, 2)
        with pytest.raises(ShardError):
            ShardMap([0, 1]).with_shard(1)
        with pytest.raises(ShardError):
            ShardMap([0, 1]).without_shard(7)


class TestShardRouter:
    def test_names_are_case_normalized(self):
        router = ShardRouter(ShardMap(range(4)))
        assert router.shard_for("Orders") == router.shard_for("orders")

    def test_group_by_shard_preserves_entry_order(self):
        router = ShardRouter(ShardMap(range(4)))
        entries = [(f"q{i}", i) for i in range(100)]
        grouped = router.group_by_shard(entries)
        assert sum(len(batch) for batch in grouped.values()) == 100
        for shard_id, batch in grouped.items():
            items = [item for _, item in batch]
            assert items == sorted(items), "per-shard order lost"
            for name, _ in batch:
                assert router.shard_for(name) == shard_id

    def test_rebalance_swaps_the_map(self):
        router = ShardRouter(ShardMap(range(2)))
        router.rebalance(ShardMap(range(3)))
        assert len(router.map) == 3
