"""Window operators: pane assignment, watermarks, lateness, keys."""

import pytest

from repro.cq import (
    CountWindow,
    SessionWindow,
    SlidingWindow,
    Stream,
    TumblingWindow,
)
from repro.errors import WindowError
from repro.events import Event


def feed(window_source, times_and_payloads):
    for timestamp, payload in times_and_payloads:
        window_source.push(Event("tick", float(timestamp), payload))


def pane_summary(events):
    return [
        (e["start"], e["end"], len(e["pane"].events), e["key"]) for e in events
    ]


class TestTumbling:
    def test_alignment_and_contents(self):
        source = Stream("s")
        window = TumblingWindow(source, 10.0)
        panes = []
        window.subscribe(panes.append)
        feed(source, [(1, {}), (5, {}), (12, {}), (25, {})])
        window.flush()
        assert pane_summary(panes) == [
            (0.0, 10.0, 2, None), (10.0, 20.0, 1, None), (20.0, 30.0, 1, None),
        ]

    def test_pane_closes_on_watermark(self):
        source = Stream("s")
        window = TumblingWindow(source, 10.0)
        panes = []
        window.subscribe(panes.append)
        feed(source, [(1, {})])
        assert panes == []  # still open
        feed(source, [(10, {})])  # watermark passes 10
        assert len(panes) == 1

    def test_keyed_panes(self):
        source = Stream("s")
        window = TumblingWindow(source, 10.0, key_field="sym")
        panes = []
        window.subscribe(panes.append)
        feed(source, [(1, {"sym": "A"}), (2, {"sym": "B"}), (3, {"sym": "A"})])
        window.flush()
        by_key = {p["key"]: len(p["pane"].events) for p in panes}
        assert by_key == {"A": 2, "B": 1}

    def test_late_event_dropped_and_counted(self):
        source = Stream("s")
        window = TumblingWindow(source, 10.0)
        panes = []
        window.subscribe(panes.append)
        feed(source, [(5, {}), (20, {})])   # closes [0,10)
        feed(source, [(3, {})])             # too late
        assert window.late_dropped == 1

    def test_allowed_lateness_accepts(self):
        source = Stream("s")
        window = TumblingWindow(source, 10.0, allowed_lateness=30.0)
        panes = []
        window.subscribe(panes.append)
        feed(source, [(5, {}), (20, {}), (3, {})])
        window.flush()
        first_pane = [p for p in panes if p["start"] == 0.0][0]
        assert len(first_pane["pane"].events) == 2

    def test_invalid_size(self):
        with pytest.raises(WindowError):
            TumblingWindow(Stream("s"), 0)


class TestSliding:
    def test_event_lands_in_overlapping_panes(self):
        source = Stream("s")
        window = SlidingWindow(source, size=10.0, slide=5.0)
        panes = []
        window.subscribe(panes.append)
        feed(source, [(7, {}), (30, {})])
        window.flush()
        containing = [p for p in panes if p["pane"].events and p["start"] <= 7 < p["end"]]
        assert {p["start"] for p in containing} == {0.0, 5.0}

    def test_counts_match_size_over_slide(self):
        source = Stream("s")
        window = SlidingWindow(source, size=6.0, slide=2.0)
        panes = []
        window.subscribe(panes.append)
        feed(source, [(10, {"v": 1}), (50, {})])
        window.flush()
        hits = [p for p in panes if any(e.get("v") == 1 for e in p["pane"].events)]
        assert len(hits) == 3  # size/slide = 3 panes per event

    def test_slide_greater_than_size_rejected(self):
        with pytest.raises(WindowError):
            SlidingWindow(Stream("s"), size=5.0, slide=10.0)


class TestCountWindow:
    def test_every_n_events(self):
        source = Stream("s")
        window = CountWindow(source, 3)
        panes = []
        window.subscribe(panes.append)
        feed(source, [(i, {}) for i in range(7)])
        assert [len(p["pane"].events) for p in panes] == [3, 3]
        window.flush()
        assert [len(p["pane"].events) for p in panes] == [3, 3, 1]

    def test_keyed_counts(self):
        source = Stream("s")
        window = CountWindow(source, 2, key_field="k")
        panes = []
        window.subscribe(panes.append)
        feed(source, [(1, {"k": "a"}), (2, {"k": "b"}), (3, {"k": "a"})])
        assert len(panes) == 1
        assert panes[0]["key"] == "a"


class TestSessionWindow:
    def test_gap_closes_session(self):
        source = Stream("s")
        window = SessionWindow(source, gap=5.0)
        panes = []
        window.subscribe(panes.append)
        feed(source, [(1, {}), (3, {}), (20, {})])  # 3→20 exceeds the gap
        assert len(panes) == 1
        assert len(panes[0]["pane"].events) == 2
        window.flush()
        assert len(panes) == 2

    def test_activity_extends_session(self):
        source = Stream("s")
        window = SessionWindow(source, gap=5.0)
        panes = []
        window.subscribe(panes.append)
        feed(source, [(0, {}), (4, {}), (8, {}), (12, {})])
        assert panes == []  # one continuously extended session
        window.flush()
        assert len(panes[0]["pane"].events) == 4

    def test_keyed_sessions_independent(self):
        source = Stream("s")
        window = SessionWindow(source, gap=5.0, key_field="k")
        panes = []
        window.subscribe(panes.append)
        feed(source, [(0, {"k": "a"}), (1, {"k": "b"}), (20, {"k": "a"})])
        # a's first session closed by the 20s event; b's idle session too.
        closed_keys = {p["key"] for p in panes}
        assert closed_keys == {"a", "b"}
