"""Seeded disorder-equivalence suite (@pytest.mark.disorder).

The CEDR correctness claim, as a property: deliver a stream shuffled
within a lateness bound into a window with ``allowed_lateness`` at
least that bound, and the *final* results — after applying retractions
— are identical to in-order delivery.  Checked across tumbling /
sliding / session windows × unkeyed / keyed × blocking / speculative
output, and through a MaterializedView fed by the aggregate stream,
with the speculative accounting balanced: emissions − retractions =
blocking-mode emissions.
"""

import random

import pytest

from repro.cq.aggregate import Count, Max, Sum, WindowAggregate
from repro.cq.ivm import MaterializedView
from repro.cq.stream import Stream
from repro.cq.window import (
    OUTPUT_BLOCKING,
    OUTPUT_SPECULATIVE,
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
)
from repro.events import KIND_DATA, KIND_RETRACTION, Event
from repro.workloads.generators import disorder_by_delay

pytestmark = pytest.mark.disorder

MAX_DELAY = 7.0
SEEDS = (11, 23, 47)


def make_events(rng, *, keys, count=120, session_gaps=False):
    """A seeded stream: mostly dense arrivals, with silent gaps when
    exercising session windows so sessions actually close."""
    events = []
    t = 0.0
    for i in range(count):
        if session_gaps and i % 17 == 0 and i:
            t += 25.0  # silence > gap: closes sessions
        else:
            t += rng.uniform(0.1, 2.0)
        payload = {"v": rng.randrange(100)}
        if keys:
            payload["k"] = rng.choice(keys)
        events.append(Event("e", round(t, 3), payload))
    return events


WINDOWS = {
    "tumbling": lambda s, key, mode: TumblingWindow(
        s, 10.0, key_field=key, allowed_lateness=MAX_DELAY, output_mode=mode
    ),
    "sliding": lambda s, key, mode: SlidingWindow(
        s, 10.0, 5.0, key_field=key, allowed_lateness=MAX_DELAY,
        output_mode=mode,
    ),
    "session": lambda s, key, mode: SessionWindow(
        s, gap=8.0, key_field=key, allowed_lateness=MAX_DELAY,
        output_mode=mode,
    ),
}


def run_pipeline(events, window_name, *, key, mode):
    """Push events, flush, and return (net_results, emits, retracts).

    Net results fold the retraction contract: a data emission upserts
    its (start, end, key) identity, a retraction deletes it.  For
    sessions, revisions can move a pane's bounds, so identity is keyed
    by the payload's own window bounds — exactly what a downstream
    consumer sees.
    """
    s = Stream("s")
    w = WINDOWS[window_name](s, key, mode)
    agg = WindowAggregate(
        w, "out", {"total": ("v", Sum), "n": (None, Count), "high": ("v", Max)}
    )
    out = []
    agg.subscribe(out.append)
    for event in events:
        s.push(event)
    w.flush()
    net = {}
    emits = retracts = 0
    for e in out:
        ident = (e["window_start"], e["window_end"], e["key"])
        if e.kind == KIND_RETRACTION:
            retracts += 1
            del net[ident]
        else:
            emits += 1
            net[ident] = dict(e.payload)
    return net, emits, retracts


@pytest.mark.parametrize("window_name", sorted(WINDOWS))
@pytest.mark.parametrize("key", [None, "k"], ids=["unkeyed", "keyed"])
@pytest.mark.parametrize(
    "mode", [OUTPUT_BLOCKING, OUTPUT_SPECULATIVE]
)
@pytest.mark.parametrize("seed", SEEDS)
def test_disordered_final_results_match_in_order(
    window_name, key, mode, seed
):
    rng = random.Random(seed)
    events = make_events(
        rng,
        keys=["a", "b", "c"] if key else None,
        session_gaps=(window_name == "session"),
    )
    shuffled = disorder_by_delay(
        random.Random(seed + 1), events, max_delay=MAX_DELAY
    )
    assert [e.event_id for e in shuffled] != [e.event_id for e in events]

    in_order, in_emits, in_retracts = run_pipeline(
        events, window_name, key=key, mode=mode
    )
    disordered, dis_emits, dis_retracts = run_pipeline(
        shuffled, window_name, key=key, mode=mode
    )
    assert disordered == in_order
    if mode == OUTPUT_BLOCKING:
        # Blocking never revises: nothing to retract, even disordered.
        assert in_retracts == 0 and dis_retracts == 0


@pytest.mark.parametrize("window_name", sorted(WINDOWS))
@pytest.mark.parametrize("seed", SEEDS)
def test_speculative_accounting_balances(window_name, seed):
    """emissions − retractions = blocking-mode emissions, per run."""
    rng = random.Random(seed)
    events = make_events(
        rng, keys=["a", "b"], session_gaps=(window_name == "session")
    )
    shuffled = disorder_by_delay(
        random.Random(seed + 1), events, max_delay=MAX_DELAY
    )
    _net, blocking_emits, _r = run_pipeline(
        shuffled, window_name, key="k", mode=OUTPUT_BLOCKING
    )
    net, emits, retracts = run_pipeline(
        shuffled, window_name, key="k", mode=OUTPUT_SPECULATIVE
    )
    assert emits - retracts == blocking_emits
    assert len(net) == blocking_emits


@pytest.mark.parametrize("mode", [OUTPUT_BLOCKING, OUTPUT_SPECULATIVE])
@pytest.mark.parametrize("seed", SEEDS)
def test_materialized_view_converges_under_disorder(mode, seed):
    """A view over the aggregate stream lands on identical groups
    whether fed in order or shuffled, in either output mode."""

    def run(events):
        s = Stream("s")
        w = TumblingWindow(
            s, 10.0, key_field="k", allowed_lateness=MAX_DELAY,
            output_mode=mode,
        )
        agg = WindowAggregate(w, "out", {"total": ("v", Sum)})
        view = MaterializedView(
            "v",
            {"grand": ("total", Sum), "panes": (None, Count)},
            key_field="key",
        )
        view.bind_stream(agg, batch_size=3)
        for event in events:
            s.push(event)
        w.flush()
        view.flush()
        return view.snapshot().groups

    rng = random.Random(seed)
    events = make_events(rng, keys=["a", "b", "c"])
    shuffled = disorder_by_delay(
        random.Random(seed + 1), events, max_delay=MAX_DELAY
    )
    assert run(shuffled) == run(events)


@pytest.mark.parametrize("seed", SEEDS)
def test_multi_region_feed_within_declared_bound(seed):
    """The clock-skewed multi-region feed's observed disorder respects
    its own disorder_bound(), so that bound as allowed_lateness loses
    nothing."""
    from repro.workloads.sensors import MultiRegionFeed

    feed = MultiRegionFeed(regions=3, seed=seed)
    stream = feed.generate(120.0)
    seen = float("-inf")
    max_lateness = 0.0
    for event in stream.events:
        seen = max(seen, event.timestamp)
        max_lateness = max(max_lateness, seen - event.timestamp)
    assert 0.0 < max_lateness <= feed.disorder_bound()

    s = Stream("s")
    w = TumblingWindow(
        s, 30.0, key_field="region",
        allowed_lateness=feed.disorder_bound(),
    )
    w.subscribe(lambda event: None)
    for event in stream.events:
        s.push(event)
    assert w.late_dropped == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_late_sensor_workload_drops_beyond_bound(seed):
    """The late-sensor generator exercises the drop path when the
    lateness budget is smaller than the transit delay."""
    from repro.workloads.sensors import LateSensorGenerator

    generator = LateSensorGenerator(
        rows=3, cols=3, max_delay=30.0, disorder_rate=0.5, seed=seed
    )
    stream = generator.generate(300.0)

    def run(lateness):
        s = Stream("s")
        w = TumblingWindow(s, 15.0, allowed_lateness=lateness)
        w.subscribe(lambda event: None)
        for event in stream.events:
            s.push(event)
        return w.late_dropped

    assert run(30.0) == 0  # budget >= bound: lossless
    assert run(0.0) > 0  # no budget: the tail is dropped, and counted
