"""Out-of-order stream processing: watermarks, retractions, late-event
bug regressions (PR 10).

The four satellite regressions each encode a pre-PR bug:

* flush() not advancing the watermark → duplicate pane re-emission
* SessionWindow missing the allowed_lateness guard → double emit
* StreamJoin pruning both buffers against one shared watermark
* late_dropped invisible to the metrics registry
"""

import pytest

from repro.cq.aggregate import Count, Sum, WindowAggregate
from repro.cq.ivm import MaterializedView
from repro.cq.stream import Stream
from repro.cq.window import (
    OUTPUT_SPECULATIVE,
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
)
from repro.errors import WindowError
from repro.events import (
    KIND_DATA,
    KIND_PUNCTUATION,
    KIND_RETRACTION,
    Event,
    punctuation,
)
from repro.obs.metrics import MetricsRegistry


def collect(stream):
    out = []
    stream.subscribe(out.append)
    return out


def panes_of(events):
    return [e for e in events if e.kind == KIND_DATA]


class TestPunctuation:
    def test_punctuation_closes_window_without_data(self):
        s = Stream("s")
        w = TumblingWindow(s, 10.0)
        out = collect(w)
        s.push(Event("e", 3.0, {"v": 1}))
        assert panes_of(out) == []  # nothing has passed the window end
        s.punctuate(10.0)
        panes = panes_of(out)
        assert len(panes) == 1 and panes[0]["start"] == 0.0

    def test_punctuation_forwards_through_operators(self):
        s = Stream("s")
        w = TumblingWindow(s, 10.0)
        out = collect(w)
        s.punctuate(25.0)
        marks = [e for e in out if e.kind == KIND_PUNCTUATION]
        assert len(marks) == 1
        assert marks[0]["watermark"] == 25.0
        assert marks[0]["horizon"] == 25.0  # lateness 0: horizon = mark
        assert w.watermark == 25.0

    def test_stale_punctuation_ignored(self):
        s = Stream("s")
        w = TumblingWindow(s, 10.0)
        s.punctuate(50.0)
        s.punctuate(20.0)  # watermarks never regress
        assert w.watermark == 50.0

    def test_punctuation_constructor(self):
        mark = punctuation(42.0, source="cap")
        assert mark.is_punctuation and not mark.is_data
        assert mark["watermark"] == 42.0 and mark.source == "cap"


class TestFlushTerminal:
    """Regression: flush() used to emit open panes but leave the
    watermark untouched, so a post-flush event re-opened and re-emitted
    an already-emitted pane as a duplicate."""

    def test_tumbling_no_duplicate_after_flush(self):
        s = Stream("s")
        w = TumblingWindow(s, 10.0)
        out = collect(w)
        s.push(Event("e", 3.0, {"v": 1}))
        w.flush()
        assert len(panes_of(out)) == 1
        s.push(Event("e", 4.0, {"v": 2}))  # post-flush straggler
        w.flush()
        assert len(panes_of(out)) == 1  # pre-PR: 2 (duplicate pane)
        assert w.late_dropped == 1

    def test_sliding_no_duplicate_after_flush(self):
        s = Stream("s")
        w = SlidingWindow(s, 10.0, 5.0)
        out = collect(w)
        s.push(Event("e", 3.0, {"v": 1}))
        w.flush()
        emitted = len(panes_of(out))
        s.push(Event("e", 3.5, {"v": 2}))
        w.flush()
        assert len(panes_of(out)) == emitted
        assert w.late_dropped == 1

    def test_flush_idempotent(self):
        s = Stream("s")
        w = TumblingWindow(s, 10.0)
        out = collect(w)
        s.push(Event("e", 3.0, {}))
        w.flush()
        w.flush()
        assert len(panes_of(out)) == 1


class TestSessionLateness:
    """Regression: SessionWindow.process had no allowed_lateness guard
    — a very late event re-opened an already-emitted session and the
    gap rule emitted it a second time."""

    def test_very_late_event_cannot_reopen_session(self):
        s = Stream("s")
        w = SessionWindow(s, gap=5.0)  # lateness 0, like pre-PR default
        out = collect(w)
        s.push(Event("e", 1.0, {}))
        s.push(Event("e", 2.0, {}))
        s.push(Event("e", 100.0, {}))  # closes [1,2] via gap rule
        assert len(panes_of(out)) == 1
        s.push(Event("e", 3.0, {}))  # very late: inside emitted session
        s.push(Event("e", 200.0, {}))
        # Pre-PR: the 3.0 event re-opened [1,2] and it emitted twice.
        assert len(panes_of(out)) == 2  # [1,2] once + [100,100] once
        assert w.late_dropped == 1

    def test_lateness_guard_unified_across_window_types(self):
        for factory in (
            lambda s: TumblingWindow(s, 10.0, allowed_lateness=2.0),
            lambda s: SlidingWindow(s, 10.0, 5.0, allowed_lateness=2.0),
            lambda s: SessionWindow(s, gap=3.0, allowed_lateness=2.0),
        ):
            s = Stream("s")
            w = factory(s)
            s.push(Event("e", 50.0, {}))
            s.push(Event("e", 49.0, {}))  # behind watermark, within bound
            assert w.late_dropped == 0, type(w).__name__
            s.push(Event("e", 40.0, {}))  # beyond the bound
            assert w.late_dropped == 1, type(w).__name__

    def test_session_within_lateness_extends_not_duplicates(self):
        s = Stream("s")
        w = SessionWindow(s, gap=5.0, allowed_lateness=100.0)
        out = collect(w)
        s.push(Event("e", 1.0, {}))
        s.push(Event("e", 30.0, {}))
        s.push(Event("e", 2.0, {}))  # late, merges into the [1,1] session
        w.flush()
        panes = panes_of(out)
        assert len(panes) == 2
        first = panes[0]["pane"]
        assert (first.start, first.end) == (1.0, 2.0)
        assert len(first.events) == 2

    def test_negative_lateness_rejected(self):
        with pytest.raises(WindowError):
            TumblingWindow(Stream("s"), 10.0, allowed_lateness=-1.0)


class TestJoinPruneHorizon:
    """Regression: StreamJoin pruned both buffers against one shared
    watermark, so a fast side evicted its own still-joinable state."""

    def make(self, window=5.0):
        left, right = Stream("l"), Stream("r")
        from repro.cq.operators import StreamJoin

        join = StreamJoin(
            left, right, key_field="k", window=window, output_type="j"
        )
        out = []
        join.subscribe(out.append)
        return left, right, join, out

    def test_slow_side_still_joins_fast_side_buffer(self):
        left, right, _join, out = self.make(window=5.0)
        left.push(Event("l", 100.0, {"k": 7, "a": "x"}))
        for i in range(50):
            left.push(Event("l", 101.0 + i, {"k": 1000 + i}))
        right.push(Event("r", 98.0, {"k": 7, "b": "y"}))
        joined = [e for e in out if e.kind == KIND_DATA]
        assert len(joined) == 1  # pre-PR: left@100 was pruned, 0 joins
        assert joined[0]["left_a"] == "x"

    def test_per_side_watermarks(self):
        left, right, join, _out = self.make()
        left.push(Event("l", 100.0, {"k": 1}))
        right.push(Event("r", 2.0, {"k": 2}))
        assert join.watermark == 2.0  # min of sides, not max

    def test_punctuation_advances_one_side_and_forwards_min(self):
        left, right, join, out = self.make(window=5.0)
        left.punctuate(100.0)
        assert [e for e in out if e.kind == KIND_PUNCTUATION] == []
        right.punctuate(50.0)
        marks = [e for e in out if e.kind == KIND_PUNCTUATION]
        assert len(marks) == 1 and marks[0]["watermark"] == 50.0

    def test_null_key_counted(self):
        left, right, join, out = self.make()
        left.push(Event("l", 1.0, {"k": None}))
        right.push(Event("r", 1.0, {"other": 1}))
        assert join.null_key_dropped == 2
        registry = MetricsRegistry()
        join.bind_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["cq.null_key_dropped{stream=join(l,r)}"] == 2

    def test_retraction_into_join_counted_not_crashed(self):
        left, right, join, out = self.make()
        left.push(Event("l", 1.0, {"k": 1}).to_retraction())
        assert join.retractions_dropped == 1
        assert out == []


class TestLatenessMetrics:
    """Regression: late_dropped was a bare attribute invisible to the
    metrics registry."""

    def test_window_metrics_exported(self):
        registry = MetricsRegistry()
        s = Stream("s")
        w = TumblingWindow(
            s, 10.0, allowed_lateness=1.0, name="w"
        ).bind_metrics(registry)
        s.push(Event("e", 50.0, {}))
        s.push(Event("e", 10.0, {}))  # 40 s late -> dropped
        snapshot = registry.snapshot()
        assert snapshot["counters"]["cq.late_dropped{stream=w}"] == 1
        hist = snapshot["histograms"]["cq.lateness{stream=w}"]
        assert hist["count"] == 1 and hist["mean"] == pytest.approx(40.0)

    def test_late_bind_reexports_counts(self):
        s = Stream("s")
        w = TumblingWindow(s, 10.0, name="w")
        s.push(Event("e", 50.0, {}))
        s.push(Event("e", 10.0, {}))
        assert w.late_dropped == 1
        registry = MetricsRegistry()
        w.bind_metrics(registry)
        assert (
            registry.snapshot()["counters"]["cq.late_dropped{stream=w}"] == 1
        )

    def test_retraction_counter_exported(self):
        registry = MetricsRegistry()
        s = Stream("s")
        w = TumblingWindow(
            s,
            10.0,
            allowed_lateness=5.0,
            output_mode=OUTPUT_SPECULATIVE,
            name="w",
        ).bind_metrics(registry)
        s.push(Event("e", 1.0, {}))
        s.push(Event("e", 12.0, {}))  # speculative emit of [0,10)
        s.push(Event("e", 8.0, {}))  # revision -> retract + re-emit
        assert w.retractions_emitted == 1
        snapshot = registry.snapshot()
        assert (
            snapshot["counters"]["cq.retractions_emitted{stream=w}"] == 1
        )

    def test_stats_workload_reports_late_drops(self):
        from repro.obs.report import run_stats_workload

        report = run_stats_workload(events=30)
        counters = report["local"]["counters"]
        late = {
            key: value
            for key, value in counters.items()
            if key.startswith("cq.late_dropped") and value
        }
        assert late, f"no cq.late_dropped in stats counters: {counters}"


class TestSpeculativeOutput:
    def test_retraction_repeats_retracted_payload(self):
        s = Stream("s")
        w = TumblingWindow(
            s, 10.0, allowed_lateness=5.0, output_mode=OUTPUT_SPECULATIVE
        )
        agg = WindowAggregate(w, "sum", {"total": ("v", Sum)})
        out = collect(agg)
        s.push(Event("e", 1.0, {"v": 1}))
        s.push(Event("e", 12.0, {"v": 2}))
        s.push(Event("e", 8.0, {"v": 10}))
        kinds = [e.kind for e in out]
        assert kinds == [KIND_DATA, KIND_RETRACTION, KIND_DATA]
        assert out[1].payload == out[0].payload  # exact compensation
        assert out[2]["total"] == 11.0

    def test_net_results_match_blocking(self):
        events = [
            Event("e", t, {"v": v})
            for t, v in [(1.0, 1), (12.0, 2), (8.0, 10), (25.0, 3), (40.0, 4)]
        ]

        def run(mode):
            s = Stream("s")
            w = TumblingWindow(
                s, 10.0, allowed_lateness=5.0, output_mode=mode
            )
            agg = WindowAggregate(w, "sum", {"total": ("v", Sum)})
            out = collect(agg)
            for event in events:
                s.push(event)
            w.flush()
            return out

        blocking = [e.payload for e in run("blocking")]
        net = {}
        for e in run(OUTPUT_SPECULATIVE):
            key = (e["window_start"], e["window_end"], e["key"])
            if e.kind == KIND_RETRACTION:
                net.pop(key)
            else:
                net[key] = e.payload
        assert sorted(
            net.values(), key=lambda p: p["window_start"]
        ) == sorted(blocking, key=lambda p: p["window_start"])

    def test_speculative_state_released_past_horizon(self):
        s = Stream("s")
        w = TumblingWindow(
            s, 10.0, allowed_lateness=5.0, output_mode=OUTPUT_SPECULATIVE
        )
        agg = WindowAggregate(w, "sum", {"n": (None, Count)})
        s.push(Event("e", 1.0, {}))
        s.push(Event("e", 12.0, {}))
        assert len(w._emitted) == 1
        s.push(Event("e", 30.0, {}))  # horizon 25 > pane end 10
        assert len(w._emitted) == 0
        # The aggregate's delta state follows via the retire hook: only
        # the still-open pane [30,40) keeps state.
        assert len(agg._state) == 1

    def test_invalid_output_mode_rejected(self):
        with pytest.raises(WindowError):
            TumblingWindow(Stream("s"), 10.0, output_mode="eager")


class TestViewRetractions:
    def make_view(self, **kwargs):
        return MaterializedView(
            "v",
            {"total": ("amount", Sum), "n": (None, Count)},
            key_field="region",
            **kwargs,
        )

    def test_retraction_event_folds_as_remove(self):
        view = self.make_view()
        e1 = Event("t", 1.0, {"region": "w", "amount": 10.0})
        e2 = Event("t", 2.0, {"region": "w", "amount": 5.0})
        view.apply_batch([e1, e2])
        assert view.group("w") == {"total": 15.0, "n": 2}
        view.apply_batch([e1.to_retraction()])
        assert view.group("w") == {"total": 5.0, "n": 1}
        assert view.snapshot().retractions_applied == 1

    def test_group_dies_when_fully_retracted(self):
        view = self.make_view()
        e1 = Event("t", 1.0, {"region": "w", "amount": 10.0})
        view.apply_batch([e1])
        view.apply_batch([e1.to_retraction()])
        assert view.group("w") is None
        assert len(view) == 0

    def test_punctuation_flushes_stream_buffer(self):
        view = self.make_view()
        s = Stream("s")
        view.bind_stream(s, batch_size=1000)
        s.push(Event("t", 1.0, {"region": "w", "amount": 10.0}))
        assert view.group("w") is None  # buffered, not folded
        s.punctuate(5.0)
        assert view.group("w") == {"total": 10.0, "n": 1}

    def test_changes_stream_emits_retraction_then_new_result(self):
        view = self.make_view()
        changes = collect(view.changes())
        view.apply_batch([Event("t", 1.0, {"region": "w", "amount": 10.0})])
        view.apply_batch([Event("t", 2.0, {"region": "w", "amount": 5.0})])
        kinds = [e.kind for e in changes]
        assert kinds == [KIND_DATA, KIND_RETRACTION, KIND_DATA]
        assert changes[1]["total"] == 10.0  # retracts the old result
        assert changes[2]["total"] == 15.0
        assert changes[2]["key"] == "w"

    def test_windowed_speculative_feed_converges_to_blocking(self):
        events = [
            Event("e", t, {"v": v})
            for t, v in [(1.0, 1), (12.0, 2), (8.0, 10), (25.0, 3), (40.0, 4)]
        ]

        def run(mode):
            s = Stream("s")
            w = TumblingWindow(
                s, 10.0, allowed_lateness=5.0, output_mode=mode
            )
            agg = WindowAggregate(w, "sum", {"total": ("v", Sum)})
            view = MaterializedView(
                "windows",
                {"grand_total": ("total", Sum), "panes": (None, Count)},
            )
            view.bind_stream(agg, batch_size=1)
            for event in events:
                s.push(event)
            w.flush()
            view.flush()
            return view.group(None)

        assert run("blocking") == run(OUTPUT_SPECULATIVE)


class TestKindTransport:
    def test_pubsub_roundtrip_preserves_kind(self, db):
        from repro.pubsub.broker import PubSubBroker

        pubsub = PubSubBroker(db)
        pubsub.create_topic("t")
        received = []
        pubsub.subscribe("sub", "t", durable=True)
        pubsub.publish("t", punctuation(42.0, source="cap"))
        pubsub.publish(
            "t", Event("r", 1.0, {"x": 1}, kind=KIND_RETRACTION)
        )
        pubsub.attach_listener("sub", received.append)
        assert [e.kind for e in received] == [
            KIND_PUNCTUATION,
            KIND_RETRACTION,
        ]
        assert received[0]["watermark"] == 42.0

    def test_queue_message_kind_header(self):
        from repro.queues.message import (
            KIND_HEADER,
            Message,
            punctuation_message,
        )

        plain = Message(payload={"x": 1})
        assert plain.kind == KIND_DATA
        mark = punctuation_message(10.0, source="cap")
        assert mark.kind == KIND_PUNCTUATION
        assert mark.payload["watermark"] == 10.0
        assert mark.headers[KIND_HEADER] == KIND_PUNCTUATION

    def test_kind_header_survives_queue_roundtrip(self, db):
        from repro.queues.broker import QueueBroker
        from repro.queues.message import Message, punctuation_message

        broker = QueueBroker(db)
        broker.create_queue("q")
        broker.publish("q", punctuation_message(10.0))
        broker.publish("q", Message(payload={"x": 1}))
        first = broker.consume("q")
        assert first.kind == KIND_PUNCTUATION  # max priority: jumps queue
        second = broker.consume("q")
        assert second.kind == KIND_DATA

    def test_capture_source_punctuate(self):
        from repro.capture.base import CaptureSource

        source = CaptureSource("cap")
        seen = []
        source.subscribe(seen.append)
        source.punctuate(99.0)
        assert len(seen) == 1
        assert seen[0].is_punctuation and seen[0]["watermark"] == 99.0
        assert seen[0].trace_id is not None  # traced like any capture

    def test_derive_preserves_kind(self):
        retraction = Event("t", 1.0, {"x": 1}, kind=KIND_RETRACTION)
        derived = retraction.derive("t2", {"y": 2})
        assert derived.kind == KIND_RETRACTION

    def test_filter_applies_same_predicate_to_retractions(self):
        from repro.cq.operators import FilterOperator

        s = Stream("s")
        f = FilterOperator(s, "amount > 10")
        out = collect(f)
        keep = Event("t", 1.0, {"amount": 20})
        drop = Event("t", 1.0, {"amount": 5})
        s.push(keep.to_retraction())
        s.push(drop.to_retraction())
        assert len(out) == 1 and out[0].kind == KIND_RETRACTION

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Event("t", 1.0, {}, kind="rumor")
