"""CEP pattern matcher: sequences, Kleene, negation, WITHIN, selection."""

import pytest

from repro.cq import Kleene, PatternElement, PatternMatcher, Seq, Stream
from repro.errors import PatternError
from repro.events import Event


def run(pattern, events, *, selection="skip_till_next", prune=True,
        output_type="match"):
    source = Stream("s")
    matcher = PatternMatcher(
        source, pattern, output_type=output_type,
        selection=selection, prune_expired=prune,
    )
    matches = []
    matcher.subscribe(matches.append)
    for timestamp, payload in events:
        source.push(Event("tick", float(timestamp), payload))
    return matcher, matches


def ab_pattern(**kwargs):
    return Seq(
        PatternElement("a", "tick", "kind = 'A'"),
        PatternElement("b", "tick", "kind = 'B'"),
        **kwargs,
    )


class TestSequences:
    def test_simple_seq(self):
        _m, matches = run(ab_pattern(), [
            (1, {"kind": "A"}), (2, {"kind": "X"}), (3, {"kind": "B"}),
        ])
        assert len(matches) == 1
        assert matches[0]["a_timestamp"] == 1.0
        assert matches[0]["b_timestamp"] == 3.0

    def test_no_match_wrong_order(self):
        _m, matches = run(ab_pattern(), [(1, {"kind": "B"}), (2, {"kind": "A"})])
        assert matches == []

    def test_bindings_cross_reference(self):
        pattern = Seq(
            PatternElement("first", "tick", "price > 0"),
            PatternElement("second", "tick", "price > first_price * 2"),
        )
        _m, matches = run(pattern, [
            (1, {"price": 10}), (2, {"price": 15}), (3, {"price": 25}),
        ])
        assert len(matches) >= 1
        assert matches[0]["first_price"] == 10
        assert matches[0]["second_price"] == 25

    def test_composite_provenance(self):
        _m, matches = run(ab_pattern(), [(1, {"kind": "A"}), (2, {"kind": "B"})])
        assert len(matches[0].causes) == 2

    def test_single_element_pattern(self):
        pattern = Seq(PatternElement("only", "tick", "v > 5"))
        _m, matches = run(pattern, [(1, {"v": 1}), (2, {"v": 9})])
        assert len(matches) == 1

    def test_event_type_filter_in_element(self):
        pattern = Seq(
            PatternElement("o", "orders.*"),
            PatternElement("f", "fills.*"),
        )
        source = Stream("s")
        matcher = PatternMatcher(source, pattern, output_type="of")
        matches = []
        matcher.subscribe(matches.append)
        source.push(Event("orders.insert", 1.0, {}))
        source.push(Event("noise", 2.0, {}))
        source.push(Event("fills.insert", 3.0, {}))
        assert len(matches) == 1


class TestSelectionStrategies:
    EVENTS = [
        (1, {"kind": "A", "n": 1}),
        (2, {"kind": "B", "n": 2}),
        (3, {"kind": "B", "n": 3}),
    ]

    def test_skip_till_next_takes_first(self):
        _m, matches = run(ab_pattern(), self.EVENTS)
        assert [m["b_n"] for m in matches] == [2]

    def test_skip_till_any_explores_all(self):
        _m, matches = run(ab_pattern(), self.EVENTS, selection="skip_till_any")
        assert sorted(m["b_n"] for m in matches) == [2, 3]

    def test_strict_requires_contiguity(self):
        events = [
            (1, {"kind": "A"}), (2, {"kind": "X"}), (3, {"kind": "B"}),
            (4, {"kind": "A"}), (5, {"kind": "B"}),
        ]
        _m, matches = run(ab_pattern(), events, selection="strict")
        assert len(matches) == 1
        assert matches[0]["a_timestamp"] == 4.0

    def test_unknown_selection_rejected(self):
        with pytest.raises(PatternError):
            run(ab_pattern(), [], selection="bogus")


class TestKleene:
    def rising_pattern(self):
        return Seq(
            PatternElement("start", "tick", "price > 0"),
            Kleene("up", "tick", "up_price IS NULL OR price > up_price"),
            PatternElement("down", "tick", "price < up_price"),
        )

    def test_one_or_more(self):
        _m, matches = run(self.rising_pattern(), [
            (1, {"price": 10}), (2, {"price": 12}), (3, {"price": 15}),
            (4, {"price": 14}),
        ])
        best = max(matches, key=lambda m: m["up_count"])
        assert best["up_count"] == 2
        assert best["down_price"] == 14

    def test_zero_repetitions_do_not_match(self):
        _m, matches = run(self.rising_pattern(), [
            (1, {"price": 10}), (2, {"price": 5}),
        ])
        # 10 then 5: the Kleene never matched (needs one-or-more) — but
        # 10 itself can start and 5... up needs price > up_price with
        # up unbound -> matches via IS NULL guard. So check carefully:
        # start=10, up=5? guard: up_price IS NULL -> True, so up=5 binds.
        # down then needs price < 5 which never arrives: no full match.
        assert matches == []

    def test_kleene_final_emits_progressively(self):
        pattern = Seq(
            PatternElement("a", "tick", "kind = 'A'"),
            Kleene("more", "tick", "kind = 'B'"),
        )
        _m, matches = run(pattern, [
            (1, {"kind": "A"}), (2, {"kind": "B"}), (3, {"kind": "B"}),
        ])
        assert [m["more_count"] for m in matches] == [1, 2]


class TestNegation:
    def test_negation_blocks(self):
        pattern = Seq(
            PatternElement("a", "tick", "kind = 'A'"),
            PatternElement("nb", "tick", "kind = 'B'", negated=True),
            PatternElement("c", "tick", "kind = 'C'"),
        )
        _m, matches = run(pattern, [
            (1, {"kind": "A"}), (2, {"kind": "B"}), (3, {"kind": "C"}),
            (4, {"kind": "A"}), (5, {"kind": "C"}),
        ])
        assert len(matches) == 1
        assert matches[0]["a_timestamp"] == 4.0

    def test_negation_condition_uses_bindings(self):
        pattern = Seq(
            PatternElement("a", "tick", "v > 0"),
            PatternElement("blocker", "tick", "v = a_v", negated=True),
            PatternElement("c", "tick", "v > a_v * 10"),
        )
        events = [
            (1, {"v": 5}), (2, {"v": 5}), (3, {"v": 100}),
            (4, {"v": 7}), (5, {"v": 100}),
        ]
        _m, matches = run(pattern, events)
        # The run rooted at t=1 is blocked by the repeat at t=2; the run
        # rooted at t=2 itself sees no blocker before t=3 and matches,
        # as does the clean run rooted at t=4.
        assert [(m["a_timestamp"], m["a_v"]) for m in matches] == [
            (2.0, 5), (4.0, 7),
        ]

    def test_edge_negations_rejected(self):
        with pytest.raises(PatternError):
            Seq(PatternElement("a", "t", None, negated=True),
                PatternElement("b", "t"))
        with pytest.raises(PatternError):
            Seq(PatternElement("a", "t"),
                PatternElement("b", "t", None, negated=True))


class TestWithinAndPruning:
    def test_within_bounds_match_window(self):
        _m, matches = run(ab_pattern(within=5.0), [
            (1, {"kind": "A"}), (10, {"kind": "B"}),   # too far apart
            (20, {"kind": "A"}), (22, {"kind": "B"}),  # inside window
        ])
        assert len(matches) == 1
        assert matches[0]["a_timestamp"] == 20.0

    def test_pruning_bounds_run_state(self):
        events = [(float(i), {"kind": "A"}) for i in range(500)]
        events.append((1000.0, {"kind": "B"}))
        pruned, _ = run(ab_pattern(within=10.0), events, prune=True)
        unpruned, _ = run(ab_pattern(within=10.0), events, prune=False)
        assert pruned.active_runs < 20
        assert unpruned.stats["peak_runs"] >= 400
        assert pruned.stats["runs_pruned"] > 0

    def test_pruned_and_unpruned_agree_on_matches(self):
        events = []
        for i in range(50):
            events.append((float(2 * i), {"kind": "A"}))
            if i % 7 == 0:
                events.append((float(2 * i + 1), {"kind": "B"}))
        _p, matches_pruned = run(ab_pattern(within=10.0), events, prune=True)
        _u, matches_unpruned = run(ab_pattern(within=10.0), events, prune=False)
        key = lambda m: (m["a_timestamp"], m["b_timestamp"])
        assert sorted(map(key, matches_pruned)) == sorted(map(key, matches_unpruned))


class TestValidation:
    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            Seq()

    def test_duplicate_names_rejected(self):
        with pytest.raises(PatternError):
            Seq(PatternElement("x", "t"), PatternElement("x", "t"))

    def test_max_runs_caps_state(self):
        source = Stream("s")
        matcher = PatternMatcher(
            source, ab_pattern(), output_type="m", max_runs=10,
        )
        for i in range(100):
            source.push(Event("tick", float(i), {"kind": "A"}))
        assert matcher.active_runs <= 10
