"""ContinuousQuery builder, CQEngine, and continuous analytics."""

import random

import pytest

from repro.cq import (
    AnomalyDetector,
    Avg,
    ContinuousQuery,
    Count,
    CQEngine,
    QueryValueScorer,
    Seq,
    PatternElement,
    StreamStatistics,
    Sum,
)
from repro.errors import StreamError
from repro.events import Event


class TestContinuousQuery:
    def test_filter_window_aggregate_pipeline(self):
        out = []
        cq = (
            ContinuousQuery("q")
            .filter("symbol = 'IBM'")
            .window_tumbling(60.0)
            .aggregate("q.out", {"n": (None, Count), "vol": ("qty", Sum)})
            .sink(out.append)
        )
        for i in range(120):
            cq.push(Event("tick", float(i), {
                "symbol": "IBM" if i % 2 == 0 else "HPQ", "qty": 1,
            }))
        cq.flush()
        assert [e["n"] for e in out] == [30, 30]

    def test_pattern_stage(self):
        out = []
        cq = (
            ContinuousQuery("p")
            .pattern(
                Seq(PatternElement("a", "tick", "v > 10"),
                    PatternElement("b", "tick", "v < 5")),
                output_type="spike_drop",
            )
            .sink(out.append)
        )
        for i, v in enumerate([20, 7, 3]):
            cq.push(Event("tick", float(i), {"v": v}))
        assert len(out) == 1

    def test_lookup_stage(self, meters_db):
        out = []
        cq = (
            ContinuousQuery("l")
            .lookup(meters_db, "meters", event_key="meter_id",
                    table_key="meter_id", prefix="ref_")
            .filter("ref_zone = 'west'")
            .sink(out.append)
        )
        cq.push(Event("r", 1.0, {"meter_id": "m0"}))
        cq.push(Event("r", 1.0, {"meter_id": "m4"}))  # east
        assert len(out) == 1

    def test_collect(self):
        cq = ContinuousQuery("c").filter("TRUE").collect()
        cq.push(Event("t", 1.0, {}))
        assert len(cq.outputs) == 1

    def test_counters(self):
        cq = ContinuousQuery("c").filter("v > 5")
        cq.push(Event("t", 1.0, {"v": 1}))
        cq.push(Event("t", 2.0, {"v": 10}))
        assert cq.events_in == 2
        assert cq.events_out == 1


class TestCQEngine:
    def test_fanout_to_all_queries(self):
        engine = CQEngine()
        a_out, b_out = [], []
        engine.register(ContinuousQuery("a").filter("v > 5").sink(a_out.append))
        engine.register(ContinuousQuery("b").filter("v < 5").sink(b_out.append))
        engine.push(Event("t", 1.0, {"v": 10}))
        engine.push(Event("t", 2.0, {"v": 1}))
        assert len(a_out) == 1 and len(b_out) == 1

    def test_duplicate_name_rejected(self):
        engine = CQEngine()
        engine.register(ContinuousQuery("q"))
        with pytest.raises(StreamError):
            engine.register(ContinuousQuery("q"))

    def test_deregister(self):
        engine = CQEngine()
        engine.register(ContinuousQuery("q"))
        engine.deregister("q")
        assert engine.names() == []
        with pytest.raises(StreamError):
            engine.deregister("q")

    def test_statistics(self):
        engine = CQEngine()
        engine.register(ContinuousQuery("q").filter("TRUE"))
        engine.push(Event("t", 1.0, {}))
        assert engine.statistics()["q"] == {"events_in": 1, "events_out": 1}


class TestStreamStatistics:
    def test_welford_matches_numpy(self):
        import numpy

        rng = random.Random(1)
        values = [rng.gauss(5, 2) for _ in range(500)]
        stats = StreamStatistics()
        for value in values:
            stats.add(value)
        assert stats.mean == pytest.approx(numpy.mean(values))
        assert stats.stddev == pytest.approx(numpy.std(values, ddof=1))
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    def test_ewma_tracks_shift(self):
        stats = StreamStatistics(ewma_alpha=0.5)
        for _ in range(20):
            stats.add(0.0)
        for _ in range(20):
            stats.add(10.0)
        assert stats.ewma > 9.9
        assert stats.mean == pytest.approx(5.0)

    def test_alpha_validated(self):
        with pytest.raises(StreamError):
            StreamStatistics(ewma_alpha=0.0)


class TestAnomalyDetector:
    def test_detects_outlier_after_warmup(self):
        rng = random.Random(2)
        detector = AnomalyDetector(threshold=4.0, warmup=20)
        for _ in range(100):
            detector.observe(rng.gauss(10, 1))
        assert detector.anomalies <= 2  # near-zero false alarms
        assert detector.observe(100.0) > 4.0

    def test_warmup_suppresses_scores(self):
        detector = AnomalyDetector(warmup=10)
        assert detector.observe(1e9) == 0.0

    def test_constant_stream_never_anomalous(self):
        detector = AnomalyDetector(warmup=5)
        for _ in range(50):
            assert detector.observe(7.0) == 0.0


class TestQueryValueScorer:
    def test_perfect_query_outranks_noisy_and_blind(self):
        truth = [100.0, 500.0, 900.0]
        scorer = QueryValueScorer(truth, tolerance=50.0)
        # Perfect: one prompt alert per episode.
        for episode in truth:
            scorer.record_alert("perfect", episode + 1.0)
        # Noisy: fires constantly.
        for t in range(0, 1000, 10):
            scorer.record_alert("noisy", float(t))
        # Blind: never fires (needs one bogus alert to be a candidate).
        scorer.record_alert("blind", 9999.0)
        ranked = scorer.scores()
        assert ranked[0].name == "perfect"
        assert ranked[0].precision == 1.0
        assert ranked[0].recall == 1.0
        assert ranked[-1].name == "blind"
        assert ranked[-1].value == 0.0

    def test_late_alerts_discounted(self):
        truth = [100.0]
        prompt = QueryValueScorer(truth, tolerance=100.0)
        prompt.record_alert("q", 105.0)
        tardy = QueryValueScorer(truth, tolerance=100.0)
        tardy.record_alert("q", 195.0)
        assert prompt.scores()[0].value > tardy.scores()[0].value

    def test_top_k(self):
        scorer = QueryValueScorer([10.0], tolerance=5.0)
        scorer.record_alert("good", 11.0)
        scorer.record_alert("bad", 999.0)
        top = scorer.top(1)
        assert [s.name for s in top] == ["good"]

    def test_attach_to_query(self):
        scorer = QueryValueScorer([5.0], tolerance=10.0)
        cq = ContinuousQuery("watcher").filter("v > 100")
        scorer.attach(cq)
        cq.push(Event("t", 6.0, {"v": 500}))
        assert scorer.scores()[0].recall == 1.0
