"""Randomized delta-vs-recompute equivalence for the IVM layer.

The whole point of delta processing is that nobody should be able to
tell it apart from full recomputation.  These tests drive every
incremental aggregate, the delta WindowAggregate, MaterializedView, and
the incremental QueryValueScorer with seeded random workloads — inserts,
window evictions (including evicting the current Min/Max extremum),
out-of-order arrivals, varying batch sizes — and assert the delta state
is indistinguishable from a fresh fold over the surviving values.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.cq import (
    Avg,
    Count,
    CountWindow,
    MaterializedView,
    Max,
    Min,
    Percentile,
    SlidingWindow,
    Stddev,
    Stream,
    Sum,
    TumblingWindow,
    WindowAggregate,
)
from repro.cq.analytics import QueryValueScorer, StreamStatistics
from repro.errors import StreamError
from repro.events import Event

pytestmark = pytest.mark.ivm

AGG_FACTORIES = {
    "count": Count,
    "sum": Sum,
    "avg": Avg,
    "min": Min,
    "max": Max,
    "stddev": Stddev,
    "p50": lambda: Percentile(0.5),
    "p95": lambda: Percentile(0.95),
}


def _refold(factory, values):
    fn = factory()
    for value in values:
        fn.add(value)
    return fn.result()


def _assert_same(delta_result, refold_result, context):
    if isinstance(delta_result, float) and isinstance(refold_result, float):
        assert math.isclose(
            delta_result, refold_result, rel_tol=1e-9, abs_tol=1e-9
        ), context
    else:
        assert delta_result == refold_result, context


@pytest.mark.parametrize("agg_name", sorted(AGG_FACTORIES))
@pytest.mark.parametrize("seed", [11, 29, 47])
def test_aggregate_add_remove_matches_refold(agg_name, seed):
    """Random add/remove interleavings: delta state == fresh fold of the
    surviving multiset after EVERY operation."""
    factory = AGG_FACTORIES[agg_name]
    rng = random.Random(seed)
    fn = factory()
    live: list[float] = []
    for step in range(400):
        if live and rng.random() < 0.45:
            value = live.pop(rng.randrange(len(live)))
            fn.remove(value)
        else:
            value = round(rng.uniform(-50, 50), 3)
            live.append(value)
            fn.add(value)
        _assert_same(
            fn.result(),
            _refold(factory, live),
            f"{agg_name} diverged at step {step} (seed {seed})",
        )
    # Drain to empty: the delta state must return to its zero value.
    while live:
        fn.remove(live.pop())
    _assert_same(fn.result(), _refold(factory, []), f"{agg_name} not empty")


@pytest.mark.parametrize("agg_class", [Min, Max])
def test_extremum_eviction_of_current_top(agg_class):
    """Retracting the current extremum — the case naive single-value
    tracking cannot handle — must expose the runner-up, repeatedly."""
    fn = agg_class()
    values = [5.0, 1.0, 9.0, 3.0, 7.0]
    for value in values:
        fn.add(value)
    survivors = list(values)
    while survivors:
        top = fn.result()
        assert top == (min if agg_class is Min else max)(survivors)
        fn.remove(top)
        survivors.remove(top)
    assert fn.result() is None


@pytest.mark.parametrize("agg_class", [Min, Max])
def test_extremum_remove_never_added_value_pending(agg_class):
    """Retracting a value not at the heap top is deferred; the result
    stays correct even with duplicate values in flight."""
    fn = agg_class()
    for value in [4.0, 4.0, 2.0, 8.0]:
        fn.add(value)
    fn.remove(4.0)  # not (necessarily) the top for Max; pending for Min
    assert fn.result() == (2.0 if agg_class is Min else 8.0)
    fn.remove(2.0 if agg_class is Min else 8.0)
    assert fn.result() == 4.0


def test_aggregate_retract_from_empty_raises():
    for name, factory in AGG_FACTORIES.items():
        with pytest.raises(StreamError):
            factory().remove(1.0)


def _window_events(rng, n, *, disorder=0.0, keys=("a", "b")):
    events = []
    timestamp = 0.0
    for index in range(n):
        timestamp += rng.uniform(0.05, 0.4)
        jitter = -rng.uniform(0.0, disorder) if rng.random() < 0.3 else 0.0
        events.append(
            Event(
                "reading",
                timestamp=max(0.0, timestamp + jitter),
                payload={
                    "key": rng.choice(keys),
                    "value": round(rng.uniform(0, 100), 3),
                    # Occasional NULL field exercises None-skipping.
                    "maybe": None if rng.random() < 0.2 else rng.random(),
                },
            )
        )
    return events


SPEC = {
    "n": (None, Count),
    "total": ("value", Sum),
    "mean": ("value", Avg),
    "lo": ("value", Min),
    "hi": ("value", Max),
    "sd": ("value", Stddev),
    "p90": ("value", lambda: Percentile(0.9)),
    "maybe_n": ("maybe", Count),
}


def _run_window_pair(make_window, events):
    """Drive identical event sequences through a delta-mode and a
    recompute-mode WindowAggregate; return both output lists."""
    outputs = {}
    for mode_recompute in (False, True):
        source = Stream("src")
        window = make_window(source)
        agg = WindowAggregate(
            window, "summary", SPEC, recompute=mode_recompute
        )
        collected = []
        agg.subscribe(lambda event, out=collected: out.append(event))
        for event in events:
            source.push(event)
        window.flush()
        outputs[mode_recompute] = collected
    return outputs[False], outputs[True]


def _assert_outputs_equal(delta_events, recompute_events):
    assert len(delta_events) == len(recompute_events)
    for delta_event, recompute_event in zip(delta_events, recompute_events):
        assert delta_event.payload.keys() == recompute_event.payload.keys()
        for field in delta_event.payload:
            _assert_same(
                delta_event.payload[field],
                recompute_event.payload[field],
                f"field {field!r} at window "
                f"[{delta_event.payload['window_start']}, "
                f"{delta_event.payload['window_end']})",
            )


@pytest.mark.parametrize("seed", [3, 17, 101])
def test_tumbling_delta_equals_recompute(seed):
    rng = random.Random(seed)
    events = _window_events(rng, 300)
    delta, recompute = _run_window_pair(
        lambda s: TumblingWindow(s, 2.0, key_field="key"), events
    )
    assert delta, "window produced no panes"
    _assert_outputs_equal(delta, recompute)


@pytest.mark.parametrize("seed", [5, 23])
def test_sliding_delta_equals_recompute_with_disorder(seed):
    """Sliding panes + bounded out-of-order arrivals: every event lands
    in several panes and late events still fold into the right ones."""
    rng = random.Random(seed)
    events = _window_events(rng, 250, disorder=0.5)
    delta, recompute = _run_window_pair(
        lambda s: SlidingWindow(s, 3.0, 1.0, allowed_lateness=1.0), events
    )
    assert delta, "window produced no panes"
    _assert_outputs_equal(delta, recompute)


@pytest.mark.parametrize("count", [1, 7, 64])
def test_count_window_delta_equals_recompute(count):
    rng = random.Random(count)
    events = _window_events(rng, 200)
    delta, recompute = _run_window_pair(
        lambda s: CountWindow(s, count, key_field="key"), events
    )
    assert delta, "window produced no panes"
    _assert_outputs_equal(delta, recompute)


@pytest.mark.parametrize("batch_size", [1, 16, 97, 256])
@pytest.mark.parametrize("seed", [7, 43])
def test_materialized_view_stream_equivalence(batch_size, seed):
    """Same stream, different fold batch sizes, recompute baseline:
    final view contents must be identical in every configuration."""
    rng = random.Random(seed)
    events = _window_events(rng, 350, keys=("a", "b", "c"))
    spec = {
        "n": (None, Count),
        "total": ("value", Sum),
        "lo": ("value", Min),
        "hi": ("value", Max),
        "sd": ("value", Stddev),
    }
    snapshots = {}
    for recompute in (False, True):
        source = Stream("src")
        view = MaterializedView(
            "by_key", spec, key_field="key", recompute=recompute
        ).bind_stream(source, batch_size=batch_size)
        for event in events:
            source.push(event)
        view.flush()
        snapshots[recompute] = view.snapshot()
    delta_snap, recompute_snap = snapshots[False], snapshots[True]
    assert delta_snap.groups.keys() == recompute_snap.groups.keys()
    for key in delta_snap.groups:
        for field in spec:
            _assert_same(
                delta_snap.groups[key][field],
                recompute_snap.groups[key][field],
                f"group {key!r} field {field!r} (batch {batch_size})",
            )
    # Batching really batched: N events arrived in ceil(n/batch) folds.
    expected_batches = -(-len(events) // batch_size)
    assert delta_snap.batches_folded == expected_batches
    assert delta_snap.deltas_applied == len(events)
    assert delta_snap.refolds == 0


def test_materialized_view_table_equivalence():
    """Table-bound view under inserts/updates/deletes == SELECT-style
    refold of the table's live rows."""
    from repro.db import Database

    rng = random.Random(97)
    db = Database()
    db.execute("CREATE TABLE load (id INTEGER, host TEXT, v REAL)")
    spec = {"n": (None, Count), "total": ("v", Sum), "hi": ("v", Max)}
    view = MaterializedView("by_host", spec, key_field="host")
    view.bind_table(db, "load")
    live: dict[int, tuple[str, float]] = {}
    next_id = 0
    for _ in range(300):
        action = rng.random()
        if action < 0.55 or not live:
            next_id += 1
            host = rng.choice(["h0", "h1", "h2"])
            value = round(rng.uniform(0, 10), 3)
            db.execute(
                f"INSERT INTO load VALUES ({next_id}, '{host}', {value})"
            )
            live[next_id] = (host, value)
        elif action < 0.8:
            row_id = rng.choice(list(live))
            value = round(rng.uniform(0, 10), 3)
            db.execute(f"UPDATE load SET v = {value} WHERE id = {row_id}")
            live[row_id] = (live[row_id][0], value)
        else:
            row_id = rng.choice(list(live))
            db.execute(f"DELETE FROM load WHERE id = {row_id}")
            del live[row_id]
    snap = view.snapshot()
    expected: dict[str, list[float]] = {}
    for host, value in live.values():
        expected.setdefault(host, []).append(value)
    assert snap.groups.keys() == expected.keys()
    for host, values in expected.items():
        _assert_same(snap.groups[host]["n"], len(values), host)
        _assert_same(snap.groups[host]["total"], sum(values), host)
        _assert_same(snap.groups[host]["hi"], max(values), host)
    assert snap.last_lsn is not None and snap.last_lsn > 0


@pytest.mark.parametrize("seed", [13, 59])
def test_scorer_incremental_equals_recompute(seed):
    rng = random.Random(seed)
    truth = sorted(rng.uniform(0, 1000) for _ in range(12))
    incremental = QueryValueScorer(truth, tolerance=30.0)
    recompute = QueryValueScorer(truth, tolerance=30.0, recompute=True)
    for _ in range(400):
        name = f"q{rng.randrange(5)}"
        timestamp = rng.uniform(-20, 1050)
        incremental.record_alert(name, timestamp)
        recompute.record_alert(name, timestamp)
    incremental.register("silent")
    recompute.register("silent")
    left, right = incremental.scores(), recompute.scores()
    assert [score.name for score in left] == [score.name for score in right]
    for a, b in zip(left, right):
        assert a.alerts == b.alerts and a.hits == b.hits
        _assert_same(a.precision, b.precision, a.name)
        _assert_same(a.recall, b.recall, a.name)
        _assert_same(a.value, b.value, a.name)
        if a.mean_detection_delay is None:
            assert b.mean_detection_delay is None
        else:
            _assert_same(a.mean_detection_delay, b.mean_detection_delay, a.name)


@pytest.mark.parametrize("seed", [31, 71])
def test_stream_statistics_merge_equals_sequential(seed):
    """Chan-merged per-batch partials == one sequential Welford pass."""
    rng = random.Random(seed)
    values = [rng.gauss(10, 4) for _ in range(500)]
    sequential = StreamStatistics()
    for value in values:
        sequential.add(value)
    merged = StreamStatistics()
    index = 0
    while index < len(values):
        size = rng.randrange(1, 60)
        partial = StreamStatistics()
        for value in values[index : index + size]:
            partial.add(value)
        merged.merge(partial)
        index += size
    assert merged.count == sequential.count
    _assert_same(merged.mean, sequential.mean, "mean")
    _assert_same(merged.stddev, sequential.stddev, "stddev")
    _assert_same(merged.minimum, sequential.minimum, "minimum")
    _assert_same(merged.maximum, sequential.maximum, "maximum")


def test_bind_table_rejects_truncated_journal():
    """Binding from an LSN the journal no longer retains must raise a
    clear error instead of silently building a view missing history."""
    from repro.db import Database

    db = Database()
    db.execute("CREATE TABLE load (id INTEGER, host TEXT, v REAL)")
    for i in range(5):
        db.execute(f"INSERT INTO load VALUES ({i}, 'h0', {float(i)})")
    db.checkpoint(truncate=True)
    db.execute("INSERT INTO load VALUES (99, 'h1', 1.0)")

    view = MaterializedView(
        "late", {"n": (None, Count)}, key_field="host"
    )
    with pytest.raises(StreamError, match="no longer reaches back"):
        view.bind_table(db, "load")  # start_lsn=0: history is gone
    # The failed bind left the view unbound — a corrected bind works.
    cutoff = db.wal.first_lsn - 1
    view.bind_table(
        db,
        "load",
        start_lsn=cutoff,
        snapshot=[
            {"host": row["host"], "v": row["v"]}
            for _rowid, row in db.catalog.table("load").scan()
            if row["host"] == "h0"
        ],
    )
    snap = view.snapshot()
    assert snap.groups["h0"]["n"] == 5
    assert snap.groups["h1"]["n"] == 1


def test_bind_table_snapshot_seed_matches_full_replay():
    """snapshot + start_lsn backfill == replay-from-zero backfill, and
    both views then track later commits identically."""
    from repro.db import Database

    rng = random.Random(41)
    db = Database()
    db.execute("CREATE TABLE load (id INTEGER, host TEXT, v REAL)")
    for i in range(40):
        host = rng.choice(["h0", "h1", "h2"])
        db.execute(f"INSERT INTO load VALUES ({i}, '{host}', {round(rng.uniform(0, 10), 3)})")

    spec = {"n": (None, Count), "total": ("v", Sum)}
    full = MaterializedView("full", spec, key_field="host")
    full.bind_table(db, "load")  # replays the whole journal

    seed_lsn = db.wal.last_lsn
    seeded = MaterializedView("seeded", spec, key_field="host")
    seeded.bind_table(
        db,
        "load",
        start_lsn=seed_lsn,
        snapshot=[row for _rowid, row in db.catalog.table("load").scan()],
    )
    for i in range(40, 60):
        host = rng.choice(["h0", "h1", "h2"])
        db.execute(f"INSERT INTO load VALUES ({i}, '{host}', {round(rng.uniform(0, 10), 3)})")

    left, right = full.snapshot(), seeded.snapshot()
    assert left.groups.keys() == right.groups.keys()
    for host in left.groups:
        for field in spec:
            _assert_same(
                left.groups[host][field], right.groups[host][field], host
            )


def test_bind_table_rejects_negative_start_lsn():
    from repro.db import Database

    db = Database()
    db.execute("CREATE TABLE t (id INTEGER)")
    view = MaterializedView("neg", {"n": (None, Count)})
    with pytest.raises(StreamError, match="start_lsn"):
        view.bind_table(db, "t", start_lsn=-1)
