"""Aggregates over panes; filter/map/join operators."""

import pytest

from repro.cq import (
    Avg,
    Count,
    First,
    FilterOperator,
    Last,
    MapOperator,
    Max,
    Min,
    Percentile,
    Stddev,
    Stream,
    StreamJoin,
    StreamTableJoin,
    Sum,
    TumblingWindow,
    WindowAggregate,
)
from repro.errors import StreamError
from repro.events import Event


def run_aggregate(spec, rows):
    source = Stream("s")
    window = TumblingWindow(source, 100.0)
    aggregate = WindowAggregate(window, "agg.out", spec)
    out = []
    aggregate.subscribe(out.append)
    for i, row in enumerate(rows):
        source.push(Event("tick", float(i), row))
    window.flush()
    return out


class TestAggregateFunctions:
    def test_full_spec(self):
        rows = [{"v": 1.0}, {"v": 2.0}, {"v": 3.0}, {"v": 4.0}]
        out = run_aggregate(
            {
                "n": (None, Count),
                "total": ("v", Sum),
                "mean": ("v", Avg),
                "lo": ("v", Min),
                "hi": ("v", Max),
                "sd": ("v", Stddev),
                "first": ("v", First),
                "last": ("v", Last),
            },
            rows,
        )
        result = out[0]
        assert result["n"] == 4
        assert result["total"] == 10.0
        assert result["mean"] == 2.5
        assert (result["lo"], result["hi"]) == (1.0, 4.0)
        assert result["sd"] == pytest.approx(1.29099, abs=1e-4)
        assert (result["first"], result["last"]) == (1.0, 4.0)

    def test_nulls_skipped(self):
        out = run_aggregate(
            {"n": ("v", Count), "total": ("v", Sum)},
            [{"v": 1.0}, {"x": 9}, {"v": 2.0}],
        )
        assert out[0]["n"] == 2
        assert out[0]["total"] == 3.0
        assert out[0]["count"] == 3  # built-in pane event count

    def test_empty_field_yields_none(self):
        out = run_aggregate({"mean": ("v", Avg)}, [{"x": 1}])
        assert out[0]["mean"] is None

    def test_percentile(self):
        rows = [{"v": float(i)} for i in range(1, 101)]
        out = run_aggregate(
            {"p50": ("v", lambda: Percentile(0.5)), "p99": ("v", lambda: Percentile(0.99))},
            rows,
        )
        assert out[0]["p50"] == 50.0
        assert out[0]["p99"] == 99.0

    def test_percentile_bounds_validated(self):
        with pytest.raises(StreamError):
            Percentile(1.5)

    def test_aggregate_requires_pane_input(self):
        source = Stream("s")
        aggregate = WindowAggregate(source, "out", {"n": (None, Count)})
        with pytest.raises(StreamError):
            source.push(Event("tick", 0.0, {}))

    def test_window_metadata_carried(self):
        out = run_aggregate({"n": (None, Count)}, [{"v": 1}])
        assert out[0]["window_start"] == 0.0
        assert out[0]["window_end"] == 100.0
        assert out[0].source.startswith("aggregate")


class TestFilterMap:
    def test_filter_expression(self):
        source = Stream("s")
        out = []
        FilterOperator(source, "price > 10").subscribe(out.append)
        source.push(Event("t", 0.0, {"price": 5}))
        source.push(Event("t", 0.0, {"price": 50}))
        assert len(out) == 1

    def test_filter_callable(self):
        source = Stream("s")
        out = []
        op = FilterOperator(source, lambda e: e.event_type == "keep")
        op.subscribe(out.append)
        source.push(Event("keep", 0.0))
        source.push(Event("drop", 0.0))
        assert len(out) == 1
        assert op.dropped == 1

    def test_filter_missing_attribute_drops(self):
        source = Stream("s")
        out = []
        FilterOperator(source, "price > 10").subscribe(out.append)
        source.push(Event("t", 0.0, {"qty": 1}))
        assert out == []

    def test_map_payload_dict(self):
        source = Stream("s")
        out = []
        MapOperator(
            source,
            lambda e: {"notional": e["price"] * e["qty"]},
            output_type="enriched",
        ).subscribe(out.append)
        source.push(Event("t", 3.0, {"price": 2.0, "qty": 5}))
        assert out[0].event_type == "enriched"
        assert out[0]["notional"] == 10.0
        assert out[0].causes  # provenance preserved

    def test_map_none_drops(self):
        source = Stream("s")
        out = []
        MapOperator(source, lambda e: None).subscribe(out.append)
        source.push(Event("t", 0.0))
        assert out == []


class TestStreamJoin:
    def make(self, window=5.0):
        left, right = Stream("l"), Stream("r")
        join = StreamJoin(
            left, right, key_field="k", window=window, output_type="joined"
        )
        out = []
        join.subscribe(out.append)
        return left, right, join, out

    def test_match_within_window(self):
        left, right, _join, out = self.make()
        left.push(Event("l", 1.0, {"k": 1, "a": "x"}))
        right.push(Event("r", 3.0, {"k": 1, "b": "y"}))
        assert len(out) == 1
        assert out[0]["left_a"] == "x"
        assert out[0]["right_b"] == "y"

    def test_outside_window_no_match(self):
        left, right, _join, out = self.make(window=5.0)
        left.push(Event("l", 1.0, {"k": 1}))
        right.push(Event("r", 100.0, {"k": 1}))
        assert out == []

    def test_key_mismatch_no_match(self):
        left, right, _join, out = self.make()
        left.push(Event("l", 1.0, {"k": 1}))
        right.push(Event("r", 1.0, {"k": 2}))
        assert out == []

    def test_state_pruned(self):
        # Both sides must advance: a buffer prunes against the *other*
        # side's watermark (a silent right side keeps left events alive,
        # since future right events could still join them).
        left, right, join, _out = self.make(window=5.0)
        for i in range(100):
            left.push(Event("l", float(i), {"k": i}))
            right.push(Event("r", float(i), {"k": -1 - i}))
        assert join.buffered() < 30  # old entries pruned by watermarks

    def test_one_sided_stream_retains_joinable_state(self):
        # Regression: the old single shared watermark pruned the fast
        # side's buffer against its *own* progress, evicting left events
        # still within the join window of the lagging right stream.
        left, right, _join, out = self.make(window=5.0)
        left.push(Event("l", 100.0, {"k": 7, "a": "x"}))
        for i in range(50):  # left races far ahead
            left.push(Event("l", 101.0 + i, {"k": i + 1000}))
        # Right is slow but legitimate: its clock is still near 100, and
        # its event is within the window of the buffered left@100.
        right.push(Event("r", 98.0, {"k": 7, "b": "y"}))
        assert len(out) == 1
        assert out[0]["left_a"] == "x" and out[0]["right_b"] == "y"

    def test_punctuation_prunes_idle_side(self):
        # A watermark punctuation advances event time without data, so
        # a one-sided stream's buffer still gets pruned.
        left, right, join, _out = self.make(window=5.0)
        for i in range(100):
            left.push(Event("l", float(i), {"k": i}))
        assert join.buffered() == 100
        right.punctuate(99.0)
        assert join.buffered() < 20

    def test_null_key_ignored(self):
        left, right, join, out = self.make()
        left.push(Event("l", 1.0, {"x": 1}))
        right.push(Event("r", 1.0, {"k": None}))
        assert out == [] and join.buffered() == 0
        assert join.null_key_dropped == 2  # counted, not silent

    def test_join_order_symmetric(self):
        left, right, _join, out = self.make()
        right.push(Event("r", 1.0, {"k": 1, "b": "y"}))
        left.push(Event("l", 2.0, {"k": 1, "a": "x"}))
        assert out[0]["left_a"] == "x" and out[0]["right_b"] == "y"


class TestStreamTableJoin:
    def test_enrichment(self, meters_db):
        source = Stream("s")
        out = []
        StreamTableJoin(
            source, meters_db, "meters",
            event_key="meter_id", table_key="meter_id", prefix="ref_",
        ).subscribe(out.append)
        source.push(Event("reading", 1.0, {"meter_id": "m1", "usage": 5.0}))
        assert out[0]["ref_zone"] == "west"
        assert out[0]["usage"] == 5.0

    def test_left_semantics_pass_through(self, meters_db):
        source = Stream("s")
        out = []
        StreamTableJoin(
            source, meters_db, "meters",
            event_key="meter_id", table_key="meter_id",
        ).subscribe(out.append)
        source.push(Event("reading", 1.0, {"meter_id": "ghost"}))
        assert len(out) == 1
        assert "zone" not in out[0].payload

    def test_inner_semantics_drop(self, meters_db):
        source = Stream("s")
        out = []
        StreamTableJoin(
            source, meters_db, "meters",
            event_key="meter_id", table_key="meter_id", inner=True,
        ).subscribe(out.append)
        source.push(Event("reading", 1.0, {"meter_id": "ghost"}))
        assert out == []
