"""Financial services use case (paper §2.2.e.i): market surveillance.

Two detection pipelines run side by side over synthetic market data:

* **CEP pattern** — spike-and-collapse sequences in the tick stream
  (``SEQ(spike, collapse) WITHIN 15s``), the classic "threat and
  opportunity" pattern.
* **Order surveillance** — a rule set over the order stream flags
  outsized orders; a count-window aggregation then detects *bursts*
  from a single account.

Both are scored against the generator's ground-truth episodes, showing
the false-positive/false-negative bookkeeping the tutorial calls out.

Run:  python examples/finance_surveillance.py
"""

from repro.core import EpisodeTracker
from repro.cq import ContinuousQuery, Count, PatternElement, Seq, Sum
from repro.db import Database
from repro.queues import QueueBroker
from repro.rules import EnqueueAction, RuleEngine
from repro.workloads import MarketDataGenerator, OrderFlowGenerator


def run_cep_surveillance() -> None:
    print("== CEP: spike-and-collapse pattern over ticks ==")
    generator = MarketDataGenerator(episode_count=4, seed=17, spike_magnitude=0.10)
    stream = generator.generate(500.0)
    print(f"  {len(stream)} ticks, {len(stream.episodes)} injected episodes")

    matches: list = []
    cq = (
        ContinuousQuery("spike_collapse")
        .pattern(
            Seq(
                PatternElement(
                    "spike", "tick",
                    "baseline IS NOT NULL AND price > baseline * 1.05",
                ),
                PatternElement(
                    "collapse", "tick",
                    "symbol = spike_symbol AND price < spike_price * 0.9",
                ),
                within=15.0,
            ),
            output_type="alert.spike_collapse",
        )
        .sink(matches.append)
    )

    # Enrich each tick with a trailing per-symbol baseline (stream-state
    # pattern an analytics layer would maintain).
    history: dict[str, list[float]] = {}
    for event in stream:
        prices = history.setdefault(event["symbol"], [])
        baseline = sum(prices) / len(prices) if len(prices) >= 10 else None
        cq.push(event.with_payload(baseline=baseline))
        prices.append(event["price"])
        if len(prices) > 50:
            prices.pop(0)

    tracker = EpisodeTracker(stream.episodes, window=20.0)
    for match in matches:
        tracker.record_alert(match.timestamp)
    result = tracker.result()
    print(f"  pattern matches: {len(matches)}")
    print(f"  episodes detected: {result.detected}/{result.episodes} "
          f"(recall {result.recall:.2f}, precision {result.precision:.2f}, "
          f"mean delay {result.mean_delay and round(result.mean_delay, 1)}s)")


def run_order_surveillance() -> None:
    print("== Rules + windows: order-burst surveillance ==")
    generator = OrderFlowGenerator(episode_count=3, seed=23)
    stream = generator.generate(400.0)
    print(f"  {len(stream)} orders, {len(stream.episodes)} injected bursts")

    db = Database()
    staging = QueueBroker(db)
    staging.create_queue("suspicious")

    engine = RuleEngine()
    engine.add(
        "outsized_order",
        "qty >= 1000",
        action=EnqueueAction(staging, "suspicious"),
        event_types=("orders.insert",),
    )

    burst_alerts: list = []
    burst_cq = (
        ContinuousQuery("bursts")
        .filter("qty >= 1000")
        .window_count(5, key_field="account")
        .aggregate("alert.burst", {"orders": (None, Count), "shares": ("qty", Sum)})
        .sink(burst_alerts.append)
    )

    for event in stream:
        engine.evaluate(event)
        burst_cq.push(event)

    tracker = EpisodeTracker(stream.episodes, window=10.0)
    for alert in burst_alerts:
        tracker.record_alert(alert.timestamp)
    result = tracker.result()

    print(f"  rule matches staged: {staging.queue('suspicious').depth()}")
    print(f"  burst alerts: {len(burst_alerts)}; detected "
          f"{result.detected}/{result.episodes} bursts "
          f"(precision {result.precision:.2f})")
    for alert in burst_alerts[:3]:
        print(f"    account={alert['key']} orders={alert['orders']} "
              f"shares={alert['shares']}")
    print("  rule-engine work:", engine.stats)


def main() -> None:
    run_cep_surveillance()
    run_order_surveillance()


if __name__ == "__main__":
    main()
