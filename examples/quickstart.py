"""Quickstart: the full event-processing stack in one file.

Walks the tutorial's architecture end to end:

1. a table in the embedded database,
2. trigger-based change capture,
3. a rule evaluated against every change ("expressions as data"),
4. matched events enqueued to a persistent staging area,
5. an expectation model watching for deviations,
6. VIRT filtering deciding who actually gets told,
7. crash recovery proving it was all durable.

Run:  python examples/quickstart.py
"""

from repro.clock import SimulatedClock
from repro.core import EventDrivenApplication, EwmaModel, RecipientProfile, UpdatePolicy
from repro.db import Database
from repro.queues import QueueBroker
from repro.rules import EnqueueAction, Rule


def main() -> None:
    clock = SimulatedClock(start=0.0)
    db = Database(clock=clock)

    # 1. Ordinary relational state.
    db.execute(
        "CREATE TABLE meters ("
        " meter_id TEXT PRIMARY KEY,"
        " usage REAL NOT NULL,"
        " zone TEXT)"
    )

    app = EventDrivenApplication(db)

    # 2. Capture every change to `meters` as events (synchronous triggers).
    app.capture_table("meters", method="trigger")

    # 3+4. A rule whose match becomes a message in a staging area.
    staging = QueueBroker(db, audit=True)
    staging.create_queue("critical", keep_history=True)
    app.add_rule(
        Rule.from_text(
            "high_usage",
            "usage > 100 AND zone = 'west'",
            action=EnqueueAction(staging, "critical"),
            event_types=("meters.*",),
        )
    )

    # 5. An adaptive expectation model per meter.
    app.monitor(
        "usage_anomaly",
        field="usage",
        model_factory=lambda: EwmaModel(alpha=0.3, warmup=5),
        threshold=4.0,
        key_field="meter_id",
        update_policy=UpdatePolicy.WHEN_NORMAL,
    )

    # 6. A recipient who only hears about genuinely valuable events.
    inbox: list = []
    app.add_recipient(
        RecipientProfile("ops", interests={"deviation.*": 1.0}),
        threshold=0.6,
        deliver=lambda event, score: inbox.append((event, score)),
    )

    # -- drive it -----------------------------------------------------------
    db.execute("INSERT INTO meters VALUES ('m1', 10.0, 'west')")
    db.execute("INSERT INTO meters VALUES ('m2', 20.0, 'east')")
    for _ in range(10):  # steady state: the model learns "normal"
        clock.advance(60.0)
        db.execute("UPDATE meters SET usage = 11.0 WHERE meter_id = 'm1'")

    clock.advance(60.0)
    db.execute("UPDATE meters SET usage = 950.0 WHERE meter_id = 'm1'")

    print("== rule matches enqueued to the staging area ==")
    while True:
        message = staging.consume("critical")
        if message is None:
            break
        print("  critical:", message.payload["context"]["meter_id"],
              "usage =", message.payload["context"]["usage"])
        staging.ack("critical", message.message_id)

    print("== VIRT-filtered deliveries to ops ==")
    for event, score in inbox:
        print(f"  {event.event_type}: observed={event['observed']} "
              f"expected≈{event['expected']:.1f} value-score={score:.2f}")

    print("== alerts ==")
    for alert in app.alerts.open_alerts():
        print(f"  [{alert.severity}] {alert.message}")

    # 7. Crash: committed state — rows, queues, audit — survives.
    db.simulate_crash()
    rows = db.query("SELECT meter_id, usage FROM meters ORDER BY meter_id")
    print("== after crash recovery ==")
    for row in rows:
        print("  ", row)
    audit_rows = db.query("SELECT count(*) AS n FROM _queue_audit")
    print("  audit entries preserved:", audit_rows[0]["n"])

    stats = app.statistics()
    print("== statistics ==")
    print("  rules:", stats["rules"])
    print("  detector:", stats["detectors"]["usage_anomaly"])
    print("  virt:", stats["virt"]["ops"])


if __name__ == "__main__":
    main()
