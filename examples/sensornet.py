"""SensorNet use case (paper §2.2.e.iv).

"A US government project to capture a wide variety of data and deliver
them to first responders who are authorized, available and able to
respond most efficiently."

This example runs the whole chain on a simulated sensor grid:

1. a plume of hazardous readings spreads across a 6×6 grid;
2. per-sensor expectation models detect deviations;
3. deviation events are routed across a multi-hop staging topology
   (field → regional hub → HQ) — including a link failure mid-run;
4. HQ dispatches the nearest authorized, available, able responder;
5. detection quality is scored against ground truth.

Run:  python examples/sensornet.py
"""

from repro.clock import SimulatedClock
from repro.core import (
    EpisodeTracker,
    EventDrivenApplication,
    EwmaModel,
    Responder,
    UpdatePolicy,
)
from repro.db import Database
from repro.events import Event
from repro.pubsub import PubSubBroker, Router, StagingTopology
from repro.workloads import SensorGridGenerator


def main() -> None:
    clock = SimulatedClock()
    generator = SensorGridGenerator(rows=6, cols=6, plume_count=3, seed=19)
    stream = generator.generate(1800.0)
    print(f"readings: {len(stream)}, plume episodes: {len(stream.episodes)}")

    # -- staging topology: field site -> region -> HQ ----------------------
    topology = StagingTopology()
    areas = {}
    for name in ("field", "region_a", "region_b", "hq"):
        areas[name] = PubSubBroker(Database(clock=clock), name=name)
        topology.add_area(name, areas[name])
    topology.add_link("field", "region_a", latency=1.0)
    topology.add_link("field", "region_b", latency=3.0)
    topology.add_link("region_a", "hq", latency=1.0)
    topology.add_link("region_b", "hq", latency=3.0)
    router = Router(topology)

    # -- HQ: responders and the incident inbox ------------------------------
    app = EventDrivenApplication(areas["hq"].db)
    app.responders.register(Responder(
        "team_north", authorizations={"chem"}, capabilities={"hazmat_gear"},
        location=(0.0, 0.0),
    ))
    app.responders.register(Responder(
        "team_south", authorizations={"chem"}, capabilities={"hazmat_gear"},
        location=(5.0, 5.0),
    ))
    app.responders.register(Responder(
        "observer", authorizations=set(), capabilities=set(),  # never chosen
    ))

    areas["hq"].create_topic("incidents")
    dispatched: list = []

    def on_incident(event: Event) -> None:
        alert = app.alerts.raise_alert(
            "plume",
            event,
            entity=event.get("sensor_id"),
            severity="critical",
            category="chem",
            required_capabilities=("hazmat_gear",),
            location=(event.get("row", 0), event.get("col", 0)),
        )
        if alert is not None:
            dispatched.append((event.get("sensor_id"), alert.responders))

    areas["hq"].subscribe("dispatch", "incidents", callback=on_incident)

    # -- field site: deviation detection on every sensor ---------------------
    field_app = EventDrivenApplication(areas["field"].db)
    tracker = EpisodeTracker(stream.episodes, window=generator.plume_duration)

    def forward_to_hq(event: Event) -> None:
        tracker.record_alert(event.timestamp)
        router.route(event, source="field", dest="hq", topic="incidents")

    detector = field_app.monitor(
        "radiation",
        field="reading",
        model_factory=lambda: EwmaModel(alpha=0.1, warmup=10),
        threshold=6.0,
        key_field="sensor_id",
        update_policy=UpdatePolicy.WHEN_NORMAL,
    )
    detector.subscribe(forward_to_hq)

    # -- drive the simulation, failing a link partway through ----------------
    failed = False
    for event in stream:
        clock.advance_to(max(clock.now(), event.timestamp))
        if not failed and event.timestamp > 900.0:
            topology.fail_link("field", "region_a")
            print("! link field->region_a failed at t=900; rerouting via region_b")
            failed = True
        field_app.process(event)

    result = tracker.result()
    print(f"deviations forwarded to HQ: {result.alerts}")
    print(f"plumes detected: {result.detected}/{result.episodes} "
          f"(recall {result.recall:.2f}, precision {result.precision:.2f})")
    print(f"routing: {router.stats['routed']} routed, "
          f"{router.stats['hops']} hops, {router.stats['failed']} failures")
    print(f"alerts raised at HQ: {app.alerts.stats['raised']} "
          f"(deduplicated: {app.alerts.stats['deduplicated']})")
    teams = {team for _sensor, responders in dispatched for team in responders}
    print(f"responder teams dispatched: {sorted(teams)}")
    sample = dispatched[:3]
    for sensor, responders in sample:
        print(f"  {sensor} -> {responders}")


if __name__ == "__main__":
    main()
