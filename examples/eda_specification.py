"""Formal specification of an event-driven application (paper §2.1.d).

Event systems fail *silently*: a table nobody captures, a rule with a
typo'd attribute that never matches, an alert category no responder is
cleared for.  This example declares an :class:`ApplicationSpec` for a
hazmat-monitoring application, shows validation catching four distinct
mis-wirings, fixes them, and then runs the (now provably wired)
application using push-based query notification (CQN) capture.

Run:  python examples/eda_specification.py
"""

from repro.capture import QueryNotificationCapture
from repro.clock import SimulatedClock
from repro.core import (
    ApplicationSpec,
    CategorySpec,
    ConditionSpec,
    EventDrivenApplication,
    EventTypeSpec,
    EwmaModel,
    RecipientProfile,
    Responder,
    UpdatePolicy,
)
from repro.db import Database
from repro.rules import Rule


def build_spec() -> ApplicationSpec:
    return ApplicationSpec(
        name="hazmat-monitoring",
        monitored_tables=("containers",),
        event_types=(
            EventTypeSpec("containers.insert", {"container", "zone", "temperature"}),
            EventTypeSpec("containers.update", {"container", "zone", "temperature"}),
        ),
        conditions=(
            ConditionSpec("overheating", implemented_by_detector="temp_anomaly"),
            ConditionSpec("forbidden_zone", implemented_by_rule="zone_check"),
        ),
        categories=(
            CategorySpec(
                "hazmat",
                required_capabilities=("chem_suit",),
                recipients=("duty_officer",),
            ),
        ),
    )


def main() -> None:
    clock = SimulatedClock()
    db = Database(clock=clock)
    db.execute(
        "CREATE TABLE containers ("
        " container TEXT PRIMARY KEY, zone TEXT, temperature REAL)"
    )
    app = EventDrivenApplication(db)
    spec = build_spec()

    print("== validating the half-wired application ==")
    for violation in spec.validate(app):
        print(f"  {violation}")

    print("== wiring it up ==")
    app.capture_table("containers", method="trigger")
    app.monitor(
        "temp_anomaly",
        field="temperature",
        model_factory=lambda: EwmaModel(alpha=0.2, warmup=5),
        threshold=4.0,
        key_field="container",
        update_policy=UpdatePolicy.WHEN_NORMAL,
        category="hazmat",
        severity="critical",
    )
    app.add_rule(Rule.from_text(
        "zone_check",
        "zone = 'disposal' AND temperature > 30",
        event_types=("containers.*",),
    ))
    app.responders.register(Responder(
        "team_alpha", authorizations={"hazmat"}, capabilities={"chem_suit"},
    ))
    app.add_recipient(
        RecipientProfile("duty_officer", interests={"deviation.*": 1.0}),
        threshold=0.6,
        deliver=lambda event, score: print(
            f"  -> duty officer notified: {event.get('key')} "
            f"temp={event.get('observed')} (value {score:.2f})"
        ),
    )
    remaining = spec.validate(app)
    print(f"  violations remaining: {len(remaining)}")
    spec.enforce(app)  # raises if anything were still broken

    # Push-based query notification: the hot-container watch list is a
    # registered query the database re-checks at commit time.
    watch = QueryNotificationCapture(
        db,
        "SELECT container, temperature FROM containers WHERE temperature > 45",
        name="hot_watchlist",
        key_columns=["container"],
    )
    watch.subscribe(
        lambda event: print(
            f"  watchlist {event.event_type.rsplit('.', 1)[1]}: "
            f"{event['container']} @ {event.get('temperature')}"
        )
    )

    print("== driving the validated application ==")
    db.execute("INSERT INTO containers VALUES ('c1', 'storage_a', 20.0)")
    for _ in range(8):
        clock.advance(60.0)
        db.execute("UPDATE containers SET temperature = 21.0 WHERE container = 'c1'")
    clock.advance(60.0)
    db.execute("UPDATE containers SET temperature = 80.0 WHERE container = 'c1'")
    clock.advance(60.0)
    db.execute("UPDATE containers SET temperature = 22.0 WHERE container = 'c1'")

    print("== outcome ==")
    print(f"  alerts raised: {app.alerts.stats['raised']}")
    alert = app.alerts.open_alerts()[0]
    print(f"  [{alert.severity}] {alert.message} -> responders {alert.responders}")
    print(f"  watchlist re-evaluations: {watch.reevaluations} "
          f"(commits skipped: {watch.commits_skipped})")


if __name__ == "__main__":
    main()
