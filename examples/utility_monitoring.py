"""Utility use case (paper §2.2.e.ii): usage and usage-pattern monitoring.

Meter readings land in a database table; three *different capture
styles* then watch them — exactly the §2.2.a menu:

* a **pattern capture** query comparing current and previous states
  ("usage doubled since the last reading");
* a **query capture** whose result-set change is the event (the set of
  meters currently above a hard threshold);
* a **journal capture** feeding a seasonal expectation model that knows
  3am usage should be compared with 3am history.

Run:  python examples/utility_monitoring.py
"""

from repro.capture import JournalCapture, PatternCapture, QueryCapture, Transition
from repro.clock import SimulatedClock
from repro.core import EpisodeTracker, SeasonalProfileModel, UpdatePolicy
from repro.core.deviation import DeviationDetector
from repro.cq import Stream
from repro.db import Database
from repro.db.schema import Column
from repro.db.types import REAL, TEXT
from repro.workloads import UtilityUsageGenerator


def main() -> None:
    clock = SimulatedClock()
    db = Database(clock=clock)
    db.create_table(
        "meters",
        [Column("meter_id", TEXT, primary_key=True), Column("usage", REAL)],
    )

    generator = UtilityUsageGenerator(
        meters=8, anomaly_count=3, seed=3, anomaly_factor=2.5,
    )
    stream = generator.generate(9 * 86400.0)
    print(f"meter readings: {len(stream)} over 9 simulated days; "
          f"{len(stream.episodes)} anomaly episodes")

    # Capture style 1: pattern across current + previous state (§2.2.a.iii.2)
    doubled = PatternCapture(
        db,
        Transition("meters", "new_usage > old_usage * 2", ["meter_id"]),
        name="doubled",
    )
    doubled_events: list = []
    doubled.subscribe(doubled_events.append)

    # Capture style 2: result-set change of a monitoring query (§2.2.a.iii.1)
    hot_set = QueryCapture(
        db,
        "SELECT meter_id FROM meters WHERE usage > 2.5",
        name="hot",
        key_columns=["meter_id"],
    )
    hot_changes: list = []
    hot_set.subscribe(hot_changes.append)

    # Capture style 3: journal mining into a seasonal model (§2.2.a.ii)
    journal = JournalCapture(db, ["meters"])
    model_input = Stream("readings")
    journal.subscribe(model_input.push)
    detector = DeviationDetector(
        model_input,
        name="seasonal",
        field="usage",
        model_factory=lambda: SeasonalProfileModel(
            period=86400.0, bins=48, warmup_per_bin=3,
        ),
        threshold=8.0,
        key_field="meter_id",
        update_policy=UpdatePolicy.WHEN_NORMAL,
    )
    tracker = EpisodeTracker(stream.episodes, window=generator.anomaly_duration)
    detector.subscribe(lambda event: tracker.record_alert(event.timestamp))

    # Drive: apply each reading as an UPDATE (first sight: INSERT), then
    # poll the three captures the way background jobs would.
    seen: set = set()
    readings_since_poll = 0
    for event in stream:
        clock.advance_to(max(clock.now(), event.timestamp))
        meter = event["meter_id"]
        if meter not in seen:
            db.insert_row("meters", {"meter_id": meter, "usage": event["usage"]})
            seen.add(meter)
        else:
            rowid = db.catalog.table("meters").lookup_rowids("meter_id", meter)[0]
            db.update_row("meters", rowid, {"usage": event["usage"]})
        readings_since_poll += 1
        if readings_since_poll >= len(seen):  # one poll per grid sweep
            journal.poll()
            doubled.poll()
            hot_set.poll()
            readings_since_poll = 0

    result = tracker.result()
    print("== journal capture + seasonal model ==")
    print(f"  deviations: {result.alerts}; episodes detected "
          f"{result.detected}/{result.episodes} "
          f"(precision {result.precision:.2f}, recall {result.recall:.2f})")
    print("== pattern capture (usage doubled since last observation) ==")
    print(f"  transitions flagged: {len(doubled_events)}")
    print("== query capture (set of meters above 2.5) ==")
    kinds = {}
    for event in hot_changes:
        kinds[event.event_type] = kinds.get(event.event_type, 0) + 1
    for kind, count in sorted(kinds.items()):
        print(f"  {kind}: {count}")
    print(f"== journal: {journal.polls} polls, position lsn={journal.position} ==")


if __name__ == "__main__":
    main()
