"""ChemSecure use case (paper §2.2.e.iii): hazardous-material management.

"Any threat has to be known to the people who are authorized and able
to respond most efficiently."

Demonstrates database-centric event processing on RFID container
tracking:

* the **authorization matrix lives in a table** and zone violations are
  caught with a stream-table lookup join (no rules hard-code policy);
* temperature excursions are caught by a rule set with range anchors
  (the predicate index at work);
* everything lands in an audited queue; the audit trail itself is SQL;
* a secured queue rejects unauthorized consumers.

Run:  python examples/chemsecure.py
"""

from repro.clock import SimulatedClock
from repro.core import EpisodeTracker
from repro.cq import ContinuousQuery
from repro.db import Database
from repro.db.schema import Column
from repro.db.types import TEXT
from repro.errors import AccessDeniedError
from repro.queues import Permission, QueueBroker, SecurityManager
from repro.rules import EnqueueAction, RuleEngine
from repro.workloads import HazmatGenerator
from repro.workloads.hazmat import SAFE_TEMPERATURE


def main() -> None:
    clock = SimulatedClock()
    db = Database(clock=clock)
    generator = HazmatGenerator(containers=24, violation_count=6, seed=37)
    stream = generator.generate(1200.0)
    print(f"RFID reads: {len(stream)}, injected violations: {len(stream.episodes)}")

    # -- policy as data: the authorization matrix is a table ----------------
    db.create_table(
        "authorized_zones",
        [Column("material", TEXT, nullable=False), Column("zone", TEXT, nullable=False)],
    )
    db.create_index("ix_auth_material", "authorized_zones", "material", kind="hash")
    for row in generator.reference_rows():
        db.insert_row("authorized_zones", row)

    security = SecurityManager()
    staging = QueueBroker(db, security=security, audit=True)
    staging.create_queue("violations", keep_history=True)
    security.protect("violations")
    security.grant("detector", "violations", Permission.ENQUEUE)
    security.grant("hazmat_officer", "violations",
                   Permission.DEQUEUE, Permission.BROWSE)

    # -- zone violations: lookup join against the policy table ---------------
    zone_hits: list = []

    def flag_zone_violation(event):
        material = event["material"]
        table = db.catalog.table("authorized_zones")
        allowed = {
            table.get(rowid)["zone"]
            for rowid in table.lookup_rowids("material", material)
        }
        if event["zone"] not in allowed:
            zone_hits.append(event)
            staging.publish("violations", {
                "kind": "zone", "container": event["container"],
                "material": material, "zone": event["zone"],
                "at": event.timestamp,
            }, principal="detector")

    zone_cq = ContinuousQuery("zones").sink(flag_zone_violation)

    # -- temperature excursions: a rule per material class --------------------
    engine = RuleEngine()
    temp_hits: list = []

    def stage_temp(rule, context):
        temp_hits.append(context)
        staging.publish("violations", {
            "kind": "temperature", "container": context["container"],
            "material": context["material"],
            "temperature": context["temperature"],
        }, principal="detector")

    for material, ceiling in SAFE_TEMPERATURE.items():
        engine.add(
            f"temp_{material}",
            f"material = '{material}' AND temperature > {ceiling}",
            action=stage_temp,
            event_types=("rfid.read",),
        )

    # -- drive -------------------------------------------------------------------
    tracker = EpisodeTracker(stream.episodes, window=70.0)
    for event in stream:
        clock.advance_to(max(clock.now(), event.timestamp))
        zone_cq.push(event)
        engine.evaluate(event)
    for event in zone_hits:
        tracker.record_alert(event.timestamp)
    for context in temp_hits:
        tracker.record_alert(context.get("timestamp") or clock.now())

    result = tracker.result()
    print(f"zone violations flagged: {len(zone_hits)}")
    print(f"temperature excursions flagged: {len(temp_hits)}")
    print(f"episodes detected: {result.detected}/{result.episodes} "
          f"(recall {result.recall:.2f})")
    print(f"rule engine evaluated {engine.stats['conditions_evaluated']} "
          f"conditions for {engine.stats['events_evaluated']} events "
          f"(indexed; naive would be "
          f"{engine.stats['events_evaluated'] * len(engine.rules())})")

    # -- consumption under security -----------------------------------------------
    try:
        staging.consume("violations", principal="random_person")
    except AccessDeniedError as exc:
        print(f"security: {exc}")
    message = staging.consume("violations", principal="hazmat_officer")
    print(f"hazmat_officer consumed first violation: {message.payload['kind']} "
          f"on {message.payload['container']}")
    staging.ack("violations", message.message_id, principal="hazmat_officer")

    # -- the audit trail is just SQL ------------------------------------------------
    audit = db.query(
        "SELECT principal, operation, count(*) AS n FROM _queue_audit "
        "GROUP BY principal, operation ORDER BY principal, operation"
    )
    print("audit trail summary:")
    for row in audit:
        print(f"  {row['principal']:>16} {row['operation']:<10} {row['n']}")


if __name__ == "__main__":
    main()
