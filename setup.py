"""Legacy setup shim: the execution environment is offline and lacks
the ``wheel`` package, so ``pip install -e .`` must take the setup.py
develop path instead of PEP 517/660."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Event processing using database technology — reproduction of "
        "Chandy & Gawlick, SIGMOD 2007"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
)
