"""EXP-12 — Availability under primary failure (paper §3 "continuous
availability"; the paper's event servers must keep accepting events
while components fail).

Claims probed:

* a supervised fleet closes the unavailability window automatically —
  measured as the wall-clock gap between killing a shard primary and
  the first write the fleet accepts again, for both repair paths:
  ``promote`` (in-memory primary + replica: the standby is promoted)
  and ``restart`` (durable primary: WAL replay brings it back);
* during the outage, reads keep flowing from the replica (counted, and
  tagged stale by the broker) while unpoliced writes fail fast;
* recovery loses nothing: every publish acknowledged before the kill
  is still consumable afterwards, exactly once, and post-recovery
  throughput returns to the same order as the warm baseline.

The kill is a hard SIGKILL mid-load — no drain, no warning — which is
exactly the failure the replication log and the supervisor exist for.

Run standalone:  python benchmarks/bench_exp12_availability.py [--quick]
"""

from __future__ import annotations

import sys
import tempfile
import time

try:
    from benchmarks.reporting import print_table
except ImportError:
    from reporting import print_table

from repro.errors import ShardUnavailable
from repro.queues.message import Message
from repro.shard import ShardCoordinator, ShardedQueueBroker, ShardSupervisor

BATCH = 32
#: Give up on recovery after this long — a failed bar, not a hang.
RECOVERY_DEADLINE_S = 30.0


def _pump(broker, n_messages: int, tag: str) -> tuple[float, int]:
    """Publish ``n_messages`` in batches; returns (seconds, published)."""
    started = time.perf_counter()
    published = 0
    for start in range(0, n_messages, BATCH):
        count = min(BATCH, n_messages - start)
        broker.publish_batch(
            "load",
            [Message(payload={"t": tag, "i": start + j}) for j in range(count)],
        )
        published += count
    return time.perf_counter() - started, published


def run_failover(
    mode: str, *, n_messages: int = 2_048, data_dir: str | None = None
) -> dict:
    """One kill-the-primary run.

    ``mode="promote"``: in-memory primary with one replica — repair is
    replica promotion.  ``mode="restart"``: durable primary, no replica
    — repair is a restart with WAL replay (pass ``data_dir``).
    """
    kwargs: dict = {"group_commit_size": 1, "timeout": 10.0}
    if mode == "promote":
        kwargs["replication_factor"] = 1
    elif mode == "restart":
        assert data_dir is not None, "restart mode needs a data_dir"
        kwargs["data_dir"] = data_dir
    else:  # pragma: no cover - harness misuse
        raise ValueError(mode)

    with ShardCoordinator(1, **kwargs) as fleet:
        supervisor = ShardSupervisor(fleet, heartbeat_timeout=0.5)
        supervisor.start_thread(interval=0.05)
        # Measurement broker fails fast on writes so the unavailability
        # window is visible; reads fall back to the replica when one
        # exists (promote mode) and are counted below.
        broker = ShardedQueueBroker(
            fleet, read_policy="replica_ok", write_policy="fail"
        )
        broker.create_queue("load")

        warm_s, warm_n = _pump(broker, n_messages, "warm")

        killed_at = time.perf_counter()
        fleet.worker(0).kill()

        # Outage loop: writes until one succeeds again; reads whenever
        # a write fails (replica-served in promote mode).
        failed_writes = 0
        stale_reads = 0
        while True:
            try:
                broker.publish("load", Message(payload={"t": "probe"}))
                recovered_at = time.perf_counter()
                break
            except ShardUnavailable:
                failed_writes += 1
            if time.perf_counter() - killed_at > RECOVERY_DEADLINE_S:
                raise RuntimeError(
                    f"fleet did not recover within {RECOVERY_DEADLINE_S}s"
                )
            if mode == "promote":
                info = broker.depth_info("load")
                if info["stale"]:
                    stale_reads += 1
            time.sleep(0.002)

        post_s, post_n = _pump(broker, n_messages, "post")
        supervisor.stop_thread()

        # Loss accounting: drain everything and key by payload.  The
        # probe write plus both pump phases must be present exactly
        # once; warm-phase survivors are the no-committed-loss claim.
        seen: set[tuple] = set()
        duplicates = 0
        while True:
            batch = broker.consume_batch("load", 256)
            if not batch:
                break
            for message in batch:
                key = (message.payload["t"], message.payload.get("i"))
                if key in seen:
                    duplicates += 1
                seen.add(key)
            broker.ack_batch("load", [m.message_id for m in batch])
        warm_survivors = sum(1 for t, _ in seen if t == "warm")
        health = supervisor.fleet_health()[0]

    return {
        "mode": mode,
        "messages": warm_n + post_n + 1,
        "warm_per_s": warm_n / warm_s,
        "recovered_per_s": post_n / post_s,
        "unavailable_ms": (recovered_at - killed_at) * 1000.0,
        "failed_writes": failed_writes,
        "stale_reads": stale_reads,
        "warm_committed": warm_n,
        "warm_survivors": warm_survivors,
        "lost": warm_n - warm_survivors,
        "duplicates": duplicates,
        "restarts": health["restarts"],
        "promotions": health["promotions"],
    }


def test_exp12_shape():
    """Small end-to-end run pinning the claims the harness reports on:
    both repair paths close the outage and lose nothing, the promote
    arm promotes (not restarts) and vice versa, and the accounting
    keys every committed message exactly once.  The *size* of the
    unavailability window is deliberately not asserted — it depends on
    scheduler load; the RECOVERY_DEADLINE_S ceiling inside
    ``run_failover`` already turns non-convergence into a failure."""
    rows = run_modes(128)
    assert [row["mode"] for row in rows] == ["promote", "restart"]
    for row in rows:
        assert row["lost"] == 0, row
        assert row["duplicates"] == 0, row
        assert row["unavailable_ms"] > 0
        assert row["warm_per_s"] > 0 and row["recovered_per_s"] > 0
        assert row["warm_survivors"] == row["warm_committed"] == 128
    assert rows[0]["promotions"] == 1 and rows[0]["restarts"] == 0
    assert rows[1]["restarts"] >= 1 and rows[1]["promotions"] == 0


def run_modes(n_messages: int) -> list[dict]:
    rows = [run_failover("promote", n_messages=n_messages)]
    with tempfile.TemporaryDirectory(prefix="exp12_") as data_dir:
        rows.append(
            run_failover("restart", n_messages=n_messages, data_dir=data_dir)
        )
    return rows


def main(quick: bool = False) -> list[dict]:
    n_messages = 256 if quick else 2_048
    rows = run_modes(n_messages)
    print_table(
        "EXP-12 — availability under primary failure (kill -9 mid-load)",
        [
            {
                "mode": row["mode"],
                "msgs": row["messages"],
                "warm_per_s": row["warm_per_s"],
                "recovered_per_s": row["recovered_per_s"],
                "unavailable_ms": row["unavailable_ms"],
                "stale_reads": row["stale_reads"],
                "lost": row["lost"],
                "dups": row["duplicates"],
                "repair": f"restarts={row['restarts']} promotions={row['promotions']}",
            }
            for row in rows
        ],
    )
    return rows


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
