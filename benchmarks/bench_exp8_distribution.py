"""EXP-8 — Message distribution (paper §2.2.d.ii).

Claims probed:

* forwarding throughput falls roughly linearly with fan-out (each extra
  destination is an extra delivery);
* multi-hop routing cost grows with path length;
* link failures reroute without losing deliveries; a partition is
  reported, and restored links heal.

Run standalone:  python benchmarks/bench_exp8_distribution.py
"""

from __future__ import annotations

import time

import pytest

try:
    from benchmarks.reporting import print_table
except ImportError:
    from reporting import print_table

from repro.clock import SimulatedClock
from repro.db import Database
from repro.errors import RoutingError
from repro.events import Event
from repro.pubsub import PubSubBroker, Router, StagingTopology
from repro.queues import PropagationLink, Propagator, QueueBroker

N_MESSAGES = 400


def make_broker(clock, name="b") -> QueueBroker:
    return QueueBroker(Database(clock=clock, sync_policy="none"), name=name)


def run_fanout(fanout: int, n: int = N_MESSAGES) -> dict:
    clock = SimulatedClock()
    source = make_broker(clock, "source")
    source.create_queue("outbox")
    propagator = Propagator(source, "outbox")
    destinations = []
    for i in range(fanout):
        destination = make_broker(clock, f"dest{i}")
        destination.create_queue("inbox")
        destinations.append(destination)
        propagator.add_link(
            PropagationLink(f"link{i}", broker=destination, queue_name="inbox")
        )
    for i in range(n):
        source.publish("outbox", {"n": i})
    started = time.perf_counter()
    while propagator.run_once(batch=100):
        pass
    elapsed = time.perf_counter() - started
    delivered = sum(d.queue("inbox").depth() for d in destinations)
    return {
        "fanout": fanout,
        "msgs_per_s": n / elapsed,
        "deliveries": delivered,
        "deliveries_per_s": delivered / elapsed,
    }


def chain_topology(hops: int, clock) -> StagingTopology:
    topology = StagingTopology()
    names = [f"area{i}" for i in range(hops + 1)]
    for name in names:
        topology.add_area(name, PubSubBroker(Database(clock=clock), name=name))
    for a, b in zip(names, names[1:]):
        topology.add_link(a, b, latency=1.0)
    return topology


def run_hops(hops: int, n: int = 200) -> dict:
    clock = SimulatedClock()
    topology = chain_topology(hops, clock)
    router = Router(topology)
    destination = topology.broker(f"area{hops}")
    destination.create_topic("t")
    received = []
    destination.subscribe("sink", "t", callback=received.append)
    started = time.perf_counter()
    for i in range(n):
        router.route(
            Event("e", float(i), {"n": i}),
            source="area0", dest=f"area{hops}", topic="t",
        )
    elapsed = time.perf_counter() - started
    return {
        "hops": hops,
        "msgs_per_s": n / elapsed,
        "received": len(received),
        "total_hops": router.stats["hops"],
    }


def run_experiment(
    fanouts: tuple[int, ...] = (1, 2, 4, 8),
    hop_counts: tuple[int, ...] = (1, 2, 4, 8),
    *,
    n: int = N_MESSAGES,
) -> tuple[list[dict], list[dict]]:
    fanout_rows = [run_fanout(f, n=n) for f in fanouts]
    hop_rows = [run_hops(h, n=min(n, 200)) for h in hop_counts]
    return fanout_rows, hop_rows


# -- pytest-benchmark -------------------------------------------------------------


def test_exp8_single_forward(benchmark):
    clock = SimulatedClock()
    source = make_broker(clock, "source")
    source.create_queue("outbox")
    destination = make_broker(clock, "dest")
    destination.create_queue("inbox")
    propagator = Propagator(source, "outbox").add_link(
        PropagationLink("l", broker=destination, queue_name="inbox")
    )

    def cycle():
        source.publish("outbox", {"x": 1})
        propagator.run_once(batch=1)

    benchmark(cycle)


def test_exp8_route_3_hops(benchmark):
    clock = SimulatedClock()
    topology = chain_topology(3, clock)
    router = Router(topology)
    topology.broker("area3").create_topic("t")
    counter = iter(range(10**9))
    benchmark(
        lambda: router.route(
            Event("e", float(next(counter)), {}),
            source="area0", dest="area3", topic="t",
        )
    )


def test_exp8_shape():
    fanout_rows, hop_rows = run_experiment()
    by_fanout = {row["fanout"]: row for row in fanout_rows}
    # All deliveries arrive: fanout × N.
    for fanout, row in by_fanout.items():
        assert row["deliveries"] == fanout * N_MESSAGES
    # Throughput falls with fan-out (monotone within 20% tolerance).
    assert by_fanout[8]["msgs_per_s"] < by_fanout[1]["msgs_per_s"]
    # Per-delivery rate stays in the same ballpark (work scales, not waste).
    assert (
        by_fanout[8]["deliveries_per_s"] > by_fanout[1]["deliveries_per_s"] / 3
    )
    by_hops = {row["hops"]: row for row in hop_rows}
    assert all(row["received"] == 200 for row in hop_rows)
    assert by_hops[8]["msgs_per_s"] < by_hops[1]["msgs_per_s"]


def test_exp8_failure_injection_no_loss():
    """Kill the primary path mid-stream: everything still arrives."""
    clock = SimulatedClock()
    topology = StagingTopology()
    for name in ("src", "mid_a", "mid_b", "dst"):
        topology.add_area(name, PubSubBroker(Database(clock=clock), name=name))
    topology.add_link("src", "mid_a", latency=1.0)
    topology.add_link("mid_a", "dst", latency=1.0)
    topology.add_link("src", "mid_b", latency=5.0)
    topology.add_link("mid_b", "dst", latency=5.0)
    router = Router(topology)
    destination = topology.broker("dst")
    destination.create_topic("t")
    received = []
    destination.subscribe("sink", "t", callback=received.append)

    for i in range(100):
        if i == 50:
            topology.fail_link("mid_a", "dst")
        router.route(Event("e", float(i), {"n": i}),
                     source="src", dest="dst", topic="t")
    assert len(received) == 100
    # Messages after the failure used the backup path.
    assert received[99]["route_path"] == ["src", "mid_b", "dst"]

    # Full partition is an error, not silence.
    topology.fail_link("mid_b", "dst")
    with pytest.raises(RoutingError):
        router.route(Event("e", 200.0, {}), source="src", dest="dst", topic="t")
    # Healing restores the cheap path.
    topology.restore_link("mid_a", "dst")
    info = router.route(Event("e", 201.0, {}), source="src", dest="dst", topic="t")
    assert info["path"] == ["src", "mid_a", "dst"]


def main(quick: bool = False) -> None:
    if quick:
        fanout_rows, hop_rows = run_experiment((1, 4), (1, 4), n=100)
    else:
        fanout_rows, hop_rows = run_experiment()
    print_table(
        f"EXP-8a: propagation fan-out ({100 if quick else N_MESSAGES} messages)",
        fanout_rows,
        ["fanout", "msgs_per_s", "deliveries", "deliveries_per_s"],
    )
    print_table(
        f"EXP-8b: multi-hop routing ({100 if quick else 200} messages per point)",
        hop_rows,
        ["hops", "msgs_per_s", "received", "total_hops"],
    )


if __name__ == "__main__":
    main()
