"""Table rendering for experiment harness output."""

from __future__ import annotations



def print_table(title: str, rows: list[dict], columns: list[str] | None = None) -> None:
    """Render experiment rows as an aligned text table (the harness
    output recorded in EXPERIMENTS.md)."""
    if not rows:
        print(f"\n{title}\n  (no rows)")
        return
    if columns is None:
        columns = list(rows[0])
    widths = {
        column: max(len(column), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    print(f"\n{title}")
    header = "  " + "  ".join(column.ljust(widths[column]) for column in columns)
    print(header)
    print("  " + "-" * (len(header) - 2))
    for row in rows:
        print(
            "  "
            + "  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns)
        )


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
