"""EXP-11 — Sharded multi-process scale-out (paper §2.2.a "millions of
simultaneous users").

Claims probed:

* throughput of the batched queue path scales with worker count when
  keys spread across shards (the point of hash partitioning) — measured
  as a 1/2/4/8-shard sweep against the 1-shard batched baseline;
* under Zipf-skewed per-user traffic (the realistic "million simulated
  users" shape), consistent hashing still bounds per-shard imbalance,
  and the fleet acks exactly what it enqueued (exactly-once
  accounting across process boundaries).

Scale-out on a box with fewer cores than shards cannot show real
speedup — every row records ``cores`` so downstream acceptance checks
(``bench_pr7_report.py``) can apply the scaling bars only where the
hardware can express them.

Run standalone:  python benchmarks/bench_exp11_sharding.py [--quick]
"""

from __future__ import annotations

import os
import random
import sys
import time

try:
    from benchmarks.reporting import print_table
except ImportError:
    from reporting import print_table

from repro.queues.message import Message
from repro.shard import ShardCoordinator, ShardedQueueBroker

#: Queues per shard in the sweep — enough keys that the hash spreads
#: work over every worker.
QUEUES_PER_SHARD = 4
BATCH = 64


def run_shard_count(
    shards: int, n_messages: int, *, payload_bytes: int = 64
) -> dict:
    """Publish/consume/ack ``n_messages`` over a ``shards``-worker
    fleet, all traffic on the batched paths; returns throughput."""
    payload = "x" * payload_bytes
    with ShardCoordinator(shards, group_commit_size=BATCH) as coordinator:
        broker = ShardedQueueBroker(coordinator)
        queue_names = [f"stream_{i}" for i in range(QUEUES_PER_SHARD * shards)]
        for name in queue_names:
            broker.create_queue(name)
        started = time.perf_counter()
        for start in range(0, n_messages, BATCH):
            entries = [
                (queue_names[(start + j) % len(queue_names)],
                 Message(payload=payload))
                for j in range(min(BATCH, n_messages - start))
            ]
            broker.publish_many(entries)
        publish_elapsed = time.perf_counter() - started

        started = time.perf_counter()
        consumed = 0
        for name in queue_names:
            while True:
                messages = broker.consume_batch(name, BATCH)
                if not messages:
                    break
                broker.ack_batch(name, [m.message_id for m in messages])
                consumed += len(messages)
        consume_elapsed = time.perf_counter() - started
        assert consumed == n_messages, (consumed, n_messages)
    total = publish_elapsed + consume_elapsed
    return {
        "shards": shards,
        "messages": n_messages,
        "publish_per_s": n_messages / publish_elapsed,
        "consume_per_s": n_messages / consume_elapsed,
        "msgs_per_s": n_messages / total,
        "cores": os.cpu_count() or 1,
    }


def run_scaling_sweep(
    shard_counts: tuple[int, ...], n_messages: int
) -> list[dict]:
    """The EXP-11a sweep; adds ``speedup_vs_1`` relative to the
    1-shard batched baseline (the first entry must be 1)."""
    rows = [run_shard_count(shards, n_messages) for shards in shard_counts]
    baseline = rows[0]["msgs_per_s"]
    for row in rows:
        row["speedup_vs_1"] = row["msgs_per_s"] / baseline
    return rows


def _zipf_user(rng: random.Random, n_users: int, s: float = 1.2) -> int:
    """Draw a user id with a Zipf(s) popularity profile via inverse
    transform over the truncated harmonic weights (no numpy in the
    container; this is exact, if unglamorous)."""
    # Inverse-CDF by bisection on H(k)/H(n) using the integral
    # approximation k^(1-s); exact enough for a load shape.
    u = rng.random()
    exponent = 1.0 - s
    h_n = (n_users ** exponent - 1.0) / exponent
    k = (u * h_n * exponent + 1.0) ** (1.0 / exponent)
    return max(1, min(n_users, int(k)))


def run_zipf_soak(
    *,
    shards: int,
    n_users: int,
    n_messages: int,
    n_queues: int | None = None,
    seed: int = 11,
) -> dict:
    """EXP-11b: Zipf-skewed "simulated users" soak.

    Each message belongs to a user drawn Zipf(1.2) from ``n_users``;
    users map onto ``n_queues`` per-user-group queues by modulo, and
    queues map onto shards by the consistent hash.  Reports per-shard
    enqueue share and depth imbalance, plus exactly-once accounting
    (fleet-wide acked == published, per worker counters).
    """
    if n_queues is None:
        n_queues = 8 * shards
    rng = random.Random(seed)
    with ShardCoordinator(shards, group_commit_size=BATCH) as coordinator:
        broker = ShardedQueueBroker(coordinator)
        queue_names = [f"users_{i}" for i in range(n_queues)]
        placement = {name: broker.create_queue(name) for name in queue_names}

        started = time.perf_counter()
        published = 0
        for start in range(0, n_messages, BATCH):
            entries = []
            for _ in range(min(BATCH, n_messages - start)):
                user = _zipf_user(rng, n_users)
                entries.append(
                    (queue_names[user % n_queues],
                     Message(payload={"user": user}))
                )
            broker.publish_many(entries)
            published += len(entries)
        publish_elapsed = time.perf_counter() - started

        per_shard_enqueued: dict[int, int] = {s: 0 for s in range(shards)}
        per_shard_depth: dict[int, int] = {s: 0 for s in range(shards)}
        for name, depth in (
            (name, broker.depth(name)) for name in queue_names
        ):
            per_shard_depth[placement[name]] += depth
            per_shard_enqueued[placement[name]] += depth

        acked = 0
        for name in queue_names:
            while True:
                messages = broker.consume_batch(name, BATCH)
                if not messages:
                    break
                acked += broker.ack_batch(
                    name, [m.message_id for m in messages]
                )

        # Exactly-once accounting straight from the workers' own
        # registries, not the coordinator's bookkeeping.
        merged = coordinator.metrics()
        fleet_enqueued = sum(
            value
            for key, value in merged["counters"].items()
            if key.startswith("queue.enqueued{") and "shard=" not in key
        )
        fleet_acked = sum(
            value
            for key, value in merged["counters"].items()
            if key.startswith("queue.acked{") and "shard=" not in key
        )
    mean_depth = sum(per_shard_depth.values()) / shards
    imbalance = (
        max(per_shard_depth.values()) / mean_depth if mean_depth else 1.0
    )
    return {
        "shards": shards,
        "users": n_users,
        "messages": published,
        "queues": n_queues,
        "publish_per_s": published / publish_elapsed,
        "per_shard_depth": dict(sorted(per_shard_depth.items())),
        "depth_imbalance": imbalance,
        "fleet_enqueued": fleet_enqueued,
        "fleet_acked": fleet_acked,
        "exactly_once": fleet_enqueued == fleet_acked == published,
        "cores": os.cpu_count() or 1,
    }


def test_exp11_shape():
    """Small end-to-end run pinning the claims the sweep reports on:
    every message survives the fleet roundtrip, speedups are computed
    against the 1-shard arm, and the Zipf soak accounts exactly-once
    with bounded imbalance.  Throughput *ordering* is deliberately not
    asserted — it depends on core count."""
    rows = run_scaling_sweep((1, 2), 256)
    assert [row["shards"] for row in rows] == [1, 2]
    assert rows[0]["speedup_vs_1"] == 1.0
    assert all(row["messages"] == 256 for row in rows)
    assert all(row["msgs_per_s"] > 0 for row in rows)

    soak = run_zipf_soak(shards=2, n_users=5_000, n_messages=256)
    assert soak["exactly_once"], (soak["fleet_enqueued"],
                                  soak["fleet_acked"], soak["messages"])
    assert sum(soak["per_shard_depth"].values()) == 256
    assert soak["depth_imbalance"] <= 2.0
    # Seeded draw: the same seed must land the same placement.
    again = run_zipf_soak(shards=2, n_users=5_000, n_messages=256)
    assert again["per_shard_depth"] == soak["per_shard_depth"]


def main(quick: bool = False) -> None:
    if quick:
        shard_counts: tuple[int, ...] = (1, 2)
        n_messages = 512
        soak = dict(shards=2, n_users=10_000, n_messages=512)
    else:
        shard_counts = (1, 2, 4, 8)
        n_messages = 8_192
        soak = dict(shards=4, n_users=1_000_000, n_messages=16_384)

    rows = run_scaling_sweep(shard_counts, n_messages)
    print_table(
        f"EXP-11a: shard-count sweep ({n_messages} messages, "
        f"batched publish/consume/ack, {os.cpu_count()} cores)",
        [
            {
                "shards": row["shards"],
                "msgs_per_s": row["msgs_per_s"],
                "publish_per_s": row["publish_per_s"],
                "consume_per_s": row["consume_per_s"],
                "speedup_vs_1": row["speedup_vs_1"],
            }
            for row in rows
        ],
    )

    soak_row = run_zipf_soak(**soak)
    print_table(
        f"EXP-11b: Zipf soak ({soak_row['users']:,} simulated users, "
        f"{soak_row['messages']} messages, {soak_row['shards']} shards)",
        [
            {
                "publish_per_s": soak_row["publish_per_s"],
                "depth_imbalance": soak_row["depth_imbalance"],
                "exactly_once": soak_row["exactly_once"],
                "per_shard_depth": str(soak_row["per_shard_depth"]),
            }
        ],
    )


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
