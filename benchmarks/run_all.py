"""Regenerate every experiment's harness table in one run.

Usage:  python benchmarks/run_all.py [--out FILE] [--quick]

Runs EXP-1 … EXP-14 in order and writes the combined tables to stdout
(and optionally a file) — the artifact summarized in EXPERIMENTS.md.
``--quick`` shrinks every experiment to a tiny sweep (seconds total):
a smoke mode for CI and for checking the harness still runs end to end;
its numbers are NOT meaningful measurements.  In quick mode each
experiment's table is followed by a metrics snapshot — the process-wide
counter totals the run produced (see :mod:`repro.obs.metrics`), so the
smoke run also checks that instrumentation is alive end to end.
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import importlib
import io
import sys
import time

from repro.obs.metrics import aggregate_counters, reset_aggregate

EXPERIMENTS = [
    "bench_exp1_capture",
    "bench_exp2_queues",
    "bench_exp3_internal_opt",
    "bench_exp4_rule_scale",
    "bench_exp5_rule_churn",
    "bench_exp6_cep",
    "bench_exp7_analytics",
    "bench_exp8_distribution",
    "bench_exp9_virt",
    "bench_exp10_recovery",
    "bench_exp11_sharding",
    "bench_exp12_availability",
    "bench_exp13_columnar",
    "bench_exp14_disorder",
]


def _metrics_section() -> str:
    """Process-wide counter totals for the experiment that just ran.

    Registries owned by a finished experiment's Database objects fold
    their counts into the process totals on garbage collection, so
    collect first to make the aggregate complete.
    """
    gc.collect()
    totals = aggregate_counters(by_name=True)
    if not totals:
        return "  [metrics: none recorded]"
    rendered = ", ".join(
        f"{name}={int(value) if float(value).is_integer() else value}"
        for name, value in sorted(totals.items())
    )
    return f"  [metrics: {rendered}]"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="also write to this file")
    parser.add_argument(
        "--only", default=None,
        help="comma-separated experiment numbers, e.g. --only 1,4,9",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny sweeps, smoke-test mode (numbers not meaningful)",
    )
    arguments = parser.parse_args(argv)

    selected = EXPERIMENTS
    if arguments.only:
        wanted = {f"bench_exp{n.strip()}_" for n in arguments.only.split(",")}
        selected = [
            name for name in EXPERIMENTS
            if any(name.startswith(prefix) for prefix in wanted)
        ]

    sections: list[str] = []
    for name in selected:
        module = importlib.import_module(
            name if __package__ in (None, "") else f"benchmarks.{name}"
        )
        buffer = io.StringIO()
        if arguments.quick:
            reset_aggregate()
        started = time.perf_counter()
        with contextlib.redirect_stdout(buffer):
            module.main(quick=True) if arguments.quick else module.main()
        elapsed = time.perf_counter() - started
        section = buffer.getvalue().rstrip()
        section = f"{section}\n  [harness wall time: {elapsed:.1f}s]"
        if arguments.quick:
            section = f"{section}\n{_metrics_section()}"
        sections.append(section)
        print(sections[-1])
        sys.stdout.flush()

    if arguments.out:
        with open(arguments.out, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(sections) + "\n")
        print(f"\nwritten to {arguments.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
