"""PR-7 report: sharded multi-process scale-out, machine-readable.

Writes ``BENCH_PR7.json`` at the repo root with two sections:

* ``exp11_sweep`` — throughput vs shard count (1/2/4/8; 1/2 in quick
  mode) on the batched publish/consume/ack paths, with speedup against
  the 1-shard batched baseline.
* ``exp11_zipf`` — the Zipf-skewed "simulated users" soak: per-shard
  depth imbalance under realistic key skew plus fleet-wide
  exactly-once accounting from the workers' own metric registries.

Acceptance bars (>=1.6x at 2 shards, >=2.5x at 4 shards) only make
sense where the hardware can express parallelism, so they are gated on
``os.cpu_count()``: a bar whose shard count exceeds the core count is
reported as skipped rather than failed.  Failures are printed as
``ACCEPTANCE FAIL`` lines, never raised, so a loaded CI box still
produces a diffable report.

Run:  python benchmarks/bench_pr7_report.py [--quick]
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

try:
    from benchmarks.bench_exp11_sharding import (
        run_scaling_sweep,
        run_zipf_soak,
    )
except ImportError:
    from bench_exp11_sharding import run_scaling_sweep, run_zipf_soak

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"

#: speedup-vs-1-shard floors, applied only when cores >= shard count.
BARS = {2: 1.6, 4: 2.5}


def _best_sweep(runs: list[list[dict]]) -> list[dict]:
    """Per shard count, keep the fastest run (noise floors, not means,
    are the honest aggregate on a shared box), then recompute speedups
    against the surviving 1-shard row."""
    best: dict[int, dict] = {}
    for rows in runs:
        for row in rows:
            if (
                row["shards"] not in best
                or row["msgs_per_s"] > best[row["shards"]]["msgs_per_s"]
            ):
                best[row["shards"]] = dict(row)
    rows = [best[shards] for shards in sorted(best)]
    baseline = rows[0]["msgs_per_s"]
    for row in rows:
        row["speedup_vs_1"] = row["msgs_per_s"] / baseline
    return rows


def build_report(quick: bool = False) -> dict:
    repeats = 1 if quick else 3
    shard_counts = (1, 2) if quick else (1, 2, 4, 8)
    n_messages = 512 if quick else 8_192
    soak = (
        dict(shards=2, n_users=10_000, n_messages=512)
        if quick
        else dict(shards=4, n_users=1_000_000, n_messages=16_384)
    )

    sweep_rows = _best_sweep(
        [run_scaling_sweep(shard_counts, n_messages) for _ in range(repeats)]
    )
    soak_row = run_zipf_soak(**soak)

    return {
        "experiment": "PR-7 sharded multi-process scale-out (EXP-11)",
        "quick": quick,
        "cores": os.cpu_count() or 1,
        "exp11_sweep": {
            "n_messages": n_messages,
            "arms": [
                {
                    "shards": row["shards"],
                    "msgs_per_s": round(row["msgs_per_s"], 1),
                    "publish_per_s": round(row["publish_per_s"], 1),
                    "consume_per_s": round(row["consume_per_s"], 1),
                    "speedup_vs_1": round(row["speedup_vs_1"], 3),
                }
                for row in sweep_rows
            ],
        },
        "exp11_zipf": {
            "users": soak_row["users"],
            "messages": soak_row["messages"],
            "shards": soak_row["shards"],
            "queues": soak_row["queues"],
            "publish_per_s": round(soak_row["publish_per_s"], 1),
            "per_shard_depth": soak_row["per_shard_depth"],
            "depth_imbalance": round(soak_row["depth_imbalance"], 3),
            "fleet_enqueued": soak_row["fleet_enqueued"],
            "fleet_acked": soak_row["fleet_acked"],
            "exactly_once": soak_row["exactly_once"],
        },
    }


def _check(report: dict) -> tuple[list[str], list[str]]:
    """Returns (problems, skipped-bar notes)."""
    problems: list[str] = []
    skipped: list[str] = []
    cores = report["cores"]
    arms = {row["shards"]: row for row in report["exp11_sweep"]["arms"]}
    for shards, floor in sorted(BARS.items()):
        if shards not in arms:
            continue
        if cores < shards:
            skipped.append(
                f"exp11: {floor}x bar at {shards} shards skipped "
                f"(only {cores} core(s) — scale-out cannot show here)"
            )
            continue
        speedup = arms[shards]["speedup_vs_1"]
        if speedup < floor:
            problems.append(
                f"exp11: {shards}-shard speedup {speedup}x below the "
                f"{floor}x floor"
            )
    zipf = report["exp11_zipf"]
    if not zipf["exactly_once"]:
        problems.append(
            "exp11: zipf soak lost or duplicated messages "
            f"(enqueued={zipf['fleet_enqueued']} acked={zipf['fleet_acked']} "
            f"published={zipf['messages']})"
        )
    # 64 vnodes/shard should keep skewed load within ~2x of fair share.
    if zipf["depth_imbalance"] > 2.0:
        problems.append(
            f"exp11: zipf depth imbalance {zipf['depth_imbalance']}x "
            "exceeds the 2x consistent-hashing bound"
        )
    return problems, skipped


def main(quick: bool = False) -> None:
    report = build_report(quick=quick)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    for row in report["exp11_sweep"]["arms"]:
        print(
            f"  {row['shards']} shard(s): {row['msgs_per_s']:,.0f} msgs/s "
            f"({row['speedup_vs_1']}x vs 1 shard)"
        )
    zipf = report["exp11_zipf"]
    print(
        f"  zipf soak: imbalance {zipf['depth_imbalance']}x, "
        f"exactly_once={zipf['exactly_once']}"
    )
    problems, skipped = _check(report)
    for note in skipped:
        print(f"  SKIPPED: {note}")
    for problem in problems:
        print(f"  ACCEPTANCE FAIL: {problem}")
    if not problems:
        print("  all applicable PR-7 acceptance bars met")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
