"""EXP-13 — Vectorized columnar execution vs row-at-a-time aggregation.

The analytics path's aggregate SELECTs historically evaluated one
compiled closure per row.  The columnar engine runs the same statements
as scan→mask→reduce over a ColumnStore projection (numpy kernels, zero
per-row Python calls).  This experiment sweeps table size and WHERE
selectivity and reports both arms, their speedup, and a per-arm
result-equivalence check — the speedup is only meaningful if both arms
compute the same answer.

Arms per (rows, selectivity) cell:

* ``agg``   — ungrouped: ``SELECT count(*), sum, avg, min, max WHERE val < T``
* ``group`` — grouped: ``SELECT grp, count(*), sum(val), avg(score) ...
  GROUP BY grp`` (8 groups)

Run standalone:  python benchmarks/bench_exp13_columnar.py [--quick]
"""

from __future__ import annotations

import math
import random
import sys
import time

try:
    from benchmarks.reporting import print_table
except ImportError:
    from reporting import print_table

from repro.clock import SimulatedClock
from repro.db import Database
from repro.db.sql import executor

SIZES = [1_000, 10_000, 100_000, 500_000]
QUICK_SIZES = [1_000, 10_000]
SELECTIVITIES = [0.01, 0.1, 0.9]
#: val is uniform over [0, VAL_RANGE); ``val < sel * VAL_RANGE``
#: selects ~sel of the table.
VAL_RANGE = 10_000
GROUPS = 8


def make_db(rows: int, seed: int = 13) -> Database:
    rng = random.Random(seed)
    db = Database(clock=SimulatedClock(), sync_policy="none")
    db.execute("CREATE TABLE ev (id INT, grp TEXT, val INT, score REAL)")
    batch = []
    for i in range(rows):
        batch.append(
            {
                "id": i,
                "grp": f"g{rng.randrange(GROUPS)}",
                "val": rng.randrange(VAL_RANGE),
                # Integer-valued REAL keeps sums exactly representable,
                # so the equivalence check can stay strict.
                "score": float(rng.randrange(1_000)),
            }
        )
        if len(batch) >= 10_000:
            db.insert_many("ev", batch)
            batch = []
    if batch:
        db.insert_many("ev", batch)
    return db


def _queries(selectivity: float) -> dict[str, str]:
    threshold = int(selectivity * VAL_RANGE)
    return {
        "agg": (
            "SELECT count(*), sum(val), avg(val), min(val), max(val)"
            f" FROM ev WHERE val < {threshold}"
        ),
        "group": (
            "SELECT grp, count(*), sum(val), avg(score)"
            f" FROM ev WHERE val < {threshold} GROUP BY grp"
        ),
    }


def _time_query(db: Database, query: str, repeats: int) -> tuple[float, list]:
    best = math.inf
    rows: list = []
    for _ in range(repeats):
        started = time.perf_counter()
        rows = db.query(query)
        best = min(best, time.perf_counter() - started)
    return best, rows


def _results_match(fast: list, slow: list) -> bool:
    if len(fast) != len(slow):
        return False

    def key(row):
        # Round floats in the sort key so last-ulp differences cannot
        # misalign rows; the per-column check below stays strict.
        return sorted(
            (k, round(v, 6) if isinstance(v, float) else repr(v))
            for k, v in row.items()
        )

    for fast_row, slow_row in zip(sorted(fast, key=key), sorted(slow, key=key)):
        if set(fast_row) != set(slow_row):
            return False
        for column, fast_value in fast_row.items():
            slow_value = slow_row[column]
            if isinstance(fast_value, float) and isinstance(slow_value, float):
                if not math.isclose(
                    fast_value, slow_value, rel_tol=1e-12, abs_tol=1e-12
                ):
                    return False
            elif fast_value != slow_value:
                return False
    return True


def run_experiment(
    sizes: list[int] | None = None,
    selectivities: list[float] | None = None,
    repeats: int = 3,
) -> list[dict]:
    sizes = sizes or SIZES
    selectivities = selectivities or SELECTIVITIES
    results: list[dict] = []
    for rows in sizes:
        db = make_db(rows)
        # Warm the projection outside every timed region: steady-state
        # analytics amortize the build across many queries.
        db.query("SELECT count(*) FROM ev")
        for selectivity in selectivities:
            for shape, query in _queries(selectivity).items():
                fast_before = executor.VECTOR_STATS["fast_path"]
                vec_s, vec_rows = _time_query(db, query, repeats)
                engaged = executor.VECTOR_STATS["fast_path"] > fast_before
                previous = executor.set_vectorized(False)
                try:
                    row_s, row_rows = _time_query(db, query, repeats)
                finally:
                    executor.set_vectorized(previous)
                results.append(
                    {
                        "rows": rows,
                        "selectivity": selectivity,
                        "shape": shape,
                        "row_ms": round(row_s * 1e3, 3),
                        "vec_ms": round(vec_s * 1e3, 3),
                        "speedup": round(row_s / vec_s, 2) if vec_s else 0.0,
                        "vectorized": engaged,
                        "match": _results_match(vec_rows, row_rows),
                    }
                )
    return results


def test_exp13_shape():
    """Smoke: the sweep runs, the fast path engages on every arm, and
    both arms agree on every result."""
    results = run_experiment(sizes=[1_000], selectivities=[0.1], repeats=1)
    assert len(results) == 2
    for row in results:
        assert row["vectorized"], f"fast path did not engage: {row}"
        assert row["match"], f"arms disagree: {row}"
        assert row["vec_ms"] > 0 and row["row_ms"] > 0


def main(quick: bool = False) -> None:
    sizes = QUICK_SIZES if quick else SIZES
    repeats = 2 if quick else 3
    results = run_experiment(sizes=sizes, repeats=repeats)
    print_table(
        f"EXP-13: row vs vectorized aggregation (best of {repeats})",
        results,
        ["rows", "selectivity", "shape", "row_ms", "vec_ms", "speedup",
         "vectorized", "match"],
    )
    mismatches = [row for row in results if not row["match"]]
    if mismatches:
        print(f"  EQUIVALENCE FAIL: {len(mismatches)} arm(s) disagree")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
