"""EXP-6 — Continuous queries as the base for CEP (paper §2.2.c.i.3).

Sweeps pattern complexity (SEQ2, SEQ3, SEQ with negation, Kleene) and
the WITHIN window over a market tick stream, reporting throughput,
match counts, and live NFA-run state.  The ablation arm disables
expired-run pruning to show why WITHIN-based pruning is what keeps the
matcher's state (and cost) bounded.

Run standalone:  python benchmarks/bench_exp6_cep.py
"""

from __future__ import annotations

import time

import pytest

try:
    from benchmarks.reporting import print_table
except ImportError:
    from reporting import print_table

from repro.cq import Kleene, PatternElement, PatternMatcher, Seq, Stream
from repro.workloads import MarketDataGenerator

N_TICKS = 8_000


def patterns(within: float) -> dict[str, Seq]:
    return {
        "SEQ2": Seq(
            PatternElement("a", "tick", "price > 100"),
            PatternElement("b", "tick", "symbol = a_symbol AND price < a_price * 0.99"),
            within=within,
        ),
        "SEQ3": Seq(
            PatternElement("a", "tick", "price > 100"),
            PatternElement("b", "tick", "symbol = a_symbol AND price > a_price"),
            PatternElement("c", "tick", "symbol = a_symbol AND price < b_price * 0.99"),
            within=within,
        ),
        "SEQ2+NEG": Seq(
            PatternElement("a", "tick", "price > 100"),
            PatternElement("n", "tick", "symbol = a_symbol AND qty > 450",
                           negated=True),
            PatternElement("b", "tick", "symbol = a_symbol AND price < a_price * 0.99"),
            within=within,
        ),
        "KLEENE": Seq(
            PatternElement("a", "tick", "price > 100"),
            Kleene("up", "tick",
                   "symbol = a_symbol AND (up_price IS NULL OR price > up_price)"),
            PatternElement("b", "tick", "symbol = a_symbol AND price < up_price"),
            within=within,
        ),
    }


def tick_stream(n: int):
    stream = MarketDataGenerator(
        episode_count=5, seed=77, tick_rate=40.0
    ).generate(n / 40.0)
    return stream.events[:n]


def run_one(pattern: Seq, events, *, prune: bool = True) -> dict:
    source = Stream("ticks")
    matcher = PatternMatcher(
        source, pattern, output_type="m", prune_expired=prune,
    )
    started = time.perf_counter()
    for event in events:
        source.push(event)
    elapsed = time.perf_counter() - started
    return {
        "events_per_s": len(events) / elapsed,
        "matches": matcher.stats["matches"],
        "peak_runs": matcher.stats["peak_runs"],
        "pruned": matcher.stats["runs_pruned"],
    }


def run_experiment(n: int = N_TICKS) -> list[dict]:
    events = tick_stream(n)
    rows: list[dict] = []
    for within in (2.0, 10.0):
        for name, pattern in patterns(within).items():
            result = run_one(pattern, events)
            rows.append({"pattern": name, "within_s": within, **result})
    # Pruning ablation on the cheapest pattern.
    for prune in (True, False):
        result = run_one(patterns(5.0)["SEQ2"], events, prune=prune)
        rows.append({
            "pattern": f"SEQ2 (prune={'on' if prune else 'off'})",
            "within_s": 5.0,
            **result,
        })
    return rows


# -- pytest-benchmark -----------------------------------------------------------


@pytest.mark.parametrize("name", ["SEQ2", "SEQ3", "KLEENE"])
def test_exp6_pattern_throughput(benchmark, name):
    # Benchmarked per-batch, not per-push: pushing one event mutates
    # matcher state, so unbounded per-call calibration would accumulate
    # runs forever. A fresh matcher per batch keeps iterations i.i.d.
    events = tick_stream(500)

    def run_batch():
        source = Stream("ticks")
        PatternMatcher(source, patterns(5.0)[name], output_type="m")
        for event in events:
            source.push(event)

    benchmark.pedantic(run_batch, rounds=3, iterations=1)


def test_exp6_shape():
    events = tick_stream(3_000)
    seq2 = run_one(patterns(5.0)["SEQ2"], events)
    seq3 = run_one(patterns(5.0)["SEQ3"], events)
    # Longer sequences hold more intermediate state and cost more.
    assert seq3["events_per_s"] <= seq2["events_per_s"] * 1.2
    # A wider WITHIN keeps more runs alive.
    narrow = run_one(patterns(1.0)["SEQ2"], events)
    wide = run_one(patterns(20.0)["SEQ2"], events)
    assert wide["peak_runs"] > narrow["peak_runs"]
    # Pruning bounds state without changing matches.
    pruned = run_one(patterns(5.0)["SEQ2"], events, prune=True)
    unpruned = run_one(patterns(5.0)["SEQ2"], events, prune=False)
    assert pruned["matches"] == unpruned["matches"]
    assert pruned["peak_runs"] < unpruned["peak_runs"]
    assert pruned["pruned"] > 0


def main(quick: bool = False) -> None:
    n = 800 if quick else N_TICKS
    print_table(
        f"EXP-6: CEP pattern matching over {n} ticks",
        run_experiment(n=n),
        ["pattern", "within_s", "events_per_s", "matches", "peak_runs", "pruned"],
    )


if __name__ == "__main__":
    main()
