"""PR-4 report: statement cache + compiled expressions, machine-readable.

Runs the EXP-3 enqueue-path arms (internal / client / prepared /
batched) and the EXP-4 rule-evaluation arms (naive / indexed /
compiled) and writes ``BENCH_PR4.json`` at the repo root with per-arm
throughput and statement-cache hit rates, so perf regressions in the
cache or the expression compiler are diffable across commits.

Run:  python benchmarks/bench_pr4_report.py [--quick]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

try:
    from benchmarks.bench_exp3_internal_opt import (
        run_experiment as run_exp3,
    )
    from benchmarks.bench_exp4_rule_scale import (
        run_experiment as run_exp4,
    )
except ImportError:
    from bench_exp3_internal_opt import run_experiment as run_exp3
    from bench_exp4_rule_scale import run_experiment as run_exp4

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"


def _best_of(runs: list[list[dict]], cost) -> list[dict]:
    """The run with the lowest total cost — one internally consistent
    sweep from the least-loaded repetition, not a mix of runs."""
    return min(runs, key=lambda rows: sum(cost(row) for row in rows))


def build_report(quick: bool = False) -> dict:
    exp3_n = 300 if quick else 1500
    repeats = 1 if quick else 3
    exp3_rows = _best_of(
        [run_exp3(n=exp3_n) for _ in range(repeats)],
        lambda row: 1.0 / row["msgs_per_s"],
    )
    if quick:
        exp4_runs = [
            run_exp4(rule_counts=(100, 1_000), events_per_point=50)
            for _ in range(repeats)
        ]
    else:
        exp4_runs = [
            run_exp4(rule_counts=(100, 1_000, 10_000), events_per_point=200)
            for _ in range(repeats)
        ]
    # EXP-4 arms are independent absolute measurements (no intra-run
    # ratios), so take the per-arm minimum across repetitions — on a
    # single-vCPU box scheduler noise otherwise swamps the ~10-20%
    # compiled-vs-interpreted signal.
    best_by_arm: dict = {}
    for rows in exp4_runs:
        for row in rows:
            key = (row["rules"], row["mode"])
            if (
                key not in best_by_arm
                or row["us_per_event"] < best_by_arm[key]["us_per_event"]
            ):
                best_by_arm[key] = row
    arm_order = {"naive": 0, "naive*": 0, "indexed": 1, "compiled": 2}
    exp4_rows = [
        best_by_arm[key]
        for key in sorted(
            best_by_arm, key=lambda k: (k[0], arm_order.get(k[1], 9))
        )
    ]
    return {
        "experiment": "PR-4 statement cache + compiled expressions",
        "quick": quick,
        "exp3": {
            "n_messages": exp3_n,
            "arms": [
                {
                    "path": row["path"].strip(),
                    "msgs_per_s": round(row["msgs_per_s"], 1),
                    "relative_to_internal": round(row["relative"], 3),
                    **(
                        {"statement_cache_hit_rate": round(row["hit_rate"], 4)}
                        if "hit_rate" in row
                        else {}
                    ),
                }
                for row in exp3_rows
            ],
        },
        "exp4": {
            "events_per_point": 50 if quick else 200,
            "arms": [
                {
                    "rules": row["rules"],
                    "mode": row["mode"],
                    "us_per_event": round(row["us_per_event"], 2),
                    "conditions_per_event": round(
                        row["conditions_per_event"], 2
                    ),
                    "events_per_s": round(row["events_per_s"], 1),
                }
                for row in exp4_rows
            ],
        },
    }


def main(quick: bool = False) -> None:
    report = build_report(quick=quick)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    prepared = next(
        arm
        for arm in report["exp3"]["arms"]
        if arm["path"] == "client prepared INSERT"
    )
    print(
        "  prepared arm: "
        f"{prepared['relative_to_internal']}x internal, "
        f"hit rate {prepared['statement_cache_hit_rate']:.1%}"
    )


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
