"""PR-8 report: availability under primary failure, machine-readable.

Writes ``BENCH_PR8.json`` at the repo root from the EXP-12 harness:
one arm per repair path (``promote`` — in-memory primary + replica;
``restart`` — durable primary, WAL replay), each recording the
unavailability window, pre/post-kill throughput, stale reads served
during the outage, and the loss/duplication accounting.

Acceptance bars:

* **no committed loss, no duplicates** — hard bars, never gated: a
  loaded box may be slow but must not lose acknowledged messages;
* **unavailability window** and **throughput recovery** are timing
  bars, gated on ``os.cpu_count() >= 2``: the supervisor thread, the
  client loop, and the worker processes must actually run in parallel
  for the window to mean anything.  On a 1-core box they are reported
  as skipped rather than failed.
* in promote mode the replica must have served at least one tagged
  stale read during the outage (degraded-mode serving, not an error
  storm).

Failures are printed as ``ACCEPTANCE FAIL`` lines, never raised, so a
loaded CI box still produces a diffable report.

Run:  python benchmarks/bench_pr8_report.py [--quick]
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

try:
    from benchmarks.bench_exp12_availability import run_modes
except ImportError:
    from bench_exp12_availability import run_modes

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"

#: Hard ceiling on the measured outage window (ms).  Generous: a
#: healthy run closes it in well under 200ms; the bar exists to catch
#: a supervisor that converges by luck or not at all.
UNAVAILABILITY_CEILING_MS = 5_000.0
#: Post-recovery throughput floor as a fraction of the warm baseline.
RECOVERY_THROUGHPUT_FLOOR = 0.5


def _best_arms(runs: list[list[dict]]) -> list[dict]:
    """Per mode, keep the run with the smallest unavailability window
    (noise floors, not means, are the honest aggregate on a shared
    box); loss/duplicate counts are summed across every run — a loss
    in any run is a failure no aggregate may hide."""
    best: dict[str, dict] = {}
    totals: dict[str, dict[str, int]] = {}
    for rows in runs:
        for row in rows:
            mode = row["mode"]
            tally = totals.setdefault(mode, {"lost": 0, "duplicates": 0, "runs": 0})
            tally["lost"] += row["lost"]
            tally["duplicates"] += row["duplicates"]
            tally["runs"] += 1
            if (
                mode not in best
                or row["unavailable_ms"] < best[mode]["unavailable_ms"]
            ):
                best[mode] = dict(row)
    arms = []
    for mode in sorted(best):
        arm = best[mode]
        arm["lost_all_runs"] = totals[mode]["lost"]
        arm["duplicates_all_runs"] = totals[mode]["duplicates"]
        arm["runs"] = totals[mode]["runs"]
        arms.append(arm)
    return arms


def build_report(quick: bool = False) -> dict:
    repeats = 1 if quick else 3
    n_messages = 256 if quick else 2_048
    arms = _best_arms([run_modes(n_messages) for _ in range(repeats)])
    return {
        "experiment": "PR-8 availability under primary failure (EXP-12)",
        "quick": quick,
        "cores": os.cpu_count() or 1,
        "bars": {
            "unavailability_ceiling_ms": UNAVAILABILITY_CEILING_MS,
            "recovery_throughput_floor": RECOVERY_THROUGHPUT_FLOOR,
        },
        "exp12_arms": [
            {
                "mode": row["mode"],
                "runs": row["runs"],
                "messages_per_run": row["messages"],
                "warm_per_s": round(row["warm_per_s"], 1),
                "recovered_per_s": round(row["recovered_per_s"], 1),
                "recovered_ratio": round(
                    row["recovered_per_s"] / row["warm_per_s"], 3
                ),
                "unavailable_ms": round(row["unavailable_ms"], 2),
                "failed_writes": row["failed_writes"],
                "stale_reads": row["stale_reads"],
                "lost_all_runs": row["lost_all_runs"],
                "duplicates_all_runs": row["duplicates_all_runs"],
                "restarts": row["restarts"],
                "promotions": row["promotions"],
            }
            for row in arms
        ],
    }


def _check(report: dict) -> tuple[list[str], list[str]]:
    """Returns (problems, skipped-bar notes)."""
    problems: list[str] = []
    skipped: list[str] = []
    cores = report["cores"]
    timing_bars_apply = cores >= 2
    for arm in report["exp12_arms"]:
        mode = arm["mode"]
        if arm["lost_all_runs"]:
            problems.append(
                f"exp12/{mode}: {arm['lost_all_runs']} committed "
                "message(s) lost across runs"
            )
        if arm["duplicates_all_runs"]:
            problems.append(
                f"exp12/{mode}: {arm['duplicates_all_runs']} duplicate "
                "deliveries across runs"
            )
        if mode == "promote" and arm["stale_reads"] == 0:
            problems.append(
                "exp12/promote: no stale replica reads served during "
                "the outage — degraded-mode reads are not working"
            )
        if not timing_bars_apply:
            skipped.append(
                f"exp12/{mode}: timing bars skipped (only {cores} core(s))"
            )
            continue
        if arm["unavailable_ms"] > UNAVAILABILITY_CEILING_MS:
            problems.append(
                f"exp12/{mode}: unavailability window "
                f"{arm['unavailable_ms']}ms exceeds the "
                f"{UNAVAILABILITY_CEILING_MS}ms ceiling"
            )
        if arm["recovered_ratio"] < RECOVERY_THROUGHPUT_FLOOR:
            problems.append(
                f"exp12/{mode}: recovered throughput is only "
                f"{arm['recovered_ratio']}x of warm baseline (floor "
                f"{RECOVERY_THROUGHPUT_FLOOR}x)"
            )
    return problems, skipped


def main(quick: bool = False) -> None:
    report = build_report(quick=quick)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    for arm in report["exp12_arms"]:
        print(
            f"  {arm['mode']}: outage {arm['unavailable_ms']}ms, "
            f"recovered at {arm['recovered_ratio']}x warm throughput, "
            f"lost={arm['lost_all_runs']} dups={arm['duplicates_all_runs']} "
            f"stale_reads={arm['stale_reads']}"
        )
    problems, skipped = _check(report)
    for note in skipped:
        print(f"  SKIPPED: {note}")
    for problem in problems:
        print(f"  ACCEPTANCE FAIL: {problem}")
    if not problems:
        print("  all applicable PR-8 acceptance bars met")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
