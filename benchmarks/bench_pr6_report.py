"""PR-6 report: delta processing + the two perf-cliff fixes, machine-readable.

Writes ``BENCH_PR6.json`` at the repo root with three sections:

* ``exp7_delta`` — the IVM arm: a per-account analytics view read after
  every batch, delta mode vs full recompute (identical outputs asserted
  inside the run; the speedup is the DBToaster-style payoff).
* ``exp3`` — the enqueue-path arms re-measured with per-arm heap
  isolation, proving the enqueue_batch(256) throughput cliff recorded
  in BENCH_PR4.json is gone (it was cross-arm gen-2 GC billing, plus a
  trigger-context allocation on every row of trigger-free tables).
* ``exp4`` — the rule-scale arms re-measured with the fused/default-arg
  compiled closures, proving compiled <= indexed at every rule count
  (the PR-4 inversion at 10k rules was GC walking the closure graph).

Run:  python benchmarks/bench_pr6_report.py [--quick]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

try:
    from benchmarks.bench_exp3_internal_opt import (
        run_experiment as run_exp3,
    )
    from benchmarks.bench_exp4_rule_scale import (
        run_experiment as run_exp4,
    )
    from benchmarks.bench_exp7_analytics import run_delta_experiment
except ImportError:
    from bench_exp3_internal_opt import run_experiment as run_exp3
    from bench_exp4_rule_scale import run_experiment as run_exp4
    from bench_exp7_analytics import run_delta_experiment

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"


def _best_exp3(runs: list[list[dict]]) -> list[dict]:
    return min(
        runs, key=lambda rows: sum(1.0 / row["msgs_per_s"] for row in rows)
    )


def _best_exp4_by_arm(runs: list[list[dict]]) -> list[dict]:
    best: dict = {}
    for rows in runs:
        for row in rows:
            key = (row["rules"], row["mode"])
            if (
                key not in best
                or row["us_per_event"] < best[key]["us_per_event"]
            ):
                best[key] = row
    arm_order = {"naive": 0, "naive*": 0, "indexed": 1, "compiled": 2}
    return [
        best[key]
        for key in sorted(best, key=lambda k: (k[0], arm_order.get(k[1], 9)))
    ]


def build_report(quick: bool = False) -> dict:
    repeats = 1 if quick else 3

    delta_rows = run_delta_experiment(duration=60.0 if quick else 300.0)

    exp3_n = 300 if quick else 1500
    exp3_rows = _best_exp3([run_exp3(n=exp3_n) for _ in range(repeats)])

    rule_counts = (100, 1_000) if quick else (100, 1_000, 10_000)
    events_per_point = 50 if quick else 200
    exp4_rows = _best_exp4_by_arm([
        run_exp4(rule_counts=rule_counts, events_per_point=events_per_point)
        for _ in range(repeats)
    ])

    return {
        "experiment": "PR-6 delta processing (IVM) + perf-cliff fixes",
        "quick": quick,
        "exp7_delta": {
            "view": "per-account Count/Sum/Avg/Min/Max/Stddev, "
            "snapshot per 64-event batch, outputs asserted identical",
            "arms": [
                {
                    "arm": row["arm"],
                    "events": row["events"],
                    "retained_rows": row["retained_rows"],
                    "snapshots": row["snapshots"],
                    "events_per_s": round(row["events_per_s"], 1),
                    "speedup_vs_recompute": round(
                        row["speedup_vs_recompute"], 2
                    ),
                }
                for row in delta_rows
            ],
        },
        "exp3": {
            "n_messages": exp3_n,
            "arms": [
                {
                    "path": row["path"].strip(),
                    "msgs_per_s": round(row["msgs_per_s"], 1),
                    "relative_to_internal": round(row["relative"], 3),
                    **(
                        {"statement_cache_hit_rate": round(row["hit_rate"], 4)}
                        if "hit_rate" in row
                        else {}
                    ),
                }
                for row in exp3_rows
            ],
        },
        "exp4": {
            "events_per_point": events_per_point,
            "arms": [
                {
                    "rules": row["rules"],
                    "mode": row["mode"],
                    "us_per_event": round(row["us_per_event"], 2),
                    "conditions_per_event": round(
                        row["conditions_per_event"], 2
                    ),
                    "events_per_s": round(row["events_per_s"], 1),
                }
                for row in exp4_rows
            ],
        },
    }


def _check(report: dict) -> list[str]:
    """The acceptance bars this PR claims; failures are printed, not
    raised, so a loaded CI box still produces a diffable report."""
    problems: list[str] = []
    delta = {row["arm"]: row for row in report["exp7_delta"]["arms"]}
    if delta["delta"]["speedup_vs_recompute"] < 5.0:
        problems.append(
            "exp7: delta arm below 5x over recompute "
            f"({delta['delta']['speedup_vs_recompute']}x)"
        )
    exp3 = {row["path"]: row for row in report["exp3"]["arms"]}
    t64 = exp3["internal, enqueue_batch(64)"]["msgs_per_s"]
    t256 = exp3["internal, enqueue_batch(256)"]["msgs_per_s"]
    if t256 < t64 * 0.9:
        problems.append(
            f"exp3: batch-256 cliff is back ({t256:.0f} vs {t64:.0f} msgs/s)"
        )
    by_rules: dict = {}
    for row in report["exp4"]["arms"]:
        by_rules.setdefault(row["rules"], {})[row["mode"]] = row
    for rules, arms in sorted(by_rules.items()):
        if "compiled" in arms and "indexed" in arms:
            if arms["compiled"]["us_per_event"] > arms["indexed"][
                "us_per_event"
            ]:
                problems.append(
                    f"exp4: compiled slower than indexed at {rules} rules"
                )
    return problems


def main(quick: bool = False) -> None:
    report = build_report(quick=quick)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    delta = {row["arm"]: row for row in report["exp7_delta"]["arms"]}
    print(
        "  exp7 delta arm: "
        f"{delta['delta']['speedup_vs_recompute']}x over recompute "
        f"({delta['delta']['retained_rows']} retained rows)"
    )
    problems = _check(report)
    for problem in problems:
        print(f"  ACCEPTANCE FAIL: {problem}")
    if not problems:
        print("  all PR-6 acceptance bars met")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
