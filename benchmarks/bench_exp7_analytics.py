"""EXP-7 — Continuous analytics identify valuable continuous queries
(paper §2.2.c.i.4).

A pool of candidate continuous queries — some genuinely tracking the
labelled critical condition, some chatty, some blind, some mistuned —
runs over a labelled order-flow stream.  The
:class:`repro.cq.analytics.QueryValueScorer` ranks them by measured
value (precision × recall × timeliness); the experiment reports the
ranking and checks that top-k selection recovers exactly the queries an
operator should deploy.

Run standalone:  python benchmarks/bench_exp7_analytics.py
"""

from __future__ import annotations

import time

import pytest

try:
    from benchmarks.reporting import print_table
except ImportError:
    from reporting import print_table

from repro.cq import (
    Avg,
    ContinuousQuery,
    Count,
    MaterializedView,
    Max,
    Min,
    QueryValueScorer,
    Stddev,
    Stream,
    Sum,
)
from repro.workloads import OrderFlowGenerator

GOOD_QUERIES = {"burst_window", "big_order"}

VIEW_SPEC = {
    "orders": (None, Count),
    "volume": ("qty", Sum),
    "avg_qty": ("qty", Avg),
    "min_px": ("price", Min),
    "max_px": ("price", Max),
    "px_sd": ("price", Stddev),
}


def build_candidates() -> list[ContinuousQuery]:
    """A realistic candidate pool: 2 good, 4 weak."""
    return [
        # GOOD: bursts of very large orders per account.
        ContinuousQuery("burst_window")
        .filter("qty >= 2000")
        .window_count(3, key_field="account")
        .aggregate("a.burst", {"n": (None, Count)}),
        # GOOD: any outsized order.
        ContinuousQuery("big_order").filter("qty >= 5000"),
        # WEAK: fires on a large fraction of normal traffic.
        ContinuousQuery("chatty").filter("qty > 50"),
        # WEAK: watches the wrong attribute entirely.
        ContinuousQuery("wrong_signal").filter("price > 290"),
        # WEAK: threshold so high it never fires.
        ContinuousQuery("blind").filter("qty > 10000000"),
        # WEAK: right idea, wrong side filter drops the bursts.
        ContinuousQuery("mistuned").filter("qty >= 2000 AND side = 'sell'"),
    ]


def run_experiment(duration: float = 400.0) -> tuple[list[dict], float]:
    generator = OrderFlowGenerator(episode_count=4, seed=57)
    stream = generator.generate(duration)
    scorer = QueryValueScorer(stream.episodes, tolerance=10.0)
    candidates = build_candidates()
    for query in candidates:
        scorer.attach(query)
    started = time.perf_counter()
    for event in stream:
        for query in candidates:
            query.push(event)
    for query in candidates:
        query.flush()
    elapsed = time.perf_counter() - started
    rows = [
        {
            "query": score.name,
            "alerts": score.alerts,
            "precision": score.precision,
            "recall": score.recall,
            "mean_delay_s": score.mean_detection_delay,
            "value": score.value,
        }
        for score in scorer.scores()
    ]
    return rows, len(stream) * len(candidates) / elapsed


def run_delta_experiment(
    duration: float = 400.0, batch_size: int = 64
) -> list[dict]:
    """Delta arm: maintain a per-account analytics view over the order
    stream, reading its state after every batch (the continuous-query
    access pattern), in delta mode vs full recompute.

    The recompute baseline refolds every retained row on each read —
    O(total) per snapshot — while the delta view applies each batch
    once and reads in O(groups x aggregates).  Both must produce
    identical final contents; the speedup is the IVM payoff.
    """
    generator = OrderFlowGenerator(episode_count=4, seed=57)
    events = generator.generate(duration).events
    rows: list[dict] = []
    finals = {}
    for mode, recompute in (("delta", False), ("recompute", True)):
        # Read after every batch: push in batch_size chunks, snapshot
        # between them (matches how a dashboard polls the view).
        source = Stream("orders")
        view = MaterializedView(
            "per_account", VIEW_SPEC, key_field="account", recompute=recompute
        ).bind_stream(source, batch_size=batch_size)
        started = time.perf_counter()
        snapshots = 0
        for index, event in enumerate(events):
            source.push(event)
            if (index + 1) % batch_size == 0:
                view.snapshot()
                snapshots += 1
        view.flush()
        final = view.snapshot()
        elapsed = time.perf_counter() - started
        finals[mode] = final
        rows.append({
            "arm": mode,
            "events": len(events),
            "retained_rows": final.deltas_applied,
            "snapshots": snapshots + 1,
            "elapsed_s": elapsed,
            "events_per_s": len(events) / elapsed,
        })
    # Identical outputs: the delta state is indistinguishable from the
    # refolded truth (guarded here so the speedup is never a wrong answer).
    delta_groups = finals["delta"].groups
    recompute_groups = finals["recompute"].groups
    assert delta_groups.keys() == recompute_groups.keys()
    for key, group in delta_groups.items():
        for field, value in group.items():
            other = recompute_groups[key][field]
            if isinstance(value, float):
                assert abs(value - other) <= 1e-9 * max(1.0, abs(other))
            else:
                assert value == other
    speedup = rows[1]["elapsed_s"] / rows[0]["elapsed_s"]
    for row in rows:
        row["speedup_vs_recompute"] = (
            speedup if row["arm"] == "delta" else 1.0
        )
    return rows


def test_exp7_delta_view_speedup():
    """The delta view must beat per-read recomputation by >= 5x once the
    retained set passes ~1k rows (ISSUE acceptance bar)."""
    rows = run_delta_experiment(duration=300.0)
    by_arm = {row["arm"]: row for row in rows}
    assert by_arm["delta"]["retained_rows"] >= 1000
    assert by_arm["delta"]["speedup_vs_recompute"] >= 5.0


def test_exp7_scoring_throughput(benchmark):
    generator = OrderFlowGenerator(episode_count=2, seed=57)
    stream = generator.generate(60.0)
    candidates = build_candidates()
    scorer = QueryValueScorer(stream.episodes, tolerance=10.0)
    for query in candidates:
        scorer.attach(query)
    counter = iter(range(10**9))
    events = stream.events

    def push_one():
        event = events[next(counter) % len(events)]
        for query in candidates:
            query.push(event)

    benchmark(push_one)


def test_exp7_shape():
    rows, _throughput = run_experiment(duration=300.0)
    ranking = [row["query"] for row in rows]
    # Top-2 selection recovers exactly the genuinely valuable queries.
    assert set(ranking[:2]) == GOOD_QUERIES
    by_name = {row["query"]: row for row in rows}
    # The good queries have both high precision and full recall.
    for name in GOOD_QUERIES:
        assert by_name[name]["recall"] == 1.0
        assert by_name[name]["precision"] > 0.9
    # The chatty query's precision is poor; the blind query has no value.
    assert by_name["chatty"]["precision"] < 0.5
    assert by_name["blind"]["value"] == 0.0
    # Value orders strictly below the good ones for every weak query.
    worst_good = min(by_name[name]["value"] for name in GOOD_QUERIES)
    for name in ("chatty", "wrong_signal", "blind", "mistuned"):
        assert by_name[name]["value"] < worst_good


def main(quick: bool = False) -> None:
    rows, throughput = run_experiment(duration=60.0 if quick else 400.0)
    print_table(
        "EXP-7: value scoring of candidate continuous queries "
        f"(pool of {len(build_candidates())}, {throughput:,.0f} "
        "query-events/s)",
        rows,
        ["query", "alerts", "precision", "recall", "mean_delay_s", "value"],
    )
    print("\n  top-2 deployment choice:",
          ", ".join(row["query"] for row in rows[:2]))


if __name__ == "__main__":
    main()
