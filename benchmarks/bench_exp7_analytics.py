"""EXP-7 — Continuous analytics identify valuable continuous queries
(paper §2.2.c.i.4).

A pool of candidate continuous queries — some genuinely tracking the
labelled critical condition, some chatty, some blind, some mistuned —
runs over a labelled order-flow stream.  The
:class:`repro.cq.analytics.QueryValueScorer` ranks them by measured
value (precision × recall × timeliness); the experiment reports the
ranking and checks that top-k selection recovers exactly the queries an
operator should deploy.

Run standalone:  python benchmarks/bench_exp7_analytics.py
"""

from __future__ import annotations

import time

import pytest

try:
    from benchmarks.reporting import print_table
except ImportError:
    from reporting import print_table

from repro.cq import ContinuousQuery, Count, QueryValueScorer, Sum
from repro.workloads import OrderFlowGenerator

GOOD_QUERIES = {"burst_window", "big_order"}


def build_candidates() -> list[ContinuousQuery]:
    """A realistic candidate pool: 2 good, 4 weak."""
    return [
        # GOOD: bursts of very large orders per account.
        ContinuousQuery("burst_window")
        .filter("qty >= 2000")
        .window_count(3, key_field="account")
        .aggregate("a.burst", {"n": (None, Count)}),
        # GOOD: any outsized order.
        ContinuousQuery("big_order").filter("qty >= 5000"),
        # WEAK: fires on a large fraction of normal traffic.
        ContinuousQuery("chatty").filter("qty > 50"),
        # WEAK: watches the wrong attribute entirely.
        ContinuousQuery("wrong_signal").filter("price > 290"),
        # WEAK: threshold so high it never fires.
        ContinuousQuery("blind").filter("qty > 10000000"),
        # WEAK: right idea, wrong side filter drops the bursts.
        ContinuousQuery("mistuned").filter("qty >= 2000 AND side = 'sell'"),
    ]


def run_experiment(duration: float = 400.0) -> tuple[list[dict], float]:
    generator = OrderFlowGenerator(episode_count=4, seed=57)
    stream = generator.generate(duration)
    scorer = QueryValueScorer(stream.episodes, tolerance=10.0)
    candidates = build_candidates()
    for query in candidates:
        scorer.attach(query)
    started = time.perf_counter()
    for event in stream:
        for query in candidates:
            query.push(event)
    for query in candidates:
        query.flush()
    elapsed = time.perf_counter() - started
    rows = [
        {
            "query": score.name,
            "alerts": score.alerts,
            "precision": score.precision,
            "recall": score.recall,
            "mean_delay_s": score.mean_detection_delay,
            "value": score.value,
        }
        for score in scorer.scores()
    ]
    return rows, len(stream) * len(candidates) / elapsed


def test_exp7_scoring_throughput(benchmark):
    generator = OrderFlowGenerator(episode_count=2, seed=57)
    stream = generator.generate(60.0)
    candidates = build_candidates()
    scorer = QueryValueScorer(stream.episodes, tolerance=10.0)
    for query in candidates:
        scorer.attach(query)
    counter = iter(range(10**9))
    events = stream.events

    def push_one():
        event = events[next(counter) % len(events)]
        for query in candidates:
            query.push(event)

    benchmark(push_one)


def test_exp7_shape():
    rows, _throughput = run_experiment(duration=300.0)
    ranking = [row["query"] for row in rows]
    # Top-2 selection recovers exactly the genuinely valuable queries.
    assert set(ranking[:2]) == GOOD_QUERIES
    by_name = {row["query"]: row for row in rows}
    # The good queries have both high precision and full recall.
    for name in GOOD_QUERIES:
        assert by_name[name]["recall"] == 1.0
        assert by_name[name]["precision"] > 0.9
    # The chatty query's precision is poor; the blind query has no value.
    assert by_name["chatty"]["precision"] < 0.5
    assert by_name["blind"]["value"] == 0.0
    # Value orders strictly below the good ones for every weak query.
    worst_good = min(by_name[name]["value"] for name in GOOD_QUERIES)
    for name in ("chatty", "wrong_signal", "blind", "mistuned"):
        assert by_name[name]["value"] < worst_good


def main(quick: bool = False) -> None:
    rows, throughput = run_experiment(duration=60.0 if quick else 400.0)
    print_table(
        "EXP-7: value scoring of candidate continuous queries "
        f"(pool of {len(build_candidates())}, {throughput:,.0f} "
        "query-events/s)",
        rows,
        ["query", "alerts", "precision", "recall", "mean_delay_s", "value"],
    )
    print("\n  top-2 deployment choice:",
          ", ".join(row["query"] for row in rows[:2]))


if __name__ == "__main__":
    main()
