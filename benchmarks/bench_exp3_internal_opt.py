"""EXP-3 — Internally created messages: the fast path (paper §2.2.b.i.3).

"Storing internally created messages; there are significant
opportunities for optimization."

Both paths write the identical queue-table row; the *client* path goes
through the full SQL surface (literal rendering → lexer → parser →
executor), the *internal* path calls the storage engine directly.  The
experiment measures the gap and decomposes where the client path's time
goes.

Run standalone:  python benchmarks/bench_exp3_internal_opt.py
"""

from __future__ import annotations

import gc
import time

import pytest

try:
    from benchmarks.reporting import print_table
except ImportError:
    from reporting import print_table

from repro.clock import SimulatedClock
from repro.db import Database
from repro.db.sql.lexer import tokenize
from repro.db.sql.parser import parse_statement
from repro.queues import Message, QueueTable

N_MESSAGES = 1500

PAYLOAD = {"reading": 42.5, "sensor": "s7", "tags": ["a", "b"]}


def make_queue() -> QueueTable:
    db = Database(clock=SimulatedClock(), sync_policy="none")
    return QueueTable(db, "bench")


def run_experiment(n: int = N_MESSAGES) -> list[dict]:
    rows: list[dict] = []

    # Each arm starts from a collected heap.  Without this, garbage
    # from earlier arms (dead Database/WAL/queue graphs) accumulates
    # until a gen-2 collection happens to land inside a later arm —
    # which is exactly what made enqueue_batch(256) look ~45% slower
    # than batch-64: it was billed for the whole run's cleanup.
    queue = make_queue()
    gc.collect()
    started = time.perf_counter()
    for _ in range(n):
        queue.enqueue(Message(payload=PAYLOAD))
    internal = time.perf_counter() - started

    # Advance the clock per message so each rendered INSERT has a
    # distinct enqueued_at literal, as real wall-clock timestamps would:
    # without this the constant SQL text hits the statement cache and
    # the client arm silently stops measuring per-message parsing.
    queue = make_queue()
    gc.collect()
    started = time.perf_counter()
    for _ in range(n):
        queue.enqueue_via_insert(Message(payload=PAYLOAD))
        queue.db.clock.advance(0.001)
    client = time.perf_counter() - started

    # The prepared arm keeps the client SQL interface but with constant
    # statement text (? placeholders): after the first call every
    # enqueue is a statement-cache hit — bind + execute, no parsing.
    # Same advancing clock: the prepared text is constant even though
    # the bound enqueued_at values differ, so the cache still hits.
    queue = make_queue()
    gc.collect()
    started = time.perf_counter()
    for _ in range(n):
        queue.enqueue_via_prepared(Message(payload=PAYLOAD))
        queue.db.clock.advance(0.001)
    prepared_time = time.perf_counter() - started
    hit_rate = queue.db.statement_cache.hit_rate

    # The internal path composes with batching — the endpoint of the
    # §2.2.b.i.3 optimization ladder (no SQL, one transaction per batch).
    batched: dict[int, float] = {}
    for batch in (8, 64, 256):
        queue = make_queue()
        gc.collect()
        started = time.perf_counter()
        for start in range(0, n, batch):
            queue.enqueue_batch(
                [Message(payload=PAYLOAD) for _ in range(min(batch, n - start))]
            )
        batched[batch] = time.perf_counter() - started

    # Decompose the client path: how much is pure SQL-text handling?
    message = Message(payload=PAYLOAD)
    queue_for_sql = make_queue()
    prepared = queue_for_sql._prepare(message)
    row = prepared.to_row()
    columns = ", ".join(row)
    from repro.queues.queue_table import _sql_literal

    values = ", ".join(_sql_literal(value) for value in row.values())
    sql = f"INSERT INTO q_bench ({columns}) VALUES ({values})"

    gc.collect()
    started = time.perf_counter()
    for _ in range(n):
        tokenize(sql)
    lex_time = time.perf_counter() - started
    gc.collect()
    started = time.perf_counter()
    for _ in range(n):
        parse_statement(sql)
    parse_time = time.perf_counter() - started

    rows.append({
        "path": "internal fast path",
        "msgs_per_s": n / internal,
        "relative": 1.0,
        "notes": "direct storage-engine insert",
    })
    rows.append({
        "path": "client SQL INSERT",
        "msgs_per_s": n / client,
        "relative": client / internal,
        "notes": "render + lex + parse + plan + execute",
    })
    rows.append({
        "path": "client prepared INSERT",
        "msgs_per_s": n / prepared_time,
        "relative": prepared_time / internal,
        "notes": f"statement-cache hit rate {hit_rate:.1%}",
        "hit_rate": hit_rate,
    })
    rows.append({
        "path": "  of which: lexing",
        "msgs_per_s": n / lex_time,
        "relative": lex_time / internal,
        "notes": f"{100 * lex_time / client:.0f}% of client path",
    })
    rows.append({
        "path": "  of which: lex+parse",
        "msgs_per_s": n / parse_time,
        "relative": parse_time / internal,
        "notes": f"{100 * parse_time / client:.0f}% of client path",
    })
    for batch, elapsed in batched.items():
        rows.append({
            "path": f"internal, enqueue_batch({batch})",
            "msgs_per_s": n / elapsed,
            "relative": elapsed / internal,
            "notes": "one transaction per batch",
        })
    return rows


def test_exp3_internal_path(benchmark):
    queue = make_queue()
    benchmark(lambda: queue.enqueue(Message(payload=PAYLOAD)))


def test_exp3_client_sql_path(benchmark):
    queue = make_queue()
    benchmark(lambda: queue.enqueue_via_insert(Message(payload=PAYLOAD)))


def test_exp3_shape():
    rows = run_experiment(n=500)
    by_path = {row["path"]: row for row in rows}
    # The fast path is substantially faster (the "significant
    # optimization opportunity") ...
    assert by_path["client SQL INSERT"]["relative"] > 1.5
    # The prepared path closes most of the gap: the statement cache
    # amortizes lexing/parsing, leaving bind + execute per message.
    assert (
        by_path["client prepared INSERT"]["relative"]
        < by_path["client SQL INSERT"]["relative"]
    )
    assert by_path["client prepared INSERT"]["relative"] < 2.5
    # Nearly every prepared execution is a cache hit.
    assert by_path["client prepared INSERT"]["hit_rate"] > 0.9
    # Batching the internal path is never slower than one-at-a-time.
    assert by_path["internal, enqueue_batch(64)"]["relative"] < 1.2
    # ... and all three paths store equivalent messages.
    queue = make_queue()
    queue.enqueue(Message(payload=PAYLOAD, priority=2))
    queue.enqueue_via_insert(Message(payload=PAYLOAD, priority=2))
    queue.enqueue_via_prepared(Message(payload=PAYLOAD, priority=2))
    first, second, third = queue.dequeue(), queue.dequeue(), queue.dequeue()
    assert first.payload == second.payload == third.payload
    assert first.priority == second.priority == third.priority


def _timed_batch_arm(n: int, batch: int, passes: int = 3) -> float:
    """Best-of-``passes`` seconds to enqueue n messages in ``batch``-sized
    batches, each pass from a collected heap (simulated clock, so the
    measurement is pure enqueue work)."""
    best = float("inf")
    for _ in range(passes):
        queue = make_queue()
        gc.collect()
        started = time.perf_counter()
        for start in range(0, n, batch):
            queue.enqueue_batch(
                [Message(payload=PAYLOAD) for _ in range(min(batch, n - start))]
            )
        best = min(best, time.perf_counter() - started)
    return best


def test_exp3_batch_scaling_no_cliff():
    """Regression: larger batches must not throttle throughput.

    BENCH_PR4 recorded enqueue_batch(256) at 16.3k msgs/s vs 29.7k for
    batch-64 — a cliff that turned out to be gen-2 GC pauses from
    *earlier arms'* garbage landing inside the 256 arm, not a cost of
    the batch path itself.  With per-arm heap isolation (gc.collect()
    before every timed region) batch-256 amortizes at least as well as
    batch-64; this test fails if the cliff ever becomes real.
    """
    n = 2048
    t64 = _timed_batch_arm(n, 64)
    t256 = _timed_batch_arm(n, 256)
    # batch-256 throughput must be within 10% of batch-64 (usually it
    # is faster; the margin absorbs timer noise only).
    assert t256 <= t64 * 1.10, (
        f"enqueue_batch(256) regressed: {n / t256:.0f} msgs/s vs "
        f"{n / t64:.0f} msgs/s for batch-64"
    )


def main(quick: bool = False) -> None:
    n = 150 if quick else N_MESSAGES
    print_table(
        f"EXP-3: internal vs client message creation ({n} messages)",
        run_experiment(n=n),
        ["path", "msgs_per_s", "relative", "notes"],
    )


if __name__ == "__main__":
    main()
