"""EXP-1 — Event-capture methods compared (paper §2.2.a.i–iii).

Claim: triggers are synchronous and tax the foreground transaction;
journal mining is asynchronous with near-baseline foreground cost but
poll-bounded latency; query-diff polling costs grow with poll frequency
and its latency equals the poll interval.

Harness output: one row per capture configuration with foreground
throughput, relative overhead, events captured, and mean capture
latency (in simulated seconds).

Run standalone:  python benchmarks/bench_exp1_capture.py
Benchmarks:      pytest benchmarks/bench_exp1_capture.py --benchmark-only
"""

from __future__ import annotations

import time

import pytest

try:
    from benchmarks.reporting import print_table  # pytest (repo root on path)
except ImportError:
    from reporting import print_table  # standalone: python benchmarks/...
from repro.capture import JournalCapture, QueryCapture, TriggerCapture
from repro.clock import SimulatedClock
from repro.db import Database

N_INSERTS = 1500


def make_db() -> tuple[Database, SimulatedClock]:
    clock = SimulatedClock()
    db = Database(clock=clock, sync_policy="none")
    db.execute(
        "CREATE TABLE readings (id INT PRIMARY KEY, sensor TEXT, value REAL)"
    )
    return db, clock


def insert_loop(db: Database, clock: SimulatedClock, n: int,
                on_insert=None) -> float:
    """Insert ``n`` rows one sim-second apart; returns wall seconds."""
    started = time.perf_counter()
    for i in range(n):
        clock.advance(1.0)
        db.insert_row(
            "readings",
            {"id": i, "sensor": f"s{i % 16}", "value": float(i % 100)},
        )
        if on_insert is not None:
            on_insert(i)
    return time.perf_counter() - started


def run_experiment(n: int = N_INSERTS) -> list[dict]:
    rows: list[dict] = []

    # Baseline: no capture at all.
    db, clock = make_db()
    baseline = insert_loop(db, clock, n)
    rows.append({
        "method": "none (baseline)",
        "inserts_per_s": n / baseline,
        "overhead_vs_baseline": 1.0,
        "events": 0,
        "mean_latency_s": None,
    })

    # Trigger capture: synchronous, in-transaction.
    db, clock = make_db()
    capture = TriggerCapture(db, ["readings"])
    latencies: list[float] = []
    capture.subscribe(
        lambda event: latencies.append(clock.now() - event.timestamp)
    )
    elapsed = insert_loop(db, clock, n)
    rows.append({
        "method": "trigger (sync)",
        "inserts_per_s": n / elapsed,
        "overhead_vs_baseline": elapsed / baseline,
        "events": capture.events_captured,
        "mean_latency_s": sum(latencies) / len(latencies),
    })

    # The architectural contrast sharpens once capture feeds downstream
    # work (rule evaluation): synchronous capture pays for it inside the
    # writing transaction, journal mining moves it off the write path.
    from repro.rules import RuleEngine

    def loaded_engine() -> RuleEngine:
        engine = RuleEngine(mode="naive")  # worst case: all rules run
        for r in range(200):
            engine.add(f"r{r}", f"value > {r % 100} AND sensor = 's{r % 16}'")
        return engine

    db, clock = make_db()
    capture = TriggerCapture(db, ["readings"])
    capture.subscribe(loaded_engine().evaluate)
    elapsed = insert_loop(db, clock, n)
    rows.append({
        "method": "trigger + 200 rules (sync)",
        "inserts_per_s": n / elapsed,
        "overhead_vs_baseline": elapsed / baseline,
        "events": capture.events_captured,
        "mean_latency_s": 0.0,
    })

    db, clock = make_db()
    capture = JournalCapture(db, ["readings"])
    capture.subscribe(loaded_engine().evaluate)
    elapsed = insert_loop(db, clock, n)  # foreground only; mining later
    mining_started = time.perf_counter()
    capture.poll()
    mining_elapsed = time.perf_counter() - mining_started
    rows.append({
        "method": "journal + 200 rules (async)",
        "inserts_per_s": n / elapsed,
        "overhead_vs_baseline": elapsed / baseline,
        "events": capture.events_captured,
        "mean_latency_s": None,  # deferred: mining pass took
                                 # mining_elapsed seconds off-path
    })
    rows[-1]["mean_latency_s"] = mining_elapsed  # reported as async cost

    # Journal mining at several poll intervals (in inserts ≈ sim-seconds).
    for poll_every in (1, 10, 100):
        db, clock = make_db()
        capture = JournalCapture(db, ["readings"])
        latencies = []
        capture.subscribe(
            lambda event: latencies.append(clock.now() - event.timestamp)
        )
        elapsed = insert_loop(
            db, clock, n,
            on_insert=lambda i: capture.poll() if i % poll_every == 0 else None,
        )
        capture.poll()
        rows.append({
            "method": f"journal (poll={poll_every}s)",
            "inserts_per_s": n / elapsed,
            "overhead_vs_baseline": elapsed / baseline,
            "events": capture.events_captured,
            "mean_latency_s": sum(latencies) / len(latencies),
        })

    # Query-diff capture at several poll intervals.
    for poll_every in (10, 100):
        db, clock = make_db()
        capture = QueryCapture(
            db,
            "SELECT id, value FROM readings WHERE value > 90",
            name="hot",
            key_columns=["id"],
        )
        latencies = []
        capture.subscribe(
            lambda event: latencies.append(
                clock.now() - event["new"]["id"]  # id == insert sim-time - 1
                - 1.0
            )
        )
        elapsed = insert_loop(
            db, clock, n,
            on_insert=lambda i: capture.poll() if i % poll_every == 0 else None,
        )
        capture.poll()
        rows.append({
            "method": f"query-diff (poll={poll_every}s)",
            "inserts_per_s": n / elapsed,
            "overhead_vs_baseline": elapsed / baseline,
            "events": capture.events_captured,
            "mean_latency_s": (
                sum(latencies) / len(latencies) if latencies else None
            ),
        })
    return rows


# --------------------------------------------------------------------------
# pytest-benchmark micro-measurements
# --------------------------------------------------------------------------


@pytest.fixture
def plain_db():
    return make_db()


def test_exp1_insert_baseline(benchmark, plain_db):
    db, clock = plain_db
    counter = iter(range(10**9))

    def insert():
        db.insert_row(
            "readings", {"id": next(counter), "sensor": "s", "value": 1.0}
        )

    benchmark(insert)


def test_exp1_insert_with_trigger_capture(benchmark, plain_db):
    db, clock = plain_db
    TriggerCapture(db, ["readings"])
    counter = iter(range(10**9))

    def insert():
        db.insert_row(
            "readings", {"id": next(counter), "sensor": "s", "value": 1.0}
        )

    benchmark(insert)


def test_exp1_insert_with_journal_capture_attached(benchmark, plain_db):
    """Foreground cost with an (unpolled) journal miner attached — the
    asynchronous design should cost ~nothing here."""
    db, clock = plain_db
    JournalCapture(db, ["readings"])
    counter = iter(range(10**9))

    def insert():
        db.insert_row(
            "readings", {"id": next(counter), "sensor": "s", "value": 1.0}
        )

    benchmark(insert)


def test_exp1_journal_poll_cost(benchmark, plain_db):
    db, clock = plain_db
    capture = JournalCapture(db, ["readings"])
    for i in range(500):
        db.insert_row("readings", {"id": i, "sensor": "s", "value": 1.0})

    def poll_batch():
        # Re-polling a consumed journal measures the steady-state cost.
        capture.poll()

    benchmark(poll_batch)


def test_exp1_shape():
    """The claims EXP-1 exists to check, asserted."""
    rows = run_experiment(n=600)
    by_method = {row["method"]: row for row in rows}
    trigger = by_method["trigger (sync)"]
    journal = by_method["journal (poll=10s)"]
    # Both complete captures see every change.
    assert trigger["events"] == 600
    assert journal["events"] == 600
    # Trigger latency is zero (same transaction); journal latency is
    # positive and bounded by the poll interval.
    assert trigger["mean_latency_s"] == 0.0
    assert 0.0 < journal["mean_latency_s"] <= 10.0
    coarse = by_method["journal (poll=100s)"]
    assert coarse["mean_latency_s"] > journal["mean_latency_s"]
    # With downstream rule work attached, synchronous capture pays the
    # cost in the foreground; journal capture keeps the foreground near
    # the no-downstream journal arm's cost.
    loaded_sync = by_method["trigger + 200 rules (sync)"]
    loaded_async = by_method["journal + 200 rules (async)"]
    assert (
        loaded_sync["overhead_vs_baseline"]
        > loaded_async["overhead_vs_baseline"] * 1.5
    )


def main(quick: bool = False) -> None:
    n = 200 if quick else N_INSERTS
    rows = run_experiment(n=n)
    print_table(
        "EXP-1: capture-method comparison "
        f"({n} inserts, 1 insert/sim-second)",
        rows,
        ["method", "inserts_per_s", "overhead_vs_baseline", "events",
         "mean_latency_s"],
    )


if __name__ == "__main__":
    main()
