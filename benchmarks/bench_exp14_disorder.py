"""EXP-14 — Out-of-order streams: disorder-rate × lateness sweep.

A seeded sensor stream is delayed in transit (``disorder_rate`` of
events get Uniform(0, MAX_DELAY) extra latency, delivered in arrival
order) and pushed through a keyed tumbling window + aggregate in both
output modes.  Each cell reports:

* ``dropped`` / ``drop_pct`` — events lost to the lateness guard
  (``allowed_lateness < MAX_DELAY`` trades loss for state/latency);
* ``blk_panes`` — blocking-mode emissions (the reference results);
* ``spec_emits`` / ``spec_retr`` — speculative emissions and
  retractions; ``balanced`` checks emits − retractions = blk_panes;
* ``net_match`` — speculative *net* results equal blocking results
  byte-for-byte (the CEDR compensation invariant);
* ``lossless`` — at ``allowed_lateness >= MAX_DELAY``, results equal
  the same pipeline fed in timestamp order (disorder fully absorbed);
* ``kev_s`` — stream push throughput (blocking arm), thousands of
  events/second.

Run standalone:  python benchmarks/bench_exp14_disorder.py [--quick]
"""

from __future__ import annotations

import random
import sys
import time

try:
    from benchmarks.reporting import print_table
except ImportError:
    from reporting import print_table

from repro.cq.aggregate import Count, Sum, WindowAggregate
from repro.cq.stream import Stream
from repro.cq.window import OUTPUT_SPECULATIVE, TumblingWindow
from repro.events import KIND_RETRACTION, Event
from repro.workloads.generators import disorder_by_delay

#: Transit delay bound: the disorder the sweep injects.
MAX_DELAY = 20.0
WINDOW = 15.0
KEYS = ["a", "b", "c", "d"]

DISORDER_RATES = [0.0, 0.3, 0.7]
LATENESS = [0.0, 5.0, MAX_DELAY]
EVENTS = 40_000
QUICK_EVENTS = 4_000


def make_stream(count: int, seed: int = 23) -> list[Event]:
    rng = random.Random(seed)
    t = 0.0
    events = []
    for _ in range(count):
        t += rng.uniform(0.05, 0.4)
        events.append(
            Event(
                "sensor.reading",
                round(t, 4),
                {"k": rng.choice(KEYS), "v": rng.randrange(1_000)},
            )
        )
    return events


def run_arm(
    events: list[Event], *, lateness: float, mode: str
) -> tuple[dict, float]:
    """Push all events + flush; returns (results, elapsed_seconds).

    Results fold the retraction contract into net per-pane payloads,
    plus the operator's own accounting counters.
    """
    s = Stream("s")
    w = TumblingWindow(
        s, WINDOW, key_field="k", allowed_lateness=lateness, output_mode=mode
    )
    agg = WindowAggregate(w, "out", {"total": ("v", Sum), "n": (None, Count)})
    net: dict = {}
    emits = retracts = 0

    def sink(event: Event) -> None:
        nonlocal emits, retracts
        ident = (event["window_start"], event["window_end"], event["key"])
        if event.kind == KIND_RETRACTION:
            retracts += 1
            net.pop(ident, None)
        else:
            emits += 1
            net[ident] = dict(event.payload)

    agg.subscribe(sink)
    started = time.perf_counter()
    for event in events:
        s.push(event)
    w.flush()
    elapsed = time.perf_counter() - started
    return (
        {
            "net": net,
            "emits": emits,
            "retracts": retracts,
            "dropped": w.late_dropped,
        },
        elapsed,
    )


def run_experiment(
    count: int = EVENTS,
    rates: list[float] | None = None,
    lateness_values: list[float] | None = None,
) -> list[dict]:
    rates = DISORDER_RATES if rates is None else rates
    lateness_values = LATENESS if lateness_values is None else lateness_values
    in_order = make_stream(count)
    results: list[dict] = []
    for rate in rates:
        delivered = (
            in_order
            if rate == 0.0
            else disorder_by_delay(
                random.Random(97), in_order,
                max_delay=MAX_DELAY, disorder_rate=rate,
            )
        )
        for lateness in lateness_values:
            blocking, elapsed = run_arm(
                delivered, lateness=lateness, mode="blocking"
            )
            speculative, _ = run_arm(
                delivered, lateness=lateness, mode=OUTPUT_SPECULATIVE
            )
            lossless = None
            if lateness >= MAX_DELAY:
                reference, _ = run_arm(
                    in_order, lateness=lateness, mode="blocking"
                )
                lossless = (
                    blocking["dropped"] == 0
                    and blocking["net"] == reference["net"]
                )
            results.append(
                {
                    "rate": rate,
                    "lateness": lateness,
                    "events": count,
                    "dropped": blocking["dropped"],
                    "drop_pct": round(100.0 * blocking["dropped"] / count, 2),
                    "blk_panes": blocking["emits"],
                    "spec_emits": speculative["emits"],
                    "spec_retr": speculative["retracts"],
                    "balanced": (
                        speculative["emits"] - speculative["retracts"]
                        == blocking["emits"]
                    ),
                    "net_match": speculative["net"] == blocking["net"],
                    "lossless": lossless,
                    "kev_s": round(count / elapsed / 1e3, 1),
                }
            )
    return results


def test_exp14_shape():
    """Smoke: accounting balances, speculative nets match blocking, and
    full-lateness cells absorb the disorder losslessly."""
    results = run_experiment(
        count=1_500, rates=[0.5], lateness_values=[0.0, MAX_DELAY]
    )
    assert len(results) == 2
    for row in results:
        assert row["balanced"], row
        assert row["net_match"], row
    tight, full = results
    assert tight["dropped"] > 0  # zero lateness: the tail is dropped
    assert full["lossless"] is True and full["dropped"] == 0


def main(quick: bool = False) -> None:
    count = QUICK_EVENTS if quick else EVENTS
    results = run_experiment(count=count)
    print_table(
        f"EXP-14: disorder-rate x allowed-lateness ({count} events, "
        f"max transit delay {MAX_DELAY}s, {WINDOW}s tumbling windows)",
        results,
        ["rate", "lateness", "dropped", "drop_pct", "blk_panes",
         "spec_emits", "spec_retr", "balanced", "net_match", "lossless",
         "kev_s"],
    )
    broken = [
        row for row in results if not (row["balanced"] and row["net_match"])
    ]
    if broken:
        print(f"  EQUIVALENCE FAIL: {len(broken)} cell(s) unbalanced")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
