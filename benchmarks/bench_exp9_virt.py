"""EXP-9 — VIRT solves information overload (paper §1).

"A major problem today is information overload; this problem can be
solved by identifying what information is critical […] and filtering
out non-critical data."

A labelled order-flow stream (rare critical bursts in heavy noise) is
scored per event by an anomaly detector; a VIRT filter then gates
delivery to a recipient.  Sweeping the threshold traces the trade:

    delivered volume ↓ (orders of magnitude)   vs   false negatives ↑

The expected knee: volume reduction of 10–1000× while episode recall
stays at 1.0, until the threshold crosses the critical events' value
band and recall collapses.  The ablation compares the full VIRT score
(surprise + actionability + relevance + timeliness) with surprise-only.

Run standalone:  python benchmarks/bench_exp9_virt.py
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.reporting import print_table
except ImportError:
    from reporting import print_table

from repro.clock import SimulatedClock
from repro.core import EpisodeTracker, RecipientProfile, VirtFilter, VirtScorer
from repro.cq import AnomalyDetector
from repro.workloads import OrderFlowGenerator

THRESHOLDS = (0.0, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95)


def scored_stream(duration: float = 400.0, seed: int = 71):
    """Order events annotated with an anomaly score on qty per account."""
    generator = OrderFlowGenerator(episode_count=4, seed=seed)
    stream = generator.generate(duration)
    detectors: dict = {}
    scored = []
    for event in stream:
        detector = detectors.setdefault(
            event["account"], AnomalyDetector(threshold=4.0, warmup=10)
        )
        score = detector.observe(float(event["qty"]))
        scored.append(event.with_payload(score=score))
    # Rebuild label mapping: with_payload created new event ids.
    labels = {
        new.event_id
        for new, old in zip(scored, stream.events)
        if stream.is_critical(old)
    }
    return scored, stream.episodes, labels


def run_experiment(
    thresholds=THRESHOLDS, *, weights=None, label="full score",
    duration: float = 400.0,
) -> list[dict]:
    events, episodes, critical_ids = scored_stream(duration)
    rows = []
    for threshold in thresholds:
        clock = SimulatedClock()
        scorer = VirtScorer(clock, weights=weights, include_timeliness=False)
        recipient = RecipientProfile(
            "surveillance", interests={"orders.*": 1.0}
        )
        tracker = EpisodeTracker(episodes, window=10.0)
        delivered_critical = 0

        def deliver(event, score, tracker=tracker):
            tracker.record_alert(event.timestamp)

        virt = VirtFilter(scorer, recipient, threshold=threshold, deliver=deliver)
        for event in events:
            result = virt.offer(event)
            if result is not None and event.event_id in critical_ids:
                delivered_critical += 1
        result = tracker.result()
        rows.append({
            "scoring": label,
            "threshold": threshold,
            "delivered": virt.stats["delivered"],
            "volume_reduction": virt.volume_reduction,
            "episode_recall": result.recall,
            "fn_rate": result.false_negative_rate,
            "critical_kept": delivered_critical / max(1, len(critical_ids)),
        })
    return rows


def run_ablation(*, duration: float = 400.0) -> list[dict]:
    """Surprise-only scoring (actionability/relevance weights zeroed)."""
    return run_experiment(
        thresholds=(0.3, 0.5, 0.7),
        weights=(1.0, 0.0, 0.0),
        label="surprise only",
        duration=duration,
    )


# -- pytest-benchmark -----------------------------------------------------------


def test_exp9_scoring_throughput(benchmark):
    events, _episodes, _ids = scored_stream(duration=60.0)
    clock = SimulatedClock()
    virt = VirtFilter(
        VirtScorer(clock, include_timeliness=False),
        RecipientProfile("r", interests={"orders.*": 1.0}),
        threshold=0.7,
    )
    counter = iter(range(10**9))
    benchmark(lambda: virt.offer(events[next(counter) % len(events)]))


def test_exp9_shape():
    rows = run_experiment(thresholds=(0.0, 0.6, 0.8, 0.9, 1.01))
    by_threshold = {row["threshold"]: row for row in rows}
    # Threshold 0: the firehose — everything delivered, recall perfect.
    assert by_threshold[0.0]["volume_reduction"] == 1.0
    assert by_threshold[0.0]["episode_recall"] == 1.0
    # The operating region: orders-of-magnitude volume reduction while
    # episode recall stays perfect — critical bursts carry near-maximal
    # value and survive any threshold inside the score range.
    assert by_threshold[0.8]["volume_reduction"] > 50
    assert by_threshold[0.8]["episode_recall"] == 1.0
    assert by_threshold[0.9]["volume_reduction"] > 200
    assert by_threshold[0.9]["episode_recall"] == 1.0
    # Only a threshold beyond the critical events' value band loses
    # episodes — then it loses all of them (false-negative cliff).
    assert by_threshold[1.01]["episode_recall"] == 0.0
    assert by_threshold[1.01]["fn_rate"] == 1.0
    # Monotonicity: delivered volume never grows with the threshold.
    ordered = [row["delivered"] for row in rows]
    assert ordered == sorted(ordered, reverse=True)


def test_exp9_ablation_shape():
    """What the extra VIRT components buy: per-recipient filtering.

    With surprise-only scoring every recipient receives the identical
    feed; the full score suppresses deliveries to recipients for whom
    the events are not actionable — personalized overload control."""
    events, _episodes, _ids = scored_stream(duration=200.0)
    clock = SimulatedClock()

    def delivered_count(weights, interests):
        scorer = VirtScorer(clock, weights=weights, include_timeliness=False)
        recipient = RecipientProfile("r", interests=interests)
        virt = VirtFilter(scorer, recipient, threshold=0.55)
        for event in events:
            virt.offer(event)
        return virt.stats["delivered"]

    interested = {"orders.*": 1.0}
    uninterested = {"sensors.*": 1.0}
    # Full score: interest changes what gets through.
    full_in = delivered_count(None, interested)
    full_out = delivered_count(None, uninterested)
    assert full_out < full_in / 2
    # Surprise-only: both recipients get the identical firehose slice.
    s_in = delivered_count((1.0, 0.0, 0.0), interested)
    s_out = delivered_count((1.0, 0.0, 0.0), uninterested)
    assert s_in == s_out


def main(quick: bool = False) -> None:
    duration = 60.0 if quick else 400.0
    rows = run_experiment(
        thresholds=(0.3, 0.7) if quick else THRESHOLDS, duration=duration
    )
    print_table(
        "EXP-9: VIRT threshold sweep (order-flow workload, "
        "4 critical bursts in noise)",
        rows,
        ["scoring", "threshold", "delivered", "volume_reduction",
         "episode_recall", "fn_rate", "critical_kept"],
    )
    print_table(
        "EXP-9 ablation: surprise-only scoring",
        run_ablation(duration=duration),
        ["scoring", "threshold", "delivered", "volume_reduction",
         "episode_recall", "fn_rate", "critical_kept"],
    )


if __name__ == "__main__":
    main()
