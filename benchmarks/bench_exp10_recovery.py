"""EXP-10 — Recoverability & transactional support (paper §2.2.b.ii.3).

Correctness claims (asserted, not just measured):

* **No committed message is lost** by a crash.
* **No uncommitted message survives** a crash.

Performance claims:

* recovery time grows with journal length (redo is linear);
* checkpoints bound recovery time: after a checkpoint, redo work is
  proportional to the post-checkpoint suffix, not history;
* file-backed recovery (parse + CRC verify + redo) stays linear in the
  WAL byte size, and the checksummed v2 framing costs a small constant
  factor of journal bytes (reported as ``framing_overhead_pct``);
* a torn tail adds only the classification scan — recovery after a
  mid-append crash is not pathologically slower than a clean restart.

Run standalone:  python benchmarks/bench_exp10_recovery.py
"""

from __future__ import annotations

import os
import tempfile
import time
import warnings

import pytest

try:
    from benchmarks.reporting import print_table
except ImportError:
    from reporting import print_table

from repro.clock import SimulatedClock
from repro.db import Database
from repro.errors import FaultInjectedError, TornTailWarning
from repro.faults import WAL_TORN_WRITE, FaultInjector, on_hit, torn_write
from repro.queues import QueueBroker

OP_COUNTS = (1_000, 5_000, 20_000)
FILE_OP_COUNTS = (500, 2_000, 8_000)


def loaded_database(ops: int, *, checkpoint_at: int | None = None) -> Database:
    db = Database(clock=SimulatedClock(), sync_policy="none")
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    for i in range(ops):
        if i % 3 == 0:
            db.insert_row("t", {"id": i, "v": i})
        elif i % 3 == 1:
            rowids = db.catalog.table("t").lookup_rowids("id", i - 1)
            if rowids:
                db.update_row("t", rowids[0], {"v": -i})
        elif i % 12 == 2:  # delete a quarter of the inserted rows
            rowids = db.catalog.table("t").lookup_rowids("id", i - 2)
            if rowids:
                db.delete_row("t", rowids[0])
        if checkpoint_at is not None and i == checkpoint_at:
            db.checkpoint(truncate=True)
    db.wal.flush()
    return db


def run_experiment(op_counts=OP_COUNTS) -> list[dict]:
    rows: list[dict] = []
    for ops in op_counts:
        for label, checkpoint_at in (
            ("no checkpoint", None),
            ("checkpoint @50%", ops // 2),
        ):
            db = loaded_database(ops, checkpoint_at=checkpoint_at)
            reference = {
                rowid: row for rowid, row in db.catalog.table("t").scan()
            }
            journal_records = len(db.wal)
            started = time.perf_counter()
            db.simulate_crash()
            recovery_time = time.perf_counter() - started
            recovered = {
                rowid: row for rowid, row in db.catalog.table("t").scan()
            }
            assert recovered == reference, "recovery must be exact"
            rows.append({
                "ops": ops,
                "config": label,
                "journal_records": journal_records,
                "recovery_ms": 1000 * recovery_time,
                "rows_recovered": len(recovered),
            })
    return rows


def loaded_file_database(
    path: str, ops: int, *, faults: FaultInjector | None = None
) -> Database:
    """Seeded DML workload against an on-disk journal (sync per commit,
    so the WAL holds one flush batch per transaction)."""
    db = Database(path=path, clock=SimulatedClock(), faults=faults)
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    for i in range(ops):
        if i % 3 == 2:
            db.update_row("t", db.catalog.table("t").lookup_rowids("id", i - 1)[0], {"v": -i})
        else:
            db.insert_row("t", {"id": i, "v": i})
    return db


def run_file_experiment(op_counts=FILE_OP_COUNTS) -> list[dict]:
    """Recovery time vs WAL *byte* size, plus the cost of the v2
    checksummed framing relative to the bare JSON payloads."""
    rows: list[dict] = []
    for ops in op_counts:
        with tempfile.TemporaryDirectory() as workdir:
            path = os.path.join(workdir, "journal.wal")
            db = loaded_file_database(path, ops)
            reference = {
                rowid: row for rowid, row in db.catalog.table("t").scan()
            }
            wal_bytes = os.path.getsize(path)
            payload_bytes = sum(
                len(record.to_json().encode("utf-8")) + 1
                for record in db.wal.records()
            )
            started = time.perf_counter()
            reborn = Database(path=path, clock=SimulatedClock())
            recovery_time = time.perf_counter() - started
            recovered = {
                rowid: row for rowid, row in reborn.catalog.table("t").scan()
            }
            assert recovered == reference, "file recovery must be exact"
            rows.append({
                "ops": ops,
                "wal_kib": wal_bytes / 1024,
                "journal_records": len(db.wal),
                "framing_overhead_pct": 100 * (wal_bytes - payload_bytes) / payload_bytes,
                "recovery_ms": 1000 * recovery_time,
                "rows_recovered": len(recovered),
            })
    return rows


def run_torn_tail_experiment(op_counts=FILE_OP_COUNTS) -> list[dict]:
    """Crash mid-append (torn final frame) vs clean restart: recovery
    must lose only the tail and pay only the scan for classification."""
    rows: list[dict] = []
    for ops in op_counts:
        for mode in ("clean", "torn"):
            with tempfile.TemporaryDirectory() as workdir:
                path = os.path.join(workdir, "journal.wal")
                injector = FaultInjector() if mode == "torn" else None
                db = loaded_file_database(path, ops, faults=injector)
                durable_rows = {
                    rowid: row for rowid, row in db.catalog.table("t").scan()
                }
                if mode == "torn":
                    injector.arm(WAL_TORN_WRITE, torn_write("truncate"), policy=on_hit(1))
                    try:
                        db.insert_row("t", {"id": ops + 1, "v": 0})
                    except FaultInjectedError:
                        pass  # the "process" died mid-write
                started = time.perf_counter()
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", TornTailWarning)
                    reborn = Database(path=path, clock=SimulatedClock())
                recovery_time = time.perf_counter() - started
                recovered = {
                    rowid: row for rowid, row in reborn.catalog.table("t").scan()
                }
                assert recovered == durable_rows, (
                    "torn tail may only lose the interrupted transaction"
                )
                report = reborn.wal.load_report
                rows.append({
                    "ops": ops,
                    "config": mode,
                    "recovery_ms": 1000 * recovery_time,
                    "rows_recovered": len(recovered),
                    "dropped_bytes": report.dropped_bytes if report else 0,
                })
    return rows


# -- pytest-benchmark --------------------------------------------------------------


def test_exp10_recovery_5k(benchmark):
    db = loaded_database(5_000)

    def crash_and_recover():
        db.simulate_crash()

    benchmark.pedantic(crash_and_recover, rounds=3, iterations=1)


def test_exp10_shape():
    rows = run_experiment(op_counts=(1_000, 5_000))
    data = {(row["ops"], row["config"]): row for row in rows}
    # Redo is roughly linear in journal length.
    assert (
        data[(5_000, "no checkpoint")]["recovery_ms"]
        > 2 * data[(1_000, "no checkpoint")]["recovery_ms"]
    )
    # A checkpoint cuts the journal and the recovery time.
    assert (
        data[(5_000, "checkpoint @50%")]["journal_records"]
        < data[(5_000, "no checkpoint")]["journal_records"]
    )
    assert (
        data[(5_000, "checkpoint @50%")]["recovery_ms"]
        < data[(5_000, "no checkpoint")]["recovery_ms"]
    )


def test_exp10_no_committed_message_lost_no_uncommitted_delivered():
    """The §2.2.d.iii.3 guarantee, stated as the paper states it."""
    db = Database(clock=SimulatedClock())  # sync_policy="commit"
    broker = QueueBroker(db)
    broker.create_queue("q")
    committed_ids = [broker.publish("q", {"n": i}) for i in range(50)]

    # An in-flight transaction enqueues 10 more but never commits.
    conn = db.connect()
    conn.begin()
    for i in range(10):
        broker.queue("q").enqueue({"uncommitted": i}, conn=conn)
    # Crash with the transaction open.
    db.simulate_crash()

    recovered = QueueBroker(db)
    queue = recovered.create_queue_or_attach("q")
    payloads = []
    while True:
        message = recovered.consume("q")
        if message is None:
            break
        recovered.ack("q", message.message_id)
        payloads.append(message.payload)
    # Exactly the committed fifty; none of the uncommitted ten.
    assert sorted(p["n"] for p in payloads) == list(range(50))
    assert not any("uncommitted" in p for p in payloads)


def test_exp10_crash_during_consumption_loses_nothing():
    db = Database(clock=SimulatedClock())
    broker = QueueBroker(db)
    broker.create_queue("q")
    for i in range(20):
        broker.publish("q", {"n": i})
    # Consume 5 and ack them; lock 3 more without acking; crash.
    for _ in range(5):
        message = broker.consume("q")
        broker.ack("q", message.message_id)
    for _ in range(3):
        broker.consume("q")
    db.simulate_crash()

    recovered = QueueBroker(db)
    queue = recovered.create_queue_or_attach("q")
    queue.recover_locked()
    remaining = []
    while True:
        message = recovered.consume("q")
        if message is None:
            break
        recovered.ack("q", message.message_id)
        remaining.append(message.payload["n"])
    # The 5 acked are gone; the locked-but-unacked 3 and the untouched
    # 12 all survive.
    assert len(remaining) == 15


def test_exp10_file_recovery_shape():
    rows = run_file_experiment(op_counts=(300, 1_200))
    by_ops = {row["ops"]: row for row in rows}
    # Recovery work scales with WAL size...
    assert by_ops[1_200]["wal_kib"] > 2 * by_ops[300]["wal_kib"]
    # ...and framing costs a bounded, small share of journal bytes.
    for row in rows:
        assert 0 < row["framing_overhead_pct"] < 25


def test_exp10_torn_tail_arm():
    rows = run_torn_tail_experiment(op_counts=(300,))
    torn = next(row for row in rows if row["config"] == "torn")
    assert torn["dropped_bytes"] > 0  # the tear really happened


def main(quick: bool = False) -> None:
    print_table(
        "EXP-10: crash-recovery time vs journal size",
        run_experiment(op_counts=(200,) if quick else OP_COUNTS),
        ["ops", "config", "journal_records", "recovery_ms", "rows_recovered"],
    )
    print_table(
        "EXP-10b: file-backed recovery vs WAL size (v2 framing)",
        run_file_experiment(op_counts=(200,) if quick else FILE_OP_COUNTS),
        [
            "ops",
            "wal_kib",
            "journal_records",
            "framing_overhead_pct",
            "recovery_ms",
            "rows_recovered",
        ],
    )
    print_table(
        "EXP-10c: torn-tail recovery (crash mid-append) vs clean restart",
        run_torn_tail_experiment(op_counts=(200,) if quick else FILE_OP_COUNTS),
        ["ops", "config", "recovery_ms", "rows_recovered", "dropped_bytes"],
    )


if __name__ == "__main__":
    main()
