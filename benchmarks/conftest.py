"""Benchmark-suite conftest (fixtures shared across bench modules)."""
