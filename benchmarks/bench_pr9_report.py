"""PR-9 report: vectorized columnar execution, machine-readable.

Writes ``BENCH_PR9.json`` at the repo root from the EXP-13 harness:
one arm per (table size, WHERE selectivity, query shape) recording the
row-path time, the vectorized time, the speedup, whether the fast path
actually engaged, and whether both arms computed the same result.

Acceptance bars:

* **result equivalence** — hard bar, never gated: every arm's
  vectorized result must match the row path (floats to relative
  1e-12; see docs/architecture.md for why stddev is not bit-exact);
* **fast path engagement** — hard bar, never gated: every arm in this
  sweep is vector-eligible, so VECTOR_STATS must show the fast path
  served it (a silent fallback would quietly benchmark the row path
  against itself);
* **speedup floor** — >= 5x at 100k rows / 10% selectivity (ungrouped
  shape), gated on ``os.cpu_count() >= 2`` like PR-7/PR-8's timing
  bars: on a 1-core box the interpreter, the GC, and whatever else CI
  is running all contend with the timed region, so the ratio is
  reported but only *enforced* with >= 2 cores.  In ``--quick`` mode
  the 100k arm is not run and the bar is reported as skipped.

Failures are printed as ``ACCEPTANCE FAIL`` lines, never raised, so a
loaded CI box still produces a diffable report.

Run:  python benchmarks/bench_pr9_report.py [--quick]
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

try:
    from benchmarks.bench_exp13_columnar import (
        QUICK_SIZES,
        SELECTIVITIES,
        run_experiment,
    )
except ImportError:
    from bench_exp13_columnar import QUICK_SIZES, SELECTIVITIES, run_experiment

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"

#: Vectorized must beat the row path by at least this factor on the
#: reference arm (100k rows, 10% selectivity, ungrouped aggregates).
SPEEDUP_FLOOR = 5.0
REFERENCE_ROWS = 100_000
REFERENCE_SELECTIVITY = 0.1
REFERENCE_SHAPE = "agg"


def build_report(quick: bool = False) -> dict:
    sizes = QUICK_SIZES if quick else [1_000, 10_000, REFERENCE_ROWS]
    repeats = 2 if quick else 3
    arms = run_experiment(
        sizes=sizes, selectivities=SELECTIVITIES, repeats=repeats
    )
    return {
        "experiment": "PR-9 vectorized columnar execution (EXP-13)",
        "quick": quick,
        "cores": os.cpu_count() or 1,
        "bars": {
            "speedup_floor": SPEEDUP_FLOOR,
            "reference_rows": REFERENCE_ROWS,
            "reference_selectivity": REFERENCE_SELECTIVITY,
        },
        "exp13_arms": arms,
    }


def _check(report: dict) -> tuple[list[str], list[str]]:
    """Returns (problems, skipped-bar notes)."""
    problems: list[str] = []
    skipped: list[str] = []
    cores = report["cores"]
    for arm in report["exp13_arms"]:
        label = f"exp13/{arm['rows']}r/{arm['selectivity']}s/{arm['shape']}"
        if not arm["match"]:
            problems.append(
                f"{label}: vectorized result differs from the row path"
            )
        if not arm["vectorized"]:
            problems.append(
                f"{label}: fast path did not engage on a vector-eligible query"
            )
    reference = next(
        (
            arm
            for arm in report["exp13_arms"]
            if arm["rows"] == REFERENCE_ROWS
            and arm["selectivity"] == REFERENCE_SELECTIVITY
            and arm["shape"] == REFERENCE_SHAPE
        ),
        None,
    )
    if reference is None:
        skipped.append(
            f"speedup bar skipped: {REFERENCE_ROWS}-row arm not in this "
            "sweep (quick mode)"
        )
    elif cores < 2:
        skipped.append(
            f"speedup bar skipped (only {cores} core(s)); measured "
            f"{reference['speedup']}x vs floor {SPEEDUP_FLOOR}x"
        )
    elif reference["speedup"] < SPEEDUP_FLOOR:
        problems.append(
            f"exp13 reference arm: speedup {reference['speedup']}x below "
            f"the {SPEEDUP_FLOOR}x floor"
        )
    return problems, skipped


def main(quick: bool = False) -> None:
    report = build_report(quick=quick)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    for arm in report["exp13_arms"]:
        print(
            f"  {arm['rows']}r sel={arm['selectivity']} {arm['shape']}: "
            f"row {arm['row_ms']}ms vec {arm['vec_ms']}ms "
            f"({arm['speedup']}x) vectorized={arm['vectorized']} "
            f"match={arm['match']}"
        )
    problems, skipped = _check(report)
    for note in skipped:
        print(f"  SKIPPED: {note}")
    for problem in problems:
        print(f"  ACCEPTANCE FAIL: {problem}")
    if not problems:
        print("  all applicable PR-9 acceptance bars met")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
