"""PR-10 report: out-of-order streams, machine-readable.

Writes ``BENCH_PR10.json`` at the repo root from the EXP-14 harness:
one arm per (disorder rate, allowed lateness) cell recording late
drops, blocking-mode pane count, speculative emissions/retractions,
and the equivalence checks.

Acceptance bars (all hard — none depend on wall-clock timing, so none
are core-gated):

* **speculative accounting** — every cell must balance: speculative
  emissions − retractions = blocking-mode emissions, and the
  speculative *net* results must equal the blocking results exactly
  (the CEDR compensation invariant);
* **lossless at full lateness** — cells with
  ``allowed_lateness >= MAX_DELAY`` must drop nothing and produce
  results identical to in-order delivery (bounded disorder absorbed);
* **drops monotone in lateness** — for a fixed disorder rate, raising
  the lateness budget must never drop *more* events (the guard is a
  horizon, not a heuristic).

Failures are printed as ``ACCEPTANCE FAIL`` lines, never raised, so a
loaded CI box still produces a diffable report.

Run:  python benchmarks/bench_pr10_report.py [--quick]
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

try:
    from benchmarks.bench_exp14_disorder import (
        MAX_DELAY,
        QUICK_EVENTS,
        run_experiment,
    )
except ImportError:
    from bench_exp14_disorder import MAX_DELAY, QUICK_EVENTS, run_experiment

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"

FULL_EVENTS = 20_000


def build_report(quick: bool = False) -> dict:
    arms = run_experiment(count=QUICK_EVENTS if quick else FULL_EVENTS)
    return {
        "experiment": "PR-10 out-of-order streams (EXP-14)",
        "quick": quick,
        "cores": os.cpu_count() or 1,
        "bars": {
            "max_delay": MAX_DELAY,
            "accounting": "spec_emits - spec_retr == blk_panes, nets equal",
            "lossless": "lateness >= max_delay => 0 drops, in-order results",
            "monotone": "drops non-increasing in lateness per rate",
        },
        "exp14_arms": arms,
    }


def _check(report: dict) -> tuple[list[str], list[str]]:
    """Returns (problems, skipped-bar notes)."""
    problems: list[str] = []
    skipped: list[str] = []
    by_rate: dict[float, list[dict]] = {}
    for arm in report["exp14_arms"]:
        label = f"exp14/rate={arm['rate']}/lateness={arm['lateness']}"
        by_rate.setdefault(arm["rate"], []).append(arm)
        if not arm["balanced"]:
            problems.append(
                f"{label}: emits {arm['spec_emits']} - retractions "
                f"{arm['spec_retr']} != blocking panes {arm['blk_panes']}"
            )
        if not arm["net_match"]:
            problems.append(
                f"{label}: speculative net results differ from blocking"
            )
        if arm["lateness"] >= MAX_DELAY and arm["lossless"] is not True:
            problems.append(
                f"{label}: lateness covers the delay bound but disorder "
                f"was not absorbed losslessly (dropped={arm['dropped']})"
            )
    for rate, arms in by_rate.items():
        ordered = sorted(arms, key=lambda arm: arm["lateness"])
        for tighter, looser in zip(ordered, ordered[1:]):
            if looser["dropped"] > tighter["dropped"]:
                problems.append(
                    f"exp14/rate={rate}: drops rose from "
                    f"{tighter['dropped']} to {looser['dropped']} as "
                    f"lateness grew {tighter['lateness']} -> "
                    f"{looser['lateness']}"
                )
    return problems, skipped


def main(quick: bool = False) -> None:
    report = build_report(quick=quick)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    for arm in report["exp14_arms"]:
        print(
            f"  rate={arm['rate']} lateness={arm['lateness']}: "
            f"dropped {arm['dropped']} ({arm['drop_pct']}%), "
            f"{arm['spec_emits']}e-{arm['spec_retr']}r vs "
            f"{arm['blk_panes']} blocking, balanced={arm['balanced']} "
            f"net_match={arm['net_match']} lossless={arm['lossless']}"
        )
    problems, skipped = _check(report)
    for note in skipped:
        print(f"  SKIPPED: {note}")
    for problem in problems:
        print(f"  ACCEPTANCE FAIL: {problem}")
    if not problems:
        print("  all applicable PR-10 acceptance bars met")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
