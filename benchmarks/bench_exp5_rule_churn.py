"""EXP-5 — Frequently changing rule sets (paper §2.2.c.iv.2.b).

Claim: the predicate index must absorb subscription churn (adds and
removes interleaved with evaluation) without giving back its evaluation
advantage.  The design choice ablated here is the interval trees'
rebuild policy: *lazy* (buffers + occasional rebuild, the default) vs
*eager* (rebuild on every mutation).

Workload: start with R rules; each round replaces ``churn`` rules and
evaluates a batch of events.  Reported: sustained rounds/s, evaluation
cost, mutation cost, and (for the trees) rebuild counts.

Run standalone:  python benchmarks/bench_exp5_rule_churn.py
"""

from __future__ import annotations

import random
import time

import pytest

try:
    from benchmarks.reporting import print_table
except ImportError:
    from reporting import print_table

from repro.events import Event
from repro.rules import PredicateIndex, Rule, RuleEngine
from repro.rules.engine import EventContext

BASE_RULES = 5_000
ROUNDS = 30
EVENTS_PER_ROUND = 20


def random_rule(rule_id: str, rng: random.Random) -> Rule:
    if rng.random() < 0.5:
        text = f"region = 'r{rng.randrange(500)}' AND qty > {rng.randrange(50)}"
    else:
        low = rng.uniform(0, 999)
        text = f"price BETWEEN {low:.3f} AND {low + 1.0:.3f}"
    return Rule.from_text(rule_id, text)


def random_event(rng: random.Random) -> Event:
    return Event(
        "tick",
        0.0,
        {
            "region": f"r{rng.randrange(500)}",
            "price": rng.uniform(0, 1000),
            "qty": rng.randrange(1000),
        },
    )


def run_churn(
    *,
    eager: bool,
    base: int = BASE_RULES,
    rounds: int = ROUNDS,
    churn: int = 50,
    events_per_round: int = EVENTS_PER_ROUND,
) -> dict:
    rng = random.Random(31)
    index = PredicateIndex(eager_interval_rebuild=eager)
    live: list[str] = []
    for i in range(base):
        rule = random_rule(f"r{i}", rng)
        index.add(rule)
        live.append(rule.rule_id)
    next_id = base

    events = [random_event(rng) for _ in range(events_per_round)]
    mutation_time = 0.0
    evaluation_time = 0.0
    started = time.perf_counter()
    for _ in range(rounds):
        mutation_started = time.perf_counter()
        for _ in range(churn):
            victim = live.pop(rng.randrange(len(live)))
            index.remove(victim)
            rule = random_rule(f"r{next_id}", rng)
            next_id += 1
            index.add(rule)
            live.append(rule.rule_id)
        mutation_time += time.perf_counter() - mutation_started
        evaluation_started = time.perf_counter()
        for event in events:
            index.candidates(EventContext(event.payload))
        evaluation_time += time.perf_counter() - evaluation_started
    total = time.perf_counter() - started
    rebuilds = sum(tree.rebuilds for tree in index._intervals.values())
    return {
        "policy": "eager" if eager else "lazy",
        "rounds_per_s": rounds / total,
        "mutation_ms_per_round": 1000 * mutation_time / rounds,
        "eval_ms_per_round": 1000 * evaluation_time / rounds,
        "tree_rebuilds": rebuilds,
    }


def run_experiment(quick: bool = False) -> list[dict]:
    if quick:
        kwargs = dict(base=1_000, rounds=10, churn=40)
        return [run_churn(eager=False, **kwargs), run_churn(eager=True, **kwargs)]
    return [run_churn(eager=False), run_churn(eager=True)]


# -- pytest-benchmark ----------------------------------------------------------


def test_exp5_add_remove_cycle_lazy(benchmark):
    rng = random.Random(1)
    index = PredicateIndex()
    for i in range(2_000):
        index.add(random_rule(f"r{i}", rng))
    counter = iter(range(10**9))

    def cycle():
        i = next(counter)
        rule = random_rule(f"x{i}", rng)
        index.add(rule)
        index.remove(rule.rule_id)

    benchmark(cycle)


def test_exp5_engine_add_remove(benchmark):
    rng = random.Random(2)
    engine = RuleEngine()
    for i in range(2_000):
        engine.add_rule(random_rule(f"r{i}", rng))
    counter = iter(range(10**9))

    def cycle():
        i = next(counter)
        engine.add_rule(random_rule(f"x{i}", rng))
        engine.remove_rule(f"x{i}")

    benchmark(cycle)


def test_exp5_shape():
    lazy = run_churn(eager=False, base=1_000, rounds=10, churn=40)
    eager = run_churn(eager=True, base=1_000, rounds=10, churn=40)
    # Lazy rebuilds amortize: far fewer rebuilds, cheaper mutation.
    assert lazy["tree_rebuilds"] < eager["tree_rebuilds"] / 5
    assert lazy["mutation_ms_per_round"] < eager["mutation_ms_per_round"]
    # Churn must not break correctness: candidates == brute force after
    # heavy churn.
    from repro.db.expr import evaluate_predicate

    rng = random.Random(77)
    index = PredicateIndex()
    rules = {}
    for i in range(500):
        rule = random_rule(f"r{i}", rng)
        rules[rule.rule_id] = rule
        index.add(rule)
    for i in range(500, 1500):
        victim = rng.choice(sorted(rules))
        index.remove(victim)
        del rules[victim]
        rule = random_rule(f"r{i}", rng)
        rules[rule.rule_id] = rule
        index.add(rule)
    for _ in range(20):
        context = EventContext(random_event(rng).payload)
        brute = {
            rule_id
            for rule_id, rule in rules.items()
            if evaluate_predicate(rule.condition, context)
        }
        indexed = {
            rule.rule_id
            for rule in index.candidates(context)
            if evaluate_predicate(rule.condition, context)
        }
        assert indexed == brute


def main(quick: bool = False) -> None:
    base = 1_000 if quick else BASE_RULES
    churn = 40 if quick else 50
    print_table(
        f"EXP-5: rule churn ({base} rules, {churn} replaced/round, "
        f"{EVENTS_PER_ROUND} events/round)",
        run_experiment(quick=quick),
        ["policy", "rounds_per_s", "mutation_ms_per_round",
         "eval_ms_per_round", "tree_rebuilds"],
    )


if __name__ == "__main__":
    main()
