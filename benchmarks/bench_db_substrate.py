"""Substrate baseline — the embedded database's raw operation costs.

Not one of the paper's EXP-N experiments: this is the infrastructure
baseline the event-processing numbers sit on.  Useful when judging the
other benches ("is capture slow, or is the database slow?") and for
spotting regressions in the storage/SQL layer.

Run standalone:  python benchmarks/bench_db_substrate.py
"""

from __future__ import annotations

import time

import pytest

try:
    from benchmarks.reporting import print_table
except ImportError:
    from reporting import print_table

from repro.clock import SimulatedClock
from repro.db import Database

N_ROWS = 2_000


def make_db(*, indexed: bool) -> Database:
    db = Database(clock=SimulatedClock(), sync_policy="none")
    db.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, grp TEXT, val REAL)"
    )
    if indexed:
        db.execute("CREATE INDEX ix_grp ON t(grp) USING HASH")
        db.execute("CREATE INDEX ix_val ON t(val)")
    return db


def populate(db: Database, n: int) -> None:
    for i in range(n):
        db.insert_row("t", {"id": i, "grp": f"g{i % 50}", "val": float(i % 997)})


def run_experiment(n: int = N_ROWS) -> list[dict]:
    rows: list[dict] = []
    for indexed in (False, True):
        label = "indexed" if indexed else "heap only"

        db = make_db(indexed=indexed)
        started = time.perf_counter()
        populate(db, n)
        insert_elapsed = time.perf_counter() - started
        rows.append({
            "operation": "programmatic insert",
            "schema": label,
            "ops_per_s": n / insert_elapsed,
        })

        queries = 300
        started = time.perf_counter()
        for i in range(queries):
            db.query(f"SELECT val FROM t WHERE id = {i * 3 % n}")
        rows.append({
            "operation": "point SELECT (pk)",
            "schema": label,
            "ops_per_s": queries / (time.perf_counter() - started),
        })

        started = time.perf_counter()
        for i in range(queries):
            db.query(f"SELECT count(*) FROM t WHERE grp = 'g{i % 50}'")
        rows.append({
            "operation": "equality SELECT (grp)",
            "schema": label,
            "ops_per_s": queries / (time.perf_counter() - started),
        })

        started = time.perf_counter()
        for i in range(100):
            low = (i * 7) % 900
            db.query(f"SELECT count(*) FROM t WHERE val BETWEEN {low} AND {low + 20}")
        rows.append({
            "operation": "range SELECT (val)",
            "schema": label,
            "ops_per_s": 100 / (time.perf_counter() - started),
        })

        started = time.perf_counter()
        for i in range(200):
            db.execute(f"UPDATE t SET val = val + 1 WHERE id = {i}")
        rows.append({
            "operation": "point UPDATE (sql)",
            "schema": label,
            "ops_per_s": 200 / (time.perf_counter() - started),
        })
    return rows


# -- pytest-benchmark ---------------------------------------------------------


@pytest.fixture(scope="module")
def populated():
    db = make_db(indexed=True)
    populate(db, N_ROWS)
    return db


def test_substrate_point_select(benchmark, populated):
    counter = iter(range(10**9))
    benchmark(
        lambda: populated.query(
            f"SELECT val FROM t WHERE id = {next(counter) % N_ROWS}"
        )
    )


def test_substrate_insert(benchmark):
    db = make_db(indexed=True)
    counter = iter(range(10**6, 10**9))
    benchmark(
        lambda: db.insert_row(
            "t", {"id": next(counter), "grp": "g1", "val": 1.0}
        )
    )


def test_substrate_parse_only(benchmark):
    from repro.db.sql.parser import parse_statement

    sql = "SELECT grp, count(*) AS n FROM t WHERE val BETWEEN 10 AND 30 GROUP BY grp"
    benchmark(lambda: parse_statement(sql))


def test_substrate_shape():
    rows = run_experiment(n=800)
    data = {(row["operation"], row["schema"]): row for row in rows}
    # Indexed equality/range lookups beat heap scans comfortably.
    assert (
        data[("equality SELECT (grp)", "indexed")]["ops_per_s"]
        > 2 * data[("equality SELECT (grp)", "heap only")]["ops_per_s"]
    )
    assert (
        data[("range SELECT (val)", "indexed")]["ops_per_s"]
        > 2 * data[("range SELECT (val)", "heap only")]["ops_per_s"]
    )
    # Index maintenance costs inserts something, but not an order of
    # magnitude.
    assert (
        data[("programmatic insert", "indexed")]["ops_per_s"]
        > data[("programmatic insert", "heap only")]["ops_per_s"] / 5
    )


def main() -> None:
    print_table(
        f"Substrate baseline: embedded-database operation costs ({N_ROWS} rows)",
        run_experiment(),
        ["operation", "schema", "ops_per_s"],
    )


if __name__ == "__main__":
    main()
