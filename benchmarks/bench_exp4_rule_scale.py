"""EXP-4 — Large rule sets: indexed vs naive evaluation (§2.2.c.iv.2.a).

Claim: with a predicate index, per-event evaluation cost depends on the
number of *matching* rules, not *registered* rules; naive evaluation is
linear in the rule-set size.  Expected shape: naive time/event grows
~linearly with R while indexed stays near-flat, with the crossover at
small R (index bookkeeping only wins once R exceeds a few dozen).

Rules follow a subscription-like workload: equality on one of 200
regions, narrow numeric ranges on price, and a residual tail that no
anchor can cover.

Run standalone:  python benchmarks/bench_exp4_rule_scale.py
"""

from __future__ import annotations

import gc
import random
import time

import pytest

try:
    from benchmarks.reporting import print_table
except ImportError:
    from reporting import print_table

from repro.events import Event
from repro.rules import RuleEngine

RULE_COUNTS = (100, 1_000, 10_000, 50_000)
EVENTS_PER_POINT = 300


def _regions(count: int) -> int:
    # Subscription populations grow more *specific* as they grow large:
    # keep the expected number of matching rules per event ~constant by
    # scaling the region vocabulary and narrowing the ranges with R.
    return max(50, count // 10)


def rule_text(i: int, count: int, rng: random.Random) -> str:
    if i < 20:  # a small fixed residual set (OR defeats anchoring)
        return f"qty = {rng.randrange(1000)} OR price < {rng.uniform(0, 2):.3f}"
    if i % 3:  # ~2/3: equality-anchored subscriptions
        return (
            f"region = 'r{rng.randrange(_regions(count))}' "
            f"AND qty > {rng.randrange(50)}"
        )
    # ~1/3: narrow range anchors
    width = max(0.5, 3000.0 / count)
    low = rng.uniform(0, 1000 - width)
    return f"price BETWEEN {low:.3f} AND {low + width:.3f}"


def build_engine(mode: str, count: int, seed: int = 7) -> RuleEngine:
    """``mode`` is an EXP-4 arm: ``naive`` and ``indexed`` evaluate
    conditions by interpreting the AST (the ablation baselines);
    ``compiled`` is the indexed engine with conditions lowered to
    closures at registration time."""
    rng = random.Random(seed)
    if mode == "compiled":
        engine = RuleEngine(mode="indexed", compiled=True)
    else:
        engine = RuleEngine(mode=mode, compiled=False)
    for i in range(count):
        engine.add(f"r{i}", rule_text(i, count, rng))
    return engine


def event_stream(n: int, count: int, seed: int = 13) -> list[Event]:
    rng = random.Random(seed)
    return [
        Event(
            "tick",
            float(i),
            {
                "region": f"r{rng.randrange(_regions(count))}",
                "price": rng.uniform(0, 1000),
                "qty": rng.randrange(1000),
            },
        )
        for i in range(n)
    ]


def _timed_eval(
    engine: RuleEngine, events: list[Event], passes: int = 3
) -> tuple[float, int]:
    """Best-of-``passes`` wall time for one full pass over ``events``,
    plus the condition-evaluation count of a single pass.

    Warmup first: building 10k+ rule sets (ASTs, and for the compiled
    arm their closure graphs) leaves the collector mid-cycle; without a
    ``gc.collect()`` the first pass pays generation-2 collections
    proportional to registration-time allocations, drowning the
    per-event signal.  Warmup also forces first-call effects (index
    rebuilds, lazy memos) out of the timed region, and best-of-N
    absorbs scheduler noise.
    """
    for event in events[:20]:
        engine.evaluate(event, run_actions=False)
    gc.collect()
    best = float("inf")
    conditions = 0
    for _ in range(passes):
        base = engine.stats["conditions_evaluated"]
        started = time.perf_counter()
        for event in events:
            engine.evaluate(event, run_actions=False)
        best = min(best, time.perf_counter() - started)
        conditions = engine.stats["conditions_evaluated"] - base
    return best, conditions


def run_experiment(
    rule_counts=RULE_COUNTS, events_per_point: int = EVENTS_PER_POINT
) -> list[dict]:
    rows: list[dict] = []
    for count in rule_counts:
        events = event_stream(events_per_point, count)
        for mode in ("naive", "indexed", "compiled"):
            if mode == "naive" and count > 10_000:
                # Extrapolating naive beyond 10k would dominate runtime;
                # measure a slice and scale (documented, not hidden).
                engine = build_engine(mode, 10_000)
                elapsed, conditions = _timed_eval(engine, events, passes=1)
                elapsed *= count / 10_000
                conditions = int(conditions * count / 10_000)
                extrapolated = True
            else:
                engine = build_engine(mode, count)
                elapsed, conditions = _timed_eval(engine, events)
                extrapolated = False
            rows.append({
                "rules": count,
                "mode": mode + ("*" if extrapolated else ""),
                "us_per_event": 1e6 * elapsed / len(events),
                "conditions_per_event": conditions / len(events),
                "events_per_s": len(events) / elapsed,
            })
    return rows


# -- pytest-benchmark ---------------------------------------------------------


@pytest.mark.parametrize("mode", ["naive", "indexed", "compiled"])
def test_exp4_evaluate_1k_rules(benchmark, mode):
    engine = build_engine(mode, 1_000)
    events = event_stream(100, 1_000)
    counter = iter(range(10**9))
    benchmark(lambda: engine.evaluate(events[next(counter) % 100], run_actions=False))


def test_exp4_evaluate_10k_rules_indexed(benchmark):
    engine = build_engine("indexed", 10_000)
    events = event_stream(100, 10_000)
    counter = iter(range(10**9))
    benchmark(lambda: engine.evaluate(events[next(counter) % 100], run_actions=False))


def test_exp4_shape():
    rows = run_experiment(rule_counts=(100, 1_000, 10_000), events_per_point=100)
    data = {(row["rules"], row["mode"]): row for row in rows}
    # Naive cost grows ~linearly: 10k rules ≥ 5x the cost of 1k.
    assert (
        data[(10_000, "naive")]["us_per_event"]
        > 5 * data[(1_000, "naive")]["us_per_event"]
    )
    # Indexed cost grows far slower: 100x more rules < 20x more time.
    assert (
        data[(10_000, "indexed")]["us_per_event"]
        < 20 * data[(100, "indexed")]["us_per_event"]
    )
    # At 10k rules the index wins big.
    assert (
        data[(10_000, "naive")]["us_per_event"]
        > 5 * data[(10_000, "indexed")]["us_per_event"]
    )
    # The work saved is visible in condition evaluations, not just time.
    assert (
        data[(10_000, "indexed")]["conditions_per_event"]
        < data[(10_000, "naive")]["conditions_per_event"] / 10
    )
    # Compiling conditions changes how each condition is evaluated, not
    # which conditions are evaluated: identical counts, lower cost.
    assert (
        data[(10_000, "compiled")]["conditions_per_event"]
        == data[(10_000, "indexed")]["conditions_per_event"]
    )
    # Regression guard for the PR 6 fix: compiled must never invert —
    # it used to lose at 10k rules because the compiled closure graph
    # tripled the GC-tracked object population (walked on every gen-2
    # collection).  Fused single-closure comparisons keep it ahead at
    # every measured point; the 1.05 factor absorbs timer noise only.
    for count in (100, 1_000, 10_000):
        assert (
            data[(count, "compiled")]["us_per_event"]
            <= data[(count, "indexed")]["us_per_event"] * 1.05
        ), f"compiled slower than indexed at {count} rules"


def test_exp4_correctness_at_scale():
    """Indexed, naive, and compiled agree on every match at 5k rules."""
    indexed = build_engine("indexed", 5_000)
    naive = build_engine("naive", 5_000)
    compiled = build_engine("compiled", 5_000)
    for event in event_stream(50, 5_000, seed=99):
        a = {m.rule.rule_id for m in indexed.evaluate(event, run_actions=False)}
        b = {m.rule.rule_id for m in naive.evaluate(event, run_actions=False)}
        c = {m.rule.rule_id for m in compiled.evaluate(event, run_actions=False)}
        assert a == b == c
    # Compilation must not change the amount of work the index admits.
    assert (
        compiled.stats["conditions_evaluated"]
        == indexed.stats["conditions_evaluated"]
    )


def main(quick: bool = False) -> None:
    if quick:
        rows = run_experiment(rule_counts=(100, 1_000), events_per_point=10)
    else:
        rows = run_experiment()
    print_table(
        "EXP-4: rule-set scalability (naive* = extrapolated from 10k)",
        rows,
        ["rules", "mode", "us_per_event", "conditions_per_event", "events_per_s"],
    )


if __name__ == "__main__":
    main()
