"""EXP-2 — Message-storage operational characteristics (paper §2.2.b.ii).

Claims probed:

* transactional enqueue/dequeue sustain useful throughput;
* durability (journal flush per commit) costs a measurable constant
  factor vs. the unsafe no-flush mode;
* batching multiple messages per transaction amortizes commit cost;
* priority ordering costs little over FIFO.

Run standalone:  python benchmarks/bench_exp2_queues.py
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

try:
    from benchmarks.reporting import print_table
except ImportError:
    from reporting import print_table

from repro.clock import SimulatedClock
from repro.db import Database
from repro.queues import Message, QueueTable

N_MESSAGES = 1000


def make_queue(sync_policy: str = "none") -> QueueTable:
    db = Database(clock=SimulatedClock(), sync_policy=sync_policy)
    return QueueTable(db, "bench")


def timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def run_experiment(n: int = N_MESSAGES) -> list[dict]:
    rows: list[dict] = []

    # Enqueue throughput: durability modes × batching.
    for sync_policy in ("none", "commit", "always"):
        queue = make_queue(sync_policy)
        elapsed = timed(lambda: [queue.enqueue({"n": i}) for i in range(n)])
        rows.append({
            "operation": "enqueue (1/txn)",
            "sync_policy": sync_policy,
            "ops_per_s": n / elapsed,
            "journal_flushes": queue.db.wal.flush_count,
        })

    # File-backed journal: real fsyncs make the durability price visible.
    for sync_policy in ("none", "commit"):
        with tempfile.TemporaryDirectory() as tmp:
            db = Database(
                path=os.path.join(tmp, "wal.log"),
                clock=SimulatedClock(),
                sync_policy=sync_policy,
            )
            queue = QueueTable(db, "bench")
            file_n = min(n, 300)  # fsyncs are slow; keep the arm bounded
            elapsed = timed(
                lambda: [queue.enqueue({"n": i}) for i in range(file_n)]
            )
            rows.append({
                "operation": f"enqueue (1/txn, file WAL)",
                "sync_policy": sync_policy,
                "ops_per_s": file_n / elapsed,
                "journal_flushes": queue.db.wal.flush_count,
            })

    for batch in (10, 100):
        queue = make_queue("commit")

        def run_batched():
            conn = queue.db.connect()
            for start in range(0, n, batch):
                conn.begin()
                for i in range(start, min(start + batch, n)):
                    queue.enqueue({"n": i}, conn=conn)
                conn.commit()

        elapsed = timed(run_batched)
        rows.append({
            "operation": f"enqueue (batch={batch}/txn)",
            "sync_policy": "commit",
            "ops_per_s": n / elapsed,
            "journal_flushes": queue.db.wal.flush_count,
        })

    # Dequeue+ack throughput, FIFO vs priority-spread.
    for label, priority_of in (
        ("dequeue+ack (fifo)", lambda i: 0),
        ("dequeue+ack (10 priorities)", lambda i: i % 10),
    ):
        queue = make_queue("none")
        for i in range(n):
            queue.enqueue(Message(payload={"n": i}, priority=priority_of(i)))

        def drain():
            while True:
                message = queue.dequeue()
                if message is None:
                    return
                queue.ack(message.message_id)

        elapsed = timed(drain)
        rows.append({
            "operation": label,
            "sync_policy": "none",
            "ops_per_s": n / elapsed,
            "journal_flushes": queue.db.wal.flush_count,
        })

    return rows


# -- pytest-benchmark micro-measurements -------------------------------------


def test_exp2_enqueue_fast_path(benchmark):
    queue = make_queue("none")
    counter = iter(range(10**9))
    benchmark(lambda: queue.enqueue({"n": next(counter)}))


def test_exp2_enqueue_durable(benchmark):
    queue = make_queue("commit")
    counter = iter(range(10**9))
    benchmark(lambda: queue.enqueue({"n": next(counter)}))


def test_exp2_dequeue_ack(benchmark):
    queue = make_queue("none")
    for i in range(20_000):
        queue.enqueue({"n": i})

    def cycle():
        message = queue.dequeue()
        queue.ack(message.message_id)

    benchmark(cycle)


def test_exp2_browse(benchmark):
    queue = make_queue("none")
    for i in range(500):
        queue.enqueue({"n": i})
    benchmark(lambda: sum(1 for _ in queue.browse()))


def test_exp2_shape():
    rows = run_experiment(n=400)
    by_op = {(row["operation"], row["sync_policy"]): row for row in rows}
    # Durable enqueue flushes once per message; batching amortizes it.
    assert by_op[("enqueue (1/txn)", "commit")]["journal_flushes"] >= 400
    assert by_op[("enqueue (batch=100/txn)", "commit")]["journal_flushes"] <= 10
    batched = by_op[("enqueue (batch=100/txn)", "commit")]["ops_per_s"]
    single = by_op[("enqueue (1/txn)", "commit")]["ops_per_s"]
    assert batched > single * 0.8  # never worse; usually much better
    # Priorities cost little: within 4x of FIFO drain.
    fifo = by_op[("dequeue+ack (fifo)", "none")]["ops_per_s"]
    prio = by_op[("dequeue+ack (10 priorities)", "none")]["ops_per_s"]
    assert prio > fifo / 4


def main() -> None:
    print_table(
        f"EXP-2: queue operational characteristics ({N_MESSAGES} messages)",
        run_experiment(),
        ["operation", "sync_policy", "ops_per_s", "journal_flushes"],
    )


if __name__ == "__main__":
    main()
