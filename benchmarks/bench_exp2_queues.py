"""EXP-2 — Message-storage operational characteristics (paper §2.2.b.ii).

Claims probed:

* transactional enqueue/dequeue sustain useful throughput;
* durability (journal flush per commit) costs a measurable constant
  factor vs. the unsafe no-flush mode;
* batching multiple messages per transaction amortizes commit cost;
* priority ordering costs little over FIFO.

Run standalone:  python benchmarks/bench_exp2_queues.py
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

try:
    from benchmarks.reporting import print_table
except ImportError:
    from reporting import print_table

from repro.clock import SimulatedClock
from repro.db import Database
from repro.queues import Message, QueueTable

N_MESSAGES = 1000
N_SWEEP = 10_000
BATCH_SIZES = (1, 8, 64, 256)


def make_queue(sync_policy: str = "none") -> QueueTable:
    db = Database(clock=SimulatedClock(), sync_policy=sync_policy)
    return QueueTable(db, "bench")


def timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def run_experiment(n: int = N_MESSAGES) -> list[dict]:
    rows: list[dict] = []

    # Enqueue throughput: durability modes × batching.
    for sync_policy in ("none", "commit", "always"):
        queue = make_queue(sync_policy)
        elapsed = timed(lambda: [queue.enqueue({"n": i}) for i in range(n)])
        rows.append({
            "operation": "enqueue (1/txn)",
            "sync_policy": sync_policy,
            "ops_per_s": n / elapsed,
            "journal_flushes": queue.db.wal.flush_count,
        })

    # File-backed journal: real fsyncs make the durability price visible.
    for sync_policy in ("none", "commit"):
        with tempfile.TemporaryDirectory() as tmp:
            db = Database(
                path=os.path.join(tmp, "wal.log"),
                clock=SimulatedClock(),
                sync_policy=sync_policy,
            )
            queue = QueueTable(db, "bench")
            file_n = min(n, 300)  # fsyncs are slow; keep the arm bounded
            elapsed = timed(
                lambda: [queue.enqueue({"n": i}) for i in range(file_n)]
            )
            rows.append({
                "operation": f"enqueue (1/txn, file WAL)",
                "sync_policy": sync_policy,
                "ops_per_s": file_n / elapsed,
                "journal_flushes": queue.db.wal.flush_count,
            })

    for batch in (10, 100):
        queue = make_queue("commit")

        def run_batched():
            conn = queue.db.connect()
            for start in range(0, n, batch):
                conn.begin()
                for i in range(start, min(start + batch, n)):
                    queue.enqueue({"n": i}, conn=conn)
                conn.commit()

        elapsed = timed(run_batched)
        rows.append({
            "operation": f"enqueue (batch={batch}/txn)",
            "sync_policy": "commit",
            "ops_per_s": n / elapsed,
            "journal_flushes": queue.db.wal.flush_count,
        })

    # Dequeue+ack throughput, FIFO vs priority-spread.
    for label, priority_of in (
        ("dequeue+ack (fifo)", lambda i: 0),
        ("dequeue+ack (10 priorities)", lambda i: i % 10),
    ):
        queue = make_queue("none")
        for i in range(n):
            queue.enqueue(Message(payload={"n": i}, priority=priority_of(i)))

        def drain():
            while True:
                message = queue.dequeue()
                if message is None:
                    return
                queue.ack(message.message_id)

        elapsed = timed(drain)
        rows.append({
            "operation": label,
            "sync_policy": "none",
            "ops_per_s": n / elapsed,
            "journal_flushes": queue.db.wal.flush_count,
        })

    return rows


def run_batch_sweep(
    n: int = N_SWEEP, batch_sizes: tuple[int, ...] = BATCH_SIZES
) -> list[dict]:
    """Batch-size sweep over the batch APIs proper: enqueue_batch /
    dequeue_batch / ack_batch against a file-backed durable journal, so
    every commit pays a real fsync.  batch=1 degenerates to the
    single-message path and is the baseline the ≥3x amortization claim
    is measured against — the win comes precisely from one fsync
    covering the whole batch."""
    rows: list[dict] = []
    for batch in batch_sizes:
        with tempfile.TemporaryDirectory() as tmp:
            rows.append(_batch_sweep_arm(tmp, n, batch))
    return rows


def _batch_sweep_arm(tmp: str, n: int, batch: int) -> dict:
    db = Database(
        path=os.path.join(tmp, "wal.log"),
        clock=SimulatedClock(),
        sync_policy="commit",
    )
    queue = QueueTable(db, "bench")
    payloads = [{"n": i} for i in range(n)]

    def fill():
        if batch == 1:
            for payload in payloads:
                queue.enqueue(payload)
        else:
            for start in range(0, n, batch):
                queue.enqueue_batch(payloads[start : start + batch])

    enqueue_s = timed(fill)

    def drain():
        if batch == 1:
            while True:
                message = queue.dequeue()
                if message is None:
                    return
                queue.ack(message.message_id)
        else:
            while True:
                messages = queue.dequeue_batch(batch)
                if not messages:
                    return
                queue.ack_batch([m.message_id for m in messages])

    dequeue_s = timed(drain)
    return {
        "batch": batch,
        "enqueue_msgs_per_s": n / enqueue_s,
        "dequeue_msgs_per_s": n / dequeue_s,
        "total_msgs_per_s": n / (enqueue_s + dequeue_s),
        "journal_flushes": queue.db.wal.flush_count,
    }


def run_group_commit_sweep(
    n: int = 2_000, sizes: tuple[int, ...] = BATCH_SIZES
) -> list[dict]:
    """Group-commit sweep: single-message enqueues (one transaction
    each) against a file-backed journal, varying ``group_commit_size``
    so one fsync covers up to N committed transactions."""
    rows: list[dict] = []
    for size in sizes:
        with tempfile.TemporaryDirectory() as tmp:
            db = Database(
                path=os.path.join(tmp, "wal.log"),
                clock=SimulatedClock(),
                sync_policy="commit",
                group_commit_size=size,
            )
            queue = QueueTable(db, "bench")
            elapsed = timed(lambda: [queue.enqueue({"n": i}) for i in range(n)])
            rows.append({
                "group_commit_size": size,
                "enqueue_msgs_per_s": n / elapsed,
                "journal_flushes": db.wal.flush_count,
            })
    return rows


def run_depth_sweep(
    depths: tuple[int, ...] = (1_000, 10_000),
    *,
    drain: int = 1_000,
    trials: int = 3,
) -> list[dict]:
    """Dequeue cost vs queue depth: drain ``drain`` messages off queues
    of different depths.  With the in-memory READY heap this is
    O(log n) per pop, so throughput should be nearly depth-independent
    (the ≤2x acceptance bound).  Best of ``trials`` runs per depth, as
    usual for allocator/GC-noisy microbenchmarks."""
    rows: list[dict] = []
    for depth in depths:
        best = 0.0
        for _ in range(trials):
            queue = make_queue("none")
            queue.enqueue_batch([{"n": i} for i in range(depth)])

            def drain_some():
                taken = 0
                while taken < drain:
                    messages = queue.dequeue_batch(64)
                    if not messages:
                        return
                    queue.ack_batch([m.message_id for m in messages])
                    taken += len(messages)

            best = max(best, drain / timed(drain_some))
        rows.append({
            "queue_depth": depth,
            "drained": drain,
            "dequeue_msgs_per_s": best,
        })
    return rows


# -- pytest-benchmark micro-measurements -------------------------------------


def test_exp2_enqueue_fast_path(benchmark):
    queue = make_queue("none")
    counter = iter(range(10**9))
    benchmark(lambda: queue.enqueue({"n": next(counter)}))


def test_exp2_enqueue_durable(benchmark):
    queue = make_queue("commit")
    counter = iter(range(10**9))
    benchmark(lambda: queue.enqueue({"n": next(counter)}))


def test_exp2_dequeue_ack(benchmark):
    queue = make_queue("none")
    for i in range(20_000):
        queue.enqueue({"n": i})

    def cycle():
        message = queue.dequeue()
        queue.ack(message.message_id)

    benchmark(cycle)


def test_exp2_browse(benchmark):
    queue = make_queue("none")
    for i in range(500):
        queue.enqueue({"n": i})
    benchmark(lambda: sum(1 for _ in queue.browse()))


def test_exp2_shape():
    rows = run_experiment(n=400)
    by_op = {(row["operation"], row["sync_policy"]): row for row in rows}
    # Durable enqueue flushes once per message; batching amortizes it.
    assert by_op[("enqueue (1/txn)", "commit")]["journal_flushes"] >= 400
    assert by_op[("enqueue (batch=100/txn)", "commit")]["journal_flushes"] <= 10
    batched = by_op[("enqueue (batch=100/txn)", "commit")]["ops_per_s"]
    single = by_op[("enqueue (1/txn)", "commit")]["ops_per_s"]
    assert batched > single * 0.8  # never worse; usually much better
    # Priorities cost little: within 4x of FIFO drain.
    fifo = by_op[("dequeue+ack (fifo)", "none")]["ops_per_s"]
    prio = by_op[("dequeue+ack (10 priorities)", "none")]["ops_per_s"]
    assert prio > fifo / 4


def test_exp2_batch_sweep_shape():
    for attempt in (1, 2):  # one retry: first-fsync warmup can be noisy
        rows = run_batch_sweep(n=800, batch_sizes=(1, 64))
        by_batch = {row["batch"]: row for row in rows}
        assert (
            by_batch[64]["journal_flushes"]
            < by_batch[1]["journal_flushes"] / 10
        )
        # Batching amortizes the per-transaction fsync by >= 3x end to end.
        speedup = (
            by_batch[64]["total_msgs_per_s"] / by_batch[1]["total_msgs_per_s"]
        )
        if speedup >= 3 or attempt == 2:
            assert speedup >= 3
            return


def test_exp2_group_commit_sweep_shape():
    for attempt in (1, 2):  # one retry: first-fsync warmup can be noisy
        rows = run_group_commit_sweep(n=600, sizes=(1, 64))
        by_size = {row["group_commit_size"]: row for row in rows}
        assert (
            by_size[64]["journal_flushes"] < by_size[1]["journal_flushes"] / 10
        )
        speedup = (
            by_size[64]["enqueue_msgs_per_s"]
            / by_size[1]["enqueue_msgs_per_s"]
        )
        if speedup > 1.5 or attempt == 2:
            assert speedup > 1.5
            return


def test_exp2_depth_sweep_shape():
    rows = run_depth_sweep(depths=(1_000, 10_000), drain=1_000)
    slow = min(row["dequeue_msgs_per_s"] for row in rows)
    fast = max(row["dequeue_msgs_per_s"] for row in rows)
    # Heap dequeue is O(log n): depth barely moves the needle.
    assert fast <= slow * 2


def main(quick: bool = False) -> None:
    n = 200 if quick else N_MESSAGES
    sweep_n = 1000 if quick else N_SWEEP
    depths = (200, 1000) if quick else (1_000, 10_000)
    print_table(
        f"EXP-2: queue operational characteristics ({n} messages)",
        run_experiment(n=n),
        ["operation", "sync_policy", "ops_per_s", "journal_flushes"],
    )
    print_table(
        f"EXP-2: batch-size sweep ({sweep_n} messages, file WAL, fsync/commit)",
        run_batch_sweep(n=sweep_n),
        [
            "batch",
            "enqueue_msgs_per_s",
            "dequeue_msgs_per_s",
            "total_msgs_per_s",
            "journal_flushes",
        ],
    )
    print_table(
        f"EXP-2: group-commit sweep (single enqueues, file WAL)",
        run_group_commit_sweep(n=400 if quick else 2_000),
        ["group_commit_size", "enqueue_msgs_per_s", "journal_flushes"],
    )
    print_table(
        "EXP-2: dequeue throughput vs queue depth",
        run_depth_sweep(depths=depths, drain=min(depths)),
        ["queue_depth", "drained", "dequeue_msgs_per_s"],
    )


if __name__ == "__main__":
    main()
