"""Command-line entry point: ``python -m repro``.

Offers a small operational surface without writing any code:

    python -m repro demo              # run the quickstart pipeline
    python -m repro sql               # interactive SQL shell on a
                                      # scratch database
    python -m repro sql --wal FILE    # ... persisted to a journal file
    python -m repro stats             # run the observability demo
                                      # pipeline and dump its metrics
    python -m repro stats --json      # ... as machine-readable JSON
    python -m repro stats --faults    # ... with failure boundaries
                                      # exercised by fault injection
    python -m repro version
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.db import Database
from repro.errors import ReproError


def run_sql_shell(wal_path: str | None) -> int:
    db = Database(path=wal_path)
    print(f"repro {__version__} SQL shell — empty line or Ctrl-D to exit")
    if wal_path:
        print(f"journal: {wal_path} "
              f"({len(db.wal)} records recovered)")
    connection = db.connect()
    while True:
        try:
            line = input("sql> ").strip()
        except EOFError:
            print()
            return 0
        if not line:
            return 0
        try:
            result = connection.execute(line)
        except ReproError as exc:
            print(f"error: {exc}")
            continue
        if result.rows:
            columns = result.columns or list(result.rows[0])
            print(" | ".join(columns))
            for row in result.rows:
                print(" | ".join(str(row.get(column)) for column in columns))
            print(f"({len(result.rows)} rows)")
        elif result.rowcount:
            print(f"ok ({result.rowcount} rows affected)")
        else:
            print("ok")


def run_demo() -> int:
    # Import lazily: examples/ ships alongside the package in the repo
    # but is not part of the installed distribution.
    import pathlib
    import runpy

    candidate = (
        pathlib.Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    )
    if not candidate.exists():
        print("demo requires the repository checkout (examples/quickstart.py)")
        return 1
    runpy.run_path(str(candidate), run_name="__main__")
    return 0


def run_stats(
    *, events: int, as_json: bool, faults: bool, shards: int = 0
) -> int:
    if shards:
        from repro.obs.report import (
            format_sharded_report,
            run_sharded_stats_workload,
        )

        report = run_sharded_stats_workload(shards=shards, events=events)
        formatter = format_sharded_report
    else:
        from repro.obs.report import format_report, run_stats_workload

        report = run_stats_workload(events=events, faults=faults)
        formatter = format_report
    if as_json:
        import json

        print(json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        print(formatter(report))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Event processing using database technology "
        "(Chandy & Gawlick, SIGMOD 2007 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser("version", help="print the package version")
    subparsers.add_parser("demo", help="run the quickstart pipeline")
    sql_parser = subparsers.add_parser("sql", help="interactive SQL shell")
    sql_parser.add_argument(
        "--wal", metavar="FILE", default=None,
        help="journal file: state persists and recovers across runs",
    )
    stats_parser = subparsers.add_parser(
        "stats",
        help="run the end-to-end demo pipeline and dump its metrics, "
        "suppressed-error accounting, and a sample event trace",
    )
    stats_parser.add_argument(
        "--events", type=int, default=60,
        help="number of source rows to push through the pipeline",
    )
    stats_parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    stats_parser.add_argument(
        "--faults", action="store_true",
        help="arm failure-boundary failpoints so suppressed errors "
        "(consumer crashes, trigger-drop failures) appear in the report",
    )
    stats_parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="run the workload over N shard worker processes instead "
        "and report fleet-wide merged metrics (ignores --faults)",
    )
    arguments = parser.parse_args(argv)
    if arguments.command == "version":
        print(__version__)
        return 0
    if arguments.command == "demo":
        return run_demo()
    if arguments.command == "sql":
        return run_sql_shell(arguments.wal)
    if arguments.command == "stats":
        return run_stats(
            events=arguments.events,
            as_json=arguments.json,
            faults=arguments.faults,
            shards=arguments.shards,
        )
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
