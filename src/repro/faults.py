"""Deterministic fault injection for the storage/WAL/queue/delivery path.

The operational triad the paper claims for database-backed event
processing — recoverability, availability, transactional support
(§2.2.b.ii.3) — is only demonstrated when the guarantees hold under
*injected* failure histories, not just clean crash boundaries.  This
module provides the harness: named **failpoints** threaded through the
pipeline, armed per-test with a trigger **policy** and an **action**.

Failpoint catalog (the names production code fires):

======================  =====================================================
name                    fired
======================  =====================================================
``wal.append``          before a record is appended to the journal
``wal.pre_flush``       entering :meth:`WriteAheadLog.flush`, before any I/O
``wal.post_flush``      after a flush became durable
``wal.flush.torn``      consulted mid-flush; a :func:`torn_write` action
                        makes the flush write only part (or a corrupted
                        copy) of its final frame and die
``broker.publish``      before an enqueue through the broker
``broker.consume``      before a dequeue through the broker
``broker.ack``          before an acknowledgement through the broker
``delivery.consumer``   before a consumer callback runs (inside the
                        nack/retry failure boundary)
``pubsub.consumer``     before an activated durable subscriber's
                        listener runs (inside the requeue boundary)
``capture.drop_trigger``  inside capture-source teardown, before each
                        trigger is dropped (the swallowed-close path)
``shard.prepared``      in a shard worker, after a 2PC prepare record
                        became durable and the YES vote was sent —
                        the classic "voted yes then died" window
``shard.decide``        in a shard worker, after a 2PC decision
                        arrived but before it is applied
``shard.heartbeat``     in a shard worker, before answering a
                        supervisor heartbeat probe — arm ``exit`` to
                        model a crash, :func:`stall` to model a wedged
                        worker that times out but stays alive
``shard.replicate``     in a replica worker, before applying a shipped
                        replication batch
``shard.promote``       in the coordinator, after the chosen replica
                        is caught up but before routing flips to it
======================  =====================================================

Custom names are allowed (the catalog is a convention, not a schema) so
tests can add failpoints to code they instrument locally.

Determinism: ambient nondeterminism is banned in tests, so the
probabilistic policy draws from the injector's own seeded
:class:`random.Random` — two injectors built with the same seed fire
identically.  All policies see the 1-based *hit* count of their
failpoint, so "fail the 3rd flush" is one line.

Example::

    injector = FaultInjector(seed=7)
    injector.arm(WAL_PRE_FLUSH, raise_fault("disk died"), policy=on_hit(3))
    db = Database(path=path, faults=injector)
    ...                      # third flush raises FaultInjectedError
    db = Database(path=path)  # "new process": recover from the file
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import FaultInjectedError

# -- failpoint catalog -------------------------------------------------------

WAL_APPEND = "wal.append"
WAL_PRE_FLUSH = "wal.pre_flush"
WAL_POST_FLUSH = "wal.post_flush"
WAL_TORN_WRITE = "wal.flush.torn"
BROKER_PUBLISH = "broker.publish"
BROKER_CONSUME = "broker.consume"
BROKER_ACK = "broker.ack"
DELIVERY_CONSUMER = "delivery.consumer"
PUBSUB_CONSUMER = "pubsub.consumer"
CAPTURE_DROP_TRIGGER = "capture.drop_trigger"
SHARD_PREPARED = "shard.prepared"
SHARD_DECIDE = "shard.decide"
SHARD_HEARTBEAT = "shard.heartbeat"
SHARD_REPLICATE = "shard.replicate"
SHARD_PROMOTE = "shard.promote"

FAILPOINT_CATALOG = frozenset(
    {
        WAL_APPEND,
        WAL_PRE_FLUSH,
        WAL_POST_FLUSH,
        WAL_TORN_WRITE,
        BROKER_PUBLISH,
        BROKER_CONSUME,
        BROKER_ACK,
        DELIVERY_CONSUMER,
        PUBSUB_CONSUMER,
        CAPTURE_DROP_TRIGGER,
        SHARD_PREPARED,
        SHARD_DECIDE,
        SHARD_HEARTBEAT,
        SHARD_REPLICATE,
        SHARD_PROMOTE,
    }
)


@dataclass
class FaultContext:
    """Everything an action sees when its failpoint fires.

    ``site`` carries keyword context from the fire site (e.g. ``wal``,
    ``queue``); ``result`` is how an action hands a directive back to
    the site (the torn-write action uses it to describe the tear).
    """

    name: str
    hit: int
    site: dict[str, Any] = field(default_factory=dict)
    result: Any = None


# A policy decides, per hit, whether the failpoint fires.  It receives
# the 1-based hit count and the injector's seeded RNG.
Policy = Callable[[int, random.Random], bool]
Action = Callable[[FaultContext], None]


# -- trigger policies --------------------------------------------------------


def always() -> Policy:
    """Fire on every hit (bound it with ``max_fires`` when arming)."""
    return lambda hit, rng: True


def on_hit(n: int) -> Policy:
    """Fire on exactly the ``n``-th hit (1-based)."""
    if n < 1:
        raise ValueError("on_hit is 1-based; n must be >= 1")
    return lambda hit, rng: hit == n


def every(n: int) -> Policy:
    """Fire on every ``n``-th hit (n, 2n, 3n, ...)."""
    if n < 1:
        raise ValueError("every(n) requires n >= 1")
    return lambda hit, rng: hit % n == 0


def after(n: int) -> Policy:
    """Fire on every hit strictly after the ``n``-th."""
    return lambda hit, rng: hit > n


def with_probability(p: float) -> Policy:
    """Fire each hit with probability ``p``, drawn from the injector's
    seeded RNG (no ambient randomness)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("probability must be within [0, 1]")
    return lambda hit, rng: rng.random() < p


# -- actions -----------------------------------------------------------------


def raise_fault(message: str = "injected fault") -> Action:
    """Raise :class:`FaultInjectedError` (an ``IOError``) at the site."""

    def action(ctx: FaultContext) -> None:
        raise FaultInjectedError(message, failpoint=ctx.name)

    return action


def raise_error(factory: Callable[[FaultContext], BaseException]) -> Action:
    """Raise an arbitrary exception built by ``factory`` (for sites
    whose callers handle specific error types)."""

    def action(ctx: FaultContext) -> None:
        raise factory(ctx)

    return action


def crash_wal() -> Action:
    """Simulate process death at the site: drop the WAL's non-durable
    tail (:meth:`WriteAheadLog.crash`) and raise.

    Requires the site to pass ``wal=`` context (all ``wal.*``
    failpoints do).
    """

    def action(ctx: FaultContext) -> None:
        wal = ctx.site.get("wal")
        if wal is None:
            raise FaultInjectedError(
                "crash_wal armed on a site without wal context",
                failpoint=ctx.name,
            )
        wal.crash()
        raise FaultInjectedError("injected crash", failpoint=ctx.name)

    return action


def torn_write(mode: str = "truncate", *, drop_bytes: int | None = None) -> Action:
    """Tear the flush in progress (``wal.flush.torn`` only).

    ``mode="truncate"`` writes the batch minus its final ``drop_bytes``
    (default: half of the final frame), modeling a crash mid-``write``;
    ``mode="corrupt"`` writes every byte but flips one inside the final
    frame, modeling a misdirected/bit-rotted sector.  Either way the
    flush then raises :class:`FaultInjectedError` — the process "died";
    recover by opening a fresh :class:`Database` over the journal path.
    """
    if mode not in ("truncate", "corrupt"):
        raise ValueError(f"unknown torn_write mode {mode!r}")

    def action(ctx: FaultContext) -> None:
        ctx.result = {"mode": mode, "drop_bytes": drop_bytes}

    return action


def added_latency(clock: Any, seconds: float) -> Action:
    """Advance (simulated) or sleep (wall) ``clock`` by ``seconds`` —
    models a stall at the site without failing it."""

    def action(ctx: FaultContext) -> None:
        if hasattr(clock, "advance"):
            clock.advance(seconds)
        else:
            clock.sleep(seconds)

    return action


def exit_process(code: int = 1) -> Action:
    """Kill the current process immediately (``os._exit`` — no flushes,
    no atexit, no cleanup), modeling a hard worker crash at the site.

    Used by the shard crash tests: a worker armed with this action on
    ``shard.prepared`` dies with its vote on the wire, leaving an
    in-doubt transaction for recovery to resolve.
    """

    def action(ctx: FaultContext) -> None:
        import os

        os._exit(code)

    return action


def stall(seconds: float) -> Action:
    """Block the site for ``seconds`` of *real* time (``time.sleep``).

    Models a wedged-but-alive process: a shard worker stalled on its
    heartbeat trips the coordinator's socket timeout while
    ``process.is_alive()`` stays true — the "transient timeout"
    classification, as opposed to a dead channel.
    """

    def action(ctx: FaultContext) -> None:
        import time

        time.sleep(seconds)

    return action


def call(fn: Callable[[FaultContext], None]) -> Action:
    """Escape hatch: run an arbitrary callable as the action."""
    return fn


# -- the injector ------------------------------------------------------------


@dataclass
class Failpoint:
    """One armed failpoint: action + policy + hit/fire accounting."""

    name: str
    action: Action
    policy: Policy
    max_fires: int | None = None
    hits: int = 0
    fires: int = 0


class FaultInjector:
    """Registry of armed failpoints, owned by the test (or benchmark).

    Pass it to :class:`Database(faults=...)` (which forwards it to the
    WAL) — brokers and delivery managers pick it up through their
    database.  Production code calls :meth:`fire` at each site; the
    call is a dictionary miss when nothing is armed, so an un-armed
    pipeline pays nothing.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self._failpoints: dict[str, Failpoint] = {}
        # (name, hit) of every fire, in order — lets tests assert on
        # which failure was actually exercised.
        self.history: list[tuple[str, int]] = []

    def arm(
        self,
        name: str,
        action: Action,
        *,
        policy: Policy | None = None,
        max_fires: int | None = None,
    ) -> Failpoint:
        """Arm (or re-arm) ``name``; returns the failpoint for
        inspection.  Default policy fires every hit."""
        failpoint = Failpoint(
            name=name,
            action=action,
            policy=policy or always(),
            max_fires=max_fires,
        )
        self._failpoints[name] = failpoint
        return failpoint

    def disarm(self, name: str) -> None:
        self._failpoints.pop(name, None)

    def reset(self) -> None:
        """Disarm everything and clear history (keeps the RNG state)."""
        self._failpoints.clear()
        self.history.clear()

    def armed(self, name: str) -> bool:
        return name in self._failpoints

    def fire(self, name: str, **site: Any) -> FaultContext | None:
        """Called by production code at a failpoint site.

        Returns ``None`` when the failpoint is unarmed or its policy
        declined; otherwise runs the action (which may raise) and
        returns the context, whose ``result`` may carry a directive
        back to the site.
        """
        failpoint = self._failpoints.get(name)
        if failpoint is None:
            return None
        failpoint.hits += 1
        if failpoint.max_fires is not None and failpoint.fires >= failpoint.max_fires:
            return None
        if not failpoint.policy(failpoint.hits, self.rng):
            return None
        failpoint.fires += 1
        context = FaultContext(name=name, hit=failpoint.hits, site=site)
        self.history.append((name, failpoint.hits))
        failpoint.action(context)
        return context


# -- out-of-band corruption helper -------------------------------------------


def corrupt_record_on_disk(path: str, lsn: int) -> int:
    """Flip one payload byte of the frame holding ``lsn`` in the WAL
    file at ``path``; returns the byte offset corrupted.

    This models in-place media corruption (as opposed to a torn tail,
    which :func:`torn_write` injects through the flush path).  The
    framing's CRC must catch the flip on the next load.
    """
    # Imported here so `repro.faults` stays importable without pulling
    # the whole db package at module-import time.
    from repro.db import wal as wal_module

    with open(path, "rb") as handle:
        data = handle.read()
    for start, end, record in wal_module.iter_frames(data):
        if record is not None and record.lsn == lsn:
            # Flip a byte in the middle of the frame's payload region —
            # never the newline terminator, so the line structure (and
            # therefore every *other* frame) stays intact.
            target = start + (end - start) // 2
            corrupted = (
                data[:target]
                + bytes([data[target] ^ 0x55])
                + data[target + 1 :]
            )
            with open(path, "wb") as handle:
                handle.write(corrupted)
            return target
    raise ValueError(f"no frame with lsn {lsn} found in {path!r}")
