"""Query-based event capture: result-set change as event (§2.2.a.iii.1).

A :class:`QueryCapture` runs a SELECT on every poll and diffs the
result set against the previous poll's snapshot.  Rows that appear
produce ``query.<name>.added`` events; rows that disappear produce
``query.<name>.removed`` events; rows whose non-key columns change
produce ``query.<name>.changed`` events (when ``key_columns`` given).

This is the *pull* end of the capture spectrum: no database hooks at
all, cost proportional to poll frequency × result size, and detection
latency bounded by the poll interval.  It also under-reports: a row
that appears and disappears between two polls is never seen — a false
negative mode the other capture styles do not have (tested explicitly).
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.capture.base import CaptureSource
from repro.db.database import Database
from repro.events import Event


def _freeze(value: Any) -> Hashable:
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


class QueryCapture(CaptureSource):
    """Periodic query snapshot differencing."""

    def __init__(
        self,
        db: Database,
        query: str,
        *,
        name: str = "query-capture",
        key_columns: Sequence[str] | None = None,
    ) -> None:
        """Args:
        query: any SELECT; its rows define the monitored state.
        key_columns: identity columns for rows.  With keys, the diff
            distinguishes *changed* rows from remove+add pairs; without,
            rows are compared by full value.
        """
        super().__init__(name)
        self.db = db
        self.query = query
        self.key_columns = list(key_columns) if key_columns else None
        self._previous: dict[Hashable, dict[str, Any]] | None = None
        self.polls = 0

    def _snapshot(self) -> dict[Hashable, dict[str, Any]]:
        rows = self.db.query(self.query)
        snapshot: dict[Hashable, dict[str, Any]] = {}
        for row in rows:
            if self.key_columns:
                key = tuple(_freeze(row[column]) for column in self.key_columns)
            else:
                key = _freeze(row)
            snapshot[key] = row
        return snapshot

    def poll(self) -> list[Event]:
        """Run the query, diff against the previous result set, emit.

        The first poll establishes the baseline and emits nothing.
        """
        self.polls += 1
        current = self._snapshot()
        events: list[Event] = []
        if self._previous is not None:
            now = self.db.clock.now()
            for key, row in current.items():
                if key not in self._previous:
                    events.append(self._make_event("added", row, None, now))
                elif self._previous[key] != row:
                    events.append(
                        self._make_event("changed", row, self._previous[key], now)
                    )
            for key, row in self._previous.items():
                if key not in current:
                    events.append(self._make_event("removed", None, row, now))
        self._previous = current
        for event in events:
            self._emit(event)
        return events

    def _make_event(
        self,
        kind: str,
        row: dict[str, Any] | None,
        previous: dict[str, Any] | None,
        now: float,
    ) -> Event:
        payload: dict[str, Any] = {"new": row, "old": previous}
        image = row if row is not None else previous
        if image:
            for key, value in image.items():
                payload.setdefault(key, value)
        return Event(
            event_type=f"query.{self.name}.{kind}",
            timestamp=now,
            payload=payload,
            source=f"query:{self.name}",
        )
