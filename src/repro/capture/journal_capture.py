"""Journal-mining event capture (paper §2.2.a.ii).

A :class:`JournalCapture` owns a :class:`repro.db.wal.JournalReader`
positioned at the journal tail.  Each :meth:`poll` consumes newly
*committed* DML records and converts them to events.

The architectural contrast with trigger capture: the foreground
transaction does **no** extra work (the journal is written anyway, for
durability), and capture cost is paid by the asynchronous miner.  The
price is latency — an event is observable only after (a) its
transaction commits and (b) the next poll runs.  EXP-1 sweeps the poll
interval to trace that latency/overhead frontier.
"""

from __future__ import annotations

from typing import Iterable

from repro.capture.base import CaptureSource, change_event
from repro.db.database import Database
from repro.db.wal import DML_OPS
from repro.events import Event


class JournalCapture(CaptureSource):
    """Asynchronous capture by mining the write-ahead log."""

    def __init__(
        self,
        db: Database,
        tables: Iterable[str] | None = None,
        *,
        name: str = "journal-capture",
        from_start: bool = False,
    ) -> None:
        """Args:
        db: the database whose journal to mine.
        tables: restrict capture to these tables (None = all).
        from_start: start from LSN 0, replaying all history, instead
            of the current tail.
        """
        super().__init__(name)
        self.db = db
        self.tables = (
            {table.lower() for table in tables} if tables is not None else None
        )
        self._reader = db.journal_reader(start_lsn=0 if from_start else None)
        self.polls = 0

    @property
    def position(self) -> int:
        """Journal LSN up to which changes have been mined."""
        return self._reader.position

    def poll(self) -> list[Event]:
        """Mine newly committed changes; emits and returns the events."""
        self.polls += 1
        events: list[Event] = []
        for record in self._reader.poll():
            if record.op not in DML_OPS:
                continue  # DDL records carry no row change to publish.
            if self.tables is not None and record.table not in self.tables:
                continue
            event = change_event(
                record.table,
                record.op,
                record.ts,  # when the change was journaled, not polled
                old=record.before,
                new=record.after,
                source="journal",
                txid=record.txid,
            )
            events.append(event)
            self._emit(event)
        return events

    def run_forever(self, poll_interval: float, *, max_polls: int | None = None) -> None:
        """Convenience polling loop driven by the database clock."""
        polls = 0
        while max_polls is None or polls < max_polls:
            self.poll()
            self.db.clock.sleep(poll_interval)
            polls += 1
