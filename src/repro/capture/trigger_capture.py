"""Trigger-based event capture (paper §2.2.a.i).

Registers AFTER-row triggers on the monitored tables.  Because triggers
run inside the writing transaction, capture work is **synchronous**:
the writer pays for event construction before its statement returns —
the foreground overhead EXP-1 measures against journal mining.

Two publication modes:

* ``transactional=True`` (default): events are buffered per transaction
  and emitted only after commit; a rollback discards them.  This mirrors
  how a commercial database enqueues messages transactionally and means
  subscribers never see changes that did not happen.
* ``transactional=False``: events are emitted immediately from the
  trigger, inside the transaction — lowest latency, but an aborting
  transaction will already have published phantom events.
"""

from __future__ import annotations

from typing import Iterable

from repro.capture.base import CaptureSource, change_event
from repro.db.database import Database
from repro.db.expr import Expression
from repro.db.transactions import Transaction
from repro.db.triggers import TriggerContext, TriggerEvent, TriggerTiming
from repro.events import Event
from repro.faults import CAPTURE_DROP_TRIGGER

_OPERATIONS = (TriggerEvent.INSERT, TriggerEvent.UPDATE, TriggerEvent.DELETE)


class TriggerCapture(CaptureSource):
    """Capture data-change events through AFTER-row triggers."""

    def __init__(
        self,
        db: Database,
        tables: Iterable[str],
        *,
        transactional: bool = True,
        when: Expression | None = None,
        name: str = "trigger-capture",
    ) -> None:
        super().__init__(name)
        self.db = db
        self.transactional = transactional
        self.tables = [table.lower() for table in tables]
        self._trigger_names: list[str] = []
        self._buffers: dict[int, list[Event]] = {}
        for table in self.tables:
            for operation in _OPERATIONS:
                trigger_name = f"{name}_{table}_{operation.value}"
                self.db.create_trigger(
                    trigger_name,
                    table,
                    timing=TriggerTiming.AFTER,
                    event=operation,
                    action=self._on_change,
                    when=when,
                    for_each_row=True,
                )
                self._trigger_names.append(trigger_name)
        if transactional:
            db.add_commit_listener(self._on_commit)
            db.add_abort_listener(self._on_abort)

    def _on_change(self, context: TriggerContext) -> None:
        event = change_event(
            context.table,
            context.event.value,
            self.db.clock.now(),
            old=context.old_row,
            new=context.new_row,
            source=f"trigger:{context.table}",
            txid=context.txid,
        )
        if self.transactional:
            self._buffers.setdefault(context.txid, []).append(event)
        else:
            self._emit(event)

    def _on_commit(self, transaction: Transaction) -> None:
        for event in self._buffers.pop(transaction.txid, ()):
            self._emit(event)

    def _on_abort(self, transaction: Transaction) -> None:
        self._buffers.pop(transaction.txid, None)

    def close(self) -> None:
        """Drop the capture triggers from the database.

        Teardown is best-effort — a trigger that is already gone must
        not abort closing the rest — but every suppressed failure is
        counted and retained in the metrics registry so a close that
        silently left triggers behind is detectable.
        """
        for trigger_name in self._trigger_names:
            try:
                if self.db.faults is not None:
                    self.db.faults.fire(
                        CAPTURE_DROP_TRIGGER, capture=self, trigger=trigger_name
                    )
                self.db.drop_trigger(trigger_name)
            except Exception as exc:
                self.db.obs.record_error("capture.trigger.close", exc)
        self._trigger_names.clear()
