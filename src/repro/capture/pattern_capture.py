"""Pattern capture across current and previous states (§2.2.a.iii.2).

Where :class:`QueryCapture` reports *that* the result set changed,
:class:`PatternCapture` evaluates a **transition pattern** over the
(previous, current) pair of each keyed row and emits an event only when
the pattern holds.  The pattern is an expression over a synthesized row
exposing each monitored column twice: ``old_<col>`` and ``new_<col>``
(plus bare ``<col>`` bound to the new value), e.g.::

    Transition("meter_readings",
               condition="new_usage > old_usage * 2",
               key_columns=["meter_id"])

— "usage doubled since the last observation", the utility use case from
§2.2.e.ii.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Sequence

from repro.capture.base import CaptureSource
from repro.capture.query_capture import _freeze
from repro.db.database import Database
from repro.db.expr import Expression, compile_predicate
from repro.db.sql.parser import parse_expression
from repro.events import Event


@dataclass
class Transition:
    """A transition pattern over a monitored query.

    Attributes:
        query: SELECT (or table name — expanded to ``SELECT * FROM t``)
            defining the monitored state.
        condition: expression text over ``old_*``/``new_*`` columns.
        key_columns: columns identifying a row across polls.
        include_appearing: evaluate the pattern for rows with no
            previous image (old_* bound to NULL).  Default False: a
            transition needs both states.
    """

    query: str
    condition: str
    key_columns: Sequence[str]
    include_appearing: bool = False

    def parsed_condition(self) -> Expression:
        return parse_expression(self.condition)

    def sql(self) -> str:
        text = self.query.strip()
        if text.upper().startswith("SELECT"):
            return text
        return f"SELECT * FROM {text}"


class PatternCapture(CaptureSource):
    """Detect specified old-vs-new patterns in a polled query."""

    def __init__(
        self,
        db: Database,
        transition: Transition,
        *,
        name: str = "pattern-capture",
    ) -> None:
        super().__init__(name)
        self.db = db
        self.transition = transition
        self._condition = transition.parsed_condition()
        self._previous: dict[Hashable, dict[str, Any]] = {}
        self._primed = False
        self.polls = 0

    def poll(self) -> list[Event]:
        """Evaluate the transition pattern for every keyed row.

        The first poll establishes baselines; patterns fire from the
        second poll onward (unless ``include_appearing``).
        """
        self.polls += 1
        rows = self.db.query(self.transition.sql())
        now = self.db.clock.now()
        current: dict[Hashable, dict[str, Any]] = {}
        events: list[Event] = []
        for row in rows:
            key = tuple(
                _freeze(row[column]) for column in self.transition.key_columns
            )
            current[key] = row
            previous = self._previous.get(key)
            if previous is None and not (
                self._primed and self.transition.include_appearing
            ):
                continue
            context: dict[str, Any] = dict(row)
            for column, value in row.items():
                context[f"new_{column}"] = value
            if previous is not None:
                for column, value in previous.items():
                    context[f"old_{column}"] = value
            else:
                for column in row:
                    context[f"old_{column}"] = None
            if compile_predicate(self._condition)(context):
                events.append(
                    Event(
                        event_type=f"pattern.{self.name}",
                        timestamp=now,
                        payload={
                            "old": previous,
                            "new": row,
                            "condition": self.transition.condition,
                            **row,
                        },
                        source=f"pattern:{self.name}",
                    )
                )
        self._previous = current
        self._primed = True
        for event in events:
            self._emit(event)
        return events
