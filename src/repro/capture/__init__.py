"""Event capture — paper §2.2.a.

Four ways the database turns state changes into events:

* :class:`TriggerCapture` — synchronous, via AFTER-row triggers
  (§2.2.a.i); cost is paid inside the writing transaction.
* :class:`JournalCapture` — asynchronous log mining over the WAL
  (§2.2.a.ii); near-zero foreground cost, bounded capture latency.
* :class:`QueryCapture` — a periodic query over current state whose
  result-set *change* is the event (§2.2.a.iii.1).
* :class:`PatternCapture` — a periodic query comparing current and
  previous state; a specified transition pattern is the event
  (§2.2.a.iii.2).

All sources share the :class:`CaptureSource` subscription interface and
emit :class:`repro.events.Event` objects.
"""

from repro.capture.base import CaptureSource, change_event
from repro.capture.journal_capture import JournalCapture
from repro.capture.notification_capture import QueryNotificationCapture
from repro.capture.pattern_capture import PatternCapture, Transition
from repro.capture.query_capture import QueryCapture
from repro.capture.trigger_capture import TriggerCapture

__all__ = [
    "CaptureSource",
    "change_event",
    "TriggerCapture",
    "JournalCapture",
    "QueryCapture",
    "QueryNotificationCapture",
    "PatternCapture",
    "Transition",
]
