"""Shared capture-source machinery: subscriptions and event envelopes."""

from __future__ import annotations

from typing import Any, Callable

from repro.events import Event, punctuation
from repro.obs.trace import new_trace_id, record_hop

EventSink = Callable[[Event], None]


def change_event(
    table: str,
    operation: str,
    timestamp: float,
    *,
    old: dict[str, Any] | None = None,
    new: dict[str, Any] | None = None,
    source: str = "",
    txid: int | None = None,
) -> Event:
    """Build the canonical data-change event.

    ``event_type`` is ``"<table>.<operation>"`` so type filters can
    select per-table (``orders.*``) or per-operation
    (``orders.insert``).  The payload carries both row images plus the
    new image's columns flattened to top level, so rule conditions can
    reference columns directly (``price > 100``).
    """
    payload: dict[str, Any] = {
        "table": table,
        "operation": operation,
        "old": old,
        "new": new,
    }
    if txid is not None:
        payload["txid"] = txid
    image = new if new is not None else old
    if image:
        for key, value in image.items():
            payload.setdefault(key, value)
    return Event(
        event_type=f"{table}.{operation}",
        timestamp=timestamp,
        payload=payload,
        source=source,
    )


class CaptureSource:
    """Base class: fan events out to subscribed sinks.

    Subclasses call :meth:`_emit`; consumers call :meth:`subscribe`.
    ``events_captured`` counts emissions for the EXP-1 harness.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._sinks: list[EventSink] = []
        self.events_captured = 0

    def subscribe(self, sink: EventSink) -> None:
        """Register a callback invoked for every captured event."""
        self._sinks.append(sink)

    def unsubscribe(self, sink: EventSink) -> None:
        self._sinks.remove(sink)

    def _emit(self, event: Event) -> None:
        self.events_captured += 1
        if event.trace_id is None:
            # The capture boundary is where a trace is born.  Event is a
            # frozen dataclass; the capture source is the one writer
            # allowed to stamp the id before the event escapes.
            object.__setattr__(event, "trace_id", new_trace_id())
        record_hop(
            event.trace_id,
            "capture",
            event.timestamp,
            source=self.name,
            event_type=event.event_type,
        )
        for sink in self._sinks:
            sink(event)

    def punctuate(self, watermark: float) -> None:
        """Emit a watermark punctuation: a promise that this source will
        capture no further events with ``timestamp < watermark``.  Rides
        the normal sink fan-out (and is traced like any capture), so
        downstream streams, queues, and windows advance event time
        without waiting for data."""
        self._emit(punctuation(watermark, source=self.name))

    def close(self) -> None:
        """Detach from the database; default is a no-op."""
