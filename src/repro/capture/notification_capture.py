"""Continuous-query notification (CQN-style) capture.

:class:`QueryCapture` polls; commercial databases also offer *query
result change notification*: the database itself re-checks a registered
query when — and only when — a commit touches one of its tables, and
pushes the delta.  This removes both polling cost on quiet tables and
detection latency on busy ones (events are published at commit time,
not at the next poll).

The transient-miss false negative of polling disappears too: every
commit is observed, so a row that appears and disappears across two
transactions is seen (within one transaction it is still invisible, as
it should be — uncommitted state never escapes).

Implementation: the capture extracts the query's table dependencies
from the parsed statement, registers a commit listener, tracks which
tables each transaction wrote (via cheap statement-level triggers), and
re-runs the snapshot diff only for commits that touched a dependency.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.capture.base import CaptureSource
from repro.capture.query_capture import _freeze
from repro.db.database import Database
from repro.db.sql.ast import Select
from repro.db.sql.parser import parse_statement
from repro.db.transactions import Transaction
from repro.db.triggers import TriggerEvent, TriggerTiming
from repro.errors import SqlSyntaxError
from repro.events import Event
from repro.faults import CAPTURE_DROP_TRIGGER


def query_dependencies(query: str) -> set[str]:
    """Tables a SELECT reads (base table + joins)."""
    statement = parse_statement(query)
    if not isinstance(statement, Select) or statement.table is None:
        raise SqlSyntaxError(
            "query notification requires a SELECT over at least one table"
        )
    tables = {statement.table}
    tables.update(join.table for join in statement.joins)
    return tables


class QueryNotificationCapture(CaptureSource):
    """Push-based query-result change capture."""

    def __init__(
        self,
        db: Database,
        query: str,
        *,
        name: str = "query-notification",
        key_columns: Sequence[str] | None = None,
    ) -> None:
        super().__init__(name)
        self.db = db
        self.query = query
        self.key_columns = list(key_columns) if key_columns else None
        self.dependencies = query_dependencies(query)
        self._previous = self._snapshot()
        self._dirty_txids: set[int] = set()
        self._trigger_names: list[str] = []
        self.reevaluations = 0
        self.commits_observed = 0
        self.commits_skipped = 0

        # Statement-level AFTER triggers mark the writing transaction
        # dirty; the commit listener re-evaluates only for dirty txids.
        for table in self.dependencies:
            for operation in (
                TriggerEvent.INSERT, TriggerEvent.UPDATE, TriggerEvent.DELETE
            ):
                trigger_name = f"{name}_{table}_{operation.value}"
                db.create_trigger(
                    trigger_name,
                    table,
                    timing=TriggerTiming.AFTER,
                    event=operation,
                    action=self._mark_dirty,
                    for_each_row=True,
                )
                self._trigger_names.append(trigger_name)
        db.add_commit_listener(self._on_commit)
        db.add_abort_listener(self._on_abort)

    def _mark_dirty(self, context) -> None:
        self._dirty_txids.add(context.txid)

    def _on_abort(self, transaction: Transaction) -> None:
        self._dirty_txids.discard(transaction.txid)

    def _on_commit(self, transaction: Transaction) -> None:
        self.commits_observed += 1
        if transaction.txid not in self._dirty_txids:
            self.commits_skipped += 1
            return
        self._dirty_txids.discard(transaction.txid)
        self._reevaluate()

    def _snapshot(self) -> dict[Hashable, dict[str, Any]]:
        snapshot: dict[Hashable, dict[str, Any]] = {}
        for row in self.db.query(self.query):
            if self.key_columns:
                key = tuple(_freeze(row[column]) for column in self.key_columns)
            else:
                key = _freeze(row)
            snapshot[key] = row
        return snapshot

    def _reevaluate(self) -> None:
        self.reevaluations += 1
        current = self._snapshot()
        now = self.db.clock.now()
        for key, row in current.items():
            if key not in self._previous:
                self._publish("added", row, None, now)
            elif self._previous[key] != row:
                self._publish("changed", row, self._previous[key], now)
        for key, row in self._previous.items():
            if key not in current:
                self._publish("removed", None, row, now)
        self._previous = current

    def _publish(
        self,
        kind: str,
        row: dict[str, Any] | None,
        previous: dict[str, Any] | None,
        now: float,
    ) -> None:
        payload: dict[str, Any] = {"new": row, "old": previous}
        image = row if row is not None else previous
        if image:
            for key, value in image.items():
                payload.setdefault(key, value)
        self._emit(
            Event(
                event_type=f"query.{self.name}.{kind}",
                timestamp=now,
                payload=payload,
                source=f"cqn:{self.name}",
            )
        )

    def close(self) -> None:
        # Best-effort teardown, but never silent: every suppressed drop
        # failure is counted (with the exception retained) in the
        # registry's errors_suppressed accounting.
        for trigger_name in self._trigger_names:
            try:
                if self.db.faults is not None:
                    self.db.faults.fire(
                        CAPTURE_DROP_TRIGGER, capture=self, trigger=trigger_name
                    )
                self.db.drop_trigger(trigger_name)
            except Exception as exc:
                self.db.obs.record_error("capture.notification.close", exc)
        self._trigger_names.clear()
