"""Observability layer: metrics registry + event trace IDs.

See :mod:`repro.obs.metrics` for the instrument/registry design and
:mod:`repro.obs.trace` for trace-id propagation; ``docs/architecture.md``
("Observability & tracking") covers how the hot stages are wired.
"""

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_counters,
    metric_key,
    reset_aggregate,
    split_metric_key,
)
from repro.obs.trace import (
    TraceHop,
    TraceLog,
    default_trace_log,
    lookup_trace,
    new_trace_id,
    record_hop,
    set_default_trace_log,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "TraceHop",
    "TraceLog",
    "aggregate_counters",
    "default_trace_log",
    "lookup_trace",
    "metric_key",
    "new_trace_id",
    "record_hop",
    "reset_aggregate",
    "set_default_trace_log",
    "split_metric_key",
]
