"""The metrics registry: counters, gauges, bounded histograms.

The tutorial's operational-characteristics bullets (§2.2, "security,
auditing and tracking") claim a database-backed event platform can
account for what happened to every message.  This module is that
accounting substrate: every hot stage (WAL, statement cache, queues,
rules, propagation, delivery, CQ operators) increments instruments
obtained from a shared :class:`MetricsRegistry`, and
``Database.metrics()`` / ``QueueBroker.metrics()`` / ``python -m repro
stats`` render the registry as one snapshot.

Design constraints, in order:

1. **Near-zero hot-path cost.**  Components resolve their instruments
   ONCE (at construction) and keep direct references; the per-event
   cost is one attribute load plus an integer add.  A registry built
   with ``enabled=False`` hands out shared null instruments whose
   methods are no-ops, so a disabled pipeline pays only the (empty)
   method call — the overhead budget is enforced by
   ``tests/perf/test_obs_overhead.py``.
2. **Clock discipline.**  The registry never calls ``time.time()``;
   snapshot timestamps come from the :class:`repro.clock.Clock` it was
   built with, and latency observations are computed by callers from
   their component's clock.
3. **Bounded memory.**  Histograms keep a bounded window of recent
   observations (plus exact count/sum/min/max over all time), so a
   long-running process cannot leak through its own telemetry.

Error accounting: :meth:`MetricsRegistry.record_error` is the shared
sink for exception-swallowing boundaries (``except Exception`` sites
that must not kill the pipeline).  Each call increments the
``errors_suppressed`` counter labeled with the swallowing stage and
retains the most recent exception per stage for inspection — a dropped
callback is counted, never invisible.  Error recording works even on a
disabled registry: failure accounting is cold-path and must never be
optimized away.
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import Any, Callable, Iterable

DEFAULT_HISTOGRAM_WINDOW = 512


def metric_key(name: str, labels: dict[str, Any]) -> str:
    """Canonical flat key: ``name`` or ``name{k=v,...}`` (labels sorted)."""
    if not labels:
        return name
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}"


def split_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`metric_key` (labels parsed best-effort)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: dict[str, str] = {}
    for pair in rest.rstrip("}").split(","):
        if "=" in pair:
            label, _, value = pair.partition("=")
            labels[label] = value
    return name, labels


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n


class Gauge:
    """A value that can move both ways (e.g. queue depth)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def dec(self, n: int | float = 1) -> None:
        self.value -= n


class Histogram:
    """Bounded-memory distribution: exact count/sum/min/max over all
    observations, percentiles over a sliding window of the most recent
    ``window`` observations."""

    __slots__ = ("count", "total", "min", "max", "_window")

    def __init__(self, window: int = DEFAULT_HISTOGRAM_WINDOW) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._window: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._window.append(value)

    def percentile(self, p: float) -> float | None:
        """p-th percentile (0..100) of the recent window; None when empty.

        Nearest-rank on the sorted window — exact for the retained
        observations, approximate for all-time once the window rolls.
        """
        if not self._window:
            return None
        ordered = sorted(self._window)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": (self.total / self.count) if self.count else None,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int | float = 1) -> None:  # noqa: D102 — no-op
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: int | float) -> None:
        pass

    def inc(self, n: int | float = 1) -> None:
        pass

    def dec(self, n: int | float = 1) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


#: Shared no-op instruments handed out by disabled registries; also the
#: safe defaults for components constructed without any registry.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()

# Process-wide accounting so `benchmarks/run_all.py --quick` can report
# what a whole experiment did even though its registries (owned by
# short-lived Database instances) are gone by the time the table prints:
# live registries are tracked weakly; a registry folds its counters into
# the retired totals when it is garbage-collected.
_live_registries: "weakref.WeakSet[MetricsRegistry]" = weakref.WeakSet()
_retired_counters: dict[str, float] = {}


class MetricsRegistry:
    """Registry of named instruments, shared across one pipeline.

    Instruments are identified by ``(name, labels)``; asking twice for
    the same identity returns the same object, so components on both
    sides of a boundary (e.g. a queue table and its broker) naturally
    share counts.
    """

    def __init__(
        self,
        clock: Any = None,
        *,
        enabled: bool = True,
        histogram_window: int = DEFAULT_HISTOGRAM_WINDOW,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.histogram_window = histogram_window
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._gauge_fns: dict[str, Callable[[], float]] = {}
        self._histograms: dict[str, Histogram] = {}
        # Failure accounting (always on, even when enabled=False).
        self._errors: dict[str, int] = {}
        self._last_errors: dict[str, BaseException] = {}
        _live_registries.add(self)

    # -- instrument factories -------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        key = metric_key(name, labels)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        key = metric_key(name, labels)
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        return gauge

    def gauge_fn(self, name: str, fn: Callable[[], float], **labels: Any) -> None:
        """Register a gauge computed lazily at snapshot time — zero
        hot-path cost (used for e.g. queue depth)."""
        if not self.enabled:
            return
        self._gauge_fns[metric_key(name, labels)] = fn

    def histogram(self, name: str, **labels: Any) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        key = metric_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(self.histogram_window)
        return histogram

    # -- failure accounting ---------------------------------------------------

    def record_error(self, stage: str, exc: BaseException) -> None:
        """Account for an exception a failure boundary is suppressing.

        Increments ``errors_suppressed{stage=...}`` and retains ``exc``
        as the stage's last error.  Never raises; never disabled.
        """
        self._errors[stage] = self._errors.get(stage, 0) + 1
        self._last_errors[stage] = exc

    def errors_suppressed(self, stage: str | None = None) -> int:
        if stage is not None:
            return self._errors.get(stage, 0)
        return sum(self._errors.values())

    def last_error(self, stage: str) -> BaseException | None:
        return self._last_errors.get(stage)

    # -- snapshot -------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """One coherent, JSON-friendly view of every instrument."""
        gauges = {key: gauge.value for key, gauge in self._gauges.items()}
        for key, fn in self._gauge_fns.items():
            try:
                gauges[key] = fn()
            except Exception:  # a broken provider must not break the dump
                gauges[key] = None
        return {
            "ts": self.clock.now() if self.clock is not None else None,
            "counters": {
                key: counter.value for key, counter in self._counters.items()
            },
            "gauges": gauges,
            "histograms": {
                key: histogram.snapshot()
                for key, histogram in self._histograms.items()
            },
            "errors_suppressed": dict(self._errors),
            "last_errors": {
                stage: f"{type(exc).__name__}: {exc}"
                for stage, exc in self._last_errors.items()
            },
        }

    def __del__(self) -> None:  # fold final counts into process totals
        try:
            _fold(self._counters.items())
            _fold(
                (f"errors_suppressed{{stage={stage}}}", count)
                for stage, count in self._errors.items()
            )
        except Exception:  # pragma: no cover — interpreter shutdown
            pass


def _fold(items: Iterable[tuple[str, Any]]) -> None:
    for key, value in items:
        count = value.value if isinstance(value, Counter) else value
        if count:
            _retired_counters[key] = _retired_counters.get(key, 0) + count


def absorb_snapshot(snapshot: dict[str, Any]) -> None:
    """Fold a REMOTE process's registry snapshot into this process's
    aggregate totals.

    Shard workers cannot appear in ``_live_registries`` (their
    registries live in other interpreters), so the coordinator absorbs
    each worker's final snapshot at shutdown — after which
    :func:`aggregate_counters` reports fleet-wide totals exactly as if
    the work had run in-process.
    """
    _fold(snapshot.get("counters", {}).items())
    _fold(
        (f"errors_suppressed{{stage={stage}}}", count)
        for stage, count in snapshot.get("errors_suppressed", {}).items()
    )


def aggregate_counters(*, by_name: bool = True) -> dict[str, float]:
    """Process-wide counter totals: retired registries, live ones, and
    any absorbed worker snapshots (:func:`absorb_snapshot`).

    With ``by_name`` (default) labels are stripped and same-named
    counters summed — the compact view ``run_all --quick`` prints.
    """
    totals: dict[str, float] = dict(_retired_counters)
    for registry in list(_live_registries):
        for key, counter in registry._counters.items():
            if counter.value:
                totals[key] = totals.get(key, 0) + counter.value
        for stage, count in registry._errors.items():
            key = f"errors_suppressed{{stage={stage}}}"
            totals[key] = totals.get(key, 0) + count
    if not by_name:
        return totals
    by: dict[str, float] = {}
    for key, value in totals.items():
        name, _labels = split_metric_key(key)
        by[name] = by.get(name, 0) + value
    return by


def merge_snapshots(
    snapshots: "dict[Any, dict[str, Any]]",
    *,
    label_name: str | None = None,
) -> dict[str, Any]:
    """Fold per-process registry snapshots into one coherent view.

    ``snapshots`` maps a source label (e.g. shard id) to the dict
    :meth:`MetricsRegistry.snapshot` produced in that process — the
    form shard workers ship over the control channel, since registry
    objects themselves never cross process boundaries.

    Merge rules: counters, gauges, and ``errors_suppressed`` sum per
    key; histograms merge their exact fields (count/sum/min/max, mean
    recomputed) but surface percentiles only when a single source
    observed the series (nearest-rank windows are not mergeable, and a
    fabricated quantile is worse than none).  With ``label_name`` each
    source's counters and gauges are ALSO retained under keys extended
    with ``{label_name}=<label>`` — how per-shard ``queue.depth``
    stays visible inside the fleet-wide fold.
    """
    merged_counters: dict[str, float] = {}
    merged_gauges: dict[str, float] = {}
    merged_errors: dict[str, int] = {}
    merged_last: dict[str, str] = {}
    histogram_parts: dict[str, list[dict[str, Any]]] = {}
    ts: float | None = None

    def relabel(key: str, label: Any) -> str:
        name, labels = split_metric_key(key)
        labels[label_name] = label  # type: ignore[index]
        return metric_key(name, labels)

    for label, snapshot in snapshots.items():
        if snapshot.get("ts") is not None:
            ts = max(ts, snapshot["ts"]) if ts is not None else snapshot["ts"]
        for key, value in snapshot.get("counters", {}).items():
            merged_counters[key] = merged_counters.get(key, 0) + value
            if label_name is not None:
                merged_counters[relabel(key, label)] = value
        for key, value in snapshot.get("gauges", {}).items():
            if value is None:
                continue
            merged_gauges[key] = merged_gauges.get(key, 0) + value
            if label_name is not None:
                merged_gauges[relabel(key, label)] = value
        for key, part in snapshot.get("histograms", {}).items():
            histogram_parts.setdefault(key, []).append(part)
        for stage, count in snapshot.get("errors_suppressed", {}).items():
            merged_errors[stage] = merged_errors.get(stage, 0) + count
        for stage, text in snapshot.get("last_errors", {}).items():
            merged_last[
                stage if label_name is None else f"{stage}[{label_name}={label}]"
            ] = text

    merged_histograms: dict[str, dict[str, Any]] = {}
    for key, parts in histogram_parts.items():
        if len(parts) == 1:
            merged_histograms[key] = dict(parts[0])
            continue
        count = sum(part["count"] for part in parts)
        total = sum(part["sum"] for part in parts)
        mins = [part["min"] for part in parts if part["min"] is not None]
        maxes = [part["max"] for part in parts if part["max"] is not None]
        merged_histograms[key] = {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else None,
            "min": min(mins) if mins else None,
            "max": max(maxes) if maxes else None,
            "p50": None,
            "p95": None,
            "p99": None,
        }

    return {
        "ts": ts,
        "sources": sorted(snapshots, key=str),
        "counters": merged_counters,
        "gauges": merged_gauges,
        "histograms": merged_histograms,
        "errors_suppressed": merged_errors,
        "last_errors": merged_last,
    }


def reset_aggregate() -> None:
    """Zero the process-wide totals (the diff base for ``run_all``)."""
    _retired_counters.clear()
    for registry in list(_live_registries):
        for counter in registry._counters.values():
            counter.value = 0
        registry._errors.clear()
