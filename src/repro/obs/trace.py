"""Event trace IDs and the TraceLog ring buffer.

Every event gets a ``trace_id`` at its birth boundary — capture
(:meth:`repro.capture.base.CaptureSource._emit`) or direct enqueue
(:meth:`repro.queues.queue_table.QueueTable._prepare`) — and the id then
rides unchanged through rules → queues → propagation → pub/sub delivery:
on :class:`repro.events.Event` as a field, on
:class:`repro.queues.message.Message` in ``headers["trace_id"]``.  Each
stage that handles a traced message records a hop here, so
``lookup_trace(tid)`` reconstructs the full capture→delivery path.

The log is a bounded ring buffer (old hops fall off; the newest
``capacity`` hops are always reconstructable) and recording is guarded
by a single ``enabled`` check plus a ``None`` trace-id check, so the
disabled cost is one method call.  Timestamps are supplied by callers
from their component's Clock — this module never reads wall time.

A process-wide default log backs the module-level :func:`record_hop` /
:func:`lookup_trace` helpers; trace ids are process-unique (a simple
monotonic counter), so concurrent pipelines sharing the default log
cannot collide.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

DEFAULT_TRACE_CAPACITY = 4096

_ids = itertools.count(1)


def new_trace_id() -> str:
    """A fresh process-unique trace id (cheap: no uuid, no clock)."""
    return f"t-{next(_ids)}"


@dataclass(frozen=True)
class TraceHop:
    """One recorded stage transition for one trace id."""

    trace_id: str
    stage: str
    ts: float
    detail: dict[str, Any] = field(default_factory=dict)


class TraceLog:
    """Bounded ring buffer of :class:`TraceHop` records."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._hops: deque[TraceHop] = deque(maxlen=capacity)

    def record(self, trace_id: str | None, stage: str, ts: float = 0.0, **detail: Any) -> None:
        if not self.enabled or trace_id is None:
            return
        self._hops.append(TraceHop(trace_id, stage, ts, detail))

    def lookup(self, trace_id: str) -> list[TraceHop]:
        """All retained hops for one trace id, in recorded order."""
        return [hop for hop in self._hops if hop.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids still in the buffer, oldest first."""
        seen: dict[str, None] = {}
        for hop in self._hops:
            seen.setdefault(hop.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        self._hops.clear()

    def __len__(self) -> int:
        return len(self._hops)

    def __iter__(self) -> Iterator[TraceHop]:
        return iter(self._hops)


_default_log = TraceLog()


def default_trace_log() -> TraceLog:
    return _default_log


def set_default_trace_log(log: TraceLog) -> TraceLog:
    """Swap the process default (tests install a fresh/disabled log);
    returns the previous one so callers can restore it."""
    global _default_log
    previous = _default_log
    _default_log = log
    return previous


def record_hop(trace_id: str | None, stage: str, ts: float = 0.0, **detail: Any) -> None:
    _default_log.record(trace_id, stage, ts, **detail)


def lookup_trace(trace_id: str) -> list[TraceHop]:
    return _default_log.lookup(trace_id)
