"""The ``python -m repro stats`` workload and report renderer.

Runs a compact end-to-end pipeline — trigger capture → rules → staging
queue → cross-broker propagation → reliable delivery, with pub/sub and
a CQ stream riding along — entirely on a :class:`SimulatedClock`, then
renders one observability report: the metrics snapshots of both
databases, per-stage stats dicts, and a sample end-to-end trace
reconstructed from the :class:`repro.obs.trace.TraceLog`.

With ``faults=True`` the workload arms the failure-boundary failpoints
(consumer crashes, trigger-drop failures) so every former
silent-swallow site shows up in ``errors_suppressed`` — the point of
the exercise is that nothing fails invisibly.
"""

from __future__ import annotations

import json
from typing import Any

from repro.clock import SimulatedClock
from repro.db.database import Database
from repro.faults import (
    CAPTURE_DROP_TRIGGER,
    DELIVERY_CONSUMER,
    PUBSUB_CONSUMER,
    FaultInjector,
    every,
    on_hit,
    raise_fault,
)
from repro.obs.trace import TraceLog, set_default_trace_log

#: Hop order of a fully delivered message, used to pick the sample trace.
_FULL_PATH_STAGES = ("capture", "rule.match", "queue.enqueue", "delivery.consumed")


def run_stats_workload(
    *, events: int = 60, faults: bool = False
) -> dict[str, Any]:
    """Run the demonstration pipeline and return the report dict."""
    from repro.capture.notification_capture import QueryNotificationCapture
    from repro.capture.trigger_capture import TriggerCapture
    from repro.cq.stream import Stream
    from repro.cq.window import TumblingWindow
    from repro.pubsub.broker import PubSubBroker
    from repro.queues.broker import QueueBroker
    from repro.queues.propagation import PropagationLink, Propagator
    from repro.pubsub.delivery import DeliveryManager
    from repro.rules.actions import EnqueueAction
    from repro.rules.engine import RuleEngine

    clock = SimulatedClock(start=1_000.0)
    trace_log = TraceLog(capacity=16_384)
    previous_log = set_default_trace_log(trace_log)
    injector = FaultInjector(seed=7) if faults else None
    try:
        db = Database(clock=clock, sync_policy="commit", faults=injector)
        db.execute(
            "CREATE TABLE orders ("
            " order_id INT PRIMARY KEY,"
            " amount REAL NOT NULL,"
            " region TEXT)"
        )
        broker = QueueBroker(db)
        broker.create_queue("matched")

        engine = RuleEngine(metrics=db.obs)
        engine.add(
            "hot-order",
            "amount > 50",
            action=EnqueueAction(broker, "matched", priority_key="amount"),
            event_types=("orders.insert",),
        )

        capture = TriggerCapture(db, ["orders"], name="orders-capture")
        capture.subscribe(engine.evaluate)

        # CQ operators and pub/sub ride on the same captured stream.
        stream = Stream("orders-changes").bind_metrics(db.obs)
        capture.subscribe(stream.push)
        # An event-time window over the captured stream: trigger capture
        # stamps commit times, which the out-of-order pushes below
        # deliberately violate so the lateness accounting
        # (cq.late_dropped, cq.lateness) shows up in the report.
        window = TumblingWindow(
            stream, 1.0, allowed_lateness=0.5
        ).bind_metrics(db.obs)
        window.subscribe(lambda event: None)
        pubsub = PubSubBroker(db)
        pubsub.create_topic("orders")
        pubsub.subscribe("dashboard", "orders", durable=True)
        capture.subscribe(lambda event: pubsub.publish("orders", event))

        notification = QueryNotificationCapture(
            db, "SELECT * FROM orders WHERE amount > 90", name="big-orders"
        )

        # Second broker: the propagation destination plus its delivery
        # loop — the §2.2.d "local consumption elsewhere" leg.
        remote_db = Database(clock=clock, sync_policy="commit", faults=injector)
        remote = QueueBroker(remote_db, name="remote")
        remote.create_queue("remote")
        propagator = Propagator(
            broker, "matched", dead_letter_queue="matched_dlq"
        ).add_link(
            PropagationLink(name="to-remote", broker=remote, queue_name="remote")
        )
        delivery = DeliveryManager(
            remote,
            "remote",
            ack_timeout=5.0,
            max_attempts=3,
            dead_letter_queue="remote_dlq",
        )

        if injector is not None:
            # A consumer that crashes on every 5th delivery: failures
            # flow through nack → retry → (occasionally) dead-letter.
            injector.arm(
                DELIVERY_CONSUMER, raise_fault("injected consumer crash"),
                policy=every(5),
            )

        for i in range(events):
            db.execute(
                "INSERT INTO orders (order_id, amount, region) "
                f"VALUES ({i}, {10 + (i * 7) % 100}, "
                f"'{'west' if i % 2 else 'east'}')"
            )
            clock.advance(0.05)

        # Out-of-order tail: a few stragglers whose event time is far
        # behind the stream's watermark (beyond allowed_lateness), so
        # the window's late-drop path runs, then a terminal watermark
        # punctuation that closes the remaining panes without data.
        from repro.events import Event as _Event

        for i in range(3):
            stream.push(
                _Event(
                    "orders.insert",
                    1_000.0 + i * 0.01,  # seconds behind the watermark
                    {"order_id": 10_000 + i, "amount": 5.0},
                    source="late-replay",
                )
            )
        stream.punctuate(clock.now() + 10.0)

        consumed = 0
        for _ in range(events + 10):  # drain: propagation + retries
            propagator.pump()
            # Exercise both consumption pumps so the process() and
            # process_batch() failure boundaries each see traffic.
            consumed += delivery.process(lambda message: None, batch=4)
            consumed += delivery.process_batch(lambda message: None, batch=16)
            clock.advance(1.0)
            if broker.queue("matched").depth() == 0 and (
                remote.queue("remote").depth() == 0
            ):
                break

        # Activate the durable pub/sub subscriber; under fault injection
        # the first activation crashes (counted, message kept) and the
        # second drains cleanly.
        if injector is not None:
            injector.arm(
                PUBSUB_CONSUMER, raise_fault("injected subscriber crash"),
                policy=on_hit(1), max_fires=1,
            )
            try:
                pubsub.attach_listener("dashboard", lambda event: None)
            except Exception:
                pubsub.detach_listener("dashboard")
        pubsub.attach_listener("dashboard", lambda event: None)

        if injector is not None:
            # Teardown failures: every trigger drop raises; close() must
            # survive and account for each suppressed failure.
            injector.arm(CAPTURE_DROP_TRIGGER, raise_fault("injected drop failure"))
        capture.close()
        notification.close()

        return {
            "events": events,
            "consumed": consumed,
            "local": db.metrics(),
            "remote": remote.metrics(),
            "queues": broker.stats(),
            "engine": dict(engine.stats),
            "propagation": dict(propagator.stats),
            "delivery": dict(delivery.stats),
            "pubsub": dict(pubsub.stats),
            "trace": _sample_trace(trace_log),
            "trace_count": len(trace_log.trace_ids()),
        }
    finally:
        set_default_trace_log(previous_log)


def run_sharded_stats_workload(
    *, shards: int = 2, events: int = 200
) -> dict[str, Any]:
    """Run a queue workload over a multi-process shard fleet and fold
    every worker's metrics snapshot into one report.

    This is the multi-process face of ``python -m repro stats``: the
    registries live in the worker processes, ship their snapshots over
    the control channel, and :func:`repro.obs.metrics.merge_snapshots`
    folds them — fleet-wide counters summed, per-shard ``queue.depth``
    retained under ``shard=<id>`` keys.
    """
    from repro.obs.metrics import merge_snapshots
    from repro.queues.message import Message
    from repro.shard import ShardCoordinator, ShardedQueueBroker, ShardSupervisor

    with ShardCoordinator(shards, replication_factor=1) as coordinator:
        supervisor = ShardSupervisor(coordinator, heartbeat_timeout=2.0)
        broker = ShardedQueueBroker(coordinator)
        queue_names = [f"stream_{i}" for i in range(max(4, shards * 2))]
        placement = {
            name: broker.create_queue(name) for name in queue_names
        }
        batch = 32
        for start in range(0, events, batch):
            entries = [
                (queue_names[(start + j) % len(queue_names)],
                 Message(payload={"seq": start + j}))
                for j in range(min(batch, events - start))
            ]
            broker.publish_many(entries)
        consumed = 0
        for name in queue_names:
            messages = broker.consume_batch(name, events)
            if messages:
                broker.ack_batch(name, [m.message_id for m in messages])
            consumed += len(messages)
        # Exercise the self-healing path for the demo: kill shard 0's
        # primary and let the supervisor promote its replica.
        coordinator.worker(0).kill()
        supervisor.run_until_healthy(deadline=15.0)
        per_shard = coordinator.metrics_by_shard()
        merged = merge_snapshots(per_shard, label_name="shard")
        return {
            "shards": shards,
            "events": events,
            "consumed": consumed,
            "placement": placement,
            "queues": broker.stats(),
            "fleet_health": {
                str(shard): health
                for shard, health in supervisor.fleet_health().items()
            },
            "per_shard_counters": {
                shard: {
                    key: value
                    for key, value in snapshot["counters"].items()
                    if value and key.startswith("queue.")
                }
                for shard, snapshot in per_shard.items()
            },
            "merged": merged,
        }


def format_sharded_report(report: dict[str, Any]) -> str:
    """Human-readable rendering of the sharded stats report."""
    lines = [
        f"sharded workload: {report['events']} messages over "
        f"{len(report['placement'])} queues on {report['shards']} shards, "
        f"{report['consumed']} consumed"
    ]
    lines.append("")
    lines.append("queue placement (consistent hash)")
    lines.append("-" * 33)
    for name, shard in sorted(report["placement"].items()):
        lines.append(f"  {name:<24} shard {shard}")
    health = report.get("fleet_health")
    if health:
        lines.append("")
        lines.append("fleet health (supervised, replicated)")
        lines.append("-" * 37)
        for shard, state in sorted(health.items()):
            lag = state["replication"]
            lines.append(
                f"  shard {shard}  role={state['role']:<8}"
                f" replicas={state['replicas_alive']}/{state['replicas']}"
                f" lag_ops={lag['lag_ops']}"
                f" restarts={state['restarts']}"
                f" promotions={state['promotions']}"
                f" breaker={state['breaker']}"
            )
    lines.append("")
    lines.append("per-shard queue counters")
    lines.append("-" * 24)
    for shard, counters in sorted(report["per_shard_counters"].items()):
        for key, value in sorted(counters.items()):
            lines.append(f"  shard {shard}  {key:<36} {value}")
    merged = report["merged"]
    lines.append("")
    lines.append("fleet-wide counters (merged across processes)")
    lines.append("-" * 45)
    for key, value in sorted(merged["counters"].items()):
        if value and "{" not in key:
            lines.append(f"  {key:<44} {value}")
    depth_keys = {
        key: value
        for key, value in sorted(merged["gauges"].items())
        if key.startswith("queue.depth") and "shard=" in key
    }
    if depth_keys:
        lines.append("")
        lines.append("per-shard depth gauges")
        lines.append("-" * 22)
        for key, value in depth_keys.items():
            lines.append(f"  {key:<44} {value}")
    return "\n".join(lines)


def _sample_trace(log: TraceLog) -> dict[str, Any] | None:
    """The first trace that travelled the whole capture→delivery path."""
    best: dict[str, Any] | None = None
    for trace_id in log.trace_ids():
        hops = log.lookup(trace_id)
        stages = {hop.stage for hop in hops}
        rendered = {
            "trace_id": trace_id,
            "hops": [
                {"stage": hop.stage, "ts": hop.ts, **hop.detail} for hop in hops
            ],
        }
        if all(stage in stages for stage in _FULL_PATH_STAGES):
            return rendered
        if best is None or len(hops) > len(best["hops"]):
            best = rendered
    return best


def format_report(report: dict[str, Any]) -> str:
    """Human-readable rendering (the non-``--json`` CLI output)."""
    lines: list[str] = []

    def section(title: str) -> None:
        lines.append("")
        lines.append(title)
        lines.append("-" * len(title))

    lines.append(
        f"workload: {report['events']} events captured, "
        f"{report['consumed']} delivered, "
        f"{report['trace_count']} traces recorded"
    )
    for side in ("local", "remote"):
        snapshot = report[side]
        section(f"{side} database counters")
        for key, value in sorted(snapshot["counters"].items()):
            if value:
                lines.append(f"  {key:<44} {value}")
        gauges = {k: v for k, v in sorted(snapshot["gauges"].items())}
        if gauges:
            section(f"{side} database gauges")
            for key, value in gauges.items():
                lines.append(f"  {key:<44} {value}")
        histograms = snapshot.get("histograms", {})
        live = {k: h for k, h in sorted(histograms.items()) if h["count"]}
        if live:
            section(f"{side} database histograms")
            for key, h in live.items():
                lines.append(
                    f"  {key:<44} count={h['count']} mean={h['mean']:.4f} "
                    f"p50={h['p50']:.4f} p95={h['p95']:.4f} p99={h['p99']:.4f}"
                )
        if snapshot.get("errors_suppressed"):
            section(f"{side} suppressed errors")
            for stage, count in sorted(snapshot["errors_suppressed"].items()):
                last = snapshot["last_errors"].get(stage, "")
                lines.append(f"  {stage:<44} {count}  (last: {last})")

    section("stage stats")
    for stage in ("engine", "propagation", "delivery", "pubsub", "queues"):
        lines.append(f"  {stage}: {json.dumps(report[stage], sort_keys=True)}")

    trace = report.get("trace")
    if trace:
        section(f"sample trace {trace['trace_id']}")
        for hop in trace["hops"]:
            detail = {
                k: v for k, v in hop.items() if k not in ("stage", "ts")
            }
            lines.append(
                f"  {hop['ts']:>10.2f}  {hop['stage']:<22} "
                + ", ".join(f"{k}={v}" for k, v in detail.items())
            )
    return "\n".join(lines)
