"""The queue broker: named queues, ingestion paths, security, audit.

This is the "staging area" façade from §2.2.b.  It owns:

* queue lifecycle (create/drop/list);
* the three message-acceptance paths of §2.2.b.i — client INSERT
  (:meth:`enqueue_via_sql`), foreign-system delivery
  (:meth:`ingest_foreign`), and internally created messages
  (:meth:`publish`, the optimized fast path);
* enforcement of the :class:`SecurityManager` and recording to the
  :class:`AuditTrail` when auditing is enabled.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.db.engine import StorageEngine
from repro.errors import QueueError, QueueNotFoundError
from repro.faults import BROKER_ACK, BROKER_CONSUME, BROKER_PUBLISH
from repro.queues.audit import AuditTrail, Permission, SecurityManager
from repro.queues.message import Message
from repro.queues.queue_table import QueueTable


class QueueBroker:
    """All queues of one database, plus security and audit policy."""

    def __init__(
        self,
        db: StorageEngine,
        *,
        security: SecurityManager | None = None,
        audit: bool = False,
        name: str = "local",
    ) -> None:
        self.db = db
        self.name = name
        self.security = security or SecurityManager()
        self.audit = AuditTrail(db) if audit else None
        self._queues: dict[str, QueueTable] = {}

    def _fire(self, name: str, **site: Any) -> None:
        """Hit a failpoint through the database's injector (if any).

        Fired *before* the guarded operation mutates anything, so an
        injected fault leaves the queue table untouched."""
        faults = self.db.faults
        if faults is not None:
            faults.fire(name, broker=self, **site)

    # -- queue lifecycle ----------------------------------------------------

    def create_queue(
        self,
        name: str,
        *,
        keep_history: bool = False,
        default_expiration: float | None = None,
    ) -> QueueTable:
        name = name.lower()
        if name in self._queues:
            raise QueueError(f"queue {name!r} already exists")
        queue = QueueTable(
            self.db,
            name,
            keep_history=keep_history,
            default_expiration=default_expiration,
        )
        self._queues[name] = queue
        return queue

    def create_queue_or_attach(
        self,
        name: str,
        *,
        keep_history: bool = False,
        default_expiration: float | None = None,
    ) -> QueueTable:
        """Create a queue, or re-attach to its surviving table after a
        restart/recovery (the table holds all state; the broker object
        is just a handle)."""
        if self.has_queue(name):
            return self.queue(name)
        return self.create_queue(
            name,
            keep_history=keep_history,
            default_expiration=default_expiration,
        )

    def queue(self, name: str) -> QueueTable:
        try:
            return self._queues[name.lower()]
        except KeyError:
            raise QueueNotFoundError(f"queue {name!r} does not exist") from None

    def has_queue(self, name: str) -> bool:
        return name.lower() in self._queues

    def queue_names(self) -> list[str]:
        return sorted(self._queues)

    def drop_queue(self, name: str) -> None:
        queue = self.queue(name)
        self.db.drop_table(queue.table_name)
        del self._queues[name.lower()]

    # -- message acceptance paths (§2.2.b.i) -------------------------------------

    def publish(
        self,
        queue_name: str,
        message: Message | Any,
        *,
        principal: str = "internal",
    ) -> int:
        """Internally created message — the optimized path (§2.2.b.i.3)."""
        self.security.check(principal, queue_name, Permission.ENQUEUE)
        self._fire(BROKER_PUBLISH, queue=queue_name, principal=principal)
        message_id = self.queue(queue_name).enqueue(message)
        self._audit(principal, "enqueue", queue_name, message_id)
        return message_id

    def publish_batch(
        self,
        queue_name: str,
        messages: Iterable[Message | Any],
        *,
        principal: str = "internal",
    ) -> list[int]:
        """Publish a batch of internally created messages in ONE
        transaction (security checked once, audited per message)."""
        self.security.check(principal, queue_name, Permission.ENQUEUE)
        self._fire(BROKER_PUBLISH, queue=queue_name, principal=principal)
        message_ids = self.queue(queue_name).enqueue_batch(messages)
        for message_id in message_ids:
            self._audit(principal, "enqueue", queue_name, message_id)
        return message_ids

    def enqueue_via_sql(
        self,
        queue_name: str,
        message: Message | Any,
        *,
        principal: str = "client",
    ) -> int:
        """Client message through the extended INSERT interface
        (§2.2.b.i.1)."""
        self.security.check(principal, queue_name, Permission.ENQUEUE)
        message_id = self.queue(queue_name).enqueue_via_insert(message)
        self._audit(principal, "enqueue_sql", queue_name, message_id)
        return message_id

    def ingest_foreign(
        self,
        queue_name: str,
        raw: dict[str, Any],
        *,
        principal: str = "foreign",
        source_system: str = "unknown",
    ) -> int:
        """Message created in a foreign system and delivered to the
        database message store (§2.2.b.i.2).

        ``raw`` is the foreign envelope; recognized keys (``payload``,
        ``priority``, ``correlation_id``, ``headers``, ``expires_at``,
        ``delay``) are mapped, everything else is preserved in headers
        under ``foreign_*`` so nothing the foreign system sent is lost.
        """
        self.security.check(principal, queue_name, Permission.ENQUEUE)
        known = {"payload", "priority", "correlation_id", "headers", "expires_at", "delay"}
        headers = dict(raw.get("headers") or {})
        headers["source_system"] = source_system
        for key, value in raw.items():
            if key not in known:
                headers[f"foreign_{key}"] = value
        message = Message(
            payload=raw.get("payload"),
            priority=int(raw.get("priority") or 0),
            correlation_id=raw.get("correlation_id"),
            headers=headers,
            expires_at=raw.get("expires_at"),
        )
        if raw.get("delay"):
            message.visible_at = self.db.clock.now() + float(raw["delay"])
        message_id = self.queue(queue_name).enqueue(message)
        self._audit(principal, "ingest_foreign", queue_name, message_id)
        return message_id

    # -- consumption -----------------------------------------------------------

    def consume(
        self, queue_name: str, *, principal: str = "consumer"
    ) -> Message | None:
        """Dequeue the next message (LOCKED until ack/requeue)."""
        self.security.check(principal, queue_name, Permission.DEQUEUE)
        self._fire(BROKER_CONSUME, queue=queue_name, principal=principal)
        message = self.queue(queue_name).dequeue(consumer=principal)
        if message is not None:
            self._audit(principal, "dequeue", queue_name, message.message_id)
        return message

    def consume_batch(
        self,
        queue_name: str,
        max_messages: int,
        *,
        principal: str = "consumer",
    ) -> list[Message]:
        """Dequeue up to ``max_messages`` in ONE transaction (all
        LOCKED until ack/requeue)."""
        self.security.check(principal, queue_name, Permission.DEQUEUE)
        self._fire(BROKER_CONSUME, queue=queue_name, principal=principal)
        messages = self.queue(queue_name).dequeue_batch(
            max_messages, consumer=principal
        )
        for message in messages:
            self._audit(principal, "dequeue", queue_name, message.message_id)
        return messages

    def ack(self, queue_name: str, message_id: int, *, principal: str = "consumer") -> None:
        self.security.check(principal, queue_name, Permission.DEQUEUE)
        self._fire(BROKER_ACK, queue=queue_name, message_id=message_id, principal=principal)
        self.queue(queue_name).ack(message_id)
        self._audit(principal, "ack", queue_name, message_id)

    def ack_batch(
        self,
        queue_name: str,
        message_ids: Iterable[int],
        *,
        principal: str = "consumer",
    ) -> int:
        """Acknowledge a batch of LOCKED messages with ONE transaction
        (one commit, one journal flush for the whole batch)."""
        ids = list(message_ids)
        self.security.check(principal, queue_name, Permission.DEQUEUE)
        self._fire(BROKER_ACK, queue=queue_name, message_ids=ids, principal=principal)
        acked = self.queue(queue_name).ack_batch(ids)
        for message_id in ids:
            self._audit(principal, "ack", queue_name, message_id)
        return acked

    def requeue(
        self,
        queue_name: str,
        message_id: int,
        *,
        delay: float = 0.0,
        principal: str = "consumer",
    ) -> None:
        self.security.check(principal, queue_name, Permission.DEQUEUE)
        self.queue(queue_name).requeue(message_id, delay=delay)
        self._audit(principal, "requeue", queue_name, message_id)

    def browse(
        self, queue_name: str, *, principal: str = "consumer"
    ) -> Iterable[Message]:
        self.security.check(principal, queue_name, Permission.BROWSE)
        return self.queue(queue_name).browse()

    # -- bookkeeping --------------------------------------------------------------

    def _audit(
        self, principal: str, operation: str, queue_name: str, message_id: int | None
    ) -> None:
        if self.audit is not None:
            self.audit.record(
                principal, operation, queue_name, message_id=message_id
            )

    def stats(self) -> dict[str, dict[str, int]]:
        return {name: dict(queue.stats) for name, queue in self._queues.items()}

    def metrics(self) -> dict[str, Any]:
        """The database's observability snapshot plus this broker's
        per-queue stats under a ``queues`` key."""
        snapshot = self.db.metrics()
        snapshot["queues"] = self.stats()
        return snapshot
