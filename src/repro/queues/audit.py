"""Security, auditing, tracking for message storage (§2.2.b.ii.1).

* :class:`SecurityManager` — per-queue ACLs.  Principals are plain
  strings; privileges are :class:`Permission` values.  Every guarded
  operation calls :meth:`SecurityManager.check`, which raises
  :class:`repro.errors.AccessDeniedError` on missing privilege.
* :class:`AuditTrail` — an append-only audit table *inside the
  database* (``_queue_audit``), so the audit trail itself inherits
  durability and recoverability, and is queryable with SQL.
"""

from __future__ import annotations

from enum import Enum
from typing import Any

from repro.db.database import Database
from repro.db.schema import Column
from repro.db.types import INT, TEXT, TIMESTAMP
from repro.errors import AccessDeniedError

AUDIT_TABLE = "_queue_audit"


class Permission(Enum):
    ENQUEUE = "enqueue"
    DEQUEUE = "dequeue"
    BROWSE = "browse"
    ADMIN = "admin"


class SecurityManager:
    """Per-queue access-control lists.

    An unknown queue is open by default until :meth:`protect` is called
    on it; afterwards only granted principals may operate.  ADMIN
    implies every other permission.
    """

    def __init__(self) -> None:
        self._protected: set[str] = set()
        self._grants: dict[tuple[str, str], set[Permission]] = {}

    def protect(self, queue: str) -> None:
        """Switch ``queue`` from open to deny-by-default."""
        self._protected.add(queue.lower())

    def grant(self, principal: str, queue: str, *permissions: Permission) -> None:
        key = (principal, queue.lower())
        self._grants.setdefault(key, set()).update(permissions)

    def revoke(self, principal: str, queue: str, *permissions: Permission) -> None:
        key = (principal, queue.lower())
        if key in self._grants:
            self._grants[key] -= set(permissions)

    def allowed(self, principal: str, queue: str, permission: Permission) -> bool:
        if queue.lower() not in self._protected:
            return True
        granted = self._grants.get((principal, queue.lower()), set())
        return permission in granted or Permission.ADMIN in granted

    def check(self, principal: str, queue: str, permission: Permission) -> None:
        if not self.allowed(principal, queue, permission):
            raise AccessDeniedError(
                f"principal {principal!r} lacks {permission.value!r} on "
                f"queue {queue!r}"
            )


class AuditTrail:
    """Append-only audit log stored as a database table."""

    def __init__(self, db: Database) -> None:
        self.db = db
        if not db.catalog.has_table(AUDIT_TABLE):
            db.create_table(
                AUDIT_TABLE,
                [
                    Column("ts", TIMESTAMP, nullable=False),
                    Column("principal", TEXT, nullable=False),
                    Column("operation", TEXT, nullable=False),
                    Column("queue", TEXT, nullable=False),
                    Column("message_id", INT),
                    Column("outcome", TEXT, nullable=False),
                ],
            )

    def record(
        self,
        principal: str,
        operation: str,
        queue: str,
        *,
        message_id: int | None = None,
        outcome: str = "ok",
    ) -> None:
        self.db.insert_row(
            AUDIT_TABLE,
            {
                "ts": self.db.clock.now(),
                "principal": principal,
                "operation": operation,
                "queue": queue.lower(),
                "message_id": message_id,
                "outcome": outcome,
            },
        )

    def entries(
        self,
        *,
        queue: str | None = None,
        principal: str | None = None,
    ) -> list[dict[str, Any]]:
        """Read back audit entries, optionally filtered."""
        conditions = []
        if queue is not None:
            conditions.append(f"queue = '{queue.lower()}'")
        if principal is not None:
            escaped = principal.replace("'", "''")
            conditions.append(f"principal = '{escaped}'")
        where = f" WHERE {' AND '.join(conditions)}" if conditions else ""
        return self.db.query(f"SELECT * FROM {AUDIT_TABLE}{where} ORDER BY ts")
