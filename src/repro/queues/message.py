"""Message envelope shared by queues, propagation, and pub/sub."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any


class MessageState(Enum):
    """Lifecycle of a stored message.

    READY → LOCKED → CONSUMED is the normal path; EXPIRED messages were
    never consumed before their deadline.  LOCKED messages return to
    READY on requeue (consumer failure).
    """

    READY = "ready"
    LOCKED = "locked"
    CONSUMED = "consumed"
    EXPIRED = "expired"


@dataclass
class Message:
    """One message as seen by producers and consumers.

    Attributes:
        payload: JSON-serializable body.
        priority: larger values dequeue first; ties broken FIFO.
        visible_at: earliest dequeue time (delayed messages); ``None``
            until enqueue stamps it.  An explicit ``0.0`` is a real
            timestamp (epoch under a simulated clock), not "unset".
        expires_at: after this time the message can no longer be
            consumed; ``None`` means never expires.
        correlation_id: application correlation key (e.g. order id).
        headers: free-form metadata (also used for content filters).
        attempts: delivery attempts so far (requeue increments).
    """

    payload: Any
    queue: str = ""
    message_id: int | None = None
    priority: int = 0
    enqueued_at: float = 0.0
    visible_at: float | None = None
    expires_at: float | None = None
    correlation_id: str | None = None
    headers: dict[str, Any] = field(default_factory=dict)
    attempts: int = 0
    state: MessageState = MessageState.READY
    consumer: str | None = None

    def to_row(self) -> dict[str, Any]:
        """Flatten into a queue-table row (payload/headers JSON-encoded
        so the client SQL path and the fast path store identical rows)."""
        return {
            "payload": json.dumps(self.payload),
            "priority": self.priority,
            "enqueued_at": self.enqueued_at,
            "visible_at": self.visible_at,
            "expires_at": self.expires_at,
            "correlation_id": self.correlation_id,
            "headers": json.dumps(self.headers),
            "attempts": self.attempts,
            "state": self.state.value,
            "consumer": self.consumer,
        }

    @classmethod
    def from_row(cls, queue: str, rowid: int, row: dict[str, Any]) -> "Message":
        return cls(
            payload=json.loads(row["payload"]),
            queue=queue,
            message_id=rowid,
            priority=row["priority"],
            enqueued_at=row["enqueued_at"],
            visible_at=row["visible_at"],
            expires_at=row["expires_at"],
            correlation_id=row["correlation_id"],
            headers=json.loads(row["headers"]) if row["headers"] else {},
            attempts=row["attempts"],
            state=MessageState(row["state"]),
            consumer=row["consumer"],
        )

    def filter_context(self) -> dict[str, Any]:
        """Row-like view for rule/filter expressions: headers and (when
        the payload is a mapping) payload keys at top level."""
        context: dict[str, Any] = {}
        if isinstance(self.payload, dict):
            context.update(self.payload)
        context.update(self.headers)
        context.setdefault("priority", self.priority)
        context.setdefault("correlation_id", self.correlation_id)
        context.setdefault("queue", self.queue)
        return context
