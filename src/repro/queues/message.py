"""Message envelope shared by queues, propagation, and pub/sub."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.events import KIND_DATA, KIND_PUNCTUATION, PUNCTUATION_EVENT_TYPE

#: Header key carrying the message kind for non-data messages.  Riding
#: the headers dict (like trace ids and DLQ tombstone metadata) means
#: punctuation and retractions traverse enqueue, propagation, and
#: content filters with zero schema changes.
KIND_HEADER = "kind"


class MessageState(Enum):
    """Lifecycle of a stored message.

    READY → LOCKED → CONSUMED is the normal path; EXPIRED messages were
    never consumed before their deadline.  LOCKED messages return to
    READY on requeue (consumer failure).
    """

    READY = "ready"
    LOCKED = "locked"
    CONSUMED = "consumed"
    EXPIRED = "expired"


@dataclass
class Message:
    """One message as seen by producers and consumers.

    Attributes:
        payload: JSON-serializable body.
        priority: larger values dequeue first; ties broken FIFO.
        visible_at: earliest dequeue time (delayed messages); ``None``
            until enqueue stamps it.  An explicit ``0.0`` is a real
            timestamp (epoch under a simulated clock), not "unset".
        expires_at: after this time the message can no longer be
            consumed; ``None`` means never expires.
        correlation_id: application correlation key (e.g. order id).
        headers: free-form metadata (also used for content filters).
        attempts: delivery attempts so far (requeue increments).
    """

    payload: Any
    queue: str = ""
    message_id: int | None = None
    priority: int = 0
    enqueued_at: float = 0.0
    visible_at: float | None = None
    expires_at: float | None = None
    correlation_id: str | None = None
    headers: dict[str, Any] = field(default_factory=dict)
    attempts: int = 0
    state: MessageState = MessageState.READY
    consumer: str | None = None

    def to_row(self) -> dict[str, Any]:
        """Flatten into a queue-table row (payload/headers JSON-encoded
        so the client SQL path and the fast path store identical rows)."""
        return {
            "payload": json.dumps(self.payload),
            "priority": self.priority,
            "enqueued_at": self.enqueued_at,
            "visible_at": self.visible_at,
            "expires_at": self.expires_at,
            "correlation_id": self.correlation_id,
            "headers": json.dumps(self.headers),
            "attempts": self.attempts,
            "state": self.state.value,
            "consumer": self.consumer,
        }

    @classmethod
    def from_row(cls, queue: str, rowid: int, row: dict[str, Any]) -> "Message":
        return cls(
            payload=json.loads(row["payload"]),
            queue=queue,
            message_id=rowid,
            priority=row["priority"],
            enqueued_at=row["enqueued_at"],
            visible_at=row["visible_at"],
            expires_at=row["expires_at"],
            correlation_id=row["correlation_id"],
            headers=json.loads(row["headers"]) if row["headers"] else {},
            attempts=row["attempts"],
            state=MessageState(row["state"]),
            consumer=row["consumer"],
        )

    @property
    def kind(self) -> str:
        """Message kind (``"data"`` unless a kind header says otherwise)."""
        return self.headers.get(KIND_HEADER, KIND_DATA)

    def filter_context(self) -> dict[str, Any]:
        """Row-like view for rule/filter expressions: headers and (when
        the payload is a mapping) payload keys at top level."""
        context: dict[str, Any] = {}
        if isinstance(self.payload, dict):
            context.update(self.payload)
        context.update(self.headers)
        context.setdefault("priority", self.priority)
        context.setdefault("correlation_id", self.correlation_id)
        context.setdefault("queue", self.queue)
        return context


def punctuation_message(watermark: float, *, source: str = "") -> Message:
    """A watermark punctuation as a queue message: the promise that no
    further data with ``timestamp < watermark`` will be enqueued by this
    producer.  Max priority so it never queues behind the data it
    describes."""
    return Message(
        payload={
            "event_type": PUNCTUATION_EVENT_TYPE,
            "watermark": watermark,
            "source": source,
        },
        priority=1_000_000,
        headers={KIND_HEADER: KIND_PUNCTUATION},
    )
