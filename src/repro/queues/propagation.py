"""Message distribution: propagation between staging areas (§2.2.d.ii).

A :class:`Propagator` drains a source queue and forwards each message
to one or more destinations:

* **Other staging areas** — a queue on another broker (possibly backed
  by a different database), modeling queue-to-queue propagation.
* **External services** — any object implementing
  :class:`ExternalService` (e.g. an HTTP endpoint in production; a
  callable stub in tests and benchmarks).

Delivery is *reliable*: a message is acked on the source only after
every destination accepted it; failed deliveries requeue the message
with capped exponential backoff and deterministic jitter (see
:meth:`Propagator.backoff_for`), and messages that exhaust
``max_attempts`` move to the dead-letter queue.  Duplicate suppression at the
destination uses the source message id carried in headers, giving
effective exactly-once across retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.errors import PropagationError
from repro.obs.trace import record_hop
from repro.queues.broker import QueueBroker
from repro.queues.message import Message


class BoundedIdWindow:
    """Insertion-ordered set of recently seen ids with a hard size cap.

    Duplicate-suppression state must not grow with traffic: ids are
    *discarded* as soon as their message is finally resolved (acked or
    dead-lettered), and the window only has to cover messages still in
    retry limbo.  The cap is a backstop — if limbo ever exceeds it, the
    oldest ids fall out and an extreme straggler could be re-sent, which
    at-least-once delivery already permits.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ids: dict[int, None] = {}  # insertion-ordered

    def add(self, item: int) -> None:
        if item in self._ids:
            return
        if len(self._ids) >= self.capacity:
            self._ids.pop(next(iter(self._ids)))
        self._ids[item] = None

    def discard(self, item: int) -> None:
        self._ids.pop(item, None)

    def __contains__(self, item: int) -> bool:
        return item in self._ids

    def __len__(self) -> int:
        return len(self._ids)


class ExternalService(Protocol):
    """Destination outside the database world (§2.2.d.ii.2)."""

    def deliver(self, message: Message) -> None:
        """Accept one message; raise to signal failure."""
        ...


@dataclass
class PropagationLink:
    """One forwarding edge from the source queue.

    Exactly one of ``broker``/``service`` is set.  ``transform`` may
    rewrite the message (e.g. re-prioritize for the remote site).
    """

    name: str
    broker: QueueBroker | None = None
    queue_name: str | None = None
    service: ExternalService | None = None
    transform: Any = None
    delivered: int = 0
    failed: int = 0

    def __post_init__(self) -> None:
        if (self.broker is None) == (self.service is None):
            raise PropagationError(
                f"link {self.name!r} must target exactly one of "
                "broker+queue_name or service"
            )
        if self.broker is not None and self.queue_name is None:
            raise PropagationError(
                f"link {self.name!r} targets a broker but names no queue"
            )

    def send(self, message: Message) -> None:
        outgoing = Message(
            payload=message.payload,
            priority=message.priority,
            correlation_id=message.correlation_id,
            headers={
                **message.headers,
                "propagated_from": message.queue,
                "origin_message_id": message.message_id,
            },
            expires_at=message.expires_at,
        )
        if self.transform is not None:
            outgoing = self.transform(outgoing)
        if self.broker is not None:
            self.broker.publish(self.queue_name, outgoing)
        else:
            self.service.deliver(outgoing)
        self.delivered += 1


class Propagator:
    """Drains one source queue into its propagation links."""

    def __init__(
        self,
        broker: QueueBroker,
        source_queue: str,
        *,
        max_attempts: int = 5,
        base_backoff: float = 0.1,
        max_backoff: float = 30.0,
        dead_letter_queue: str | None = None,
        dedup_window: int = 1024,
    ) -> None:
        self.broker = broker
        self.source_queue = source_queue
        self.max_attempts = max_attempts
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self.links: list[PropagationLink] = []
        self.dead_letter_queue = dead_letter_queue
        if dead_letter_queue and not broker.has_queue(dead_letter_queue):
            broker.create_queue(dead_letter_queue)
        # Per-link duplicate suppression across retries.  Bounded: ids
        # are dropped once their message is resolved (see _resolve), and
        # dedup_window caps whatever retry limbo remains.
        self.dedup_window = dedup_window
        self._delivered_ids: dict[str, BoundedIdWindow] = {}
        self.stats = {"forwarded": 0, "retried": 0, "dead_lettered": 0}
        obs = broker.db.obs
        self._clock = broker.db.clock
        self._m_forwarded = obs.counter("prop.forwarded", source=source_queue)
        self._m_retried = obs.counter("prop.retried", source=source_queue)
        self._m_dead = obs.counter("prop.dead_lettered", source=source_queue)
        self._m_attempts = obs.counter("prop.attempts", source=source_queue)
        # Source-enqueue → fully-forwarded latency, in clock seconds.
        self._m_hop_latency = obs.histogram(
            "prop.hop_latency", source=source_queue
        )

    def add_link(self, link: PropagationLink) -> "Propagator":
        """Attach a destination; returns self so links chain fluently."""
        self.links.append(link)
        self._delivered_ids.setdefault(
            link.name, BoundedIdWindow(self.dedup_window)
        )
        return self

    def backoff_for(self, message_id: int, attempts: int) -> float:
        """Requeue delay before retry ``attempts + 1``.

        Schedule: exponential ``base_backoff * 2**(attempts-1)`` capped
        at ``max_backoff``, then jittered *downward* by up to 25% so a
        burst of same-batch failures doesn't retry in lockstep.  The
        jitter is deterministic — a hash of ``(message_id, attempts)``,
        no ambient RNG — so a given retry always lands at the same
        delay, and ``max_backoff`` is a hard upper bound.
        """
        raw = self.base_backoff * (2 ** max(0, attempts - 1))
        capped = min(raw, self.max_backoff)
        # Weyl-style integer hash -> [0, 1) fraction; stable across runs.
        mix = (message_id * 2654435761 + attempts * 0x9E3779B9) % 4096
        jitter = (mix / 4096.0) * 0.25
        return capped * (1.0 - jitter)

    def run_once(self, *, batch: int = 100) -> int:
        """Forward up to ``batch`` messages one at a time; returns how
        many were fully delivered (acked at the source).

        Each message costs its own dequeue and ack transaction; prefer
        :meth:`pump` for the batched path.
        """
        if not self.links:
            raise PropagationError("propagator has no links configured")
        forwarded = 0
        for _ in range(batch):
            message = self.broker.consume(
                self.source_queue, principal="propagator"
            )
            if message is None:
                break
            if self._forward(message):
                forwarded += 1
        return forwarded

    def pump(self, *, batch: int = 100) -> int:
        """Batched drain: dequeue up to ``batch`` messages in one
        transaction, forward each, then ack every fully delivered
        message with ONE batch ack — one commit and journal flush per
        batch instead of per message.  Failed messages still requeue
        (or dead-letter) individually.  Returns how many were fully
        delivered.
        """
        if not self.links:
            raise PropagationError("propagator has no links configured")
        messages = self.broker.consume_batch(
            self.source_queue, batch, principal="propagator"
        )
        delivered: list[Message] = []
        for message in messages:
            if self._forward(message, defer_ack=True):
                delivered.append(message)
        if delivered:
            self.broker.ack_batch(
                self.source_queue,
                [message.message_id for message in delivered],
                principal="propagator",
            )
            for message in delivered:
                self._mark_forwarded(message)
        return len(delivered)

    def _mark_forwarded(self, message: Message) -> None:
        """Shared success accounting for the single-message and batched
        paths — both report identical forwarded counts for the same
        workload, and the metrics layer is the single source of truth.

        A fully forwarded message can never be re-dequeued, so its
        duplicate-suppression ids are evicted from every link window
        (the fix for the former unbounded ``_delivered_ids`` growth).
        """
        self.stats["forwarded"] += 1
        self._m_forwarded.inc()
        for window in self._delivered_ids.values():
            window.discard(message.message_id)
        now = self._clock.now()
        if message.enqueued_at:
            self._m_hop_latency.observe(now - message.enqueued_at)
        record_hop(
            message.headers.get("trace_id"),
            "propagate.forwarded",
            now,
            source=self.source_queue,
        )

    def _forward(self, message: Message, *, defer_ack: bool = False) -> bool:
        failures: list[tuple[PropagationLink, Exception]] = []
        for link in self.links:
            seen = self._delivered_ids[link.name]
            if message.message_id in seen:
                continue  # Already delivered on a previous (partial) try.
            self._m_attempts.inc()
            try:
                link.send(message)
                seen.add(message.message_id)
            except Exception as exc:  # failure boundary around foreign code
                link.failed += 1
                failures.append((link, exc))
        if not failures:
            if defer_ack:
                return True  # the batch pump acks (and counts) per batch
            self.broker.ack(
                self.source_queue, message.message_id, principal="propagator"
            )
            self._mark_forwarded(message)
            return True
        if message.attempts >= self.max_attempts:
            self._dead_letter(message, failures)
            return False
        backoff = self.backoff_for(message.message_id, message.attempts)
        self.broker.requeue(
            self.source_queue,
            message.message_id,
            delay=backoff,
            principal="propagator",
        )
        self.stats["retried"] += 1
        self._m_retried.inc()
        record_hop(
            message.headers.get("trace_id"),
            "propagate.retry",
            self._clock.now(),
            source=self.source_queue,
            attempts=message.attempts,
            delay=backoff,
        )
        return False

    def _dead_letter(
        self, message: Message, failures: list[tuple[PropagationLink, Exception]]
    ) -> None:
        self.stats["dead_lettered"] += 1
        self._m_dead.inc()
        # A dead-lettered message is resolved: evict its dedup ids.
        for window in self._delivered_ids.values():
            window.discard(message.message_id)
        record_hop(
            message.headers.get("trace_id"),
            "propagate.dead_letter",
            self._clock.now(),
            source=self.source_queue,
            dlq=self.dead_letter_queue,
        )
        if self.dead_letter_queue:
            dead = Message(
                payload=message.payload,
                priority=message.priority,
                correlation_id=message.correlation_id,
                headers={
                    **message.headers,
                    "dead_letter_reason": "; ".join(
                        f"{link.name}: {exc}" for link, exc in failures
                    ),
                    "origin_queue": message.queue,
                    "origin_message_id": message.message_id,
                },
            )
            self.broker.publish(
                self.dead_letter_queue, dead, principal="propagator"
            )
        self.broker.ack(
            self.source_queue, message.message_id, principal="propagator"
        )
