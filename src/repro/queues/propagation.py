"""Message distribution: propagation between staging areas (§2.2.d.ii).

A :class:`Propagator` drains a source queue and forwards each message
to one or more destinations:

* **Other staging areas** — a queue on another broker (possibly backed
  by a different database), modeling queue-to-queue propagation.
* **External services** — any object implementing
  :class:`ExternalService` (e.g. an HTTP endpoint in production; a
  callable stub in tests and benchmarks).

Delivery is *reliable*: a message is acked on the source only after
every destination accepted it; failed deliveries requeue the message
with capped exponential backoff and deterministic jitter (see
:meth:`Propagator.backoff_for`), and messages that exhaust
``max_attempts`` move to the dead-letter queue.  Duplicate suppression at the
destination uses the source message id carried in headers, giving
effective exactly-once across retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.errors import PropagationError
from repro.queues.broker import QueueBroker
from repro.queues.message import Message


class ExternalService(Protocol):
    """Destination outside the database world (§2.2.d.ii.2)."""

    def deliver(self, message: Message) -> None:
        """Accept one message; raise to signal failure."""
        ...


@dataclass
class PropagationLink:
    """One forwarding edge from the source queue.

    Exactly one of ``broker``/``service`` is set.  ``transform`` may
    rewrite the message (e.g. re-prioritize for the remote site).
    """

    name: str
    broker: QueueBroker | None = None
    queue_name: str | None = None
    service: ExternalService | None = None
    transform: Any = None
    delivered: int = 0
    failed: int = 0

    def __post_init__(self) -> None:
        if (self.broker is None) == (self.service is None):
            raise PropagationError(
                f"link {self.name!r} must target exactly one of "
                "broker+queue_name or service"
            )
        if self.broker is not None and self.queue_name is None:
            raise PropagationError(
                f"link {self.name!r} targets a broker but names no queue"
            )

    def send(self, message: Message) -> None:
        outgoing = Message(
            payload=message.payload,
            priority=message.priority,
            correlation_id=message.correlation_id,
            headers={
                **message.headers,
                "propagated_from": message.queue,
                "origin_message_id": message.message_id,
            },
            expires_at=message.expires_at,
        )
        if self.transform is not None:
            outgoing = self.transform(outgoing)
        if self.broker is not None:
            self.broker.publish(self.queue_name, outgoing)
        else:
            self.service.deliver(outgoing)
        self.delivered += 1


class Propagator:
    """Drains one source queue into its propagation links."""

    def __init__(
        self,
        broker: QueueBroker,
        source_queue: str,
        *,
        max_attempts: int = 5,
        base_backoff: float = 0.1,
        max_backoff: float = 30.0,
        dead_letter_queue: str | None = None,
    ) -> None:
        self.broker = broker
        self.source_queue = source_queue
        self.max_attempts = max_attempts
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self.links: list[PropagationLink] = []
        self.dead_letter_queue = dead_letter_queue
        if dead_letter_queue and not broker.has_queue(dead_letter_queue):
            broker.create_queue(dead_letter_queue)
        self._delivered_ids: dict[str, set[int]] = {}
        self.stats = {"forwarded": 0, "retried": 0, "dead_lettered": 0}

    def add_link(self, link: PropagationLink) -> "Propagator":
        """Attach a destination; returns self so links chain fluently."""
        self.links.append(link)
        self._delivered_ids.setdefault(link.name, set())
        return self

    def backoff_for(self, message_id: int, attempts: int) -> float:
        """Requeue delay before retry ``attempts + 1``.

        Schedule: exponential ``base_backoff * 2**(attempts-1)`` capped
        at ``max_backoff``, then jittered *downward* by up to 25% so a
        burst of same-batch failures doesn't retry in lockstep.  The
        jitter is deterministic — a hash of ``(message_id, attempts)``,
        no ambient RNG — so a given retry always lands at the same
        delay, and ``max_backoff`` is a hard upper bound.
        """
        raw = self.base_backoff * (2 ** max(0, attempts - 1))
        capped = min(raw, self.max_backoff)
        # Weyl-style integer hash -> [0, 1) fraction; stable across runs.
        mix = (message_id * 2654435761 + attempts * 0x9E3779B9) % 4096
        jitter = (mix / 4096.0) * 0.25
        return capped * (1.0 - jitter)

    def run_once(self, *, batch: int = 100) -> int:
        """Forward up to ``batch`` messages one at a time; returns how
        many were fully delivered (acked at the source).

        Each message costs its own dequeue and ack transaction; prefer
        :meth:`pump` for the batched path.
        """
        if not self.links:
            raise PropagationError("propagator has no links configured")
        forwarded = 0
        for _ in range(batch):
            message = self.broker.consume(
                self.source_queue, principal="propagator"
            )
            if message is None:
                break
            if self._forward(message):
                forwarded += 1
        return forwarded

    def pump(self, *, batch: int = 100) -> int:
        """Batched drain: dequeue up to ``batch`` messages in one
        transaction, forward each, then ack every fully delivered
        message with ONE batch ack — one commit and journal flush per
        batch instead of per message.  Failed messages still requeue
        (or dead-letter) individually.  Returns how many were fully
        delivered.
        """
        if not self.links:
            raise PropagationError("propagator has no links configured")
        messages = self.broker.consume_batch(
            self.source_queue, batch, principal="propagator"
        )
        delivered: list[int] = []
        for message in messages:
            if self._forward(message, defer_ack=True):
                delivered.append(message.message_id)
        if delivered:
            self.broker.ack_batch(
                self.source_queue, delivered, principal="propagator"
            )
            self.stats["forwarded"] += len(delivered)
        return len(delivered)

    def _forward(self, message: Message, *, defer_ack: bool = False) -> bool:
        failures: list[tuple[PropagationLink, Exception]] = []
        for link in self.links:
            seen = self._delivered_ids[link.name]
            if message.message_id in seen:
                continue  # Already delivered on a previous (partial) try.
            try:
                link.send(message)
                seen.add(message.message_id)
            except Exception as exc:  # failure boundary around foreign code
                link.failed += 1
                failures.append((link, exc))
        if not failures:
            if defer_ack:
                return True  # the batch pump acks (and counts) per batch
            self.broker.ack(
                self.source_queue, message.message_id, principal="propagator"
            )
            self.stats["forwarded"] += 1
            return True
        if message.attempts >= self.max_attempts:
            self._dead_letter(message, failures)
            return False
        backoff = self.backoff_for(message.message_id, message.attempts)
        self.broker.requeue(
            self.source_queue,
            message.message_id,
            delay=backoff,
            principal="propagator",
        )
        self.stats["retried"] += 1
        return False

    def _dead_letter(
        self, message: Message, failures: list[tuple[PropagationLink, Exception]]
    ) -> None:
        self.stats["dead_lettered"] += 1
        if self.dead_letter_queue:
            dead = Message(
                payload=message.payload,
                priority=message.priority,
                correlation_id=message.correlation_id,
                headers={
                    **message.headers,
                    "dead_letter_reason": "; ".join(
                        f"{link.name}: {exc}" for link, exc in failures
                    ),
                    "origin_queue": message.queue,
                    "origin_message_id": message.message_id,
                },
            )
            self.broker.publish(
                self.dead_letter_queue, dead, principal="propagator"
            )
        self.broker.ack(
            self.source_queue, message.message_id, principal="propagator"
        )
