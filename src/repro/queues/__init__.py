"""Message storage: staging areas / queues (paper §2.2.b).

Queues are ordinary database tables, which is the tutorial's point —
message storage inherits the database's security, auditing,
performance, recoverability, and transactional support for free.

* :class:`QueueTable` — one persistent queue (priority + FIFO order,
  visibility delay, expiration, ack/requeue).
* :class:`QueueBroker` — named queues, foreign-message ingestion, and
  the internal fast-path enqueue (§2.2.b.i.3).
* :class:`SecurityManager` / audit trail — §2.2.b.ii.1.
* :class:`Propagator` — forwarding to other staging areas and external
  services (§2.2.d.ii).
"""

from repro.queues.audit import AuditTrail, Permission, SecurityManager
from repro.queues.broker import QueueBroker
from repro.queues.message import Message, MessageState
from repro.queues.propagation import ExternalService, Propagator, PropagationLink
from repro.queues.queue_table import QueueTable

__all__ = [
    "Message",
    "MessageState",
    "QueueTable",
    "QueueBroker",
    "SecurityManager",
    "AuditTrail",
    "Permission",
    "Propagator",
    "PropagationLink",
    "ExternalService",
]
