"""A persistent message queue backed by one database table (§2.2.b).

Every queue operation is a database transaction, so queues inherit the
database's operational characteristics verbatim:

* **Recoverability** — enqueued messages survive crashes (they are rows
  journaled through the WAL); an in-flight (locked) message whose
  consumer dies is returned to READY by :meth:`recover_locked`.
* **Transactional support** — enqueue/dequeue participate in the
  caller's transaction: a rolled-back enqueue never becomes visible, a
  rolled-back dequeue leaves the message READY.
* **Ordering** — dequeue returns the highest-priority READY message,
  FIFO within a priority.  FIFO position is the *original enqueue*
  position (the rowid): a message requeued after a failed delivery
  keeps its place ahead of messages enqueued while it was locked.

Two enqueue paths exist for EXP-3:
:meth:`enqueue` is the internal fast path (programmatic row insert);
:meth:`enqueue_via_insert` goes through the full SQL text interface the
way an external client would ("extended INSERT interface",
§2.2.b.i.1).

Dequeue is O(log n): each queue keeps an in-memory min-heap over its
READY rows keyed ``(-priority, rowid)``, maintained by the enqueue /
requeue / recover paths and validated lazily against the table on pop
(stale entries — rolled-back enqueues, expired sweeps — are simply
discarded; rowids are never reused, so an entry can never alias a
different message).  The heap is rebuilt from the table when a
:class:`QueueTable` attaches to an existing table (restart/recovery)
and on demand via :meth:`rebuild_ready_index` after out-of-band SQL
writes to the queue table.

Batch operations (:meth:`enqueue_batch`, :meth:`dequeue_batch`,
:meth:`ack_batch`) cover the whole batch with ONE transaction — one
lock acquisition, one commit, one journal flush — which is where the
"significant optimization opportunities" of §2.2.b.i.3 come from.
"""

from __future__ import annotations

import heapq
import json
from typing import Any, Iterable, Iterator, Sequence

from repro.clock import Clock
from repro.db.database import Connection
from repro.db.engine import StorageEngine
from repro.db.schema import Column
from repro.db.types import INT, TEXT, TIMESTAMP
from repro.errors import MessageExpiredError, QueueError
from repro.obs.trace import new_trace_id, record_hop
from repro.queues.message import Message, MessageState


def queue_table_name(queue_name: str) -> str:
    return f"q_{queue_name.lower()}"


class QueueTable:
    """One named queue stored in table ``q_<name>``."""

    def __init__(
        self,
        db: StorageEngine,
        name: str,
        *,
        keep_history: bool = False,
        default_expiration: float | None = None,
    ) -> None:
        """Args:
        keep_history: consumed messages stay as CONSUMED rows (full
            tracking, §2.2.b.ii.1) instead of being deleted.
        default_expiration: seconds until expiry applied to messages
            enqueued without an explicit ``expires_at``.
        """
        self.db = db
        self.name = name.lower()
        self.table_name = queue_table_name(name)
        self.keep_history = keep_history
        self.default_expiration = default_expiration
        self.stats = {
            "enqueued": 0,
            "dequeued": 0,
            "acked": 0,
            "requeued": 0,
            "expired": 0,
        }
        # Registry instruments mirroring the legacy stats dict, bound
        # once (label: queue name); the depth gauge is a provider read
        # only at snapshot time, so it costs the hot path nothing.
        obs = db.obs
        self._m_enqueued = obs.counter("queue.enqueued", queue=self.name)
        self._m_dequeued = obs.counter("queue.dequeued", queue=self.name)
        self._m_acked = obs.counter("queue.acked", queue=self.name)
        self._m_requeued = obs.counter("queue.requeued", queue=self.name)
        self._m_expired = obs.counter("queue.expired", queue=self.name)
        obs.gauge_fn("queue.depth", self.depth, queue=self.name)
        # Priority-ordered READY index: min-heap of (-priority, rowid).
        # rowid is the tie-break, so FIFO-within-priority follows the
        # original enqueue order even across requeues.
        self._ready: list[tuple[int, int]] = []
        # Lazily-built prepared INSERT for enqueue_via_prepared (EXP-3's
        # client path with the parse amortized away).
        self._prepared_insert = None
        self._prepared_columns: tuple[str, ...] | None = None
        if not db.catalog.has_table(self.table_name):
            self._create_table()
        else:
            self.rebuild_ready_index()

    @property
    def clock(self) -> Clock:
        return self.db.clock

    def _create_table(self) -> None:
        # payload/headers are stored JSON-encoded (TEXT) so the client
        # SQL path and the internal fast path produce identical rows.
        self.db.create_table(
            self.table_name,
            [
                Column("payload", TEXT),
                Column("priority", INT, nullable=False, default=0),
                Column("enqueued_at", TIMESTAMP, nullable=False),
                Column("visible_at", TIMESTAMP, nullable=False),
                Column("expires_at", TIMESTAMP),
                Column("correlation_id", TEXT),
                Column("headers", TEXT),
                Column("attempts", INT, nullable=False, default=0),
                Column("state", TEXT, nullable=False),
                Column("consumer", TEXT),
            ],
        )
        # Dequeue scans filter on state; priority order is computed on
        # the (small) READY candidate set.
        self.db.create_index(
            f"ix_{self.table_name}_state", self.table_name, "state", kind="hash"
        )

    # -- enqueue --------------------------------------------------------------

    def _prepare(self, message: Message) -> Message:
        now = self.clock.now()
        message.queue = self.name
        message.enqueued_at = now
        # Only None means "unset": an explicit visible_at=0.0 is a real
        # timestamp (epoch under a simulated clock), not a request to be
        # visible "now".
        if message.visible_at is None:
            message.visible_at = now
        if message.expires_at is None and self.default_expiration is not None:
            message.expires_at = now + self.default_expiration
        message.state = MessageState.READY
        # The enqueue boundary is a trace birth point: a message not yet
        # carrying a trace id (i.e. not derived from a captured event)
        # gets one here, so every queued message is trackable.
        trace_id = message.headers.get("trace_id")
        if trace_id is None:
            trace_id = message.headers["trace_id"] = new_trace_id()
        record_hop(trace_id, "queue.enqueue", now, queue=self.name)
        return message

    def enqueue(
        self, message: Message | Any, *, conn: Connection | None = None
    ) -> int:
        """Internal fast-path enqueue (programmatic insert).

        Accepts a :class:`Message` or a bare payload.  Returns the
        message id.  Joins the caller's transaction when ``conn`` is
        given.
        """
        if not isinstance(message, Message):
            message = Message(payload=message)
        message = self._prepare(message)
        rowid = self.db.insert_row(self.table_name, message.to_row(), conn=conn)
        message.message_id = rowid
        heapq.heappush(self._ready, (-message.priority, rowid))
        self.stats["enqueued"] += 1
        self._m_enqueued.inc()
        return rowid

    def enqueue_batch(
        self,
        messages: Iterable[Message | Any],
        *,
        conn: Connection | None = None,
    ) -> list[int]:
        """Enqueue a batch of messages in ONE transaction.

        The whole batch shares a single table lock, commit, and journal
        flush (group commit degenerate case: the batch *is* the group),
        so per-message cost drops sharply with batch size — the EXP-2
        batch-size sweep quantifies it.  Returns the message ids, in
        input order; each input :class:`Message` gets its
        ``message_id`` assigned, exactly like :meth:`enqueue`.
        """
        prepared = [
            self._prepare(
                message if isinstance(message, Message) else Message(payload=message)
            )
            for message in messages
        ]
        if not prepared:
            return []
        rowids = self.db.insert_many(
            self.table_name, [message.to_row() for message in prepared], conn=conn
        )
        for message, rowid in zip(prepared, rowids):
            message.message_id = rowid
            heapq.heappush(self._ready, (-message.priority, rowid))
        self.stats["enqueued"] += len(rowids)
        self._m_enqueued.inc(len(rowids))
        return rowids

    def enqueue_via_insert(self, message: Message | Any) -> int:
        """Client-style enqueue through the SQL INSERT interface.

        Exercises the full lex/parse/plan path a foreign client would
        use — the baseline EXP-3 compares against the fast path.
        """
        if not isinstance(message, Message):
            message = Message(payload=message)
        message = self._prepare(message)
        row = message.to_row()
        columns = ", ".join(row)
        values = ", ".join(_sql_literal(value) for value in row.values())
        result = self.db.execute(
            f"INSERT INTO {self.table_name} ({columns}) VALUES ({values})"
        )
        # Leave the caller's Message in the same state as the fast
        # path: the SQL path returns the assigned id via lastrowid.
        message.message_id = result.lastrowid
        heapq.heappush(self._ready, (-message.priority, result.lastrowid))
        self.stats["enqueued"] += 1
        self._m_enqueued.inc()
        return result.lastrowid

    def enqueue_via_prepared(self, message: Message | Any) -> int:
        """Client-style enqueue through a prepared parameterized INSERT.

        Same SQL interface as :meth:`enqueue_via_insert`, but the
        statement text is constant (``?`` placeholders), so after the
        first call every enqueue is a statement-cache hit: bind + plan +
        execute with no lexing or parsing — the EXP-3 ``prepared`` arm.
        """
        if not isinstance(message, Message):
            message = Message(payload=message)
        message = self._prepare(message)
        row = message.to_row()
        if (
            self._prepared_insert is None
            or self._prepared_columns != tuple(row)
        ):
            columns = ", ".join(row)
            placeholders = ", ".join("?" for _ in row)
            self._prepared_insert = self.db.prepare(
                f"INSERT INTO {self.table_name} ({columns}) "
                f"VALUES ({placeholders})"
            )
            self._prepared_columns = tuple(row)
        result = self._prepared_insert.execute(tuple(row.values()))
        message.message_id = result.lastrowid
        heapq.heappush(self._ready, (-message.priority, result.lastrowid))
        self.stats["enqueued"] += 1
        self._m_enqueued.inc()
        return result.lastrowid

    # -- dequeue ----------------------------------------------------------------

    def _dequeue_ready(
        self, connection: Connection, consumer: str, limit: int
    ) -> list[Message]:
        """Pop up to ``limit`` dequeueable messages off the READY heap
        and lock them, inside the caller's (already open) transaction.

        Heap entries are validated against the table on pop: entries
        whose row is gone or no longer READY are discarded, not-yet-
        visible entries are deferred (pushed back), and expired entries
        are marked EXPIRED.  All state transitions of the batch are
        applied through one :meth:`Database.update_rows` call.
        """
        self.db.lock_table_exclusive(connection, self.table_name)
        transaction = connection.require_transaction()
        now = self.clock.now()
        table = self.db.catalog.table(self.table_name)
        heap = self._ready
        if not heap and self.depth():
            # Safety net: the table has READY rows the heap does not
            # know about (recovery replay, out-of-band SQL writes, a
            # rolled-back dequeue).  Re-derive the index from the table.
            self.rebuild_ready_index()
            heap = self._ready
        deferred: list[tuple[int, int]] = []
        taken: list[tuple[int, int]] = []
        updates: list[tuple[int, dict[str, Any]]] = []
        messages: list[Message] = []
        seen: set[int] = set()
        expired = 0
        while heap and len(messages) < limit:
            entry = heapq.heappop(heap)
            rowid = entry[1]
            if rowid in seen:
                continue  # duplicate entry (requeue + rollback races)
            row = table.get(rowid)
            if row is None or row["state"] != MessageState.READY.value:
                continue  # stale entry — lazily discarded
            if row["visible_at"] > now:
                deferred.append(entry)
                continue
            seen.add(rowid)
            if row["expires_at"] is not None and row["expires_at"] <= now:
                updates.append((rowid, {"state": MessageState.EXPIRED.value}))
                taken.append(entry)
                expired += 1
                continue
            columns = {
                "state": MessageState.LOCKED.value,
                "consumer": consumer,
                "attempts": row["attempts"] + 1,
            }
            updates.append((rowid, columns))
            taken.append(entry)
            row.update(columns)
            messages.append(Message.from_row(self.name, rowid, row))
        for entry in deferred:
            heapq.heappush(heap, entry)
        if updates:
            self.db.update_rows(self.table_name, updates, conn=connection)
        if taken:
            # A rolled-back dequeue restores the rows to READY via the
            # row-level undo; restore their heap entries alongside.
            transaction.record_undo(
                lambda entries=tuple(taken): [
                    heapq.heappush(self._ready, entry) for entry in entries
                ]
            )
        self.stats["expired"] += expired
        self.stats["dequeued"] += len(messages)
        if expired:
            self._m_expired.inc(expired)
        if messages:
            self._m_dequeued.inc(len(messages))
            for message in messages:
                record_hop(
                    message.headers.get("trace_id"),
                    "queue.dequeue",
                    now,
                    queue=self.name,
                    consumer=consumer,
                )
        return messages

    def dequeue(
        self,
        *,
        consumer: str = "anonymous",
        conn: Connection | None = None,
    ) -> Message | None:
        """Lock and return the next READY message, or None when empty.

        The returned message is LOCKED until :meth:`ack` (consume) or
        :meth:`requeue` (failure).  Expired candidates encountered on
        the way are marked EXPIRED.
        """

        def work(connection: Connection) -> Message | None:
            messages = self._dequeue_ready(connection, consumer, 1)
            return messages[0] if messages else None

        return self.db.run_in_transaction(conn, work)

    def dequeue_batch(
        self,
        max_messages: int,
        *,
        consumer: str = "anonymous",
        conn: Connection | None = None,
    ) -> list[Message]:
        """Lock and return up to ``max_messages`` READY messages in ONE
        transaction, in dequeue order (priority desc, FIFO within).

        Returns fewer (possibly zero) messages when the queue runs dry.
        Each returned message is LOCKED until acked/requeued, exactly as
        with :meth:`dequeue`.
        """
        if max_messages < 1:
            return []

        def work(connection: Connection) -> list[Message]:
            return self._dequeue_ready(connection, consumer, max_messages)

        return self.db.run_in_transaction(conn, work)

    def ack(self, message_id: int, *, conn: Connection | None = None) -> None:
        """Consume a LOCKED message (delete, or mark CONSUMED when the
        queue keeps history)."""

        def work(connection: Connection) -> None:
            self._require_state(message_id, MessageState.LOCKED, "ack")
            if self.keep_history:
                self.db.update_row(
                    self.table_name,
                    message_id,
                    {"state": MessageState.CONSUMED.value},
                    conn=connection,
                )
            else:
                self.db.delete_row(self.table_name, message_id, conn=connection)
            self.stats["acked"] += 1
            self._m_acked.inc()

        self.db.run_in_transaction(conn, work)

    def ack_batch(
        self,
        message_ids: Sequence[int],
        *,
        conn: Connection | None = None,
    ) -> int:
        """Consume a batch of LOCKED messages in ONE transaction.

        All-or-nothing: every id must name a LOCKED message or the
        whole batch fails (and rolls back).  Returns the number acked.
        """
        ids = list(message_ids)
        if not ids:
            return 0

        def work(connection: Connection) -> int:
            for message_id in ids:
                self._require_state(message_id, MessageState.LOCKED, "ack")
            if self.keep_history:
                self.db.update_rows(
                    self.table_name,
                    [
                        (message_id, {"state": MessageState.CONSUMED.value})
                        for message_id in ids
                    ],
                    conn=connection,
                )
            else:
                for message_id in ids:
                    self.db.delete_row(
                        self.table_name, message_id, conn=connection
                    )
            self.stats["acked"] += len(ids)
            self._m_acked.inc(len(ids))
            return len(ids)

        return self.db.run_in_transaction(conn, work)

    def requeue(
        self,
        message_id: int,
        *,
        delay: float = 0.0,
        conn: Connection | None = None,
    ) -> None:
        """Return a LOCKED message to READY (consumer failure path).

        The message keeps its original rowid and therefore its original
        FIFO position within its priority: redelivery is not penalized
        by messages that arrived while it was locked.
        """

        def work(connection: Connection) -> None:
            row = self._require_state(message_id, MessageState.LOCKED, "requeue")
            self.db.update_row(
                self.table_name,
                message_id,
                {
                    "state": MessageState.READY.value,
                    "consumer": None,
                    "visible_at": self.clock.now() + delay,
                },
                conn=connection,
            )
            heapq.heappush(self._ready, (-row["priority"], message_id))
            self.stats["requeued"] += 1
            self._m_requeued.inc()

        self.db.run_in_transaction(conn, work)

    def _require_state(
        self, message_id: int, expected: MessageState, operation: str
    ) -> dict[str, Any]:
        table = self.db.catalog.table(self.table_name)
        row = table.get(message_id)
        if row is None:
            raise QueueError(
                f"{operation}: message {message_id} not found in {self.name!r}"
            )
        if row["state"] == MessageState.EXPIRED.value:
            raise MessageExpiredError(
                f"{operation}: message {message_id} expired"
            )
        if row["state"] != expected.value:
            raise QueueError(
                f"{operation}: message {message_id} is {row['state']}, "
                f"expected {expected.value}"
            )
        return row

    # -- maintenance & inspection -------------------------------------------------

    def browse(self, *, include_locked: bool = False) -> Iterator[Message]:
        """Peek at pending messages in dequeue order without locking."""
        table = self.db.catalog.table(self.table_name)
        states = {MessageState.READY.value}
        if include_locked:
            states.add(MessageState.LOCKED.value)
        pending = [
            (row["priority"], rowid, row)
            for rowid, row in table.scan()
            if row["state"] in states
        ]
        pending.sort(key=lambda item: (-item[0], item[1]))
        for _priority, rowid, row in pending:
            yield Message.from_row(self.name, rowid, row)

    def depth(self) -> int:
        """Number of READY messages."""
        table = self.db.catalog.table(self.table_name)
        return len(table.lookup_rowids("state", MessageState.READY.value))

    def expire_messages(self) -> int:
        """Sweep READY messages past their expiration; returns count."""
        now = self.clock.now()
        table = self.db.catalog.table(self.table_name)
        expired = 0
        for rowid in table.lookup_rowids("state", MessageState.READY.value):
            row = table.get(rowid)
            if row and row["expires_at"] is not None and row["expires_at"] <= now:
                self.db.update_row(
                    self.table_name, rowid, {"state": MessageState.EXPIRED.value}
                )
                expired += 1
        self.stats["expired"] += expired
        self._m_expired.inc(expired)
        return expired

    def recover_locked(self, *, consumer: str | None = None) -> int:
        """Return LOCKED messages to READY after a consumer failure.

        With ``consumer`` given, only that consumer's locks are
        released.  Returns the number of messages recovered.
        """
        table = self.db.catalog.table(self.table_name)
        recovered = 0
        for rowid in table.lookup_rowids("state", MessageState.LOCKED.value):
            row = table.get(rowid)
            if row is None:
                continue
            if consumer is not None and row["consumer"] != consumer:
                continue
            self.db.update_row(
                self.table_name,
                rowid,
                {"state": MessageState.READY.value, "consumer": None},
            )
            heapq.heappush(self._ready, (-row["priority"], rowid))
            recovered += 1
        return recovered

    def rebuild_ready_index(self) -> int:
        """Re-derive the in-memory READY heap from the table.

        Called automatically when attaching to an existing table and by
        the dequeue safety net; call it manually after mutating the
        queue table through raw SQL.  Returns the number of READY rows
        indexed.
        """
        table = self.db.catalog.table(self.table_name)
        entries = []
        for rowid in table.lookup_rowids("state", MessageState.READY.value):
            row = table.get(rowid)
            if row is not None:
                entries.append((-row["priority"], rowid))
        heapq.heapify(entries)
        self._ready = entries
        return len(entries)


def _sql_literal(value: Any) -> str:
    """Render a Python value as a SQL literal for the client-path INSERT."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    # JSON columns accept structured values; embed as a JSON string the
    # coercion layer will keep verbatim.
    return "'" + json.dumps(value).replace("'", "''") + "'"
