"""A persistent message queue backed by one database table (§2.2.b).

Every queue operation is a database transaction, so queues inherit the
database's operational characteristics verbatim:

* **Recoverability** — enqueued messages survive crashes (they are rows
  journaled through the WAL); an in-flight (locked) message whose
  consumer dies is returned to READY by :meth:`recover_locked`.
* **Transactional support** — enqueue/dequeue participate in the
  caller's transaction: a rolled-back enqueue never becomes visible, a
  rolled-back dequeue leaves the message READY.
* **Ordering** — dequeue returns the highest-priority READY message,
  FIFO within a priority.

Two enqueue paths exist for EXP-3:
:meth:`enqueue` is the internal fast path (programmatic row insert);
:meth:`enqueue_via_insert` goes through the full SQL text interface the
way an external client would ("extended INSERT interface",
§2.2.b.i.1).
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from repro.clock import Clock
from repro.db.database import Connection, Database
from repro.db.schema import Column
from repro.db.types import INT, TEXT, TIMESTAMP
from repro.errors import MessageExpiredError, QueueError
from repro.queues.message import Message, MessageState


def queue_table_name(queue_name: str) -> str:
    return f"q_{queue_name.lower()}"


class QueueTable:
    """One named queue stored in table ``q_<name>``."""

    def __init__(
        self,
        db: Database,
        name: str,
        *,
        keep_history: bool = False,
        default_expiration: float | None = None,
    ) -> None:
        """Args:
        keep_history: consumed messages stay as CONSUMED rows (full
            tracking, §2.2.b.ii.1) instead of being deleted.
        default_expiration: seconds until expiry applied to messages
            enqueued without an explicit ``expires_at``.
        """
        self.db = db
        self.name = name.lower()
        self.table_name = queue_table_name(name)
        self.keep_history = keep_history
        self.default_expiration = default_expiration
        self.stats = {
            "enqueued": 0,
            "dequeued": 0,
            "acked": 0,
            "requeued": 0,
            "expired": 0,
        }
        if not db.catalog.has_table(self.table_name):
            self._create_table()

    @property
    def clock(self) -> Clock:
        return self.db.clock

    def _create_table(self) -> None:
        # payload/headers are stored JSON-encoded (TEXT) so the client
        # SQL path and the internal fast path produce identical rows.
        self.db.create_table(
            self.table_name,
            [
                Column("payload", TEXT),
                Column("priority", INT, nullable=False, default=0),
                Column("enqueued_at", TIMESTAMP, nullable=False),
                Column("visible_at", TIMESTAMP, nullable=False),
                Column("expires_at", TIMESTAMP),
                Column("correlation_id", TEXT),
                Column("headers", TEXT),
                Column("attempts", INT, nullable=False, default=0),
                Column("state", TEXT, nullable=False),
                Column("consumer", TEXT),
            ],
        )
        # Dequeue scans filter on state; priority order is computed on
        # the (small) READY candidate set.
        self.db.create_index(
            f"ix_{self.table_name}_state", self.table_name, "state", kind="hash"
        )

    # -- enqueue --------------------------------------------------------------

    def _prepare(self, message: Message) -> Message:
        now = self.clock.now()
        message.queue = self.name
        message.enqueued_at = now
        if not message.visible_at:
            message.visible_at = now
        if message.expires_at is None and self.default_expiration is not None:
            message.expires_at = now + self.default_expiration
        message.state = MessageState.READY
        return message

    def enqueue(
        self, message: Message | Any, *, conn: Connection | None = None
    ) -> int:
        """Internal fast-path enqueue (programmatic insert).

        Accepts a :class:`Message` or a bare payload.  Returns the
        message id.  Joins the caller's transaction when ``conn`` is
        given.
        """
        if not isinstance(message, Message):
            message = Message(payload=message)
        message = self._prepare(message)
        rowid = self.db.insert_row(self.table_name, message.to_row(), conn=conn)
        message.message_id = rowid
        self.stats["enqueued"] += 1
        return rowid

    def enqueue_via_insert(self, message: Message | Any) -> int:
        """Client-style enqueue through the SQL INSERT interface.

        Exercises the full lex/parse/plan path a foreign client would
        use — the baseline EXP-3 compares against the fast path.
        """
        if not isinstance(message, Message):
            message = Message(payload=message)
        message = self._prepare(message)
        row = message.to_row()
        columns = ", ".join(row)
        values = ", ".join(_sql_literal(value) for value in row.values())
        result = self.db.execute(
            f"INSERT INTO {self.table_name} ({columns}) VALUES ({values})"
        )
        self.stats["enqueued"] += 1
        return result.lastrowid

    # -- dequeue ----------------------------------------------------------------

    def dequeue(
        self,
        *,
        consumer: str = "anonymous",
        conn: Connection | None = None,
    ) -> Message | None:
        """Lock and return the next READY message, or None when empty.

        The returned message is LOCKED until :meth:`ack` (consume) or
        :meth:`requeue` (failure).  Expired candidates encountered on
        the way are marked EXPIRED.
        """

        def work(connection: Connection) -> Message | None:
            self.db.lock_table_exclusive(connection, self.table_name)
            now = self.clock.now()
            table = self.db.catalog.table(self.table_name)
            best: tuple[int, int] | None = None  # (-priority, rowid)
            for rowid in table.lookup_rowids("state", MessageState.READY.value):
                row = table.get(rowid)
                if row is None or row["visible_at"] > now:
                    continue
                if row["expires_at"] is not None and row["expires_at"] <= now:
                    self.db.update_row(
                        self.table_name,
                        rowid,
                        {"state": MessageState.EXPIRED.value},
                        conn=connection,
                    )
                    self.stats["expired"] += 1
                    continue
                candidate = (-row["priority"], rowid)
                if best is None or candidate < best:
                    best = candidate
            if best is None:
                return None
            rowid = best[1]
            self.db.update_row(
                self.table_name,
                rowid,
                {
                    "state": MessageState.LOCKED.value,
                    "consumer": consumer,
                    "attempts": table.get(rowid)["attempts"] + 1,
                },
                conn=connection,
            )
            row = table.get(rowid)
            self.stats["dequeued"] += 1
            return Message.from_row(self.name, rowid, row)

        return self.db._with_transaction(conn, work)

    def ack(self, message_id: int, *, conn: Connection | None = None) -> None:
        """Consume a LOCKED message (delete, or mark CONSUMED when the
        queue keeps history)."""

        def work(connection: Connection) -> None:
            self._require_state(message_id, MessageState.LOCKED, "ack")
            if self.keep_history:
                self.db.update_row(
                    self.table_name,
                    message_id,
                    {"state": MessageState.CONSUMED.value},
                    conn=connection,
                )
            else:
                self.db.delete_row(self.table_name, message_id, conn=connection)
            self.stats["acked"] += 1

        self.db._with_transaction(conn, work)

    def requeue(
        self,
        message_id: int,
        *,
        delay: float = 0.0,
        conn: Connection | None = None,
    ) -> None:
        """Return a LOCKED message to READY (consumer failure path)."""

        def work(connection: Connection) -> None:
            self._require_state(message_id, MessageState.LOCKED, "requeue")
            self.db.update_row(
                self.table_name,
                message_id,
                {
                    "state": MessageState.READY.value,
                    "consumer": None,
                    "visible_at": self.clock.now() + delay,
                },
                conn=connection,
            )
            self.stats["requeued"] += 1

        self.db._with_transaction(conn, work)

    def _require_state(
        self, message_id: int, expected: MessageState, operation: str
    ) -> dict[str, Any]:
        table = self.db.catalog.table(self.table_name)
        row = table.get(message_id)
        if row is None:
            raise QueueError(
                f"{operation}: message {message_id} not found in {self.name!r}"
            )
        if row["state"] == MessageState.EXPIRED.value:
            raise MessageExpiredError(
                f"{operation}: message {message_id} expired"
            )
        if row["state"] != expected.value:
            raise QueueError(
                f"{operation}: message {message_id} is {row['state']}, "
                f"expected {expected.value}"
            )
        return row

    # -- maintenance & inspection -------------------------------------------------

    def browse(self, *, include_locked: bool = False) -> Iterator[Message]:
        """Peek at pending messages in dequeue order without locking."""
        table = self.db.catalog.table(self.table_name)
        states = {MessageState.READY.value}
        if include_locked:
            states.add(MessageState.LOCKED.value)
        pending = [
            (row["priority"], rowid, row)
            for rowid, row in table.scan()
            if row["state"] in states
        ]
        pending.sort(key=lambda item: (-item[0], item[1]))
        for _priority, rowid, row in pending:
            yield Message.from_row(self.name, rowid, row)

    def depth(self) -> int:
        """Number of READY messages."""
        table = self.db.catalog.table(self.table_name)
        return len(table.lookup_rowids("state", MessageState.READY.value))

    def expire_messages(self) -> int:
        """Sweep READY messages past their expiration; returns count."""
        now = self.clock.now()
        table = self.db.catalog.table(self.table_name)
        expired = 0
        for rowid in table.lookup_rowids("state", MessageState.READY.value):
            row = table.get(rowid)
            if row and row["expires_at"] is not None and row["expires_at"] <= now:
                self.db.update_row(
                    self.table_name, rowid, {"state": MessageState.EXPIRED.value}
                )
                expired += 1
        self.stats["expired"] += expired
        return expired

    def recover_locked(self, *, consumer: str | None = None) -> int:
        """Return LOCKED messages to READY after a consumer failure.

        With ``consumer`` given, only that consumer's locks are
        released.  Returns the number of messages recovered.
        """
        table = self.db.catalog.table(self.table_name)
        recovered = 0
        for rowid in table.lookup_rowids("state", MessageState.LOCKED.value):
            row = table.get(rowid)
            if row is None:
                continue
            if consumer is not None and row["consumer"] != consumer:
                continue
            self.db.update_row(
                self.table_name,
                rowid,
                {"state": MessageState.READY.value, "consumer": None},
            )
            recovered += 1
        return recovered


def _sql_literal(value: Any) -> str:
    """Render a Python value as a SQL literal for the client-path INSERT."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    # JSON columns accept structured values; embed as a JSON string the
    # coercion layer will keep verbatim.
    return "'" + json.dumps(value).replace("'", "''") + "'"
