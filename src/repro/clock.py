"""Clock abstraction shared by every subsystem.

Event-processing semantics (window boundaries, message expiration,
delivery timeliness) depend on *when* things happen.  To make the whole
platform deterministic under test, every component takes a
:class:`Clock` and never calls ``time.time()`` directly.

Two implementations are provided:

* :class:`WallClock` — real time, for live deployments and benchmarks.
* :class:`SimulatedClock` — manually advanced time, for tests and for
  the discrete-event workload generators.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Callable


class Clock:
    """Interface: a monotonically non-decreasing source of seconds."""

    def now(self) -> float:
        """Return the current time in (fractional) seconds."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block (or simulate blocking) for ``seconds``."""
        raise NotImplementedError


class WallClock(Clock):
    """Real wall-clock time backed by :func:`time.monotonic`.

    ``monotonic`` is used rather than ``time.time`` so that window and
    expiration arithmetic is immune to system clock adjustments; an
    epoch offset keeps values positive and roughly epoch-like for
    display purposes.
    """

    def __init__(self) -> None:
        self._offset = time.time() - time.monotonic()

    def now(self) -> float:
        return time.monotonic() + self._offset

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


class SimulatedClock(Clock):
    """A clock that only moves when told to.

    Besides ``advance``, it supports scheduling callbacks, which lets
    tests drive poll-based components (query capture, propagation
    retries) deterministically.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` when the clock has advanced past ``delay``."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(
            self._timers, (self._now + delay, next(self._counter), callback)
        )

    def advance(self, seconds: float) -> None:
        """Move time forward, firing any timers that come due in order."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        deadline = self._now + seconds
        while self._timers and self._timers[0][0] <= deadline:
            due, _seq, callback = heapq.heappop(self._timers)
            self._now = due
            callback()
        self._now = deadline

    def advance_to(self, timestamp: float) -> None:
        """Advance the clock to an absolute ``timestamp``."""
        if timestamp < self._now:
            raise ValueError("cannot advance a clock backwards")
        self.advance(timestamp - self._now)
