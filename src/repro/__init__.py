"""repro — Event Processing Using Database Technology.

A faithful, from-scratch reproduction of the platform described in
Chandy & Gawlick's SIGMOD 2007 tutorial: an embedded database whose
triggers, journal, queues, rules, and continuous queries together form
a complete event-driven application stack, topped by the tutorial's
conceptual contribution — sense-and-respond with expectation models and
VIRT ("Valuable Information at the Right Time") filtering.

Quickstart::

    from repro import Database, EventDrivenApplication, EwmaModel

    db = Database()
    db.execute("CREATE TABLE meters (meter_id TEXT, usage REAL)")
    app = EventDrivenApplication(db)
    app.capture_table("meters", method="trigger")
    app.monitor("usage_spike", field="usage",
                model_factory=lambda: EwmaModel(alpha=0.2),
                threshold=3.0, key_field="meter_id")

See ``examples/quickstart.py`` for a complete walk-through.
"""

from repro.clock import Clock, SimulatedClock, WallClock
from repro.core import (
    Alert,
    AlertManager,
    ConfusionTracker,
    DeviationDetector,
    EpisodeTracker,
    EventDrivenApplication,
    EwmaModel,
    Expectation,
    ExpectationModel,
    MarkovStateModel,
    RangeModel,
    RecipientProfile,
    Responder,
    ResponderRegistry,
    SeasonalProfileModel,
    UpdatePolicy,
    VirtFilter,
    VirtScorer,
)
from repro.db import Database
from repro.errors import ReproError
from repro.events import Event, correlate

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Event",
    "correlate",
    "Clock",
    "SimulatedClock",
    "WallClock",
    "ReproError",
    "EventDrivenApplication",
    "ExpectationModel",
    "Expectation",
    "RangeModel",
    "EwmaModel",
    "SeasonalProfileModel",
    "MarkovStateModel",
    "DeviationDetector",
    "UpdatePolicy",
    "VirtScorer",
    "VirtFilter",
    "RecipientProfile",
    "ConfusionTracker",
    "EpisodeTracker",
    "Alert",
    "AlertManager",
    "Responder",
    "ResponderRegistry",
    "__version__",
]
