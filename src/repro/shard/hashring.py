"""Consistent-hash shard map: topic/queue key → shard id.

Partitioning by key-range or hash is the standard scale-out toolkit
(DDIA ch. 6); this module implements hash partitioning with a
*consistent* ring so that growing the map from N to N+1 shards moves
only ~1/(N+1) of the keys — the invariant the shard routing tests pin.

Determinism matters more than speed here: the router runs once per
routed batch, but the *same* key must map to the *same* shard in every
process (coordinator and workers) and across interpreter restarts, so
the ring uses :func:`stable_hash` (BLAKE2b) rather than Python's
per-process-salted ``hash()``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Iterable

from repro.errors import ShardError

#: Virtual nodes per shard.  More vnodes → better balance (stddev of
#: keys per shard ~ 1/sqrt(vnodes)) at a small ring-size cost.
DEFAULT_VNODES = 64


def stable_hash(key: str) -> int:
    """64-bit process-independent hash of ``key`` (BLAKE2b)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardMap:
    """An immutable consistent-hash ring over a set of shard ids.

    Build one from shard ids, route with :meth:`shard_for`, grow with
    :meth:`with_shard` (returns a NEW map — maps are value objects so a
    coordinator can hand the same map to every process and swap it
    atomically).
    """

    def __init__(
        self, shard_ids: Iterable[int], *, vnodes: int = DEFAULT_VNODES
    ) -> None:
        self.shard_ids = tuple(sorted(set(int(s) for s in shard_ids)))
        if not self.shard_ids:
            raise ShardError("a shard map needs at least one shard")
        if vnodes < 1:
            raise ShardError("vnodes must be >= 1")
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard_id in self.shard_ids:
            for replica in range(vnodes):
                points.append((stable_hash(f"shard-{shard_id}:{replica}"), shard_id))
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    def __len__(self) -> int:
        return len(self.shard_ids)

    def __contains__(self, shard_id: int) -> bool:
        return shard_id in self.shard_ids

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, ShardMap)
            and self.shard_ids == other.shard_ids
            and self.vnodes == other.vnodes
        )

    def __hash__(self) -> int:
        return hash((self.shard_ids, self.vnodes))

    def shard_for(self, key: str) -> int:
        """The shard owning ``key`` — first ring point at or after the
        key's hash, wrapping at the top."""
        position = bisect.bisect_right(self._keys, stable_hash(key))
        if position == len(self._points):
            position = 0
        return self._points[position][1]

    def assign(self, keys: Iterable[str]) -> dict[int, list[str]]:
        """Group ``keys`` by owning shard (all shards present, possibly
        with empty lists — convenient for fan-out loops)."""
        grouped: dict[int, list[str]] = {shard: [] for shard in self.shard_ids}
        for key in keys:
            grouped[self.shard_for(key)].append(key)
        return grouped

    def with_shard(self, shard_id: int) -> "ShardMap":
        """A new map with ``shard_id`` added (ring growth)."""
        if shard_id in self.shard_ids:
            raise ShardError(f"shard {shard_id} already in the map")
        return ShardMap(self.shard_ids + (shard_id,), vnodes=self.vnodes)

    def without_shard(self, shard_id: int) -> "ShardMap":
        """A new map with ``shard_id`` removed (drain/decommission)."""
        if shard_id not in self.shard_ids:
            raise ShardError(f"shard {shard_id} not in the map")
        remaining = tuple(s for s in self.shard_ids if s != shard_id)
        return ShardMap(remaining, vnodes=self.vnodes)

    # -- wire/config form ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"shards": list(self.shard_ids), "vnodes": self.vnodes}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardMap":
        return cls(data["shards"], vnodes=data.get("vnodes", DEFAULT_VNODES))


class ShardRouter:
    """Routes queue/topic names onto a :class:`ShardMap`.

    Keys are normalized (lowercased, like queue names everywhere else)
    so the router agrees with the brokers about identity.  The map is
    swappable (:meth:`rebalance`) for ring growth.
    """

    def __init__(self, shard_map: ShardMap) -> None:
        self.map = shard_map

    def shard_for(self, name: str) -> int:
        return self.map.shard_for(name.lower())

    def group_by_shard(
        self, entries: Iterable[tuple[str, Any]]
    ) -> dict[int, list[tuple[str, Any]]]:
        """Group ``(name, item)`` pairs by owning shard — the batched
        fan-out primitive the sharded brokers build on."""
        grouped: dict[int, list[tuple[str, Any]]] = {}
        for name, item in entries:
            grouped.setdefault(self.shard_for(name), []).append((name, item))
        return grouped

    def rebalance(self, shard_map: ShardMap) -> None:
        self.map = shard_map
