"""Sharded multi-process scale-out for the broker/queue layer.

Layering (bottom-up):

* :mod:`repro.shard.hashring` — consistent-hash shard map + router.
* :mod:`repro.shard.protocol` — length-prefixed frames and the
  message wire forms.
* :mod:`repro.shard.twopc` — durable participant/decision logs for
  cross-shard atomic operations.
* :mod:`repro.shard.worker` — the per-shard process: a full
  :class:`~repro.db.database.Database` + broker stack behind a framed
  channel.
* :mod:`repro.shard.coordinator` — worker lifecycle, pipelined
  scatter, 2PC driving, crash recovery, replication recording, the
  degraded-mode write spool, and replica promotion.
* :mod:`repro.shard.replication` — the per-shard replication log and
  primary→replica log shipping.
* :mod:`repro.shard.supervisor` — heartbeat probing, failure
  classification, backed-off restarts, circuit breaking, promotion.
* :mod:`repro.shard.broker` — :class:`ShardedQueueBroker` /
  :class:`ShardedPubSubBroker`, the single-process broker APIs routed
  over the fleet, with caller-selectable degradation policies.
"""

from repro.shard.broker import ShardedPubSubBroker, ShardedQueueBroker
from repro.shard.coordinator import FleetView, ShardCoordinator, WorkerHandle
from repro.shard.hashring import ShardMap, ShardRouter, stable_hash
from repro.shard.replication import ReplicaState, ReplicationLog, ShardReplicator
from repro.shard.supervisor import (
    BREAKER_CLOSED,
    BREAKER_OPEN,
    ShardHealth,
    ShardSupervisor,
)
from repro.shard.twopc import (
    ABORTED,
    COMMITTED,
    PREPARED,
    DecisionLog,
    ParticipantLog,
    new_gtid,
)

__all__ = [
    "ShardMap",
    "ShardRouter",
    "stable_hash",
    "ShardCoordinator",
    "WorkerHandle",
    "FleetView",
    "ShardedQueueBroker",
    "ShardedPubSubBroker",
    "ShardSupervisor",
    "ShardHealth",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "ShardReplicator",
    "ReplicationLog",
    "ReplicaState",
    "ParticipantLog",
    "DecisionLog",
    "new_gtid",
    "PREPARED",
    "COMMITTED",
    "ABORTED",
]
