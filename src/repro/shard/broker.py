"""Sharded facades over the queue and pub/sub broker APIs.

:class:`ShardedQueueBroker` and :class:`ShardedPubSubBroker` present
the single-process broker surface while executing against a
:class:`~repro.shard.coordinator.ShardCoordinator`'s worker fleet.  A
queue (or durable-subscription spool) lives *entirely* on the shard its
name hashes to, so every single-queue operation is one local
transaction on one worker — the paper's queue semantics are untouched;
only placement changed.  The one genuinely distributed operation,
:meth:`ShardedQueueBroker.publish_atomic` across queues on different
shards, runs the 2PC protocol.

Error fidelity: worker-side exceptions come back over the wire as
``(kind, message)``; the facade re-raises the matching
:class:`~repro.errors.ReproError` subclass so callers catch exactly
what the local brokers would have raised.
"""

from __future__ import annotations

from typing import Any, Callable

from repro import errors as errors_module
from repro.errors import (
    ReproError,
    ShardError,
    ShardUnavailable,
    ShardWorkerDied,
    ShardWorkerError,
)
from repro.events import Event
from repro.pubsub.broker import _event_to_payload, _payload_to_event
from repro.pubsub.topic import Topic, topic_matches
from repro.queues.message import Message
from repro.shard.coordinator import ShardCoordinator
from repro.shard.protocol import message_to_wire, wire_to_consumed
from repro.shard.twopc import new_gtid  # noqa: F401  (re-export convenience)


def _reraise(exc: ShardWorkerError) -> None:
    """Map a worker-reported error back to its local exception class
    (falls through to the ShardWorkerError itself for unknown kinds)."""
    cls = getattr(errors_module, exc.kind, None)
    if (
        isinstance(cls, type)
        and issubclass(cls, ReproError)
        and cls not in (ShardWorkerError,)
    ):
        try:
            raise cls(str(exc)) from None
        except TypeError:  # subclass with a custom constructor
            pass
    raise exc


#: Ops that change shard state and therefore must route through
#: :meth:`ShardCoordinator.mutate` (which records replication entries).
#: ``consume_batch``/``requeue`` mutate lock state only — they ride the
#: same path but the replicator deliberately skips them.
_MUTATING_OPS = frozenset(
    {
        "create_queue",
        "drop_queue",
        "publish_batch",
        "ack",
        "ack_batch",
        "requeue",
        "consume_batch",
    }
)

#: Writes the spool policy may buffer during an outage.  Acks and
#: consumes are NOT spoolable: they reference locks that died with the
#: primary, so replaying them later could only fail.
_SPOOLABLE_OPS = frozenset({"publish_batch", "create_queue", "drop_queue"})


class ShardedQueueBroker:
    """The :class:`~repro.queues.broker.QueueBroker` API, shard-routed.

    Degradation policy (per instance, caller-selectable):

    * ``read_policy="primary"`` (default) — reads require the primary;
      an outage raises :class:`ShardUnavailable`.
      ``read_policy="replica_ok"`` — while the primary is down, reads
      (``depth``/``stats``/``peek``) are served by the freshest replica
      and tagged ``stale=True`` with the lag bound.
    * ``write_policy="fail"`` (default) — writes to a downed shard
      raise :class:`ShardUnavailable` carrying the supervisor's
      retry-after hint.  ``write_policy="spool"`` — spoolable writes
      wait in the coordinator's bounded per-shard spool and replay, in
      order, when the shard recovers (publishes return ``-1``
      placeholder ids; delivery is at-least-once across the outage).
    """

    def __init__(
        self,
        coordinator: ShardCoordinator,
        *,
        read_policy: str = "primary",
        write_policy: str = "fail",
    ) -> None:
        if read_policy not in ("primary", "replica_ok"):
            raise ValueError(f"unknown read_policy {read_policy!r}")
        if write_policy not in ("fail", "spool"):
            raise ValueError(f"unknown write_policy {write_policy!r}")
        self.coordinator = coordinator
        self.router = coordinator.router
        self.read_policy = read_policy
        self.write_policy = write_policy
        #: Staleness tag of the most recent degraded read (``None``
        #: after a primary-served one) — the out-of-band channel for
        #: APIs whose return shape has no room for a tag.
        self.last_read_info: dict[str, Any] | None = None

    def _call(self, queue_name: str, op: str, args: dict[str, Any]) -> Any:
        shard_id = self.router.shard_for(queue_name)
        try:
            if op in _MUTATING_OPS:
                result = self.coordinator.mutate(shard_id, op, args)
            else:
                result = self.coordinator.call(shard_id, op, args)
            self.last_read_info = None
            return result
        except ShardWorkerError as exc:
            _reraise(exc)
        except ShardWorkerDied as exc:
            return self._degraded(shard_id, op, args, exc)

    def _degraded(
        self, shard_id: int, op: str, args: dict[str, Any],
        cause: ShardWorkerDied,
    ) -> Any:
        """Apply the degradation policy after the primary failed an op."""
        retry_after = self.coordinator.retry_hints.get(shard_id)
        if op in _MUTATING_OPS:
            if (
                self.write_policy == "spool"
                and op in _SPOOLABLE_OPS
            ):
                self.coordinator.spool_write(shard_id, op, args)
                if op == "publish_batch":
                    # Real ids exist only once the spool replays; the
                    # placeholder keeps the return shape.
                    return [-1] * len(args["messages"])
                return True
            raise ShardUnavailable(
                f"shard {shard_id} has no live primary for {op!r}",
                shard=shard_id,
                retry_after=retry_after,
            ) from cause
        if self.read_policy == "replica_ok":
            try:
                result, info = self.coordinator.replica_read(shard_id, op, args)
            except ShardWorkerDied as exc:
                raise ShardUnavailable(
                    f"shard {shard_id} has no live primary or replica",
                    shard=shard_id,
                    retry_after=retry_after,
                ) from exc
            self.last_read_info = info
            return result
        raise ShardUnavailable(
            f"shard {shard_id} has no live primary for {op!r} "
            "(read_policy='primary')",
            shard=shard_id,
            retry_after=retry_after,
        ) from cause

    # -- queue lifecycle ----------------------------------------------------

    def create_queue(
        self,
        name: str,
        *,
        keep_history: bool = False,
        default_expiration: float | None = None,
    ) -> int:
        """Create ``name`` on its owning shard; returns the shard id."""
        self._call(
            name,
            "create_queue",
            {
                "name": name,
                "keep_history": keep_history,
                "default_expiration": default_expiration,
            },
        )
        return self.router.shard_for(name)

    def drop_queue(self, name: str) -> None:
        self._call(name, "drop_queue", {"name": name})

    def shard_for(self, name: str) -> int:
        return self.router.shard_for(name)

    # -- publish ------------------------------------------------------------

    def publish(
        self, queue_name: str, message: Message, *, principal: str = "internal"
    ) -> int:
        return self.publish_batch(queue_name, [message], principal=principal)[0]

    def publish_batch(
        self,
        queue_name: str,
        messages: list[Message],
        *,
        principal: str = "internal",
    ) -> list[int]:
        """One frame, one worker transaction — the batched fast path."""
        return self._call(
            queue_name,
            "publish_batch",
            {
                "queue": queue_name,
                "messages": [message_to_wire(m) for m in messages],
                "principal": principal,
            },
        )

    def publish_many(
        self,
        entries: list[tuple[str, Message]],
        *,
        principal: str = "internal",
    ) -> list[int]:
        """Publish ``(queue, message)`` pairs spanning any number of
        shards — grouped per shard, shipped as one pipelined scatter (no
        atomicity across shards; use :meth:`publish_atomic` for that).
        Returned ids align with the input order.
        """
        grouped: dict[tuple[int, str], list[tuple[int, Message]]] = {}
        for index, (queue_name, message) in enumerate(entries):
            key = (self.router.shard_for(queue_name), queue_name.lower())
            grouped.setdefault(key, []).append((index, message))
        # One frame per (shard, queue) group — all sent before any reply
        # is read, so every involved worker runs its batches concurrently.
        # The whole pipelined exchange holds the coordinator lock: a
        # supervisor probe interleaving frames on a strictly-ordered
        # channel would corrupt the request/reply pairing.
        with self.coordinator._lock:
            pending: list[tuple[int, int, list[int], dict[str, Any]]] = []
            for (shard_id, queue_name), pairs in grouped.items():
                args = {
                    "queue": queue_name,
                    "messages": [message_to_wire(m) for _, m in pairs],
                    "principal": principal,
                }
                request_id = self.coordinator.worker(shard_id).send(
                    "publish_batch", args
                )
                pending.append(
                    (shard_id, request_id, [index for index, _ in pairs], args)
                )
            results: list[int | None] = [None] * len(entries)
            first_error: Exception | None = None
            for shard_id, request_id, indexes, args in pending:
                try:
                    handle = self.coordinator.worker(shard_id)
                    ids = handle.recv(request_id)
                except ShardError as exc:
                    if first_error is None:
                        first_error = exc
                    continue
                self.coordinator.replicator.record_mutation(
                    shard_id, "publish_batch", args, ids, lsn=handle.last_lsn
                )
                for index, message_id in zip(indexes, ids):
                    results[index] = message_id
            if first_error is not None:
                if isinstance(first_error, ShardWorkerError):
                    _reraise(first_error)
                raise first_error
            return results  # type: ignore[return-value]

    def publish_atomic(
        self, entries: list[tuple[str, Message]], *, principal: str = "internal"
    ) -> str | None:
        """Atomically enqueue across queues.  Single-shard groups take
        the ordinary one-transaction path (returns ``None``); spanning
        shards runs 2PC and returns the gtid."""
        ops_by_shard: dict[int, list[dict[str, Any]]] = {}
        for queue_name, message in entries:
            ops_by_shard.setdefault(self.router.shard_for(queue_name), []).append(
                {"queue": queue_name.lower(), "message": message_to_wire(message)}
            )
        if len(ops_by_shard) == 1:
            ((shard_id, ops),) = ops_by_shard.items()
            # All on one shard: local transactionality suffices, but a
            # multi-queue batch still needs single-frame atomicity — the
            # 2PC participant path degenerates to exactly that, so reuse
            # it (prepare+decide on one worker, no decision journal round).
            gtid = new_gtid()
            with self.coordinator._lock:
                handle = self.coordinator.worker(shard_id)
                try:
                    handle.call("prepare", {"gtid": gtid, "ops": ops})
                    decided = handle.call(
                        "decide", {"gtid": gtid, "decision": "committed"}
                    )
                except ShardWorkerError as exc:
                    _reraise(exc)
                if decided.get("applied"):
                    self.coordinator.replicator.record_applied(
                        shard_id, ops, decided.get("ids") or {},
                        lsn=handle.last_lsn,
                    )
            return None
        return self.coordinator.two_phase_publish(ops_by_shard)

    # -- consume / ack ------------------------------------------------------

    def consume(
        self, queue_name: str, *, principal: str = "consumer"
    ) -> Message | None:
        messages = self.consume_batch(queue_name, 1, principal=principal)
        return messages[0] if messages else None

    def consume_batch(
        self, queue_name: str, max_messages: int, *, principal: str = "consumer"
    ) -> list[Message]:
        wires = self._call(
            queue_name,
            "consume_batch",
            {
                "queue": queue_name,
                "max_messages": max_messages,
                "principal": principal,
            },
        )
        return [wire_to_consumed(wire) for wire in wires]

    def ack(
        self, queue_name: str, message_id: int, *, principal: str = "consumer"
    ) -> None:
        self._call(
            queue_name,
            "ack",
            {"queue": queue_name, "message_id": message_id, "principal": principal},
        )

    def ack_batch(
        self,
        queue_name: str,
        message_ids: list[int],
        *,
        principal: str = "consumer",
    ) -> int:
        return self._call(
            queue_name,
            "ack_batch",
            {
                "queue": queue_name,
                "message_ids": list(message_ids),
                "principal": principal,
            },
        )

    def requeue(
        self,
        queue_name: str,
        message_id: int,
        *,
        delay: float = 0.0,
        principal: str = "consumer",
    ) -> None:
        self._call(
            queue_name,
            "requeue",
            {
                "queue": queue_name,
                "message_id": message_id,
                "delay": delay,
                "principal": principal,
            },
        )

    # -- introspection ------------------------------------------------------

    def depth(self, queue_name: str) -> int:
        return self._call(queue_name, "depth", {"queue": queue_name})

    def depth_info(self, queue_name: str) -> dict[str, Any]:
        """``depth`` with its staleness contract made explicit:
        ``{"depth", "stale", "lag_ops", "source"}`` — ``stale=True``
        only when a replica served it under ``read_policy="replica_ok"``."""
        depth = self._call(queue_name, "depth", {"queue": queue_name})
        info = self.last_read_info
        return {
            "depth": depth,
            "stale": bool(info and info.get("stale")),
            "lag_ops": info.get("lag_ops") if info else 0,
            "source": f"replica:{info['replica']}" if info else "primary",
        }

    def peek(
        self, queue_name: str, max_messages: int = 1
    ) -> dict[str, Any]:
        """READY messages in dequeue order WITHOUT locking them — the
        degraded-mode consume.  Returns ``{"messages", "stale",
        "lag_ops", "source"}``; a replica may serve it (peeking mutates
        nothing), unlike :meth:`consume_batch`."""
        wires = self._call(
            queue_name, "peek",
            {"queue": queue_name, "max_messages": max_messages},
        )
        info = self.last_read_info
        return {
            "messages": [wire_to_consumed(wire) for wire in wires],
            "stale": bool(info and info.get("stale")),
            "lag_ops": info.get("lag_ops") if info else 0,
            "source": f"replica:{info['replica']}" if info else "primary",
        }

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-queue stats merged across every shard.  Shards with no
        live primary fall back to their freshest replica when
        ``read_policy="replica_ok"``; shards with neither are simply
        absent (see :meth:`stats_info` for the tagged view)."""
        return self.stats_info()["queues"]

    def stats_info(self) -> dict[str, Any]:
        """Fleet stats with the availability picture attached:
        ``queues`` (merged per-queue stats), ``stale_shards`` (served
        by a replica, with lag), ``missing`` (no primary or replica)."""
        view = self.coordinator.broadcast("stats")
        merged: dict[str, dict[str, int]] = {}
        for shard_stats in view.values():
            merged.update(shard_stats)
        stale_shards: dict[int, dict[str, Any]] = {}
        missing: list[int] = []
        for shard_id in view.missing:
            if self.read_policy == "replica_ok":
                try:
                    shard_stats, info = self.coordinator.replica_read(
                        shard_id, "stats", {}
                    )
                except ShardError:
                    missing.append(shard_id)
                    continue
                merged.update(shard_stats)
                stale_shards[shard_id] = info
            else:
                missing.append(shard_id)
        return {
            "queues": merged,
            "stale_shards": stale_shards,
            "missing": missing,
        }

    def metrics_by_shard(self) -> dict[int, dict[str, Any]]:
        return self.coordinator.metrics_by_shard()


class ShardedPubSubBroker:
    """Topic fan-out in the coordinator, durable spooling on the shards.

    Topic/subscription metadata is tiny coordinator-local state; what
    must scale — the per-subscriber durable spool traffic — rides
    :class:`ShardedQueueBroker`, so each ``sub_<name>`` queue lands on
    the shard its name hashes to and publishes to disjoint subscribers
    batch per shard.
    """

    def __init__(self, coordinator: ShardCoordinator, *, name: str = "pubsub") -> None:
        self.name = name
        self.queues = ShardedQueueBroker(coordinator)
        self._topics: dict[str, Topic] = {}
        self._subscriptions: dict[str, dict[str, Any]] = {}
        self.stats = {"published": 0, "spooled": 0, "delivered": 0}

    # -- topics / subscriptions ---------------------------------------------

    def create_topic(self, name: str, *, retain: bool = False) -> Topic:
        name = name.lower()
        if name in self._topics:
            raise errors_module.PubSubError(f"topic {name!r} already exists")
        topic = Topic(name, retain=retain)
        self._topics[name] = topic
        return topic

    def topic(self, name: str) -> Topic:
        try:
            return self._topics[name.lower()]
        except KeyError:
            raise errors_module.TopicNotFoundError(
                f"topic {name!r} does not exist"
            ) from None

    def subscribe(self, subscriber: str, topic_pattern: str) -> str:
        """Register a durable subscription; returns its spool queue
        name.  (Nondurable inline callbacks don't cross process
        boundaries — durable spooling is the sharded mode.)"""
        if subscriber in self._subscriptions:
            raise errors_module.PubSubError(
                f"subscriber {subscriber!r} already registered"
            )
        queue_name = f"sub_{subscriber.lower()}"
        self.queues.create_queue(queue_name)
        self._subscriptions[subscriber] = {
            "pattern": topic_pattern,
            "queue": queue_name,
        }
        return queue_name

    def unsubscribe(self, subscriber: str) -> None:
        if self._subscriptions.pop(subscriber, None) is None:
            raise errors_module.PubSubError(
                f"subscriber {subscriber!r} is not registered"
            )

    # -- publish ------------------------------------------------------------

    def publish(self, topic_name: str, event: Event) -> int:
        return self.publish_events(topic_name, [event])

    def publish_events(self, topic_name: str, events: list[Event]) -> int:
        """Fan a batch of events out to every matching durable spool —
        grouped so each worker sees one frame per spool queue, shipped
        as one pipelined scatter across shards."""
        topic = self.topic(topic_name)
        entries: list[tuple[str, Message]] = []
        for event in events:
            topic.record(event)
            self.stats["published"] += 1
            for info in self._subscriptions.values():
                if topic_matches(info["pattern"], topic.name):
                    entries.append(
                        (
                            info["queue"],
                            Message(payload=_event_to_payload(topic.name, event)),
                        )
                    )
        if entries:
            self.queues.publish_many(entries, principal="internal")
            self.stats["spooled"] += len(entries)
        return len(entries)

    # -- consume ------------------------------------------------------------

    def _spool(self, subscriber: str) -> str:
        try:
            return self._subscriptions[subscriber]["queue"]
        except KeyError:
            raise errors_module.PubSubError(
                f"subscriber {subscriber!r} is not registered"
            ) from None

    def fetch(self, subscriber: str) -> Event | None:
        queue_name = self._spool(subscriber)
        message = self.queues.consume(queue_name, principal=subscriber)
        if message is None:
            return None
        self.queues.ack(
            queue_name, message.message_id, principal=subscriber
        )
        self.stats["delivered"] += 1
        return _payload_to_event(message.payload)

    def drain(
        self, subscriber: str, callback: Callable[[Event], Any], *, batch: int = 64
    ) -> int:
        """Consume the whole backlog through ``callback`` in batches
        (ack after each successful callback; a raising callback requeues
        its event and re-raises, like the local activation contract)."""
        queue_name = self._spool(subscriber)
        drained = 0
        while True:
            messages = self.queues.consume_batch(
                queue_name, batch, principal=subscriber
            )
            if not messages:
                return drained
            acked: list[int] = []
            try:
                for message in messages:
                    callback(_payload_to_event(message.payload))
                    acked.append(message.message_id)
            finally:
                if acked:
                    self.queues.ack_batch(queue_name, acked, principal=subscriber)
                    self.stats["delivered"] += len(acked)
                    drained += len(acked)
                for message in messages:
                    if message.message_id not in acked:
                        self.queues.requeue(
                            queue_name, message.message_id, principal=subscriber
                        )

    def backlog(self, subscriber: str) -> int:
        return self.queues.depth(self._spool(subscriber))
