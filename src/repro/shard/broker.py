"""Sharded facades over the queue and pub/sub broker APIs.

:class:`ShardedQueueBroker` and :class:`ShardedPubSubBroker` present
the single-process broker surface while executing against a
:class:`~repro.shard.coordinator.ShardCoordinator`'s worker fleet.  A
queue (or durable-subscription spool) lives *entirely* on the shard its
name hashes to, so every single-queue operation is one local
transaction on one worker — the paper's queue semantics are untouched;
only placement changed.  The one genuinely distributed operation,
:meth:`ShardedQueueBroker.publish_atomic` across queues on different
shards, runs the 2PC protocol.

Error fidelity: worker-side exceptions come back over the wire as
``(kind, message)``; the facade re-raises the matching
:class:`~repro.errors.ReproError` subclass so callers catch exactly
what the local brokers would have raised.
"""

from __future__ import annotations

from typing import Any, Callable

from repro import errors as errors_module
from repro.errors import ReproError, ShardError, ShardWorkerError
from repro.events import Event
from repro.pubsub.broker import _event_to_payload, _payload_to_event
from repro.pubsub.topic import Topic, topic_matches
from repro.queues.message import Message
from repro.shard.coordinator import ShardCoordinator
from repro.shard.protocol import message_to_wire, wire_to_consumed
from repro.shard.twopc import new_gtid  # noqa: F401  (re-export convenience)


def _reraise(exc: ShardWorkerError) -> None:
    """Map a worker-reported error back to its local exception class
    (falls through to the ShardWorkerError itself for unknown kinds)."""
    cls = getattr(errors_module, exc.kind, None)
    if (
        isinstance(cls, type)
        and issubclass(cls, ReproError)
        and cls not in (ShardWorkerError,)
    ):
        try:
            raise cls(str(exc)) from None
        except TypeError:  # subclass with a custom constructor
            pass
    raise exc


class ShardedQueueBroker:
    """The :class:`~repro.queues.broker.QueueBroker` API, shard-routed."""

    def __init__(self, coordinator: ShardCoordinator) -> None:
        self.coordinator = coordinator
        self.router = coordinator.router

    def _call(self, queue_name: str, op: str, args: dict[str, Any]) -> Any:
        shard_id = self.router.shard_for(queue_name)
        try:
            return self.coordinator.worker(shard_id).call(op, args)
        except ShardWorkerError as exc:
            _reraise(exc)

    # -- queue lifecycle ----------------------------------------------------

    def create_queue(
        self,
        name: str,
        *,
        keep_history: bool = False,
        default_expiration: float | None = None,
    ) -> int:
        """Create ``name`` on its owning shard; returns the shard id."""
        self._call(
            name,
            "create_queue",
            {
                "name": name,
                "keep_history": keep_history,
                "default_expiration": default_expiration,
            },
        )
        return self.router.shard_for(name)

    def drop_queue(self, name: str) -> None:
        self._call(name, "drop_queue", {"name": name})

    def shard_for(self, name: str) -> int:
        return self.router.shard_for(name)

    # -- publish ------------------------------------------------------------

    def publish(
        self, queue_name: str, message: Message, *, principal: str = "internal"
    ) -> int:
        return self.publish_batch(queue_name, [message], principal=principal)[0]

    def publish_batch(
        self,
        queue_name: str,
        messages: list[Message],
        *,
        principal: str = "internal",
    ) -> list[int]:
        """One frame, one worker transaction — the batched fast path."""
        return self._call(
            queue_name,
            "publish_batch",
            {
                "queue": queue_name,
                "messages": [message_to_wire(m) for m in messages],
                "principal": principal,
            },
        )

    def publish_many(
        self,
        entries: list[tuple[str, Message]],
        *,
        principal: str = "internal",
    ) -> list[int]:
        """Publish ``(queue, message)`` pairs spanning any number of
        shards — grouped per shard, shipped as one pipelined scatter (no
        atomicity across shards; use :meth:`publish_atomic` for that).
        Returned ids align with the input order.
        """
        grouped: dict[tuple[int, str], list[tuple[int, Message]]] = {}
        for index, (queue_name, message) in enumerate(entries):
            key = (self.router.shard_for(queue_name), queue_name.lower())
            grouped.setdefault(key, []).append((index, message))
        # One frame per (shard, queue) group — all sent before any reply
        # is read, so every involved worker runs its batches concurrently.
        pending: list[tuple[int, int, list[int]]] = []
        for (shard_id, queue_name), pairs in grouped.items():
            request_id = self.coordinator.worker(shard_id).send(
                "publish_batch",
                {
                    "queue": queue_name,
                    "messages": [message_to_wire(m) for _, m in pairs],
                    "principal": principal,
                },
            )
            pending.append((shard_id, request_id, [index for index, _ in pairs]))
        results: list[int | None] = [None] * len(entries)
        first_error: Exception | None = None
        for shard_id, request_id, indexes in pending:
            try:
                ids = self.coordinator.worker(shard_id).recv(request_id)
            except ShardError as exc:
                if first_error is None:
                    first_error = exc
                continue
            for index, message_id in zip(indexes, ids):
                results[index] = message_id
        if first_error is not None:
            if isinstance(first_error, ShardWorkerError):
                _reraise(first_error)
            raise first_error
        return results  # type: ignore[return-value]

    def publish_atomic(
        self, entries: list[tuple[str, Message]], *, principal: str = "internal"
    ) -> str | None:
        """Atomically enqueue across queues.  Single-shard groups take
        the ordinary one-transaction path (returns ``None``); spanning
        shards runs 2PC and returns the gtid."""
        ops_by_shard: dict[int, list[dict[str, Any]]] = {}
        for queue_name, message in entries:
            ops_by_shard.setdefault(self.router.shard_for(queue_name), []).append(
                {"queue": queue_name.lower(), "message": message_to_wire(message)}
            )
        if len(ops_by_shard) == 1:
            ((shard_id, ops),) = ops_by_shard.items()
            # All on one shard: local transactionality suffices, but a
            # multi-queue batch still needs single-frame atomicity — the
            # 2PC participant path degenerates to exactly that, so reuse
            # it (prepare+decide on one worker, no decision journal round).
            gtid = new_gtid()
            handle = self.coordinator.worker(shard_id)
            try:
                handle.call("prepare", {"gtid": gtid, "ops": ops})
                handle.call("decide", {"gtid": gtid, "decision": "committed"})
            except ShardWorkerError as exc:
                _reraise(exc)
            return None
        return self.coordinator.two_phase_publish(ops_by_shard)

    # -- consume / ack ------------------------------------------------------

    def consume(
        self, queue_name: str, *, principal: str = "consumer"
    ) -> Message | None:
        messages = self.consume_batch(queue_name, 1, principal=principal)
        return messages[0] if messages else None

    def consume_batch(
        self, queue_name: str, max_messages: int, *, principal: str = "consumer"
    ) -> list[Message]:
        wires = self._call(
            queue_name,
            "consume_batch",
            {
                "queue": queue_name,
                "max_messages": max_messages,
                "principal": principal,
            },
        )
        return [wire_to_consumed(wire) for wire in wires]

    def ack(
        self, queue_name: str, message_id: int, *, principal: str = "consumer"
    ) -> None:
        self._call(
            queue_name,
            "ack",
            {"queue": queue_name, "message_id": message_id, "principal": principal},
        )

    def ack_batch(
        self,
        queue_name: str,
        message_ids: list[int],
        *,
        principal: str = "consumer",
    ) -> int:
        return self._call(
            queue_name,
            "ack_batch",
            {
                "queue": queue_name,
                "message_ids": list(message_ids),
                "principal": principal,
            },
        )

    def requeue(
        self,
        queue_name: str,
        message_id: int,
        *,
        delay: float = 0.0,
        principal: str = "consumer",
    ) -> None:
        self._call(
            queue_name,
            "requeue",
            {
                "queue": queue_name,
                "message_id": message_id,
                "delay": delay,
                "principal": principal,
            },
        )

    # -- introspection ------------------------------------------------------

    def depth(self, queue_name: str) -> int:
        return self._call(queue_name, "depth", {"queue": queue_name})

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-queue stats merged across every shard."""
        merged: dict[str, dict[str, int]] = {}
        for shard_stats in self.coordinator.broadcast("stats").values():
            merged.update(shard_stats)
        return merged

    def metrics_by_shard(self) -> dict[int, dict[str, Any]]:
        return self.coordinator.metrics_by_shard()


class ShardedPubSubBroker:
    """Topic fan-out in the coordinator, durable spooling on the shards.

    Topic/subscription metadata is tiny coordinator-local state; what
    must scale — the per-subscriber durable spool traffic — rides
    :class:`ShardedQueueBroker`, so each ``sub_<name>`` queue lands on
    the shard its name hashes to and publishes to disjoint subscribers
    batch per shard.
    """

    def __init__(self, coordinator: ShardCoordinator, *, name: str = "pubsub") -> None:
        self.name = name
        self.queues = ShardedQueueBroker(coordinator)
        self._topics: dict[str, Topic] = {}
        self._subscriptions: dict[str, dict[str, Any]] = {}
        self.stats = {"published": 0, "spooled": 0, "delivered": 0}

    # -- topics / subscriptions ---------------------------------------------

    def create_topic(self, name: str, *, retain: bool = False) -> Topic:
        name = name.lower()
        if name in self._topics:
            raise errors_module.PubSubError(f"topic {name!r} already exists")
        topic = Topic(name, retain=retain)
        self._topics[name] = topic
        return topic

    def topic(self, name: str) -> Topic:
        try:
            return self._topics[name.lower()]
        except KeyError:
            raise errors_module.TopicNotFoundError(
                f"topic {name!r} does not exist"
            ) from None

    def subscribe(self, subscriber: str, topic_pattern: str) -> str:
        """Register a durable subscription; returns its spool queue
        name.  (Nondurable inline callbacks don't cross process
        boundaries — durable spooling is the sharded mode.)"""
        if subscriber in self._subscriptions:
            raise errors_module.PubSubError(
                f"subscriber {subscriber!r} already registered"
            )
        queue_name = f"sub_{subscriber.lower()}"
        self.queues.create_queue(queue_name)
        self._subscriptions[subscriber] = {
            "pattern": topic_pattern,
            "queue": queue_name,
        }
        return queue_name

    def unsubscribe(self, subscriber: str) -> None:
        if self._subscriptions.pop(subscriber, None) is None:
            raise errors_module.PubSubError(
                f"subscriber {subscriber!r} is not registered"
            )

    # -- publish ------------------------------------------------------------

    def publish(self, topic_name: str, event: Event) -> int:
        return self.publish_events(topic_name, [event])

    def publish_events(self, topic_name: str, events: list[Event]) -> int:
        """Fan a batch of events out to every matching durable spool —
        grouped so each worker sees one frame per spool queue, shipped
        as one pipelined scatter across shards."""
        topic = self.topic(topic_name)
        entries: list[tuple[str, Message]] = []
        for event in events:
            topic.record(event)
            self.stats["published"] += 1
            for info in self._subscriptions.values():
                if topic_matches(info["pattern"], topic.name):
                    entries.append(
                        (
                            info["queue"],
                            Message(payload=_event_to_payload(topic.name, event)),
                        )
                    )
        if entries:
            self.queues.publish_many(entries, principal="internal")
            self.stats["spooled"] += len(entries)
        return len(entries)

    # -- consume ------------------------------------------------------------

    def _spool(self, subscriber: str) -> str:
        try:
            return self._subscriptions[subscriber]["queue"]
        except KeyError:
            raise errors_module.PubSubError(
                f"subscriber {subscriber!r} is not registered"
            ) from None

    def fetch(self, subscriber: str) -> Event | None:
        queue_name = self._spool(subscriber)
        message = self.queues.consume(queue_name, principal=subscriber)
        if message is None:
            return None
        self.queues.ack(
            queue_name, message.message_id, principal=subscriber
        )
        self.stats["delivered"] += 1
        return _payload_to_event(message.payload)

    def drain(
        self, subscriber: str, callback: Callable[[Event], Any], *, batch: int = 64
    ) -> int:
        """Consume the whole backlog through ``callback`` in batches
        (ack after each successful callback; a raising callback requeues
        its event and re-raises, like the local activation contract)."""
        queue_name = self._spool(subscriber)
        drained = 0
        while True:
            messages = self.queues.consume_batch(
                queue_name, batch, principal=subscriber
            )
            if not messages:
                return drained
            acked: list[int] = []
            try:
                for message in messages:
                    callback(_payload_to_event(message.payload))
                    acked.append(message.message_id)
            finally:
                if acked:
                    self.queues.ack_batch(queue_name, acked, principal=subscriber)
                    self.stats["delivered"] += len(acked)
                    drained += len(acked)
                for message in messages:
                    if message.message_id not in acked:
                        self.queues.requeue(
                            queue_name, message.message_id, principal=subscriber
                        )

    def backlog(self, subscriber: str) -> int:
        return self.queues.depth(self._spool(subscriber))
