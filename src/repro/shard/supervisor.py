"""Supervision for the shard fleet: detect, classify, repair.

The :class:`ShardSupervisor` closes the loop PR 7 left open — a dead
:class:`ShardWorker` made its queues unreachable until someone called
``restart_worker`` by hand.  The supervisor periodically probes every
primary with a cheap ``heartbeat`` op under a tight per-call deadline
and drives recovery through a small per-shard state machine:

Failure classification (the table in docs/architecture.md):

=============  ==============================================  =============
observation    meaning                                         response
=============  ==============================================  =============
probe ok       healthy                                         reset streaks
timeout, but   **stalled** — the process lives but stopped     kill (fence),
process alive  answering (wedged syscall, injected stall)      then restart
dead channel/  **crashed** — the process exited                restart with
process                                                        backoff
repeated       **crash loop** — something systemic (bad WAL,   circuit-break:
crashes        poisoned input, armed fault)                    stop burning
                                                               restarts,
                                                               promote
=============  ==============================================  =============

Restarts are spaced by capped exponential backoff with deterministic
*downward* jitter — the same derivation as
:meth:`repro.queues.propagation.Propagator.backoff_for`, keyed by
``(shard_id, attempt)``, no ambient RNG — so a multi-shard outage does
not retry in lockstep and a given attempt always lands at the same
delay (seeded chaos tests stay reproducible).

Repair policy: a **durable** shard (WAL on disk) prefers restarting
its primary — recovery replays the WAL, so restart preserves more
than an in-memory replica might.  An **in-memory** shard prefers
promoting a replica — its primary's state died with the process, while
the replica holds everything the replication log shipped.  Either way,
when the preferred path is exhausted the other is tried; when both
are, the breaker opens and the shard serves degraded (stale replica
reads, spooled or failed-fast writes) until the next supervision round
retries.

The supervisor also keeps the *replica* tier at strength: dead
replicas are respawned and re-seeded from the current primary, so a
shard that just failed over regains a standby for the next failure.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.errors import ShardError, ShardUnavailable, ShardWorkerDied
from repro.shard.coordinator import ShardCoordinator

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"


class ShardHealth:
    """The supervisor's per-shard view (exposed via ``fleet_health``)."""

    __slots__ = (
        "failures",
        "restart_attempts",
        "breaker",
        "last_class",
        "next_attempt_at",
        "restarts",
        "promotions",
    )

    def __init__(self) -> None:
        self.failures = 0            # consecutive failed probes
        self.restart_attempts = 0    # since the shard was last healthy
        self.breaker = BREAKER_CLOSED
        self.last_class: str | None = None
        self.next_attempt_at = 0.0   # monotonic deadline for next repair
        self.restarts = 0            # lifetime, for stats --shards
        self.promotions = 0

    def mark_healthy(self) -> None:
        self.failures = 0
        self.restart_attempts = 0
        self.breaker = BREAKER_CLOSED
        self.last_class = None
        self.next_attempt_at = 0.0


class ShardSupervisor:
    """Health-checks the fleet and repairs it without operator help."""

    def __init__(
        self,
        coordinator: ShardCoordinator,
        *,
        heartbeat_timeout: float = 1.0,
        failure_threshold: int = 1,
        max_restarts: int = 3,
        base_backoff: float = 0.05,
        max_backoff: float = 2.0,
        preserve_faults: bool = False,
        monotonic: Any = time.monotonic,
    ) -> None:
        """Args:
        heartbeat_timeout: per-probe deadline — far tighter than the
            30s op deadline; a healthy worker answers in microseconds.
        failure_threshold: consecutive probe failures before repair
            (``1`` = repair on first failure; raise it to tolerate
            transient timeouts).
        max_restarts: restart attempts before the shard is declared in
            a crash loop (breaker opens; promotion becomes the only
            path).
        preserve_faults: re-arm each worker's fault spec across
            supervisor restarts (crash-loop tests); default clears it.
        monotonic: injectable time source for deterministic tests.
        """
        self.coordinator = coordinator
        self.heartbeat_timeout = heartbeat_timeout
        self.failure_threshold = failure_threshold
        self.max_restarts = max_restarts
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self.preserve_faults = preserve_faults
        self.monotonic = monotonic
        self.health: dict[int, ShardHealth] = {
            shard_id: ShardHealth() for shard_id in coordinator.map.shard_ids
        }
        self.events: list[dict[str, Any]] = []
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        coordinator.supervisor = self

    # -- backoff ------------------------------------------------------------

    def backoff_for(self, shard_id: int, attempt: int) -> float:
        """Delay before restart ``attempt`` of ``shard_id`` —
        exponential, capped, deterministically jittered downward by up
        to 25% (same derivation as the propagator's retry schedule)."""
        raw = self.base_backoff * (2 ** max(0, attempt - 1))
        capped = min(raw, self.max_backoff)
        mix = (shard_id * 2654435761 + attempt * 0x9E3779B9) % 4096
        jitter = (mix / 4096.0) * 0.25
        return capped * (1.0 - jitter)

    # -- probing and classification -----------------------------------------

    def probe(self, shard_id: int) -> str | None:
        """One heartbeat; returns ``None`` when healthy, else the
        failure class (``"stalled"`` or ``"crashed"``)."""
        with self.coordinator._lock:
            handle = self.coordinator.workers.get(shard_id)
            if handle is None or not handle.alive:
                return "crashed"
            try:
                handle.call("heartbeat", timeout=self.heartbeat_timeout)
                return None
            except ShardWorkerDied:
                # Timeout with a live process = stalled (wedged, not
                # dead).  Fence it — a wedged primary waking up after
                # we repair would be a second writer.
                if handle.process.is_alive():
                    handle.kill()
                    return "stalled"
                return "crashed"
            except ShardError:
                # The worker answered with an error: the channel is
                # healthy even if the op misbehaved.
                return None

    # -- the supervision loop -----------------------------------------------

    def tick(self) -> list[dict[str, Any]]:
        """One supervision round over the whole fleet; returns the
        repair events it performed (also appended to ``events``)."""
        events: list[dict[str, Any]] = []
        for shard_id in self.coordinator.map.shard_ids:
            events.extend(self._tick_shard(shard_id))
        events.extend(self._tick_replicas())
        self.events.extend(events)
        return events

    def run_until_healthy(
        self, *, deadline: float = 10.0, poll: float = 0.02
    ) -> list[dict[str, Any]]:
        """Drive :meth:`tick` until every breaker-closed shard has a
        live primary, or ``deadline`` elapses.  The chaos suite's
        synchronous alternative to the background thread."""
        start = self.monotonic()
        events: list[dict[str, Any]] = []
        while True:
            events.extend(self.tick())
            if all(
                self.coordinator.primary_alive(shard_id)
                or self.health[shard_id].breaker == BREAKER_OPEN
                for shard_id in self.coordinator.map.shard_ids
            ):
                return events
            if self.monotonic() - start > deadline:
                return events
            time.sleep(poll)

    def _tick_shard(self, shard_id: int) -> list[dict[str, Any]]:
        health = self.health[shard_id]
        failure_class = self.probe(shard_id)
        if failure_class is None:
            health.mark_healthy()
            return []
        health.failures += 1
        health.last_class = failure_class
        if health.failures < self.failure_threshold:
            return [{"shard": shard_id, "action": "suspect",
                     "class": failure_class}]
        now = self.monotonic()
        if now < health.next_attempt_at:
            return []  # still backing off
        return self._repair(shard_id, health, failure_class)

    def _repair(
        self, shard_id: int, health: ShardHealth, failure_class: str
    ) -> list[dict[str, Any]]:
        coordinator = self.coordinator
        durable = coordinator.data_dir is not None
        has_replica = coordinator.live_replica(shard_id) is not None
        restarts_left = health.restart_attempts < self.max_restarts
        # Durable shards restart first (WAL recovery preserves the
        # most); in-memory shards promote first (the replica holds
        # what the dead primary lost).
        if durable or not has_replica:
            plan = ["restart", "promote"] if restarts_left else ["promote"]
        else:
            plan = ["promote", "restart"] if restarts_left else ["promote"]
        if not restarts_left and health.breaker != BREAKER_OPEN:
            health.breaker = BREAKER_OPEN
        events: list[dict[str, Any]] = []
        for action in plan:
            if action == "restart":
                health.restart_attempts += 1
                try:
                    summary = coordinator.restart_worker(
                        shard_id,
                        graceful=False,
                        preserve_fault=self.preserve_faults,
                    )
                except ShardError as exc:
                    events.append({"shard": shard_id, "action": "restart",
                                   "class": failure_class, "ok": False,
                                   "error": str(exc)})
                    continue
                health.restarts += 1
                # Clear the probe streak but KEEP restart_attempts: a
                # worker that dies again before the next healthy probe
                # is a crash loop, and only a healthy probe
                # (mark_healthy in _tick_shard) forgives the streak.
                health.failures = 0
                health.next_attempt_at = 0.0
                events.append({"shard": shard_id, "action": "restart",
                               "class": failure_class, "ok": True,
                               "summary": summary})
                return events
            if action == "promote" and has_replica:
                try:
                    summary = coordinator.promote_replica(shard_id)
                except (ShardUnavailable, ShardError) as exc:
                    events.append({"shard": shard_id, "action": "promote",
                                   "class": failure_class, "ok": False,
                                   "error": str(exc)})
                    continue
                health.promotions += 1
                health.failures = 0
                health.next_attempt_at = 0.0
                events.append({"shard": shard_id, "action": "promote",
                               "class": failure_class, "ok": True,
                               "summary": summary})
                return events
        # Nothing worked: schedule the next attempt and publish the
        # retry hint degraded-mode errors carry.
        delay = self.backoff_for(shard_id, health.restart_attempts + 1)
        health.next_attempt_at = self.monotonic() + delay
        coordinator.retry_hints[shard_id] = delay
        events.append({"shard": shard_id, "action": "defer",
                       "class": failure_class, "retry_after": delay,
                       "breaker": health.breaker})
        return events

    def _tick_replicas(self) -> list[dict[str, Any]]:
        """Respawn dead replicas (seeded from the current primary) so
        the standby tier regains strength after a failover."""
        events: list[dict[str, Any]] = []
        coordinator = self.coordinator
        for shard_id in coordinator.map.shard_ids:
            if not coordinator.primary_alive(shard_id):
                continue  # nothing to seed from yet
            replicas = coordinator.replicas.get(shard_id, [])
            target = coordinator.replication_factor
            keep = [replica for replica in replicas if replica.alive]
            respawned = 0
            while len(keep) < target:
                replica = coordinator._spawn_replica(shard_id, len(keep))
                keep.append(replica)
                respawned += 1
            coordinator.replicas[shard_id] = keep
            if respawned:
                events.append({"shard": shard_id, "action": "respawn_replica",
                               "count": respawned})
        return events

    # -- fleet health (stats --shards) --------------------------------------

    def fleet_health(self) -> dict[int, dict[str, Any]]:
        """Per-shard role/lag/streak summary merging the coordinator's
        state with the supervisor's."""
        out: dict[int, dict[str, Any]] = {}
        fleet = self.coordinator.fleet_state()
        for shard_id, state in fleet.items():
            health = self.health[shard_id]
            out[shard_id] = {
                **state,
                "role": "primary" if state["primary_alive"] else "down",
                "breaker": health.breaker,
                "failure_class": health.last_class,
                "restarts": health.restarts,
                "promotions": health.promotions,
                "restart_attempts": health.restart_attempts,
            }
        return out

    # -- background thread ---------------------------------------------------

    def start_thread(self, *, interval: float = 0.2) -> None:
        """Run :meth:`tick` every ``interval`` seconds in a daemon
        thread until :meth:`stop_thread` (or coordinator shutdown)."""
        if self._thread is not None:
            return

        def loop() -> None:
            while not self._stop_event.wait(interval):
                try:
                    self.tick()
                except Exception:
                    # The supervisor must outlive any single bad round.
                    self.coordinator.engine.obs.counter(
                        "shard.supervisor_errors"
                    ).inc()

        self._stop_event.clear()
        self._thread = threading.Thread(
            target=loop, name="shard-supervisor", daemon=True
        )
        self._thread.start()

    def stop_thread(self) -> None:
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join(timeout=5.0)
        self._thread = None


__all__ = [
    "ShardSupervisor",
    "ShardHealth",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
]
